// Unit tests: workload generators and loaders (YCSB, TPC-C, bank).
#include <gtest/gtest.h>

#include <set>

#include "test_util.hpp"
#include "workload/bank.hpp"
#include "workload/tpcc.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

// --- YCSB -------------------------------------------------------------------

TEST(YcsbGen, LoadPopulatesTable) {
  wl::ycsb_config cfg;
  cfg.table_size = 1000;
  wl::ycsb w(cfg);
  storage::database db;
  w.load(db);
  EXPECT_EQ(db.by_name("usertable").live_rows(), 1000u);
  EXPECT_EQ(w.field0_sum(db), 0u);  // FIELD0 loads as zero
}

TEST(YcsbGen, KeysDistinctWithinTxn) {
  wl::ycsb_config cfg;
  cfg.table_size = 64;  // tiny: collisions likely without dedup
  cfg.zipf_theta = 0.9;
  wl::ycsb w(cfg);
  common::rng r(1);
  for (int i = 0; i < 50; ++i) {
    auto t = w.make_txn(r);
    std::set<key_t> keys;
    for (const auto& f : t->frags) keys.insert(f.key);
    EXPECT_EQ(keys.size(), t->frags.size()) << "duplicate key in txn";
  }
}

TEST(YcsbGen, SinglePartitionTxnsStayHome) {
  wl::ycsb_config cfg;
  cfg.table_size = 4096;
  cfg.partitions = 8;
  cfg.multi_partition_ratio = 0.0;
  wl::ycsb w(cfg);
  common::rng r(2);
  for (int i = 0; i < 50; ++i) {
    auto t = w.make_txn(r);
    std::set<part_id_t> parts;
    for (const auto& f : t->frags) parts.insert(f.part);
    EXPECT_EQ(parts.size(), 1u);
  }
}

TEST(YcsbGen, MultiPartitionTxnsSpan) {
  wl::ycsb_config cfg;
  cfg.table_size = 4096;
  cfg.partitions = 8;
  cfg.multi_partition_ratio = 1.0;
  cfg.mp_parts = 3;
  wl::ycsb w(cfg);
  common::rng r(3);
  for (int i = 0; i < 50; ++i) {
    auto t = w.make_txn(r);
    std::set<part_id_t> parts;
    for (const auto& f : t->frags) parts.insert(f.part);
    EXPECT_EQ(parts.size(), 3u);
  }
}

TEST(YcsbGen, DependentOpsChainSlots) {
  wl::ycsb_config cfg;
  cfg.table_size = 4096;
  cfg.dependent_ops = true;
  cfg.read_ratio = 0.5;
  wl::ycsb w(cfg);
  common::rng r(4);
  txn::batch b;  // batch::add sizes the slot array from the procedure
  const txn::txn_desc& t = b.add(w.make_txn(r));
  ASSERT_NO_THROW(txn::validate_plan(t));
  // Every op produces its slot so the next can consume it.
  for (std::size_t i = 1; i < t.frags.size(); ++i) {
    const auto& f = t.frags[i];
    if (f.logic == wl::ycsb::op_dep_write) {
      EXPECT_NE(f.input_mask, 0u);
    }
  }
}

TEST(YcsbGen, GeneratorIsDeterministic) {
  wl::ycsb_config cfg;
  cfg.table_size = 4096;
  cfg.abort_ratio = 0.1;
  wl::ycsb w1(cfg), w2(cfg);
  common::rng r1(9), r2(9);
  for (int i = 0; i < 20; ++i) {
    auto a = w1.make_txn(r1);
    auto b = w2.make_txn(r2);
    ASSERT_EQ(a->frags.size(), b->frags.size());
    for (std::size_t j = 0; j < a->frags.size(); ++j) {
      EXPECT_EQ(a->frags[j].key, b->frags[j].key);
      EXPECT_EQ(a->frags[j].aux, b->frags[j].aux);
      EXPECT_EQ(a->frags[j].logic, b->frags[j].logic);
    }
  }
}

TEST(YcsbGen, BatchValidates) {
  wl::ycsb_config cfg;
  cfg.table_size = 1024;
  cfg.abort_ratio = 0.2;
  cfg.dependent_ops = true;
  wl::ycsb w(cfg);
  common::rng r(5);
  EXPECT_NO_THROW(w.make_batch(r, 200));
}

// --- TPC-C ------------------------------------------------------------------

class TpccFixture : public testing::Test {
 protected:
  void SetUp() override {
    cfg_.warehouses = 2;
    cfg_.partitions = 4;
    cfg_.initial_orders_per_district = 30;
    cfg_.order_headroom_per_district = 100;
    w_ = std::make_unique<wl::tpcc>(cfg_);
    db_ = std::make_unique<storage::database>();
    w_->load(*db_);
  }

  wl::tpcc_config cfg_;
  std::unique_ptr<wl::tpcc> w_;
  std::unique_ptr<storage::database> db_;
};

TEST_F(TpccFixture, LoaderPopulation) {
  EXPECT_EQ(db_->by_name("warehouse").live_rows(), 2u);
  EXPECT_EQ(db_->by_name("district").live_rows(), 20u);
  EXPECT_EQ(db_->by_name("customer").live_rows(),
            2u * 10 * wl::kCustomersPerDistrict);
  EXPECT_EQ(db_->by_name("item").live_rows(), wl::kItems);
  EXPECT_EQ(db_->by_name("stock").live_rows(), 2u * wl::kItems);
  EXPECT_EQ(db_->by_name("orders").live_rows(), 20u * 30);
  // 30% of initial orders are undelivered => they have NEW-ORDER rows.
  EXPECT_EQ(db_->by_name("new_order").live_rows(), 20u * (30 - 21));
  EXPECT_GT(db_->by_name("order_line").live_rows(), 20u * 30 * 5);
}

TEST_F(TpccFixture, LoadedStateIsConsistent) {
  std::string why;
  EXPECT_TRUE(w_->check_consistency(*db_, &why)) << why;
}

TEST_F(TpccFixture, KeyPackingIsInjectivePerTable) {
  // Keys only need to be unique within their table (record identity is
  // always the (table, key) pair).
  std::set<key_t> order_keys, line_keys, customer_keys, stock_keys;
  for (std::uint64_t w = 0; w < 3; ++w) {
    for (std::uint64_t d = 0; d < wl::kDistrictsPerWarehouse; ++d) {
      for (std::uint64_t o = 0; o < 50; ++o) {
        ASSERT_TRUE(order_keys.insert(wl::order_key(w, d, o)).second);
        for (std::uint64_t l = 1; l <= wl::kMaxOrderLines; ++l) {
          ASSERT_TRUE(
              line_keys.insert(wl::order_line_key(w, d, o, l)).second);
        }
      }
      for (std::uint64_t c = 0; c < 100; ++c) {
        ASSERT_TRUE(customer_keys.insert(wl::customer_key(w, d, c)).second);
      }
    }
    for (std::uint64_t i = 0; i < 1000; ++i) {
      ASSERT_TRUE(stock_keys.insert(wl::stock_key(w, i)).second);
    }
  }
}

TEST_F(TpccFixture, GeneratedTxnsValidate) {
  common::rng r(6);
  EXPECT_NO_THROW(w_->make_batch(r, 500));
}

TEST_F(TpccFixture, NewOrderEffects) {
  // Force a NewOrder-only stream and execute serially.
  wl::tpcc_config cfg = cfg_;
  cfg.payment_ratio = cfg.order_status_ratio = cfg.delivery_ratio =
      cfg.stock_level_ratio = 0;
  cfg.invalid_item_ratio = 0;
  wl::tpcc w(cfg);
  storage::database db;
  w.load(db);

  const auto orders_before = db.by_name("orders").live_rows();
  common::rng r(7);
  auto b = w.make_batch(r, 50);
  testutil::replay_in_seq_order(db, b);

  EXPECT_EQ(db.by_name("orders").live_rows(), orders_before + 50);
  std::string why;
  EXPECT_TRUE(w.check_consistency(db, &why)) << why;
}

TEST_F(TpccFixture, PaymentConservesMoney) {
  wl::tpcc_config cfg = cfg_;
  cfg.new_order_ratio = cfg.order_status_ratio = cfg.delivery_ratio =
      cfg.stock_level_ratio = 0;
  wl::tpcc w(cfg);
  storage::database db;
  w.load(db);

  const double before = w.money_sum(db);
  common::rng r(8);
  auto b = w.make_batch(r, 200);
  testutil::replay_in_seq_order(db, b);
  // Payment moves amount from balance to ytd_payment: the sum is invariant.
  EXPECT_NEAR(w.money_sum(db), before, 1e-6);
}

TEST_F(TpccFixture, DeliveryConsumesNewOrders) {
  wl::tpcc_config cfg = cfg_;
  cfg.new_order_ratio = cfg.payment_ratio = cfg.order_status_ratio =
      cfg.stock_level_ratio = 0;
  cfg.delivery_ratio = 1.0;
  wl::tpcc w(cfg);
  storage::database db;
  w.load(db);

  const auto undelivered_before = db.by_name("new_order").live_rows();
  common::rng r(9);
  auto b = w.make_batch(r, 40);
  testutil::replay_in_seq_order(db, b);
  EXPECT_LT(db.by_name("new_order").live_rows(), undelivered_before);
}

TEST_F(TpccFixture, DoomedNewOrderRollsBackCompletely) {
  wl::tpcc_config cfg = cfg_;
  cfg.payment_ratio = cfg.order_status_ratio = cfg.delivery_ratio =
      cfg.stock_level_ratio = 0;
  cfg.invalid_item_ratio = 1.0;  // every NewOrder aborts
  wl::tpcc w(cfg);
  storage::database db;
  w.load(db);

  const auto hash_before = db.state_hash();
  common::rng r(10);
  auto b = w.make_batch(r, 30);
  testutil::replay_in_seq_order(db, b);
  for (const auto& t : b) EXPECT_TRUE(t->aborted());
  EXPECT_EQ(db.state_hash(), hash_before);  // zero net effect
}

// --- bank -------------------------------------------------------------------

TEST(BankGen, LoadAndInvariant) {
  wl::bank_config cfg;
  cfg.accounts = 100;
  cfg.initial_balance = 77;
  wl::bank w(cfg);
  storage::database db;
  w.load(db);
  EXPECT_EQ(w.total_balance(db), 7700u);
}

TEST(BankGen, TransfersNeverTargetSelf) {
  wl::bank_config cfg;
  cfg.accounts = 4;  // tiny: self-transfer likely without the guard
  wl::bank w(cfg);
  common::rng r(11);
  for (int i = 0; i < 100; ++i) {
    auto t = w.make_txn(r);
    EXPECT_NE(t->frags[1].key, t->frags[2].key);  // src != dst
  }
}

TEST(BankGen, InsufficientFundsAbortsSerially) {
  wl::bank_config cfg;
  cfg.accounts = 16;
  cfg.initial_balance = 10;
  cfg.max_transfer = 100;  // mostly impossible transfers
  wl::bank w(cfg);
  storage::database db;
  w.load(db);
  common::rng r(12);
  auto b = w.make_batch(r, 100);
  testutil::replay_in_seq_order(db, b);
  std::size_t aborted = 0;
  for (const auto& t : b) aborted += t->aborted() ? 1 : 0;
  EXPECT_GT(aborted, 50u);
  EXPECT_EQ(w.total_balance(db), 160u);
}

}  // namespace
}  // namespace quecc
