// Unit tests: fragmentation model — fragments, slots, plans, batches.
#include <gtest/gtest.h>

#include "txn/batch.hpp"
#include "txn/procedure.hpp"

namespace quecc::txn {
namespace {

frag_status noop_logic(const fragment&, txn_desc&, frag_host&) {
  return frag_status::ok;
}

procedure make_proc(std::uint16_t slots = 4) {
  return procedure("test", &noop_logic, slots);
}

fragment make_frag(std::uint16_t idx, op_kind kind = op_kind::read) {
  fragment f;
  f.idx = idx;
  f.kind = kind;
  f.key = idx;
  return f;
}

TEST(Fragment, UpdatesDatabaseClassification) {
  EXPECT_FALSE(make_frag(0, op_kind::read).updates_database());
  EXPECT_TRUE(make_frag(0, op_kind::update).updates_database());
  EXPECT_TRUE(make_frag(0, op_kind::insert).updates_database());
  EXPECT_TRUE(make_frag(0, op_kind::erase).updates_database());
}

TEST(TxnDesc, SlotProduceConsume) {
  auto proc = make_proc();
  txn_desc t;
  t.proc = &proc;
  t.resize_slots(4);
  EXPECT_FALSE(t.inputs_ready(0b0101));
  t.produce(0, 11);
  t.produce(2, 22);
  EXPECT_TRUE(t.inputs_ready(0b0101));
  EXPECT_FALSE(t.inputs_ready(0b0010));
  EXPECT_EQ(t.slot_value(0), 11u);
  EXPECT_EQ(t.slot_value(2), 22u);
}

TEST(TxnDesc, ResetClearsRuntime) {
  auto proc = make_proc();
  txn_desc t;
  t.proc = &proc;
  t.resize_slots(2);
  auto f = make_frag(0);
  f.abortable = true;
  t.frags.push_back(f);
  t.frags.push_back(make_frag(1, op_kind::update));
  t.reset_runtime();
  EXPECT_EQ(t.pending_abortables.load(), 1u);
  EXPECT_EQ(t.remaining_frags.load(), 2u);

  t.produce(0, 5);
  t.mark_aborted();
  t.reset_runtime();
  EXPECT_FALSE(t.aborted());
  EXPECT_FALSE(t.inputs_ready(0b01));
}

TEST(TxnDesc, AbortableUpdaterRejected) {
  auto proc = make_proc();
  txn_desc t;
  t.proc = &proc;
  auto f = make_frag(0, op_kind::update);
  f.abortable = true;
  t.frags.push_back(f);
  EXPECT_THROW(t.reset_runtime(), std::logic_error);
}

TEST(TxnDesc, TooManySlotsRejected) {
  txn_desc t;
  EXPECT_THROW(t.resize_slots(65), std::length_error);
  EXPECT_NO_THROW(t.resize_slots(64));
}

TEST(TxnDesc, ResultFingerprintIncludesStatusAndSlots) {
  auto proc = make_proc();
  txn_desc t;
  t.proc = &proc;
  t.resize_slots(2);
  t.produce(1, 77);
  const auto fp = t.result_fingerprint();
  ASSERT_EQ(fp.size(), 3u);
  EXPECT_EQ(fp[0], static_cast<std::uint64_t>(txn_status::active));
  EXPECT_EQ(fp[2], 77u);
}

TEST(ValidatePlan, AcceptsWellFormed) {
  auto proc = make_proc();
  txn_desc t;
  t.proc = &proc;
  t.resize_slots(4);
  auto f0 = make_frag(0);
  f0.abortable = true;
  auto f1 = make_frag(1);
  f1.output_slot = 0;
  auto f2 = make_frag(2, op_kind::update);
  f2.input_mask = 0b1;
  f2.output_slot = 1;
  t.frags = {f0, f1, f2};
  EXPECT_NO_THROW(validate_plan(t));
}

TEST(ValidatePlan, RejectsForwardDataDependency) {
  auto proc = make_proc();
  txn_desc t;
  t.proc = &proc;
  t.resize_slots(4);
  auto f0 = make_frag(0);
  f0.input_mask = 0b1;  // consumes slot nobody produced yet
  auto f1 = make_frag(1);
  f1.output_slot = 0;
  t.frags = {f0, f1};
  EXPECT_THROW(validate_plan(t), std::logic_error);
}

TEST(ValidatePlan, RejectsDuplicateOutputSlot) {
  auto proc = make_proc();
  txn_desc t;
  t.proc = &proc;
  t.resize_slots(4);
  auto f0 = make_frag(0);
  f0.output_slot = 2;
  auto f1 = make_frag(1);
  f1.output_slot = 2;
  t.frags = {f0, f1};
  EXPECT_THROW(validate_plan(t), std::logic_error);
}

TEST(ValidatePlan, RejectsOutOfRangeSlot) {
  auto proc = make_proc(2);
  txn_desc t;
  t.proc = &proc;
  t.resize_slots(2);
  auto f0 = make_frag(0);
  f0.output_slot = 5;
  t.frags = {f0};
  EXPECT_THROW(validate_plan(t), std::logic_error);
}

TEST(ValidatePlan, RejectsAbortableAfterUpdate) {
  auto proc = make_proc();
  txn_desc t;
  t.proc = &proc;
  t.resize_slots(4);
  auto f0 = make_frag(0, op_kind::update);
  auto f1 = make_frag(1);
  f1.abortable = true;
  t.frags = {f0, f1};
  EXPECT_THROW(validate_plan(t), std::logic_error);
}

TEST(ValidatePlan, RejectsBadIdxOrder) {
  auto proc = make_proc();
  txn_desc t;
  t.proc = &proc;
  t.frags = {make_frag(1)};
  EXPECT_THROW(validate_plan(t), std::logic_error);
}

TEST(Batch, AssignsSequenceAndIds) {
  auto proc = make_proc();
  batch b(9);
  for (int i = 0; i < 3; ++i) {
    auto t = std::make_unique<txn_desc>();
    t->proc = &proc;
    t->frags.push_back(make_frag(0));
    b.add(std::move(t));
  }
  EXPECT_EQ(b.size(), 3u);
  EXPECT_EQ(b.at(2).seq, 2u);
  EXPECT_EQ(txn_id_batch(b.at(2).id), 9u);
  EXPECT_EQ(txn_id_seq(b.at(2).id), 2u);
  EXPECT_NO_THROW(b.validate());
}

TEST(Batch, ResetRuntimeRestoresAllTxns) {
  auto proc = make_proc();
  batch b;
  auto t = std::make_unique<txn_desc>();
  t->proc = &proc;
  t->frags.push_back(make_frag(0));
  auto& ref = b.add(std::move(t));
  ref.mark_aborted();
  b.reset_runtime();
  EXPECT_FALSE(b.at(0).aborted());
}

}  // namespace
}  // namespace quecc::txn
