// Integration + property tests for the queue-oriented engine (src/core):
// serial equivalence, determinism across thread counts and execution
// models, abort/recovery semantics, isolation levels.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "test_util.hpp"
#include "workload/bank.hpp"
#include "workload/tpcc.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

using common::config;
using common::exec_model;
using common::isolation;

struct engine_params {
  worker_id_t planners;
  worker_id_t executors;
  exec_model exec;
};

std::string param_name(const testing::TestParamInfo<engine_params>& info) {
  return "P" + std::to_string(info.param.planners) + "E" +
         std::to_string(info.param.executors) + "_" +
         (info.param.exec == exec_model::speculative ? "spec" : "cons");
}

config make_cfg(const engine_params& p) {
  config cfg;
  cfg.planner_threads = p.planners;
  cfg.executor_threads = p.executors;
  cfg.batch_size = 256;
  cfg.execution = p.exec;
  return cfg;
}

class QueccGrid : public testing::TestWithParam<engine_params> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, QueccGrid,
    testing::Values(engine_params{1, 1, exec_model::speculative},
                    engine_params{1, 2, exec_model::speculative},
                    engine_params{2, 1, exec_model::speculative},
                    engine_params{2, 2, exec_model::speculative},
                    engine_params{3, 2, exec_model::speculative},
                    engine_params{2, 4, exec_model::speculative},
                    engine_params{1, 1, exec_model::conservative},
                    engine_params{2, 2, exec_model::conservative},
                    engine_params{3, 3, exec_model::conservative}),
    param_name);

// --- YCSB: the engine's result equals serial execution in seq order -------
TEST_P(QueccGrid, YcsbMatchesSerialExecution) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wcfg.zipf_theta = 0.9;  // high contention stresses queue ordering
  wcfg.read_ratio = 0.5;
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(123);
  std::vector<txn::batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(w.make_batch(r, 256, i));

  core::quecc_engine eng(*db_engine, make_cfg(GetParam()));
  common::run_metrics m;
  for (auto& b : batches) eng.run_batch(b, m);
  EXPECT_EQ(m.committed, 3u * 256u);

  for (auto& b : batches) testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());
}

// --- YCSB with data dependencies across executors --------------------------
TEST_P(QueccGrid, DependentOpsMatchSerial) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 2048;
  wcfg.zipf_theta = 0.5;
  wcfg.read_ratio = 0.3;
  wcfg.dependent_ops = true;  // op i consumes op i-1's output slot
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(77);
  auto b = w.make_batch(r, 512);

  core::quecc_engine eng(*db_engine, make_cfg(GetParam()));
  common::run_metrics m;
  eng.run_batch(b, m);

  // Capture per-txn results before the serial replay overwrites them.
  const auto engine_results = testutil::result_fingerprints(b);
  testutil::replay_in_seq_order(*db_serial, b);
  const auto serial_results = testutil::result_fingerprints(b);

  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());
  EXPECT_EQ(engine_results, serial_results);  // reads identical, not just state
}

// --- determinism: same batch, any thread count, same outcome ---------------
TEST_P(QueccGrid, DeterministicAcrossReruns) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 2048;
  wcfg.zipf_theta = 0.8;
  wcfg.abort_ratio = 0.05;
  auto w = wl::ycsb(wcfg);

  auto db1 = testutil::make_loaded_db(w);
  auto db2 = db1->clone();

  common::rng r(5);
  auto b = w.make_batch(r, 400);

  core::quecc_engine eng1(*db1, make_cfg(GetParam()));
  common::run_metrics m1;
  eng1.run_batch(b, m1);
  const auto results1 = testutil::result_fingerprints(b);
  const auto hash1 = db1->state_hash();

  b.reset_runtime();
  core::quecc_engine eng2(*db2, make_cfg(GetParam()));
  common::run_metrics m2;
  eng2.run_batch(b, m2);

  EXPECT_EQ(hash1, db2->state_hash());
  EXPECT_EQ(results1, testutil::result_fingerprints(b));
  EXPECT_EQ(m1.committed, m2.committed);
  EXPECT_EQ(m1.aborted, m2.aborted);
}

// --- aborts: deterministic, zero effects, recovery converges ---------------
TEST_P(QueccGrid, AbortedTxnsLeaveNoEffects) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 512;  // small table => plenty of speculation deps
  wcfg.zipf_theta = 0.9;
  wcfg.abort_ratio = 0.10;
  wcfg.read_ratio = 0.2;
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(99);
  auto b = w.make_batch(r, 512);

  core::quecc_engine eng(*db_engine, make_cfg(GetParam()));
  common::run_metrics m;
  eng.run_batch(b, m);

  EXPECT_GT(m.aborted, 0u);
  EXPECT_EQ(m.committed + m.aborted, 512u);

  testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());

  if (GetParam().exec == exec_model::conservative) {
    // Conservative execution never exposes dirty data: no cascades.
    EXPECT_EQ(eng.last_recovery().cascades, 0u);
  }
}

TEST(QueccEngine, SpeculativeCascadesHappenAndHeal) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 64;  // tiny: aborts poison many readers
  wcfg.zipf_theta = 0.0;
  wcfg.abort_ratio = 0.2;
  wcfg.read_ratio = 0.5;
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(2024);
  auto b = w.make_batch(r, 256);

  config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.execution = exec_model::speculative;
  core::quecc_engine eng(*db_engine, cfg);
  common::run_metrics m;
  eng.run_batch(b, m);

  EXPECT_GT(eng.last_recovery().logic_aborts, 0u);
  EXPECT_GT(eng.last_recovery().reexecuted, 0u);

  testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());
}

// --- bank invariant ---------------------------------------------------------
TEST_P(QueccGrid, BankConservesMoney) {
  wl::bank_config wcfg;
  wcfg.accounts = 512;
  wcfg.max_transfer = 1500;  // often exceeds balance => aborts
  auto w = wl::bank(wcfg);

  auto db = testutil::make_loaded_db(w);
  const std::uint64_t expected = w.total_balance(*db);

  common::rng r(31);
  core::quecc_engine eng(*db, make_cfg(GetParam()));
  common::run_metrics m;
  for (int i = 0; i < 4; ++i) {
    auto b = w.make_batch(r, 256, i);
    eng.run_batch(b, m);
  }
  EXPECT_EQ(w.total_balance(*db), expected);
  EXPECT_GT(m.aborted, 0u);  // insufficient-funds aborts really fire
}

// --- TPC-C ------------------------------------------------------------------
TEST_P(QueccGrid, TpccMatchesSerialAndStaysConsistent) {
  wl::tpcc_config wcfg;
  wcfg.warehouses = 2;
  wcfg.initial_orders_per_district = 40;
  wcfg.order_headroom_per_district = 400;
  auto w = wl::tpcc(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(7);
  std::vector<txn::batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(w.make_batch(r, 200, i));

  core::quecc_engine eng(*db_engine, make_cfg(GetParam()));
  common::run_metrics m;
  for (auto& b : batches) eng.run_batch(b, m);

  for (auto& b : batches) testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());

  std::string why;
  EXPECT_TRUE(w.check_consistency(*db_engine, &why)) << why;
}

TEST(QueccEngine, TpccDoomedNewOrdersAbort) {
  wl::tpcc_config wcfg;
  wcfg.warehouses = 1;
  wcfg.invalid_item_ratio = 0.5;  // half the NewOrders carry invalid items
  wcfg.payment_ratio = 0;
  wcfg.order_status_ratio = 0;
  wcfg.delivery_ratio = 0;
  wcfg.stock_level_ratio = 0;
  wcfg.initial_orders_per_district = 20;
  auto w = wl::tpcc(wcfg);

  auto db = testutil::make_loaded_db(w);
  common::rng r(8);
  auto b = w.make_batch(r, 200);

  config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  core::quecc_engine eng(*db, cfg);
  common::run_metrics m;
  eng.run_batch(b, m);

  EXPECT_GT(m.aborted, 50u);
  EXPECT_GT(m.committed, 50u);
  std::string why;
  EXPECT_TRUE(w.check_consistency(*db, &why)) << why;
}

// --- read-committed isolation ----------------------------------------------
TEST(QueccEngine, ReadCommittedServesPreBatchValues) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 256;
  wcfg.ops_per_txn = 2;
  auto w = wl::ycsb(wcfg);
  auto db = testutil::make_loaded_db(w);

  // Hand-built batch: txn0 RMWs key 42 (+100), txn1 (later) reads key 42.
  auto writer = std::make_unique<txn::txn_desc>();
  auto reader = std::make_unique<txn::txn_desc>();
  {
    common::rng r(1);
    auto tmpl = w.make_txn(r);  // borrow proc pointer/layout
    writer->proc = tmpl->proc;
    reader->proc = tmpl->proc;
  }
  txn::fragment wf;
  wf.table = 0;
  wf.key = 42;
  wf.part = 2;  // ycsb home partition of key 42 (P=4)
  wf.kind = txn::op_kind::update;
  wf.logic = wl::ycsb::op_rmw;
  wf.aux = 100;
  wf.output_slot = 0;
  writer->frags.push_back(wf);

  txn::fragment rf;
  rf.table = 0;
  rf.key = 42;
  rf.part = 2;
  rf.kind = txn::op_kind::read;
  rf.logic = wl::ycsb::op_read;
  rf.output_slot = 0;
  reader->frags.push_back(rf);

  txn::batch b;
  b.add(std::move(writer));
  b.add(std::move(reader));
  b.validate();

  config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 2;
  cfg.iso = isolation::read_committed;
  core::quecc_engine eng(*db, cfg);
  common::run_metrics m;
  eng.run_batch(b, m);

  // Read-committed: the reader sees the pre-batch committed value (0),
  // not the writer's in-batch update (100).
  EXPECT_EQ(b.at(1).slot_value(0), 0u);

  // Next batch: the previous batch has been published as committed.
  b.reset_runtime();
  eng.run_batch(b, m);
  EXPECT_EQ(b.at(1).slot_value(0), 100u);
}

TEST(QueccEngine, SerializableReaderSeesInBatchWrite) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 256;
  wcfg.ops_per_txn = 2;
  auto w = wl::ycsb(wcfg);
  auto db = testutil::make_loaded_db(w);

  auto writer = std::make_unique<txn::txn_desc>();
  auto reader = std::make_unique<txn::txn_desc>();
  {
    common::rng r(1);
    auto tmpl = w.make_txn(r);
    writer->proc = tmpl->proc;
    reader->proc = tmpl->proc;
  }
  txn::fragment wf;
  wf.table = 0;
  wf.key = 42;
  wf.part = 2;  // ycsb home partition of key 42 (P=4)
  wf.kind = txn::op_kind::update;
  wf.logic = wl::ycsb::op_rmw;
  wf.aux = 100;
  wf.output_slot = 0;
  writer->frags.push_back(wf);
  txn::fragment rf;
  rf.table = 0;
  rf.key = 42;
  rf.part = 2;
  rf.kind = txn::op_kind::read;
  rf.logic = wl::ycsb::op_read;
  rf.output_slot = 0;
  reader->frags.push_back(rf);

  txn::batch b;
  b.add(std::move(writer));
  b.add(std::move(reader));

  config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 2;
  cfg.iso = isolation::serializable;
  core::quecc_engine eng(*db, cfg);
  common::run_metrics m;
  eng.run_batch(b, m);
  EXPECT_EQ(b.at(1).slot_value(0), 100u);
}

TEST(QueccEngine, ReadCommittedMatchesSerialStateForUpdates) {
  // RC relaxes *reads*; the write path still produces the serializable
  // final state for update-only workloads.
  wl::ycsb_config wcfg;
  wcfg.table_size = 1024;
  wcfg.read_ratio = 0.4;
  wcfg.zipf_theta = 0.7;
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(55);
  auto b = w.make_batch(r, 512);

  config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.iso = isolation::read_committed;
  core::quecc_engine eng(*db_engine, cfg);
  common::run_metrics m;
  eng.run_batch(b, m);

  testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());
}

TEST(QueccEngine, LatencyRecordedPerTransaction) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1024;
  auto w = wl::ycsb(wcfg);
  auto db = testutil::make_loaded_db(w);

  common::rng r(4);
  auto b = w.make_batch(r, 128);

  config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  core::quecc_engine eng(*db, cfg);
  common::run_metrics m;
  eng.run_batch(b, m);
  EXPECT_EQ(m.txn_latency.count(), 128u);
  EXPECT_GT(m.txn_latency.mean_nanos(), 0.0);
  EXPECT_EQ(m.batches, 1u);
  EXPECT_GT(m.elapsed_seconds, 0.0);
}

}  // namespace
}  // namespace quecc
