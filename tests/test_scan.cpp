// Ordered index backend + scan fragments, end to end:
//   * skip-list unit semantics (insert/erase/tombstone-reinsert, ascending
//     visit order, range bounds, early stop);
//   * lock-free readers racing a writer (run under TSAN in CI);
//   * the table iteration-order contract checkpoints rely on;
//   * scan-fragment equivalence: quecc / dist-quecc vs serial replay at
//     pipeline depths 1-3, speculative and conservative;
//   * checkpoint round-trips of ordered arenas, and backend-mismatch
//     rejection;
//   * plan-codec round-trips of scan fragments (key_hi, kAllParts);
//   * hash vs ordered backend: identical state hashes on scan-free runs.
#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <stdexcept>
#include <thread>
#include <vector>

#include "core/engine.hpp"
#include "dist/dist_quecc.hpp"
#include "log/checkpoint.hpp"
#include "log/plan_codec.hpp"
#include "log/recovery.hpp"
#include "storage/ordered_index.hpp"
#include "test_util.hpp"
#include "workload/tpcc.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

using common::config;
using common::exec_model;

// --- ordered_index unit semantics ------------------------------------------

std::vector<key_t> range_keys(const storage::ordered_index& idx, key_t lo,
                              key_t hi) {
  std::vector<key_t> out;
  EXPECT_TRUE(idx.visit_range(
      lo, hi,
      [](void* ctx, key_t k, storage::row_id_t) {
        static_cast<std::vector<key_t>*>(ctx)->push_back(k);
        return true;
      },
      &out));
  return out;
}

TEST(OrderedIndex, InsertLookupErase) {
  storage::ordered_index idx(64);
  EXPECT_TRUE(idx.insert(5, 50));
  EXPECT_FALSE(idx.insert(5, 51));  // duplicate
  EXPECT_EQ(idx.lookup(5), 50u);
  EXPECT_EQ(idx.lookup_unlocked(5), 50u);
  EXPECT_EQ(idx.lookup(6), storage::kNoRow);
  EXPECT_TRUE(idx.erase(5));
  EXPECT_FALSE(idx.erase(5));
  EXPECT_EQ(idx.lookup(5), storage::kNoRow);
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_EQ(idx.kind(), storage::index_kind::ordered);
}

TEST(OrderedIndex, VisitRangeAscendingAndBounded) {
  storage::ordered_index idx(256);
  // Insert in descending order; visits must still come out ascending.
  for (key_t k = 100; k > 0; --k) ASSERT_TRUE(idx.insert(k * 3, k));
  const auto keys = range_keys(idx, 30, 90);  // [30, 90): keys 30,33..87
  ASSERT_FALSE(keys.empty());
  EXPECT_EQ(keys.front(), 30u);
  EXPECT_EQ(keys.back(), 87u);
  for (std::size_t i = 1; i < keys.size(); ++i) {
    EXPECT_LT(keys[i - 1], keys[i]);
  }
  // Empty range; and a range past the end.
  EXPECT_TRUE(range_keys(idx, 31, 33).empty());
  EXPECT_TRUE(range_keys(idx, 1000, 2000).empty());
}

TEST(OrderedIndex, VisitorEarlyStop) {
  storage::ordered_index idx(64);
  for (key_t k = 0; k < 32; ++k) ASSERT_TRUE(idx.insert(k, k));
  std::size_t seen = 0;
  idx.visit_range(
      0, 32,
      [](void* ctx, key_t, storage::row_id_t) {
        return ++*static_cast<std::size_t*>(ctx) < 5;
      },
      &seen);
  EXPECT_EQ(seen, 5u);
}

TEST(OrderedIndex, TombstoneReinsertReclaims) {
  storage::ordered_index idx(64);
  ASSERT_TRUE(idx.insert(7, 70));
  ASSERT_TRUE(idx.erase(7));
  EXPECT_TRUE(range_keys(idx, 0, 100).empty());  // tombstone invisible
  ASSERT_TRUE(idx.insert(7, 71));  // reclaims the tombstoned node
  EXPECT_EQ(idx.lookup(7), 71u);
  EXPECT_EQ(range_keys(idx, 0, 100), std::vector<key_t>{7});
  EXPECT_EQ(idx.size(), 1u);
}

TEST(OrderedIndex, VisitLiveAscendingKeyOrder) {
  storage::ordered_index a(256);
  storage::ordered_index b(256);
  // Same key set, opposite insertion orders: identical ascending visits
  // (skip-list structure is a pure function of the key set).
  for (key_t k = 0; k < 64; ++k) ASSERT_TRUE(a.insert(k * 5 + 1, k));
  for (key_t k = 64; k > 0; --k) ASSERT_TRUE(b.insert((k - 1) * 5 + 1, k));
  std::vector<key_t> ka, kb;
  const auto collect = [](void* ctx, key_t k, storage::row_id_t) {
    static_cast<std::vector<key_t>*>(ctx)->push_back(k);
    return true;
  };
  a.visit_live(collect, &ka);
  b.visit_live(collect, &kb);
  EXPECT_EQ(ka, kb);
  for (std::size_t i = 1; i < ka.size(); ++i) EXPECT_LT(ka[i - 1], ka[i]);
}

// Lock-free readers race one writer (the engine's contract: writers are
// serialized per shard upstream, readers take no lock). TSAN validates
// the publication protocol in CI.
TEST(OrderedIndex, LockFreeReadersUnderConcurrentWriter) {
  storage::ordered_index idx(1 << 12);
  for (key_t k = 0; k < 512; k += 2) ASSERT_TRUE(idx.insert(k, k));
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> observed{0};  // defeats dead-code elimination
  std::vector<std::thread> readers;
  for (int t = 0; t < 3; ++t) {
    readers.emplace_back([&idx, &stop, &observed] {
      // No value assertions here: what this test checks is that the reads
      // are race-free (TSAN) and never observe torn structure (no crash,
      // visitor invariants hold). At least one full pass runs even if the
      // writer finishes first.
      std::uint64_t sink = 0;
      do {
        for (key_t k = 0; k < 512; ++k) sink += idx.lookup_unlocked(k) + 1;
        key_t prev = 0;
        idx.visit_range(
            100, 400,
            [](void* ctx, key_t k, storage::row_id_t) {
              auto* p = static_cast<key_t*>(ctx);
              EXPECT_LT(*p, k);  // still strictly ascending mid-write
              *p = k;
              return true;
            },
            &prev);
      } while (!stop.load(std::memory_order_acquire));
      // Relaxed: a plain sink publication, no ordering required.
      observed.fetch_add(sink, std::memory_order_relaxed);
    });
  }
  for (int round = 0; round < 50; ++round) {
    for (key_t k = 1; k < 512; k += 2) idx.insert(k, k);
    for (key_t k = 1; k < 512; k += 2) idx.erase(k);
  }
  stop.store(true, std::memory_order_release);
  for (auto& th : readers) th.join();
  EXPECT_EQ(idx.size(), 256u);
}

// --- table iteration-order contract (checkpoint take side) ------------------

TEST(Table, ForEachLiveInOrderContract) {
  const storage::schema hash_s({{"A", storage::col_type::u64, 8}});
  auto ordered_s = storage::schema({{"A", storage::col_type::u64, 8}});
  ordered_s.with_index(storage::index_kind::ordered);

  const std::vector<key_t> history = {9, 2, 14, 5, 11, 3, 8, 1};
  std::vector<std::byte> p(8);
  const auto build = [&](storage::database& db, const storage::schema& s) {
    auto& t = db.create_table("t", s, 64);
    for (key_t k : history) t.insert(k, p);
    return &t;
  };
  const auto sequence = [](const storage::table& t) {
    std::vector<key_t> out;
    t.for_each_live_in(0, [&](key_t k, storage::row_id_t) {
      out.push_back(k);
    });
    return out;
  };

  // Hash backend: order is deterministic for identical insertion
  // histories (this is what makes checkpoint bytes reproducible) ...
  storage::database h1, h2;
  const auto seq1 = sequence(*build(h1, hash_s));
  EXPECT_EQ(seq1, sequence(*build(h2, hash_s)));
  ASSERT_EQ(seq1.size(), history.size());

  // ... and the ordered backend pins ascending key order outright.
  storage::database o1;
  std::vector<key_t> expect = history;
  std::sort(expect.begin(), expect.end());
  EXPECT_EQ(sequence(*build(o1, ordered_s)), expect);
}

// --- scan-fragment equivalence across the engines ---------------------------

wl::tpcc_config full_mix_cfg() {
  wl::tpcc_config w;
  w.warehouses = 2;
  w.partitions = 4;
  w.initial_orders_per_district = 40;
  w.order_headroom_per_district = 400;
  w.scan_profiles = true;       // scan-based OrderStatus + StockLevel
  w.invalid_item_ratio = 0.05;  // aborts stress the range-taint recovery
  // Lift the read profiles so scans dominate the mix under test.
  w.order_status_ratio = 0.2;
  w.stock_level_ratio = 0.2;
  return w;
}

struct depth_exec {
  std::uint32_t depth;
  exec_model exec;
};

class ScanGrid : public testing::TestWithParam<depth_exec> {};

INSTANTIATE_TEST_SUITE_P(
    DepthsAndModes, ScanGrid,
    testing::Values(depth_exec{1, exec_model::speculative},
                    depth_exec{2, exec_model::speculative},
                    depth_exec{3, exec_model::speculative},
                    depth_exec{1, exec_model::conservative},
                    depth_exec{2, exec_model::conservative},
                    depth_exec{3, exec_model::conservative}),
    [](const auto& info) {
      return "D" + std::to_string(info.param.depth) + "_" +
             (info.param.exec == exec_model::speculative ? "spec" : "cons");
    });

TEST_P(ScanGrid, TpccFullMixMatchesSerial) {
  auto w = wl::tpcc(full_mix_cfg());
  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(31);
  std::vector<txn::batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(w.make_batch(r, 256, i));

  config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.pipeline_depth = GetParam().depth;
  cfg.execution = GetParam().exec;
  {
    core::quecc_engine eng(*db_engine, cfg);
    common::run_metrics m;
    for (auto& b : batches) eng.run_batch(b, m);
  }
  const auto engine_results = testutil::result_fingerprints(batches.back());

  for (auto& b : batches) testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());
  // Scan outputs (OL_AMOUNT sums, line counts) are read results, not
  // state: compare the fingerprints too.
  EXPECT_EQ(engine_results, testutil::result_fingerprints(batches.back()));
  std::string why;
  EXPECT_TRUE(w.check_consistency(*db_engine, &why)) << why;
}

TEST_P(ScanGrid, YcsbAllPartsScanMatchesSerial) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wcfg.partitions = 4;
  wcfg.zipf_theta = 0.6;
  wcfg.read_ratio = 0.4;
  wcfg.scan_ratio = 0.3;  // kAllParts fan-out scans
  wcfg.scan_len = 96;
  wcfg.abort_ratio = 0.05;  // scans must survive speculation recovery
  auto w = wl::ycsb(wcfg);
  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(17);
  std::vector<txn::batch> batches;
  for (int i = 0; i < 3; ++i) batches.push_back(w.make_batch(r, 256, i));

  config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 4;
  cfg.pipeline_depth = GetParam().depth;
  cfg.execution = GetParam().exec;
  {
    core::quecc_engine eng(*db_engine, cfg);
    common::run_metrics m;
    for (auto& b : batches) eng.run_batch(b, m);
  }
  // The split-produced scan sums must equal the serial host's single-call
  // sums — this is the produce_partial accumulation contract.
  const auto engine_results = testutil::result_fingerprints(batches.back());

  for (auto& b : batches) testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());
  EXPECT_EQ(engine_results, testutil::result_fingerprints(batches.back()));
}

TEST_P(ScanGrid, DistQueccFullMixMatchesSerial) {
  auto w = wl::tpcc(full_mix_cfg());
  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(59);
  std::vector<txn::batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(w.make_batch(r, 256, i));

  config cfg;
  cfg.nodes = 2;
  cfg.planner_threads = 1;   // per node
  cfg.executor_threads = 1;  // per node
  cfg.partitions = 4;
  cfg.net_latency_micros = 20;
  cfg.pipeline_depth = GetParam().depth;
  cfg.execution = GetParam().exec;
  {
    dist::dist_quecc_engine eng(*db_engine, cfg);
    common::run_metrics m;
    for (auto& b : batches) eng.run_batch(b, m);
  }
  for (auto& b : batches) testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());
}

// --- hash vs ordered: identical results when nothing scans ------------------

TEST(ScanFree, HashAndOrderedBackendsHashIdentically) {
  std::vector<std::uint64_t> hashes;
  for (const auto kind :
       {storage::index_kind::hash, storage::index_kind::ordered}) {
    SCOPED_TRACE(storage::index_kind_name(kind));
    wl::ycsb_config wcfg;
    wcfg.table_size = 2048;
    wcfg.partitions = 4;
    wcfg.zipf_theta = 0.8;
    wcfg.read_ratio = 0.4;
    wcfg.index = kind;
    auto w = wl::ycsb(wcfg);
    auto db = testutil::make_loaded_db(w);
    EXPECT_EQ(db->at(0).index(), kind);

    common::rng r(23);
    auto b = w.make_batch(r, 512);
    config cfg;
    cfg.planner_threads = 2;
    cfg.executor_threads = 2;
    core::quecc_engine eng(*db, cfg);
    common::run_metrics m;
    eng.run_batch(b, m);

    // Same seed, same stream: both backends must land on one hash.
    hashes.push_back(db->state_hash());
  }
  ASSERT_EQ(hashes.size(), 2u);
  EXPECT_EQ(hashes[0], hashes[1]);
}

// --- checkpoint: ordered arenas round-trip, mismatches rejected -------------

struct temp_dir {
  temp_dir() {
    std::string tmpl =
        (std::filesystem::temp_directory_path() / "quecc-scan-XXXXXX")
            .string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = tmpl;
  }
  ~temp_dir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  std::string path;
};

storage::schema ordered_u64_schema() {
  auto s = storage::schema({{"A", storage::col_type::u64, 8}});
  s.with_index(storage::index_kind::ordered);
  return s;
}

TEST(Checkpoint, OrderedArenaRoundTrips) {
  storage::database src;
  auto& t1 = src.create_table("t", ordered_u64_schema(), 256, 2);
  std::vector<std::byte> p(8);
  for (int k = 97; k > 0; k -= 3) {  // unordered insertion history
    storage::write_u64(std::span<std::byte>(p), 0,
                       static_cast<std::uint64_t>(k) * 7);
    t1.insert(static_cast<key_t>(k), p, static_cast<part_id_t>(k % 2));
  }

  temp_dir dir;
  log::checkpointer ck(dir.path);
  const auto meta = ck.take(src, 1, 33, 1);

  storage::database dst;
  auto& t2 = dst.create_table("t", ordered_u64_schema(), 256, 2);
  (void)t2;
  log::restore_checkpoint(dir.path + "/" + meta.file, dst);
  EXPECT_EQ(dst.state_hash(), src.state_hash());

  // Restored ordered arenas must still answer range scans in key order.
  std::vector<key_t> keys;
  dst.at(0).visit_range_in(1, 0, 1000,
                           [](void* ctx, key_t k, storage::row_id_t) {
                             static_cast<std::vector<key_t>*>(ctx)
                                 ->push_back(k);
                             return true;
                           },
                           &keys);
  ASSERT_FALSE(keys.empty());
  for (std::size_t i = 1; i < keys.size(); ++i) EXPECT_LT(keys[i - 1], keys[i]);

  // A second checkpoint of the restored database is bit-identical modulo
  // ids: same state hash recorded, ordered serialization is key-ordered.
  temp_dir dir2;
  log::checkpointer ck2(dir2.path);
  const auto meta2 = ck2.take(dst, 1, 33, 1);
  EXPECT_EQ(meta2.state_hash, meta.state_hash);
}

TEST(Checkpoint, IndexBackendMismatchRejected) {
  storage::database src;
  auto& t1 = src.create_table("t", ordered_u64_schema(), 64);
  std::vector<std::byte> p(8);
  t1.insert(3, p);

  temp_dir dir;
  log::checkpointer ck(dir.path);
  const auto meta = ck.take(src, 1, 0, 1);

  storage::database dst;  // same shape, hash backend
  dst.create_table("t", storage::schema({{"A", storage::col_type::u64, 8}}),
                   64);
  EXPECT_THROW(log::restore_checkpoint(dir.path + "/" + meta.file, dst),
               std::runtime_error);
}

// --- plan codec: scan fragments round-trip ----------------------------------

TEST(PlanCodec, ScanFragmentsRoundTrip) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1024;
  wcfg.partitions = 4;
  wcfg.scan_ratio = 1.0;  // every txn is a scan
  wcfg.scan_len = 32;
  auto w = wl::ycsb(wcfg);
  storage::database db;
  w.load(db);

  common::rng r(5);
  auto b = w.make_batch(r, 16, 9);
  std::vector<std::byte> bytes;
  log::encode_batch(b, bytes);
  const auto decoded = log::decode_batch(bytes, log::resolver_for(w));

  ASSERT_EQ(decoded.size(), b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    const auto& orig = b.at(i).frags;
    const auto& got = decoded.at(i).frags;
    ASSERT_EQ(got.size(), orig.size());
    for (std::size_t fi = 0; fi < orig.size(); ++fi) {
      EXPECT_EQ(got[fi].kind, txn::op_kind::scan);
      EXPECT_EQ(got[fi].key, orig[fi].key);
      EXPECT_EQ(got[fi].key_hi, orig[fi].key_hi);
      EXPECT_EQ(got[fi].part, txn::kAllParts);
    }
  }
}

}  // namespace
}  // namespace quecc
