// Unit tests: planner and executor mechanics in isolation — queue routing
// invariants, priority order, read-queue eligibility, and the executor's
// dependency-wait/skip behaviour.
#include <gtest/gtest.h>

#include <map>
#include <numeric>

#include "core/engine.hpp"
#include "core/planner.hpp"
#include "test_util.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

using core::frag_entry;
using core::plan_output;
using core::planner;

wl::ycsb make_workload(part_id_t parts = 4, double read_ratio = 0.5) {
  wl::ycsb_config cfg;
  cfg.table_size = 4096;
  cfg.partitions = parts;
  cfg.read_ratio = read_ratio;
  return wl::ycsb(cfg);
}

common::config engine_cfg(worker_id_t p, worker_id_t e) {
  common::config cfg;
  cfg.planner_threads = p;
  cfg.executor_threads = e;
  return cfg;
}

TEST(Planner, EveryFragmentRoutedExactlyOnce) {
  auto w = make_workload();
  auto db = testutil::make_loaded_db(w);
  common::rng r(1);
  auto b = w.make_batch(r, 100);

  const auto cfg = engine_cfg(2, 3);
  std::size_t routed = 0, expected = 0;
  for (const auto& t : b) expected += t->frags.size();
  for (worker_id_t p = 0; p < 2; ++p) {
    planner pl(p, cfg, *db);
    plan_output out;
    pl.plan(b, out);
    for (const auto& q : out.conflict) routed += q.size();
    for (const auto& q : out.reads) routed += q.size();
    EXPECT_EQ(out.planned_frags,
              std::accumulate(out.conflict.begin(), out.conflict.end(),
                              std::size_t{0},
                              [](std::size_t acc, const auto& q) {
                                return acc + q.size();
                              }) +
                  std::accumulate(out.reads.begin(), out.reads.end(),
                                  std::size_t{0},
                                  [](std::size_t acc, const auto& q) {
                                    return acc + q.size();
                                  }));
  }
  EXPECT_EQ(routed, expected);
}

TEST(Planner, SameRecordAlwaysSameExecutor) {
  auto w = make_workload();
  auto db = testutil::make_loaded_db(w);
  common::rng r(2);
  auto b = w.make_batch(r, 300);

  const auto cfg = engine_cfg(1, 3);
  planner pl(0, cfg, *db);
  plan_output out;
  pl.plan(b, out);

  // Conflict dependencies require: every fragment of a given (table, key)
  // lands in the same executor's queue.
  std::map<std::pair<table_id_t, key_t>, std::size_t> home;
  for (std::size_t e = 0; e < out.conflict.size(); ++e) {
    for (const frag_entry& fe : out.conflict[e]) {
      const auto rec = std::make_pair(fe.f->table, fe.f->key);
      auto [it, fresh] = home.emplace(rec, e);
      if (!fresh) {
        EXPECT_EQ(it->second, e) << "record split across queues";
      }
    }
  }
}

TEST(Planner, QueueOrderFollowsSequenceOrder) {
  auto w = make_workload();
  auto db = testutil::make_loaded_db(w);
  common::rng r(3);
  auto b = w.make_batch(r, 200);

  const auto cfg = engine_cfg(1, 2);
  planner pl(0, cfg, *db);
  plan_output out;
  pl.plan(b, out);

  for (const auto& q : out.conflict) {
    seq_t last = 0;
    for (const frag_entry& fe : q) {
      EXPECT_GE(fe.t->seq, last);  // FIFO = batch order per queue
      last = fe.t->seq;
    }
  }
}

TEST(Planner, ContiguousSlicesCoverBatch) {
  auto w = make_workload();
  auto db = testutil::make_loaded_db(w);
  common::rng r(4);
  auto b = w.make_batch(r, 100);

  const auto cfg = engine_cfg(3, 2);
  std::vector<std::uint8_t> seen(b.size(), 0);
  for (worker_id_t p = 0; p < 3; ++p) {
    planner pl(p, cfg, *db);
    plan_output out;
    pl.plan(b, out);
    for (const auto& q : out.conflict) {
      for (const frag_entry& fe : q) seen[fe.t->seq] = 1;
    }
  }
  for (std::size_t i = 0; i < seen.size(); ++i) {
    EXPECT_TRUE(seen[i]) << "txn " << i << " planned by nobody";
  }
}

TEST(Planner, PlanningResolvesRowIdsInLockstep) {
  auto w = make_workload();
  auto db = testutil::make_loaded_db(w);
  common::rng r(5);
  auto b = w.make_batch(r, 50);

  // At pipeline_depth 1 planning sits at the inter-batch quiescent point,
  // so the planner pre-resolves the primary index.
  auto cfg = engine_cfg(1, 1);
  cfg.pipeline_depth = 1;
  planner pl(0, cfg, *db);
  plan_output out;
  pl.plan(b, out);
  for (const auto& t : b) {
    for (const auto& f : t->frags) {
      if (f.kind != txn::op_kind::insert) {
        EXPECT_NE(f.rid, storage::kNoRow);  // YCSB keys all pre-loaded
      }
    }
  }
}

TEST(Planner, PipelinedPlanningDefersIndexResolution) {
  auto w = make_workload();
  auto db = testutil::make_loaded_db(w);
  common::rng r(5);
  auto b = w.make_batch(r, 50);

  // At depth >= 2 planning overlaps the previous batch's execution, which
  // mutates the index — lookups defer to the executors' resolve()
  // fallback and planning touches no shared state.
  auto cfg = engine_cfg(1, 1);
  cfg.pipeline_depth = 2;
  planner pl(0, cfg, *db);
  plan_output out;
  pl.plan(b, out);
  std::size_t frags = 0;
  for (const auto& t : b) {
    for (const auto& f : t->frags) {
      EXPECT_EQ(f.rid, storage::kNoRow);
      ++frags;
    }
  }
  EXPECT_GT(frags, 0u);
}

TEST(Planner, ReadCommittedSplitsPureReads) {
  auto w = make_workload(4, /*read_ratio=*/0.5);
  auto db = testutil::make_loaded_db(w);
  common::rng r(6);
  auto b = w.make_batch(r, 200);

  auto cfg = engine_cfg(1, 2);
  cfg.iso = common::isolation::read_committed;
  planner pl(0, cfg, *db);
  plan_output out;
  pl.plan(b, out);

  std::size_t read_q = 0, conflict_reads = 0, conflict_writes = 0;
  for (const auto& q : out.reads) {
    read_q += q.size();
    for (const frag_entry& fe : q) {
      EXPECT_EQ(fe.f->kind, txn::op_kind::read);
      EXPECT_FALSE(fe.f->abortable);
    }
  }
  for (const auto& q : out.conflict) {
    for (const frag_entry& fe : q) {
      (fe.f->kind == txn::op_kind::read ? conflict_reads : conflict_writes) +=
          1;
    }
  }
  EXPECT_GT(read_q, 0u);
  EXPECT_GT(conflict_writes, 0u);
}

TEST(Planner, DependentReadsStayInConflictQueues) {
  // A read whose output feeds a write must not move to the read queues
  // (liveness: conflict executors never wait on unclaimed read queues).
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wcfg.dependent_ops = true;
  wcfg.read_ratio = 0.5;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  common::rng r(7);
  auto b = w.make_batch(r, 200);

  auto cfg = engine_cfg(1, 2);
  cfg.iso = common::isolation::read_committed;
  planner pl(0, cfg, *db);
  plan_output out;
  pl.plan(b, out);

  for (const auto& q : out.reads) {
    for (const frag_entry& fe : q) {
      // If this read produced a slot, no later updating fragment of the
      // same txn may consume it.
      if (fe.f->output_slot == txn::kNoSlot) continue;
      for (const auto& g : fe.t->frags) {
        if (!g.updates_database()) continue;
        EXPECT_EQ(g.input_mask & (1ull << fe.f->output_slot), 0u)
            << "read feeding a writer escaped to a read queue";
      }
    }
  }
}

// --- executor behaviour through the engine ----------------------------------

TEST(Executor, SkipsAllFragmentsOfAbortedTxn) {
  // A txn whose first abortable fragment fires must leave every later
  // fragment without effect — verified via the state hash.
  wl::ycsb_config wcfg;
  wcfg.table_size = 128;
  wcfg.ops_per_txn = 6;
  wcfg.abort_ratio = 1.0;  // every txn doomed
  wcfg.read_ratio = 0.0;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  const auto before = db->state_hash();

  common::rng r(8);
  auto b = w.make_batch(r, 100);
  for (auto m : {common::exec_model::speculative,
                 common::exec_model::conservative}) {
    b.reset_runtime();
    auto cfg = engine_cfg(2, 2);
    cfg.execution = m;
    core::quecc_engine eng(*db, cfg);
    common::run_metrics metrics;
    eng.run_batch(b, metrics);
    EXPECT_EQ(metrics.aborted, 100u);
    EXPECT_EQ(db->state_hash(), before) << common::to_string(m);
  }
}

TEST(Executor, ExecTimeLookupForInBatchInserts) {
  // A fragment planned against a record that does not exist yet (created
  // by an earlier txn in the same batch) resolves at execution time.
  wl::ycsb_config wcfg;
  wcfg.table_size = 64;
  wcfg.ops_per_txn = 1;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  const txn::procedure* proc;
  {
    common::rng r(1);
    proc = w.make_txn(r)->proc;
  }

  const key_t fresh_key = 5000;  // beyond the loaded range

  static constexpr auto insert_logic =
      [](const txn::fragment& f, txn::txn_desc& t,
         txn::frag_host& h) -> txn::frag_status {
    auto row = h.insert_row(f, t);
    if (!row.empty()) storage::write_u64(row, 0, f.aux);
    return txn::frag_status::ok;
  };
  static const txn::procedure insert_proc("insert", +insert_logic, 1);

  auto inserter = std::make_unique<txn::txn_desc>();
  inserter->proc = &insert_proc;
  {
    txn::fragment f;
    f.table = 0;
    f.key = fresh_key;
    f.part = 0;
    f.kind = txn::op_kind::insert;
    f.aux = 4242;
    inserter->frags.push_back(f);
  }
  auto reader = std::make_unique<txn::txn_desc>();
  reader->proc = proc;
  {
    txn::fragment f;
    f.table = 0;
    f.key = fresh_key;
    f.part = 0;
    f.kind = txn::op_kind::read;
    f.logic = wl::ycsb::op_read;
    f.output_slot = 0;
    reader->frags.push_back(f);
  }

  txn::batch b;
  b.add(std::move(inserter));
  txn::txn_desc& rd = b.add(std::move(reader));
  b.validate();

  core::quecc_engine eng(*db, engine_cfg(1, 2));
  common::run_metrics m;
  eng.run_batch(b, m);
  EXPECT_EQ(m.committed, 2u);
  EXPECT_EQ(rd.slot_value(0), 4242u);  // saw the same-batch insert
}

namespace erase_proc {
txn::frag_status run(const txn::fragment& f, txn::txn_desc& t,
                     txn::frag_host& h) {
  h.erase_row(f, t);
  return txn::frag_status::ok;
}
}  // namespace erase_proc

TEST(Executor, EraseThenReadMisses) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 64;
  wcfg.ops_per_txn = 1;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);

  txn::procedure proc("erase", &erase_proc::run, 1);
  auto eraser = std::make_unique<txn::txn_desc>();
  eraser->proc = &proc;
  {
    txn::fragment f;
    f.table = 0;
    f.key = 7;
    f.part = 3;  // ycsb home partition of key 7 (P=4)
    f.kind = txn::op_kind::erase;
    eraser->frags.push_back(f);
  }
  txn::batch b;
  b.add(std::move(eraser));
  b.validate();

  core::quecc_engine eng(*db, engine_cfg(1, 1));
  common::run_metrics m;
  eng.run_batch(b, m);
  EXPECT_EQ(db->at(0).lookup(7, 3), storage::kNoRow);
  EXPECT_EQ(db->at(0).live_rows(), 63u);
}

TEST(Engine, PhaseStatspopulated) {
  auto w = make_workload();
  auto db = testutil::make_loaded_db(w);
  common::rng r(9);
  auto b = w.make_batch(r, 256);

  core::quecc_engine eng(*db, engine_cfg(2, 2));
  common::run_metrics m;
  eng.run_batch(b, m);
  const auto& ph = eng.last_phases();
  EXPECT_GT(ph.plan_seconds, 0.0);
  EXPECT_GT(ph.exec_seconds, 0.0);
  EXPECT_EQ(ph.planned_fragments, [&] {
    std::uint64_t n = 0;
    for (const auto& t : b) n += t->frags.size();
    return n;
  }());
  EXPECT_EQ(ph.queues, 4u);
}

}  // namespace
}  // namespace quecc
