// Cross-protocol property tests: every engine in the test-bed (the paper's
// ported baselines plus the queue-oriented engine) must be serializable and
// preserve workload invariants on identical inputs.
//
// Serializability oracle:
//  * deterministic engines (quecc, serial, hstore, calvin) — final state
//    must equal a serial execution in sequence order;
//  * non-deterministic engines (2pl-*, silo, tictoc, mvto) — final state
//    must equal a serial replay in the engine's recorded commit order
//    (recorded at each protocol's serialization point).
#include <gtest/gtest.h>

#include "protocols/iface.hpp"
#include "test_util.hpp"
#include "workload/bank.hpp"
#include "workload/tpcc.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

common::config small_cfg() {
  common::config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.worker_threads = 4;
  cfg.partitions = 4;
  return cfg;
}

class EveryEngine : public testing::TestWithParam<std::string> {};

INSTANTIATE_TEST_SUITE_P(All, EveryEngine,
                         testing::ValuesIn(proto::engine_names()),
                         [](const auto& info) {
                           std::string n = info.param;
                           for (auto& c : n) {
                             if (c == '-') c = '_';
                           }
                           return n;
                         });

// --- serializability under contention, update-only YCSB --------------------
TEST_P(EveryEngine, YcsbRmwSerializable) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 512;  // hot
  wcfg.zipf_theta = 0.6;
  wcfg.read_ratio = 0.0;  // all RMW: every conflict is write-write
  wcfg.ops_per_txn = 8;
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_oracle = db_engine->clone();

  common::rng r(17);
  auto b = w.make_batch(r, 300);

  auto eng = proto::make_engine(GetParam(), *db_engine, small_cfg());
  common::run_metrics m;
  eng->run_batch(b, m);
  EXPECT_EQ(m.committed, 300u);

  if (const auto* order = eng->commit_order()) {
    ASSERT_EQ(order->size(), 300u);
    testutil::replay_in_order(*db_oracle, b, *order);
  } else {
    testutil::replay_in_seq_order(*db_oracle, b);
  }
  EXPECT_EQ(db_engine->state_hash(), db_oracle->state_hash());
}

// --- read/write mix ----------------------------------------------------------
TEST_P(EveryEngine, YcsbMixedSerializable) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 2048;
  wcfg.zipf_theta = 0.5;
  wcfg.read_ratio = 0.5;
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_oracle = db_engine->clone();

  common::rng r(23);
  auto b = w.make_batch(r, 300);

  auto eng = proto::make_engine(GetParam(), *db_engine, small_cfg());
  common::run_metrics m;
  eng->run_batch(b, m);

  if (const auto* order = eng->commit_order()) {
    testutil::replay_in_order(*db_oracle, b, *order);
  } else {
    testutil::replay_in_seq_order(*db_oracle, b);
  }
  EXPECT_EQ(db_engine->state_hash(), db_oracle->state_hash());
}

// --- money conservation with real aborts ------------------------------------
TEST_P(EveryEngine, BankConservesMoney) {
  wl::bank_config wcfg;
  wcfg.accounts = 256;
  wcfg.max_transfer = 1500;
  auto w = wl::bank(wcfg);

  auto db = testutil::make_loaded_db(w);
  const std::uint64_t expected = w.total_balance(*db);

  common::rng r(29);
  auto eng = proto::make_engine(GetParam(), *db, small_cfg());
  common::run_metrics m;
  for (int i = 0; i < 3; ++i) {
    auto b = w.make_batch(r, 200, i);
    eng->run_batch(b, m);
  }
  EXPECT_EQ(w.total_balance(*db), expected);
  EXPECT_GT(m.aborted, 0u);
}

// --- TPC-C: consistency + serializability ------------------------------------
TEST_P(EveryEngine, TpccConsistentAndSerializable) {
  wl::tpcc_config wcfg;
  wcfg.warehouses = 2;
  wcfg.initial_orders_per_district = 30;
  wcfg.order_headroom_per_district = 300;
  auto w = wl::tpcc(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_oracle = db_engine->clone();

  common::rng r(41);
  std::vector<txn::batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(w.make_batch(r, 150, i));

  auto eng = proto::make_engine(GetParam(), *db_engine, small_cfg());
  common::run_metrics m;
  std::vector<std::vector<seq_t>> orders;
  for (auto& b : batches) {
    eng->run_batch(b, m);
    if (const auto* o = eng->commit_order()) orders.push_back(*o);
  }

  for (std::size_t i = 0; i < batches.size(); ++i) {
    if (!orders.empty()) {
      testutil::replay_in_order(*db_oracle, batches[i], orders[i]);
    } else {
      testutil::replay_in_seq_order(*db_oracle, batches[i]);
    }
  }
  EXPECT_EQ(db_engine->state_hash(), db_oracle->state_hash());

  std::string why;
  EXPECT_TRUE(w.check_consistency(*db_engine, &why)) << why;
}

// --- deterministic engines agree with each other -----------------------------
TEST(ProtocolEquivalence, DeterministicEnginesProduceIdenticalStates) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1024;
  wcfg.zipf_theta = 0.8;
  wcfg.read_ratio = 0.3;
  wcfg.abort_ratio = 0.05;
  auto w = wl::ycsb(wcfg);

  common::rng r(53);
  auto reference = testutil::make_loaded_db(w);
  auto b = w.make_batch(r, 400);
  testutil::replay_in_seq_order(*reference, b);
  const auto expected = reference->state_hash();

  for (const auto& name : {"quecc", "serial", "hstore", "calvin"}) {
    auto db = testutil::make_loaded_db(w);
    b.reset_runtime();
    auto eng = proto::make_engine(name, *db, small_cfg());
    common::run_metrics m;
    eng->run_batch(b, m);
    EXPECT_EQ(db->state_hash(), expected) << name;
  }
}

// --- contention really exercises concurrency control -------------------------
TEST(ProtocolBehaviour, NonDeterministicEnginesAbortUnderContention) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 32;  // extreme contention
  wcfg.zipf_theta = 0.9;
  wcfg.read_ratio = 0.0;
  wcfg.ops_per_txn = 8;
  auto w = wl::ycsb(wcfg);

  auto cfg = small_cfg();
  cfg.worker_threads = 8;  // force real overlap even on small CI machines
  for (const auto& name : {"2pl-nowait", "silo", "tictoc", "mvto"}) {
    auto db = testutil::make_loaded_db(w);
    common::rng r(61);
    common::run_metrics m;
    auto eng = proto::make_engine(name, *db, cfg);
    // Conflict-induced aborts are timing-dependent; keep feeding batches
    // until the protocol shows its abort path (bounded to stay fast).
    // Batches must be large enough that one batch's CPU time exceeds the
    // scheduler's preemption granularity: on a single-CPU machine workers
    // only overlap mid-transaction via involuntary preemption, and a batch
    // that fits inside one timeslice runs as a conflict-free worker relay.
    std::uint64_t expected_commits = 0;
    for (int i = 0; i < 10 && m.cc_aborts == 0; ++i) {
      auto b = w.make_batch(r, 8000, static_cast<std::uint32_t>(i));
      eng->run_batch(b, m);
      expected_commits += 8000;
    }
    EXPECT_GT(m.cc_aborts, 0u) << name << " saw no conflicts?";
    EXPECT_EQ(m.committed, expected_commits) << name;
  }
}

TEST(ProtocolBehaviour, QueccNeverAbortsOnConflicts) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 64;
  wcfg.zipf_theta = 0.9;
  wcfg.read_ratio = 0.0;
  auto w = wl::ycsb(wcfg);

  auto db = testutil::make_loaded_db(w);
  common::rng r(61);
  auto b = w.make_batch(r, 400);
  auto eng = proto::make_engine("quecc", *db, small_cfg());
  common::run_metrics m;
  eng->run_batch(b, m);
  EXPECT_EQ(m.cc_aborts, 0u);  // concurrency-control-free execution
  EXPECT_EQ(m.committed, 400u);
}

// --- H-Store multi-partition handling -----------------------------------------
TEST(ProtocolBehaviour, HstoreHandlesMultiPartitionBatches) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wcfg.multi_partition_ratio = 0.5;
  wcfg.mp_parts = 3;
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_oracle = db_engine->clone();

  common::rng r(71);
  auto b = w.make_batch(r, 200);

  auto eng = proto::make_engine("hstore", *db_engine, small_cfg());
  common::run_metrics m;
  eng->run_batch(b, m);
  EXPECT_EQ(m.committed, 200u);

  testutil::replay_in_seq_order(*db_oracle, b);
  EXPECT_EQ(db_engine->state_hash(), db_oracle->state_hash());
}

// --- Calvin grants shared locks concurrently -----------------------------------
TEST(ProtocolBehaviour, CalvinReadHeavyWorkload) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 256;
  wcfg.read_ratio = 0.9;
  wcfg.zipf_theta = 0.9;
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_oracle = db_engine->clone();

  common::rng r(83);
  auto b = w.make_batch(r, 300);

  auto eng = proto::make_engine("calvin", *db_engine, small_cfg());
  common::run_metrics m;
  eng->run_batch(b, m);
  EXPECT_EQ(m.committed, 300u);

  testutil::replay_in_seq_order(*db_oracle, b);
  EXPECT_EQ(db_engine->state_hash(), db_oracle->state_hash());
}

TEST(ProtocolFactory, RejectsUnknownName) {
  storage::database db;
  EXPECT_THROW(proto::make_engine("nonsense", db, small_cfg()),
               std::invalid_argument);
}

TEST(ProtocolFactory, AllNamesConstruct) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 64;
  auto w = wl::ycsb(wcfg);
  for (const auto& name : proto::engine_names()) {
    auto db = testutil::make_loaded_db(w);
    auto eng = proto::make_engine(name, *db, small_cfg());
    EXPECT_EQ(eng->name(), name);
  }
}

}  // namespace
}  // namespace quecc
