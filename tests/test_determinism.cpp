// Golden-value seed stability for the workload-generation RNG stack.
//
// Recorded command logs, replicated planned batches, and the resume-from-
// stream-pos recovery path all assume a deterministic workload can be
// regenerated bit-identically from (seed, position) — on a different
// machine, compiler, or standard library. That only holds if the
// generators themselves never drift, so these tests pin fixed seeds to
// hardcoded output sequences (generated once from the reference
// implementation). If one fails after an intentional generator change,
// bump the goldens *and* treat every recorded log/checkpoint as
// invalidated — that is the point of the test.
#include <gtest/gtest.h>

#include <cstdint>

#include "common/rng.hpp"
#include "common/zipf.hpp"

namespace {

using quecc::common::rng;
using quecc::common::splitmix64;
using quecc::common::zipf_generator;

TEST(SeedStability, Splitmix64Stream) {
  std::uint64_t x = 1;
  const std::uint64_t expect[4] = {
      0x910a2dec89025cc1ull, 0xbeeb8da1658eec67ull, 0xf893a2eefb32555eull,
      0x71c18690ee42c90bull};
  for (const std::uint64_t e : expect) EXPECT_EQ(splitmix64(x), e);
}

TEST(SeedStability, XoshiroDefaultSeed) {
  rng r(0x5eedu);  // the library-wide default seed
  const std::uint64_t expect[8] = {
      0xef33f17055244b74ull, 0xe1f591112fb5051bull, 0xd8ab05640214863aull,
      0xf985e1f2fb897b03ull, 0xaf87a5f7e6ce1408ull, 0x86f28e3a0746ff9eull,
      0x4e1acb1dbe288cacull, 0x6c13fd25a3155716ull};
  for (const std::uint64_t e : expect) EXPECT_EQ(r.next(), e);
}

TEST(SeedStability, XoshiroSeed42) {
  rng r(42);
  const std::uint64_t expect[8] = {
      0x15780b2e0c2ec716ull, 0x6104d9866d113a7eull, 0xae17533239e499a1ull,
      0xecb8ad4703b360a1ull, 0xfde6dc7fe2ec5e64ull, 0xc50da53101795238ull,
      0xb82154855a65ddb2ull, 0xd99a2743ebe60087ull};
  for (const std::uint64_t e : expect) EXPECT_EQ(r.next(), e);
}

TEST(SeedStability, NextBelowBounded) {
  rng r(42);
  const std::uint64_t expect[8] = {83, 378, 680, 924, 991, 769, 719, 850};
  for (const std::uint64_t e : expect) EXPECT_EQ(r.next_below(1000), e);
}

TEST(SeedStability, NextDoubleBitExact) {
  // next_double is (next() >> 11) * 2^-53: integer scaling by a power of
  // two, exact in binary64 — safe to compare with EXPECT_EQ.
  rng r(7);
  const double expect[4] = {0.7005764821796896, 0.27875122947378428,
                            0.83962746187641979, 0.98109772501493508};
  for (const double e : expect) EXPECT_EQ(r.next_double(), e);
}

TEST(SeedStability, ReseedRestartsStream) {
  rng r(42);
  const std::uint64_t first = r.next();
  for (int i = 0; i < 100; ++i) r.next();
  r.reseed(42);
  EXPECT_EQ(r.next(), first);
}

// Zipf at the three thetas the experiments use: uniform (theta 0), the
// moderate and the high-contention skew. The generator does floating-point
// math (pow/zeta), so this also pins the libm-visible behavior the
// workload depends on.
TEST(SeedStability, ZipfUniformTheta0) {
  rng r(123);
  zipf_generator z(10000, 0.0);
  const std::uint64_t expect[10] = {1966, 9695, 4674, 1269, 3377,
                                    9999, 3779, 6566, 7610, 4354};
  for (const std::uint64_t e : expect) EXPECT_EQ(z.next(r), e);
}

TEST(SeedStability, ZipfTheta06) {
  rng r(123);
  zipf_generator z(10000, 0.6);
  const std::uint64_t expect[10] = {201, 9268, 1564, 75,   717,
                                    9997, 938, 3569, 5117, 1318};
  for (const std::uint64_t e : expect) EXPECT_EQ(z.next(r), e);
}

TEST(SeedStability, ZipfTheta099) {
  rng r(123);
  zipf_generator z(10000, 0.99);
  const std::uint64_t expect[10] = {3, 7470, 53, 1, 14, 9991, 21, 353, 988, 38};
  for (const std::uint64_t e : expect) EXPECT_EQ(z.next(r), e);
}

TEST(SeedStability, ZipfInDomain) {
  rng r(9);
  zipf_generator z(100, 0.99);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.next(r), 100u);
}

}  // namespace
