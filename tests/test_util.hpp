// Shared helpers for the test suite.
#pragma once

#include <memory>
#include <vector>

#include "protocols/iface.hpp"
#include "protocols/local_host.hpp"
#include "protocols/serial.hpp"
#include "storage/database.hpp"
#include "txn/batch.hpp"
#include "workload/workload.hpp"

namespace quecc::testutil {

inline std::unique_ptr<storage::database> make_loaded_db(wl::workload& w) {
  auto db = std::make_unique<storage::database>();
  w.load(*db);
  return db;
}

/// Serially replay `b` against `db` in the given commit order (txn seqs);
/// transactions not listed are skipped (they aborted in the engine run).
/// Each transaction is reset first, so this works on batches that another
/// engine already executed.
inline void replay_in_order(storage::database& db, txn::batch& b,
                            const std::vector<seq_t>& order) {
  proto::inplace_host host(db);
  for (const seq_t s : order) {
    txn::txn_desc& t = b.at(s);
    t.reset_runtime();
    proto::run_txn_serially(t, host);
  }
}

/// Serially execute `b` in sequence order (the deterministic engines'
/// equivalent serial order), skipping nothing: logic aborts roll back.
inline void replay_in_seq_order(storage::database& db, txn::batch& b) {
  proto::inplace_host host(db);
  for (auto& tp : b) {
    tp->reset_runtime();
    proto::run_txn_serially(*tp, host);
  }
}

/// Statuses + value-slot fingerprints of every transaction in the batch.
inline std::vector<std::vector<std::uint64_t>> result_fingerprints(
    const txn::batch& b) {
  std::vector<std::vector<std::uint64_t>> out;
  out.reserve(b.size());
  for (const auto& tp : b) out.push_back(tp->result_fingerprint());
  return out;
}

}  // namespace quecc::testutil
