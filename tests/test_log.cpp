// Unit + integration tests for the durability subsystem (src/log/):
// plan-codec round trips, the segmented group-commit log, batch-boundary
// checkpoints, and the crash-point recovery matrix — kill after the batch
// record, kill before the commit record, torn tail, mid-checkpoint crash —
// each asserting recovered state equals an uninterrupted run's.
#include <gtest/gtest.h>

#include <cstdlib>
#include <deque>
#include <filesystem>
#include <fstream>

#include "core/engine.hpp"
#include "harness/runner.hpp"
#include "log/checkpoint.hpp"
#include "log/log_writer.hpp"
#include "log/plan_codec.hpp"
#include "log/recovery.hpp"
#include "protocols/session.hpp"
#include "test_util.hpp"
#include "workload/bank.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

namespace fs = std::filesystem;

/// Fresh directory under the system temp root, removed on scope exit.
struct temp_dir {
  temp_dir() {
    std::string tmpl =
        (fs::temp_directory_path() / "quecc-log-XXXXXX").string();
    if (::mkdtemp(tmpl.data()) == nullptr) {
      throw std::runtime_error("mkdtemp failed");
    }
    path = tmpl;
  }
  ~temp_dir() {
    std::error_code ec;
    fs::remove_all(path, ec);
  }
  std::string path;
};

wl::ycsb_config small_ycsb() {
  wl::ycsb_config w;
  w.table_size = 1024;
  w.partitions = 4;
  w.zipf_theta = 0.4;
  return w;
}

common::config small_engine_cfg() {
  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 2;
  cfg.partitions = 4;
  return cfg;
}

/// State hash after running the first `batches` batches of the stream
/// (seed/batch_size fixed) on a fresh database — the uninterrupted
/// reference every recovery scenario compares against.
std::uint64_t reference_hash(std::uint32_t batches, std::uint32_t batch_size,
                             std::uint64_t seed) {
  wl::ycsb w(small_ycsb());
  storage::database db;
  w.load(db);
  core::quecc_engine eng(db, small_engine_cfg());
  common::rng r(seed);
  common::run_metrics m;
  for (std::uint32_t i = 0; i < batches; ++i) {
    txn::batch b = w.make_batch(r, batch_size, i);
    eng.run_batch(b, m);
  }
  return db.state_hash();
}

// --- plan codec -------------------------------------------------------------

TEST(PlanCodec, RoundTripPreservesEveryPlanField) {
  wl::ycsb_config wcfg = small_ycsb();
  wcfg.dependent_ops = true;  // exercise input_mask / output_slot encoding
  wcfg.abort_ratio = 0.2;     // and abortable fragments
  wl::ycsb w(wcfg);
  common::rng r(3);
  txn::batch b = w.make_batch(r, 64, /*batch_id=*/9);

  std::vector<std::byte> buf;
  log::encode_batch(b, buf);
  txn::batch d = log::decode_batch(buf, log::resolver_for(w));

  ASSERT_EQ(d.id(), b.id());
  ASSERT_EQ(d.size(), b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    const txn::txn_desc& x = b.at(i);
    const txn::txn_desc& y = d.at(i);
    EXPECT_EQ(y.seq, x.seq);
    EXPECT_EQ(y.id, x.id);
    EXPECT_EQ(y.proc, x.proc);  // resolver rebinds to the same instance
    EXPECT_EQ(y.args, x.args);
    ASSERT_EQ(y.frags.size(), x.frags.size());
    for (std::size_t f = 0; f < x.frags.size(); ++f) {
      const txn::fragment& a = x.frags[f];
      const txn::fragment& c = y.frags[f];
      EXPECT_EQ(c.table, a.table);
      EXPECT_EQ(c.part, a.part);
      EXPECT_EQ(c.key, a.key);
      EXPECT_EQ(c.kind, a.kind);
      EXPECT_EQ(c.abortable, a.abortable);
      EXPECT_EQ(c.idx, a.idx);
      EXPECT_EQ(c.logic, a.logic);
      EXPECT_EQ(c.output_slot, a.output_slot);
      EXPECT_EQ(c.input_mask, a.input_mask);
      EXPECT_EQ(c.aux, a.aux);
    }
  }

  // The decoded plan is executable: replaying both serially from identical
  // databases produces identical state.
  auto db1 = testutil::make_loaded_db(w);
  auto db2 = db1->clone();
  testutil::replay_in_seq_order(*db1, b);
  testutil::replay_in_seq_order(*db2, d);
  EXPECT_EQ(db1->state_hash(), db2->state_hash());
}

TEST(PlanCodec, UnknownProcedureAndTruncationThrow) {
  wl::ycsb w(small_ycsb());
  common::rng r(1);
  txn::batch b = w.make_batch(r, 4);
  std::vector<std::byte> buf;
  log::encode_batch(b, buf);

  const log::proc_resolver nobody = [](const std::string&) {
    return static_cast<const txn::procedure*>(nullptr);
  };
  EXPECT_THROW(log::decode_batch(buf, nobody), log::codec_error);

  std::span<const std::byte> chopped(buf.data(), buf.size() - 5);
  EXPECT_THROW(log::decode_batch(chopped, log::resolver_for(w)),
               log::codec_error);
}

TEST(PlanCodec, CommitInfoRoundTrip) {
  log::commit_info c;
  c.batch_id = 7;
  c.txn_count = 128;
  c.committed = 120;
  c.aborted = 8;
  c.stream_pos = 9001;
  c.state_hash = 0xabcdef0123456789ull;
  std::vector<std::byte> buf;
  log::encode_commit(c, buf);
  const log::commit_info d = log::decode_commit(buf);
  EXPECT_EQ(d.batch_id, c.batch_id);
  EXPECT_EQ(d.txn_count, c.txn_count);
  EXPECT_EQ(d.committed, c.committed);
  EXPECT_EQ(d.aborted, c.aborted);
  EXPECT_EQ(d.stream_pos, c.stream_pos);
  EXPECT_EQ(d.state_hash, c.state_hash);
}

// --- log writer -------------------------------------------------------------

std::vector<std::byte> bytes_of(const std::string& s) {
  const auto* p = reinterpret_cast<const std::byte*>(s.data());
  return {p, p + s.size()};
}

TEST(LogWriter, AppendThenScanRoundTrips) {
  temp_dir dir;
  {
    log::log_writer w(dir.path, {});
    w.append(log::record_type::batch, bytes_of("plan-0"));
    w.append(log::record_type::commit, bytes_of("commit-0"));
    w.append(log::record_type::batch, bytes_of("plan-1"));
  }  // destructor: final fsync + close
  std::vector<log::scanned_record> recs;
  EXPECT_TRUE(
      log::scan_segment(dir.path + "/" + log::segment_name(0), recs));
  ASSERT_EQ(recs.size(), 3u);
  EXPECT_EQ(recs[0].type, log::record_type::batch);
  EXPECT_EQ(recs[0].payload, bytes_of("plan-0"));
  EXPECT_EQ(recs[1].type, log::record_type::commit);
  EXPECT_EQ(recs[1].payload, bytes_of("commit-0"));
  EXPECT_EQ(recs[2].payload, bytes_of("plan-1"));
}

TEST(LogWriter, TornTailIsDetectedAndDropped) {
  temp_dir dir;
  {
    log::log_writer w(dir.path, {});
    w.append(log::record_type::batch, bytes_of("intact-record"));
    w.append(log::record_type::commit, bytes_of("gets-torn"));
  }
  const std::string seg = dir.path + "/" + log::segment_name(0);
  fs::resize_file(seg, fs::file_size(seg) - 3);  // tear the last record

  std::vector<log::scanned_record> recs;
  EXPECT_FALSE(log::scan_segment(seg, recs));  // torn tail reported...
  ASSERT_EQ(recs.size(), 1u);                  // ...intact prefix kept
  EXPECT_EQ(recs[0].payload, bytes_of("intact-record"));
}

TEST(LogWriter, RefusesDirectoryWithExistingSegments) {
  temp_dir dir;
  { log::log_writer w(dir.path, {}); }
  EXPECT_THROW(log::log_writer(dir.path, {}), std::runtime_error);
}

TEST(LogWriter, GroupCommitCoalescesFsyncs) {
  temp_dir dir;
  log::writer_options opts;
  opts.group_commit_micros = 60'000'000;  // no timer tick during the test
  log::log_writer w(dir.path, opts);
  log::log_writer::lsn_t last = 0;
  for (int i = 0; i < 100; ++i) {
    last = w.append(log::record_type::batch, bytes_of("r"));
  }
  EXPECT_EQ(w.durable_lsn(), 0u);  // nothing synced yet: no ack requested
  w.wait_durable(last);
  EXPECT_GE(w.durable_lsn(), last);
  // All 100 appends shared one group-commit fsync.
  EXPECT_EQ(w.fsyncs(), 1u);
}

TEST(LogWriter, SizeRotationSplitsSegments) {
  temp_dir dir;
  log::writer_options opts;
  opts.segment_bytes = 256;  // force frequent rotation
  {
    log::log_writer w(dir.path, opts);
    for (int i = 0; i < 20; ++i) {
      w.append(log::record_type::batch, bytes_of("padding-padding-padding"));
    }
    EXPECT_GT(w.segment_index(), 0u);
  }
  const auto segs = log::list_segments(dir.path, 0);
  ASSERT_GT(segs.size(), 1u);
  // Scanning all segments in order recovers every record.
  std::vector<log::scanned_record> recs;
  for (std::uint32_t n : segs) {
    EXPECT_TRUE(
        log::scan_segment(dir.path + "/" + log::segment_name(n), recs));
  }
  EXPECT_EQ(recs.size(), 20u);
}

// --- checkpoints ------------------------------------------------------------

TEST(Checkpoint, RestoreDrivesTableToExactSnapshotContents) {
  // Source database: keys 0..9. Target before restore: keys 5..14 with
  // different payloads. Restore must erase 10..14, overwrite 5..9, and
  // re-insert 0..4.
  const storage::schema s({{"A", storage::col_type::u64, 8}});
  storage::database src;
  auto& t1 = src.create_table("t", s, 32);
  std::vector<std::byte> p(8);
  for (key_t k = 0; k < 10; ++k) {
    storage::write_u64(std::span<std::byte>(p), 0, k * 3 + 1);
    t1.insert(k, p);
  }

  temp_dir dir;
  log::checkpointer ck(dir.path);
  const auto meta = ck.take(src, /*batch_id=*/4, /*stream_pos=*/1234,
                            /*segment_base=*/1);
  EXPECT_EQ(meta.state_hash, src.state_hash());

  storage::database dst;
  auto& t2 = dst.create_table("t", s, 32);
  for (key_t k = 5; k < 15; ++k) {
    storage::write_u64(std::span<std::byte>(p), 0, 777);
    t2.insert(k, p);
  }
  const auto restored =
      log::restore_checkpoint(dir.path + "/" + meta.file, dst);
  EXPECT_EQ(restored.batch_id, 4u);
  EXPECT_EQ(restored.stream_pos, 1234u);
  EXPECT_EQ(dst.state_hash(), src.state_hash());

  // And the manifest round-trips the same metadata.
  const auto manifest = log::read_manifest(dir.path);
  ASSERT_TRUE(manifest.has_value());
  EXPECT_EQ(manifest->batch_id, 4u);
  EXPECT_EQ(manifest->stream_pos, 1234u);
  EXPECT_EQ(manifest->state_hash, src.state_hash());
  EXPECT_EQ(manifest->segment_base, 1u);
  EXPECT_EQ(manifest->file, meta.file);
}

// Sharded storage (per-partition arenas): the v2 checkpoint records rows
// per arena, so restore must put every row back into the arena it came
// from — the database state hash cannot catch misrouting (it ignores
// shard layout by design), but per-shard live counts do.
TEST(Checkpoint, ShardedRestoreRebuildsEachArena) {
  const storage::schema s({{"A", storage::col_type::u64, 8}});
  storage::database src;
  auto& t1 = src.create_table("t", s, 64, /*shards=*/4);
  std::vector<std::byte> p(8);
  for (key_t k = 0; k < 20; ++k) {
    storage::write_u64(std::span<std::byte>(p), 0, k * 3 + 1);
    t1.insert(k, p, static_cast<part_id_t>(k % 4));
  }

  temp_dir dir;
  log::checkpointer ck(dir.path);
  const auto meta = ck.take(src, 1, 1, 1);

  // Target starts with different contents in the wrong arenas.
  storage::database dst;
  auto& t2 = dst.create_table("t", s, 64, 4);
  for (key_t k = 30; k < 40; ++k) {
    storage::write_u64(std::span<std::byte>(p), 0, 777);
    t2.insert(k, p, static_cast<part_id_t>(k % 4));
  }
  log::restore_checkpoint(dir.path + "/" + meta.file, dst);
  EXPECT_EQ(dst.state_hash(), src.state_hash());
  for (part_id_t sh = 0; sh < 4; ++sh) {
    EXPECT_EQ(t2.live_rows_in(sh), t1.live_rows_in(sh));
  }

  // A shard-count mismatch (partition config changed between the logging
  // run and recovery) must fail loudly, not scatter rows across arenas.
  storage::database wrong;
  wrong.create_table("t", s, 64, /*shards=*/2);
  EXPECT_THROW(log::restore_checkpoint(dir.path + "/" + meta.file, wrong),
               std::runtime_error);
}

TEST(Checkpoint, CorruptFileFailsItsCrc) {
  const storage::schema s({{"A", storage::col_type::u64, 8}});
  storage::database src;
  auto& t = src.create_table("t", s, 8);
  std::vector<std::byte> p(8);
  t.insert(1, p);

  temp_dir dir;
  log::checkpointer ck(dir.path);
  const auto meta = ck.take(src, 0, 1, 1);
  const std::string path = dir.path + "/" + meta.file;
  {
    std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
    f.seekp(20);
    f.put('\x5a');  // flip a byte inside the table image
  }
  storage::database dst;
  dst.create_table("t", s, 8);
  EXPECT_THROW(log::restore_checkpoint(path, dst), std::runtime_error);
}

// --- crash-point recovery matrix -------------------------------------------
//
// Each scenario builds a log exactly as a crashed process would have left
// it, recovers into a fresh database, and asserts state-hash equality with
// an uninterrupted run over the same deterministic stream.

constexpr std::uint32_t kBatches = 4;
constexpr std::uint32_t kBatchSize = 96;
constexpr std::uint64_t kSeed = 11;

/// Hand-build a log: batch records for batches [0, produced), commit
/// records only for [0, committed). `committed < produced` is the "crash
/// after batch record, before commit record" window.
void build_log(const std::string& dir, std::uint32_t produced,
               std::uint32_t committed) {
  wl::ycsb w(small_ycsb());
  common::rng r(kSeed);
  log::log_writer lw(dir, {});
  std::uint64_t stream_pos = 0;
  for (std::uint32_t i = 0; i < produced; ++i) {
    txn::batch b = w.make_batch(r, kBatchSize, i);
    std::vector<std::byte> plan;
    log::encode_batch(b, plan);
    lw.append(log::record_type::batch, plan);
    stream_pos += b.size();
    if (i < committed) {
      log::commit_info c;
      c.batch_id = i;
      c.txn_count = static_cast<std::uint32_t>(b.size());
      c.committed = c.txn_count;
      c.stream_pos = stream_pos;
      std::vector<std::byte> commit;
      log::encode_commit(c, commit);
      lw.append(log::record_type::commit, commit);
    }
  }
  lw.wait_durable(lw.appended_lsn());
}

struct recovered {
  log::recovery_result res;
  std::uint64_t hash;
};

recovered recover_fresh(const std::string& dir) {
  wl::ycsb w(small_ycsb());
  storage::database db;
  w.load(db);
  core::quecc_engine eng(db, small_engine_cfg());
  recovered out{log::recover(dir, db, eng, log::resolver_for(w)),
                db.state_hash()};
  EXPECT_EQ(out.res.state_hash, out.hash);
  return out;
}

// Crash matrix, sharded edition: checkpoint a sharded (4-arena) database
// mid-run, "kill", recover into a freshly loaded database, and require
// per-partition allocation counts — not just the state hash — to equal
// the uninterrupted run's: restore routes every row to its recorded
// arena and replay re-executes the tail deterministically.
TEST(Recovery, ShardedRunRecoversPerPartitionArenaCounts) {
  temp_dir dir;
  wl::ycsb w(small_ycsb());

  // Uninterrupted reference run, keeping the database for shard counts.
  storage::database ref;
  w.load(ref);
  {
    core::quecc_engine eng(ref, small_engine_cfg());
    common::rng r(kSeed);
    common::run_metrics m;
    for (std::uint32_t i = 0; i < 8; ++i) {
      txn::batch b = w.make_batch(r, kBatchSize, i);
      eng.run_batch(b, m);
    }
  }

  // Durable run of the same stream with a mid-run checkpoint, then "kill".
  {
    wl::ycsb w2(small_ycsb());
    storage::database db;
    w2.load(db);
    common::config cfg = small_engine_cfg();
    cfg.durable = true;
    cfg.log_dir = dir.path;
    cfg.checkpoint_interval_batches = 3;
    core::quecc_engine eng(db, cfg);
    common::rng r(kSeed);
    common::run_metrics m;
    for (std::uint32_t i = 0; i < 8; ++i) {
      txn::batch b = w2.make_batch(r, kBatchSize, i);
      eng.run_batch(b, m);
      eng.sync_durable();
    }
  }

  // Recover into a fresh database; the restore path goes through the
  // sharded checkpoint (batches 0..5) + replay (6, 7).
  wl::ycsb w3(small_ycsb());
  storage::database rec;
  w3.load(rec);
  core::quecc_engine eng(rec, small_engine_cfg());
  const auto res = log::recover(dir.path, rec, eng, log::resolver_for(w3));
  EXPECT_TRUE(res.checkpoint_loaded);
  EXPECT_EQ(rec.state_hash(), ref.state_hash());

  const auto& rt = rec.at(0);
  const auto& ft = ref.at(0);
  ASSERT_EQ(rt.shard_count(), ft.shard_count());
  ASSERT_EQ(rt.shard_count(), 4u);
  for (part_id_t s = 0; s < rt.shard_count(); ++s) {
    EXPECT_EQ(rt.live_rows_in(s), ft.live_rows_in(s)) << "shard " << s;
    EXPECT_EQ(rt.allocated_rows_in(s), ft.allocated_rows_in(s))
        << "shard " << s;
  }
}

TEST(Recovery, ReplaysExactlyTheCommittedPrefix) {
  temp_dir dir;
  build_log(dir.path, /*produced=*/kBatches, /*committed=*/kBatches);
  const auto rec = recover_fresh(dir.path);
  EXPECT_EQ(rec.res.batches_replayed, kBatches);
  EXPECT_EQ(rec.res.batches_skipped, 0u);
  EXPECT_FALSE(rec.res.torn_tail);
  EXPECT_EQ(rec.res.txns_applied, std::uint64_t{kBatches} * kBatchSize);
  EXPECT_EQ(rec.res.next_batch_id, kBatches);
  EXPECT_EQ(rec.hash, reference_hash(kBatches, kBatchSize, kSeed));
}

// Crash window 1: after the batch record, before the commit record. The
// batch was never acknowledged — recovery must skip it, landing on the
// state of the committed prefix.
TEST(Recovery, SkipsBatchWithoutCommitRecord) {
  temp_dir dir;
  build_log(dir.path, /*produced=*/kBatches, /*committed=*/kBatches - 1);
  const auto rec = recover_fresh(dir.path);
  EXPECT_EQ(rec.res.batches_replayed, kBatches - 1);
  EXPECT_EQ(rec.res.batches_skipped, 1u);
  EXPECT_EQ(rec.res.txns_applied,
            std::uint64_t{kBatches - 1} * kBatchSize);
  EXPECT_EQ(rec.hash, reference_hash(kBatches - 1, kBatchSize, kSeed));
}

// Crash window 2: mid-write — the log ends in a truncated record. The torn
// tail is dropped; everything intact before it recovers.
TEST(Recovery, TornTailDroppedDuringRecovery) {
  temp_dir dir;
  build_log(dir.path, kBatches, kBatches);
  const std::string seg = dir.path + "/" + log::segment_name(0);
  // Tear into the final commit record: batch kBatches-1 loses its commit.
  fs::resize_file(seg, fs::file_size(seg) - 8);
  const auto rec = recover_fresh(dir.path);
  EXPECT_TRUE(rec.res.torn_tail);
  EXPECT_EQ(rec.res.batches_replayed, kBatches - 1);
  EXPECT_EQ(rec.res.batches_skipped, 1u);
  EXPECT_EQ(rec.hash, reference_hash(kBatches - 1, kBatchSize, kSeed));
}

// Crash window 3: the kill lands inside open_segment (startup of a fresh
// segment at rotation), leaving a segment file shorter than its 8-byte
// header. That is a torn tail — everything before it must still recover,
// and recovery must not throw.
TEST(Recovery, PartialSegmentHeaderIsATornTail) {
  temp_dir dir;
  build_log(dir.path, kBatches, kBatches);
  {  // a 3-byte segment-1: open_segment died mid-header-write
    std::ofstream stub(dir.path + "/" + log::segment_name(1),
                       std::ios::binary);
    stub << "QLO";
  }
  const auto rec = recover_fresh(dir.path);
  EXPECT_TRUE(rec.res.torn_tail);
  EXPECT_EQ(rec.res.batches_replayed, kBatches);
  EXPECT_EQ(rec.hash, reference_hash(kBatches, kBatchSize, kSeed));
}

// Resuming after recovery completes the stream: recovered prefix + the
// regenerated remainder equals an uninterrupted full run. This is the
// kill -9 contract queccctl --recover implements.
TEST(Recovery, ResumeAfterPartialRecoveryMatchesUninterruptedRun) {
  temp_dir dir;
  build_log(dir.path, kBatches, /*committed=*/2);

  wl::ycsb w(small_ycsb());
  storage::database db;
  w.load(db);
  core::quecc_engine eng(db, small_engine_cfg());
  const auto res = log::recover(dir.path, db, eng, log::resolver_for(w));
  EXPECT_EQ(res.batches_replayed, 2u);
  EXPECT_EQ(res.batches_skipped, 2u);

  // Regenerate the stream, skip what recovery applied, run the rest.
  common::rng r(kSeed);
  for (std::uint64_t i = 0; i < res.txns_applied; ++i) (void)w.make_txn(r);
  common::run_metrics m;
  std::uint32_t id = res.next_batch_id;
  for (std::uint64_t done = res.txns_applied;
       done < std::uint64_t{kBatches} * kBatchSize; done += kBatchSize) {
    txn::batch b = w.make_batch(r, kBatchSize, id++);
    eng.run_batch(b, m);
  }
  EXPECT_EQ(db.state_hash(), reference_hash(kBatches, kBatchSize, kSeed));
}

// --- end-to-end through the durable engine ----------------------------------

TEST(Recovery, DurableClosedLoopRunRecoversToIdenticalHash) {
  temp_dir dir;
  wl::ycsb w(small_ycsb());
  std::uint64_t live_hash = 0;
  {
    storage::database db;
    w.load(db);
    common::config cfg = small_engine_cfg();
    cfg.durable = true;
    cfg.log_dir = dir.path;
    cfg.checkpoint_interval_batches = 3;  // exercise truncation mid-run
    cfg.log_verify_hash = true;           // recovery verifies every batch
    core::quecc_engine eng(db, cfg);

    harness::run_options opts;
    opts.batches = 8;
    opts.batch_size = kBatchSize;
    opts.seed = kSeed;
    opts.durability = true;
    const auto res = harness::run_workload(eng, w, db, opts);
    live_hash = res.final_state_hash;
    EXPECT_EQ(res.metrics.committed + res.metrics.aborted,
              opts.total_txns());
  }
  // Checkpoints at batches 2 and 5 truncated segments 0 and 1.
  EXPECT_EQ(log::list_segments(dir.path, 0).front(), 2u);

  const auto rec = recover_fresh(dir.path);
  EXPECT_TRUE(rec.res.checkpoint_loaded);
  EXPECT_EQ(rec.res.checkpoint_batch, 5u);
  EXPECT_EQ(rec.res.batches_replayed, 2u);  // 6 and 7
  EXPECT_EQ(rec.res.txns_applied, 8u * kBatchSize);
  EXPECT_EQ(rec.hash, live_hash);
}

// A garbage half-written checkpoint from a crashed attempt (tmp never
// renamed, or a renamed file the manifest never adopted) must not derail
// recovery: the manifest still names the last good checkpoint.
TEST(Recovery, MidCheckpointCrashLeftoversAreIgnored) {
  temp_dir dir;
  wl::ycsb w(small_ycsb());
  std::uint64_t live_hash = 0;
  {
    storage::database db;
    w.load(db);
    common::config cfg = small_engine_cfg();
    cfg.durable = true;
    cfg.log_dir = dir.path;
    cfg.checkpoint_interval_batches = 2;
    core::quecc_engine eng(db, cfg);
    harness::run_options opts;
    opts.batches = 5;
    opts.batch_size = kBatchSize;
    opts.seed = kSeed;
    opts.durability = true;
    live_hash = harness::run_workload(eng, w, db, opts).final_state_hash;
  }
  // Simulate a crash mid-checkpoint: a torn tmp and a garbage snapshot the
  // manifest does not reference.
  std::ofstream(dir.path + "/checkpoint-99.qck.tmp") << "half-written";
  std::ofstream(dir.path + "/checkpoint-99.qck") << "garbage";

  const auto rec = recover_fresh(dir.path);
  EXPECT_TRUE(rec.res.checkpoint_loaded);
  EXPECT_EQ(rec.res.checkpoint_batch, 3u);  // the last *published* one
  EXPECT_EQ(rec.hash, live_hash);
}

// Open-loop (session) path: Poisson arrivals through proto::session with a
// durable engine — tickets resolve only after the commit record is synced
// — and the log recovers to the identical final hash. Batch boundaries
// differ from any closed-loop run (deadline-formed), which recovery must
// not care about.
TEST(Recovery, DurableOpenLoopSessionRunRecoversToIdenticalHash) {
  temp_dir dir;
  wl::ycsb w(small_ycsb());
  std::uint64_t live_hash = 0;
  {
    storage::database db;
    w.load(db);
    common::config cfg = small_engine_cfg();
    cfg.durable = true;
    cfg.log_dir = dir.path;
    cfg.log_verify_hash = true;
    core::quecc_engine eng(db, cfg);

    harness::run_options opts;
    opts.mode = harness::arrival_mode::open_loop;
    opts.batches = 3;
    opts.batch_size = 64;
    opts.seed = kSeed;
    opts.offered_load_tps = 40'000;
    opts.batch_deadline_micros = 500;
    opts.durability = true;
    const auto res = harness::run_workload(eng, w, db, opts);
    live_hash = res.final_state_hash;
    EXPECT_EQ(res.metrics.committed + res.metrics.aborted,
              opts.total_txns());
  }
  const auto rec = recover_fresh(dir.path);
  EXPECT_EQ(rec.res.txns_applied, 3u * 64u);
  EXPECT_EQ(rec.res.batches_skipped, 0u);
  EXPECT_EQ(rec.hash, live_hash);
}

// Durable ticket acks: by the time wait() returns, the engine's log must
// report the commit record durable (ticket resolution happens after
// sync_durable in the pump).
TEST(Session, TicketResolvesOnlyAfterCommitRecordIsDurable) {
  temp_dir dir;
  wl::ycsb w(small_ycsb());
  storage::database db;
  w.load(db);
  common::config cfg = small_engine_cfg();
  cfg.durable = true;
  cfg.log_dir = dir.path;
  cfg.batch_deadline_micros = 500;
  core::quecc_engine eng(db, cfg);
  {
    proto::session s(eng, cfg);
    common::rng r(2);
    auto t = s.submit(w.make_txn(r));
    ASSERT_TRUE(t.valid());
    EXPECT_EQ(t.wait().status, txn::txn_status::committed);
    ASSERT_NE(eng.wal(), nullptr);
    EXPECT_GE(eng.wal()->durable_lsn(), eng.wal()->appended_lsn());
    s.close();
  }
}

// Bank workload end-to-end: aborts (insufficient balance) replay
// deterministically and the conserved-total invariant survives recovery.
TEST(Recovery, BankAbortsReplayDeterministically) {
  temp_dir dir;
  wl::bank_config bcfg;
  bcfg.accounts = 512;
  wl::bank w(bcfg);
  std::uint64_t live_hash = 0;
  {
    storage::database db;
    w.load(db);
    common::config cfg = small_engine_cfg();
    cfg.durable = true;
    cfg.log_dir = dir.path;
    cfg.log_verify_hash = true;
    core::quecc_engine eng(db, cfg);
    harness::run_options opts;
    opts.batches = 4;
    opts.batch_size = 128;
    opts.seed = 23;
    opts.durability = true;
    const auto res = harness::run_workload(eng, w, db, opts);
    live_hash = res.final_state_hash;
    EXPECT_GT(res.metrics.aborted, 0u);  // the scenario needs real aborts
  }
  wl::bank w2(bcfg);
  storage::database db;
  w2.load(db);
  core::quecc_engine eng(db, small_engine_cfg());
  const auto res = log::recover(dir.path, db, eng, log::resolver_for(w2));
  EXPECT_EQ(res.state_hash, live_hash);
  EXPECT_EQ(w2.total_balance(db), bcfg.accounts * bcfg.initial_balance);
}

// --- pipelined durability ---------------------------------------------------

/// Every commit record in `dir`, in physical append order across segments.
std::vector<log::commit_info> scan_commits(const std::string& dir) {
  std::vector<log::scanned_record> records;
  for (std::uint32_t n : log::list_segments(dir, 0)) {
    log::scan_segment(dir + "/" + log::segment_name(n), records);
  }
  std::vector<log::commit_info> commits;
  for (const auto& rec : records) {
    if (rec.type == log::record_type::commit) {
      commits.push_back(log::decode_commit(rec.payload));
    }
  }
  return commits;
}

TEST(PipelinedLog, CommitRecordsRetainBatchOrderAcrossOverlappingSlots) {
  // At depth >= 2 batch records of later batches interleave between
  // earlier batches' commit records, but the commit records themselves —
  // appended in the epilogue — must stay in batch-id order with a monotone
  // stream position: recovery's "committed prefix" notion depends on it.
  // This must hold with the third pipeline stage both off (commit records
  // appended by the drain caller) and on (appended by the epilogue worker
  // while the group-commit fsync of batch i overlaps batch i+1's exec).
  for (const bool stage3 : {false, true}) {
    temp_dir dir;
    wl::ycsb w(small_ycsb());
    storage::database db;
    w.load(db);
    common::config cfg = small_engine_cfg();
    cfg.pipeline_depth = 3;
    cfg.async_epilogue = stage3;
    cfg.durable = true;
    cfg.log_dir = dir.path;
    {
      core::quecc_engine eng(db, cfg);
      common::rng r(kSeed);
      common::run_metrics m;
      std::deque<txn::batch> inflight;
      for (std::uint32_t i = 0; i < 8; ++i) {
        inflight.push_back(w.make_batch(r, kBatchSize, i));
        eng.submit_batch(inflight.back(), m);
      }
      while (eng.drain_batch()) {
      }
      eng.sync_durable();
    }
    const auto commits = scan_commits(dir.path);
    ASSERT_EQ(commits.size(), 8u);
    for (std::uint32_t i = 0; i < commits.size(); ++i) {
      EXPECT_EQ(commits[i].batch_id, i) << "stage3=" << stage3;
      EXPECT_EQ(commits[i].stream_pos, std::uint64_t{i + 1} * kBatchSize)
          << "stage3=" << stage3;
    }
  }
}

TEST(PipelinedLog, ThreeStageDurableRunRecoversToLockstepHash) {
  // Depth-3 with the async epilogue: group-commit fsyncs of batch i run
  // concurrently with batch i+1's execution, and checkpoints still land at
  // the quiescent point. Recovery must reproduce the lockstep hash.
  temp_dir dir;
  wl::ycsb w(small_ycsb());
  storage::database db;
  w.load(db);
  common::config cfg = small_engine_cfg();
  cfg.pipeline_depth = 3;
  cfg.async_epilogue = true;
  cfg.durable = true;
  cfg.log_dir = dir.path;
  cfg.checkpoint_interval_batches = 3;
  cfg.log_verify_hash = true;
  cfg.group_commit_micros = 500;  // wide window: fsync waits really overlap
  {
    core::quecc_engine eng(db, cfg);
    harness::run_options opts;
    opts.batches = 8;
    opts.batch_size = kBatchSize;
    opts.seed = kSeed;
    opts.durability = true;
    const auto res = harness::run_workload(eng, w, db, opts);
    EXPECT_EQ(res.final_state_hash, reference_hash(8, kBatchSize, kSeed));
  }
  const auto rec = recover_fresh(dir.path);
  EXPECT_TRUE(rec.res.checkpoint_loaded);
  EXPECT_EQ(rec.res.txns_applied, 8u * kBatchSize);
  EXPECT_EQ(rec.hash, reference_hash(8, kBatchSize, kSeed));
}

TEST(PipelinedLog, PipelinedDurableRunRecoversToLockstepHash) {
  // Depth-2 durable run (checkpoints mid-pipeline included) must recover
  // to exactly the hash of an uninterrupted lockstep run.
  temp_dir dir;
  wl::ycsb w(small_ycsb());
  storage::database db;
  w.load(db);
  common::config cfg = small_engine_cfg();
  cfg.pipeline_depth = 2;
  cfg.durable = true;
  cfg.log_dir = dir.path;
  cfg.checkpoint_interval_batches = 3;
  cfg.log_verify_hash = true;
  {
    core::quecc_engine eng(db, cfg);
    harness::run_options opts;
    opts.batches = 8;
    opts.batch_size = kBatchSize;
    opts.seed = kSeed;
    opts.durability = true;
    const auto res = harness::run_workload(eng, w, db, opts);
    EXPECT_EQ(res.final_state_hash, reference_hash(8, kBatchSize, kSeed));
  }
  const auto rec = recover_fresh(dir.path);
  EXPECT_TRUE(rec.res.checkpoint_loaded);
  EXPECT_EQ(rec.res.txns_applied, 8u * kBatchSize);
  EXPECT_EQ(rec.hash, reference_hash(8, kBatchSize, kSeed));
}

// --- resumed durable logging (log_writer resume mode) -----------------------

TEST(LogWriter, ResumeTruncatesTornTailAndContinuesInFreshSegment) {
  temp_dir dir;
  {
    log::log_writer lw(dir.path, {});
    std::vector<std::byte> payload(32, std::byte{7});
    lw.append(log::record_type::batch, payload);
    lw.wait_durable(lw.appended_lsn());
  }
  // Simulate a crash mid-append: garbage bytes after the intact record.
  {
    std::ofstream out(dir.path + "/" + log::segment_name(0),
                      std::ios::binary | std::ios::app);
    out.write("torn!", 5);
  }
  {
    std::vector<log::scanned_record> recs;
    EXPECT_FALSE(
        log::scan_segment(dir.path + "/" + log::segment_name(0), recs));
  }
  {
    log::writer_options opts;
    opts.resume = true;
    log::log_writer lw(dir.path, opts);
    EXPECT_EQ(lw.segment_index(), 1u);  // appends continue past segment 0
    std::vector<std::byte> payload(16, std::byte{9});
    lw.append(log::record_type::batch, payload);
    lw.wait_durable(lw.appended_lsn());
  }
  // The pre-crash segment now scans clean (tail truncated), so a scan of
  // the whole chain sees both records.
  std::vector<log::scanned_record> recs;
  EXPECT_TRUE(log::scan_segment(dir.path + "/" + log::segment_name(0), recs));
  EXPECT_TRUE(log::scan_segment(dir.path + "/" + log::segment_name(1), recs));
  ASSERT_EQ(recs.size(), 2u);
  EXPECT_EQ(recs[0].payload.size(), 32u);
  EXPECT_EQ(recs[1].payload.size(), 16u);
}

TEST(LogWriter, ResumeRemovesSegmentWithTornHeader) {
  temp_dir dir;
  { log::log_writer lw(dir.path, {}); }
  // Crash inside open_segment of segment 1: only 3 header bytes landed.
  {
    std::ofstream out(dir.path + "/" + log::segment_name(1),
                      std::ios::binary);
    out.write("QLO", 3);
  }
  log::writer_options opts;
  opts.resume = true;
  log::log_writer lw(dir.path, opts);
  EXPECT_EQ(lw.segment_index(), 2u);
  EXPECT_FALSE(fs::exists(dir.path + "/" + log::segment_name(1)));
}

TEST(Recovery, ResumedEngineContinuesDurableLoggingInPlace) {
  // The full --recover story: durable run dies after 4 of 8 batches; a
  // recovery replays them; a *resumed durable* engine (log_resume) appends
  // batches 4..7 to the same log; a second recovery of that log — with no
  // resume step left — lands on the uninterrupted 8-batch hash.
  temp_dir dir;
  wl::ycsb w(small_ycsb());

  {  // original durable run: first 4 batches, then "crash" (clean stop)
    storage::database db;
    w.load(db);
    common::config cfg = small_engine_cfg();
    cfg.durable = true;
    cfg.log_dir = dir.path;
    core::quecc_engine eng(db, cfg);
    common::rng r(kSeed);
    common::run_metrics m;
    for (std::uint32_t i = 0; i < 4; ++i) {
      txn::batch b = w.make_batch(r, kBatchSize, i);
      eng.run_batch(b, m);
    }
    eng.sync_durable();
  }

  {  // recover, then resume durably in place for the remaining 4 batches
    storage::database db;
    w.load(db);
    log::recovery_result rec;
    {
      common::config replay_cfg = small_engine_cfg();
      core::quecc_engine replay_eng(db, replay_cfg);
      rec = log::recover(dir.path, db, replay_eng, log::resolver_for(w));
    }
    EXPECT_EQ(rec.batches_replayed, 4u);
    EXPECT_EQ(rec.txns_applied, 4u * kBatchSize);

    common::config cfg = small_engine_cfg();
    cfg.durable = true;
    cfg.log_dir = dir.path;
    cfg.log_resume = true;
    cfg.log_resume_stream_pos = rec.txns_applied;
    core::quecc_engine eng(db, cfg);
    common::rng r(kSeed);
    for (std::uint64_t i = 0; i < rec.txns_applied; ++i) {
      (void)w.make_txn(r);  // advance the deterministic generator
    }
    common::run_metrics m;
    std::uint32_t id = rec.next_batch_id;
    for (std::uint32_t i = 0; i < 4; ++i) {
      txn::batch b = w.make_batch(r, kBatchSize, id++);
      eng.run_batch(b, m);
    }
    eng.sync_durable();
    EXPECT_EQ(db.state_hash(), reference_hash(8, kBatchSize, kSeed));
  }

  // The resumed log is a complete, recoverable history of all 8 batches.
  const auto rec2 = recover_fresh(dir.path);
  EXPECT_EQ(rec2.res.txns_applied, 8u * kBatchSize);
  EXPECT_EQ(rec2.hash, reference_hash(8, kBatchSize, kSeed));
  const auto commits = scan_commits(dir.path);
  ASSERT_EQ(commits.size(), 8u);
  EXPECT_EQ(commits.back().stream_pos, 8u * kBatchSize);
}

TEST(Recovery, ResumedLogReplansUnacknowledgedBatchLastRecordWins) {
  // Crash window: batch 2's record landed but not its commit record. The
  // resumed run re-plans the same stream slice under the same batch id;
  // recovery must replay the *resumed* (committed) copy exactly once.
  temp_dir dir;
  build_log(dir.path, /*produced=*/3, /*committed=*/2);

  wl::ycsb w(small_ycsb());
  storage::database db;
  w.load(db);
  log::recovery_result rec;
  {
    core::quecc_engine replay_eng(db, small_engine_cfg());
    rec = log::recover(dir.path, db, replay_eng, log::resolver_for(w));
  }
  EXPECT_EQ(rec.batches_replayed, 2u);
  EXPECT_EQ(rec.batches_skipped, 1u);

  common::config cfg = small_engine_cfg();
  cfg.durable = true;
  cfg.log_dir = dir.path;
  cfg.log_resume = true;
  cfg.log_resume_stream_pos = rec.txns_applied;
  core::quecc_engine eng(db, cfg);
  common::rng r(kSeed);
  for (std::uint64_t i = 0; i < rec.txns_applied; ++i) (void)w.make_txn(r);
  common::run_metrics m;
  std::uint32_t id = rec.next_batch_id;  // == 2: re-plans the skipped batch
  for (std::uint32_t i = 2; i < kBatches; ++i) {
    txn::batch b = w.make_batch(r, kBatchSize, id++);
    eng.run_batch(b, m);
  }
  eng.sync_durable();
  EXPECT_EQ(db.state_hash(), reference_hash(kBatches, kBatchSize, kSeed));

  const auto rec2 = recover_fresh(dir.path);
  EXPECT_EQ(rec2.res.txns_applied, std::uint64_t{kBatches} * kBatchSize);
  EXPECT_EQ(rec2.hash, reference_hash(kBatches, kBatchSize, kSeed));
}

}  // namespace
}  // namespace quecc
