// Violation: calling a REQUIRES(mu_) function without holding the mutex.
//
// The pattern under test is the private-helper contract used by
// admission_queue::has_room, log_writer::open_segment, and the protocol
// helpers (mvto::prune, ...): a helper declares REQUIRES and every caller
// must hold the lock. The unguarded call below fails to compile.

#include <cstdint>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class ledger {
 public:
  void deposit_unlocked(std::uint64_t amount) {
    apply(amount);  // error: calling function 'apply' requires holding 'mu_'
  }

 private:
  void apply(std::uint64_t amount) REQUIRES(mu_) { balance_ += amount; }

  quecc::common::mutex mu_;
  std::uint64_t balance_ GUARDED_BY(mu_) = 0;
};

}  // namespace

void cf_requires_not_held_entry() {
  ledger l;
  l.deposit_unlocked(1);
}
