// Violation: writing a GUARDED_BY member without holding its mutex.
//
// This is the contract every annotated subsystem header declares (engine
// counters, admission queue, log writer watermarks...); under Clang
// -Werror=thread-safety the access below fails to compile, and the ctest
// WILL_FAIL entry wrapping this target passes exactly because it does.

#include <cstdint>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace {

class counter {
 public:
  void bump_unlocked() {
    ++value_;  // error: writing variable 'value_' requires holding mutex 'mu_'
  }

 private:
  quecc::common::mutex mu_;
  std::uint64_t value_ GUARDED_BY(mu_) = 0;
};

}  // namespace

void cf_guarded_by_no_lock_entry() {
  counter c;
  c.bump_unlocked();
}
