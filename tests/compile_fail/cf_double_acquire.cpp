// Violation: acquiring the same spinlock twice in one scope.
//
// common::spinlock is not recursive — a second acquisition on the same
// thread spins forever. The SCOPED_CAPABILITY annotations on spin_guard
// let Clang catch the self-deadlock at compile time: the second guard
// below is "acquiring mutex 'lock' that is already held".

#include "common/spinlock.hpp"

void cf_double_acquire_entry() {
  quecc::common::spinlock lock;
  quecc::common::spin_guard first(lock);
  quecc::common::spin_guard second(lock);  // error: already held
}
