// Control: the same primitives the cf_* violations abuse, used correctly.
//
// This file must COMPILE (its ctest entry has no WILL_FAIL). It proves the
// harness builds real code against the real headers — without it, every
// violation test could "pass" because of a broken include path or stale
// compile db rather than a thread-safety diagnostic.

#include <cstdint>

#include "common/mutex.hpp"
#include "common/spinlock.hpp"
#include "common/thread_annotations.hpp"

namespace {

class counter {
 public:
  void bump() {
    quecc::common::mutex_lock lk(mu_);
    apply(1);
  }

  std::uint64_t spins() {
    quecc::common::spin_guard guard(latch_);
    return spins_++;
  }

 private:
  void apply(std::uint64_t amount) REQUIRES(mu_) { value_ += amount; }

  quecc::common::mutex mu_;
  std::uint64_t value_ GUARDED_BY(mu_) = 0;
  quecc::common::spinlock latch_;
  std::uint64_t spins_ GUARDED_BY(latch_) = 0;
};

}  // namespace

void cf_control_entry() {
  counter c;
  c.bump();
  (void)c.spins();
}
