// Unit tests: storage substrate (schema, index, table, database, versions).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "storage/database.hpp"
#include "storage/dual_version.hpp"
#include "storage/hash_index.hpp"
#include "storage/schema.hpp"

namespace quecc::storage {
namespace {

schema two_col_schema() {
  return schema({{"A", col_type::u64, 8}, {"B", col_type::bytes, 12}});
}

TEST(Schema, OffsetsAndRowSize) {
  const auto s = two_col_schema();
  EXPECT_EQ(s.row_size(), 20u);
  EXPECT_EQ(s.offset(0), 0u);
  EXPECT_EQ(s.offset(1), 8u);
  EXPECT_EQ(s.index_of("B"), 1u);
  EXPECT_THROW(s.index_of("C"), std::out_of_range);
}

TEST(Schema, NumericAccessorsRoundTrip) {
  std::vector<std::byte> buf(32);
  std::span<std::byte> row(buf);
  write_u64(row, 0, 0xdeadbeefull);
  write_i64(row, 8, -42);
  write_f64(row, 16, 3.25);
  EXPECT_EQ(read_u64(row, 0), 0xdeadbeefull);
  EXPECT_EQ(read_i64(row, 8), -42);
  EXPECT_DOUBLE_EQ(read_f64(row, 16), 3.25);
}

TEST(Schema, EmptySchemaRejected) {
  EXPECT_THROW(schema(std::vector<column>{}), std::invalid_argument);
}

TEST(HashIndex, InsertLookupErase) {
  hash_index idx(64);
  EXPECT_TRUE(idx.insert(5, 50));
  EXPECT_FALSE(idx.insert(5, 51));  // duplicate
  EXPECT_EQ(idx.lookup(5), 50u);
  EXPECT_EQ(idx.lookup(6), kNoRow);
  EXPECT_TRUE(idx.erase(5));
  EXPECT_FALSE(idx.erase(5));
  EXPECT_EQ(idx.lookup(5), kNoRow);
}

TEST(HashIndex, ManyKeys) {
  hash_index idx(1000);
  for (key_t k = 0; k < 5000; ++k) ASSERT_TRUE(idx.insert(k * 7, k));
  EXPECT_EQ(idx.size(), 5000u);
  for (key_t k = 0; k < 5000; ++k) ASSERT_EQ(idx.lookup(k * 7), k);
}

TEST(HashIndex, ConcurrentInsertsDisjointKeys) {
  hash_index idx(1 << 14);
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&idx, t] {
      for (key_t k = 0; k < 4000; ++k) idx.insert(k * 4 + t, k);
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(idx.size(), 16000u);
}

TEST(Table, InsertAndRead) {
  table t(0, "t", two_col_schema(), 128);
  std::vector<std::byte> payload(20);
  std::span<std::byte> p(payload);
  write_u64(p, 0, 99);
  const auto rid = t.insert(7, payload);
  ASSERT_NE(rid, kNoRow);
  EXPECT_EQ(t.lookup(7), rid);
  EXPECT_EQ(read_u64(t.row(rid), 0), 99u);
  EXPECT_EQ(t.live_rows(), 1u);
}

TEST(Table, DuplicateInsertReturnsNoRow) {
  table t(0, "t", two_col_schema(), 128);
  std::vector<std::byte> payload(20);
  EXPECT_NE(t.insert(7, payload), kNoRow);
  EXPECT_EQ(t.insert(7, payload), kNoRow);
}

// Regression (storage-layer bugfix sweep): a duplicate-key insert used to
// leak its allocated slot — allocated_rows() drifted from live_rows() and
// a duplicate storm ate the loader's headroom until the table "filled up"
// while almost empty. The slot must be recycled.
TEST(Table, DuplicateInsertStormDoesNotLeakSlots) {
  table t(0, "t", two_col_schema(), 4);
  std::vector<std::byte> payload(20);
  ASSERT_NE(t.insert(1, payload), kNoRow);
  for (int i = 0; i < 100; ++i) {
    ASSERT_EQ(t.insert(1, payload), kNoRow);  // way past capacity 4
  }
  EXPECT_EQ(t.allocated_rows(), t.live_rows());
  // Headroom survived the storm: three more distinct keys still fit.
  EXPECT_NE(t.insert(2, payload), kNoRow);
  EXPECT_NE(t.insert(3, payload), kNoRow);
  EXPECT_NE(t.insert(4, payload), kNoRow);
  EXPECT_EQ(t.live_rows(), 4u);
}

// Regression (storage-layer bugfix sweep): an oversized payload used to be
// silently truncated into the row (schema-mismatch corruption); it must
// fail loudly instead. Short payloads stay legal (zero-padded).
TEST(Table, OversizedPayloadThrows) {
  table t(0, "t", two_col_schema(), 8);  // row size 20
  std::vector<std::byte> too_wide(21);
  EXPECT_THROW(t.insert(1, too_wide), std::invalid_argument);
  EXPECT_EQ(t.live_rows(), 0u);
  EXPECT_EQ(t.allocated_rows(), 0u);  // the slot was not leaked either
  std::vector<std::byte> short_ok(8);
  EXPECT_NE(t.insert(1, short_ok), kNoRow);
}

TEST(Table, CapacityExhaustionThrows) {
  table t(0, "t", two_col_schema(), 2);
  std::vector<std::byte> payload(20);
  t.insert(1, payload);
  t.insert(2, payload);
  EXPECT_THROW(t.insert(3, payload), std::length_error);
}

TEST(Table, StateHashIgnoresInsertionOrder) {
  table a(0, "t", two_col_schema(), 16);
  table b(0, "t", two_col_schema(), 16);
  std::vector<std::byte> p1(20), p2(20);
  write_u64(std::span<std::byte>(p1), 0, 1);
  write_u64(std::span<std::byte>(p2), 0, 2);
  a.insert(10, p1);
  a.insert(20, p2);
  b.insert(20, p2);
  b.insert(10, p1);
  EXPECT_EQ(a.state_hash(), b.state_hash());
}

TEST(Table, StateHashSeesValueChange) {
  table a(0, "t", two_col_schema(), 16);
  std::vector<std::byte> p(20);
  const auto rid = a.insert(10, p);
  const auto h0 = a.state_hash();
  write_u64(a.row(rid), 0, 777);
  EXPECT_NE(a.state_hash(), h0);
}

TEST(Table, EraseRemovesFromHashAndIndex) {
  table a(0, "t", two_col_schema(), 16);
  std::vector<std::byte> p(20);
  a.insert(10, p);
  const auto h_with = a.state_hash();
  a.erase(10);
  EXPECT_EQ(a.lookup(10), kNoRow);
  EXPECT_NE(a.state_hash(), h_with);
  EXPECT_EQ(a.live_rows(), 0u);
}

// --- per-partition arenas --------------------------------------------------

TEST(RidCodec, RoundTripsShardAndSlot) {
  const row_id_t rid = make_rid(13, 0x123456789aull);
  EXPECT_EQ(rid_shard(rid), 13u);
  EXPECT_EQ(rid_slot(rid), 0x123456789aull);
  EXPECT_EQ(rid_shard(make_rid(0, 0)), 0u);
  EXPECT_EQ(rid_slot(make_rid(0, 0)), 0u);
}

TEST(Table, ShardedInsertRoutesToHomeArena) {
  table t(0, "t", two_col_schema(), 64, /*shards=*/4);
  ASSERT_EQ(t.shard_count(), 4u);
  std::vector<std::byte> p(20);
  for (key_t k = 0; k < 32; ++k) {
    const auto part = static_cast<part_id_t>(k % 4);
    const auto rid = t.insert(k, p, part);
    ASSERT_NE(rid, kNoRow);
    EXPECT_EQ(rid_shard(rid), part);  // row landed in its home arena
  }
  for (part_id_t s = 0; s < 4; ++s) {
    EXPECT_EQ(t.live_rows_in(s), 8u);
    EXPECT_EQ(t.allocated_rows_in(s), 8u);
  }
  EXPECT_EQ(t.live_rows(), 32u);
}

TEST(Table, PartitionLocalLookupMatchesStripedLookup) {
  table t(0, "t", two_col_schema(), 64, /*shards=*/4);
  std::vector<std::byte> p(20);
  for (key_t k = 0; k < 32; ++k) {
    t.insert(k, p, static_cast<part_id_t>(k % 4));
  }
  for (key_t k = 0; k < 40; ++k) {
    const auto part = static_cast<part_id_t>(k % 4);
    EXPECT_EQ(t.lookup_local(k, part), t.lookup(k, part));
  }
}

TEST(Table, StateHashIndependentOfShardCount) {
  table one(0, "t", two_col_schema(), 64);
  table four(0, "t", two_col_schema(), 64, 4);
  std::vector<std::byte> p(20);
  for (key_t k = 0; k < 32; ++k) {
    write_u64(std::span<std::byte>(p), 0, k * 31);
    one.insert(k, p);
    four.insert(k, p, static_cast<part_id_t>(k % 4));
  }
  EXPECT_EQ(one.state_hash(), four.state_hash());
  EXPECT_EQ(one.live_rows(), four.live_rows());
}

TEST(Table, ShardCapacityIsPerArena) {
  table t(0, "t", two_col_schema(), 4, /*shards=*/2);  // 2 slots per arena
  std::vector<std::byte> p(20);
  EXPECT_NE(t.insert(0, p, 0), kNoRow);
  EXPECT_NE(t.insert(2, p, 0), kNoRow);
  // Shard 0 is full; its arena throws even though shard 1 is empty.
  EXPECT_THROW(t.insert(4, p, 0), std::length_error);
  EXPECT_NE(t.insert(1, p, 1), kNoRow);  // shard 1 unaffected
}

TEST(Table, EraseThenReinsertReclaimsTombstone) {
  table t(0, "t", two_col_schema(), 8, 2);
  std::vector<std::byte> p(20);
  write_u64(std::span<std::byte>(p), 0, 1);
  ASSERT_NE(t.insert(6, p, 0), kNoRow);
  ASSERT_TRUE(t.erase(6, 0));
  EXPECT_EQ(t.lookup(6, 0), kNoRow);
  EXPECT_EQ(t.lookup_local(6, 0), kNoRow);
  write_u64(std::span<std::byte>(p), 0, 2);
  const auto rid = t.insert(6, p, 0);
  ASSERT_NE(rid, kNoRow);
  EXPECT_EQ(t.lookup_local(6, 0), rid);
  EXPECT_EQ(read_u64(t.row(rid), 0), 2u);
  EXPECT_EQ(t.live_rows_in(0), 1u);
}

TEST(Database, ClonePreservesShardLayout) {
  database db;
  auto& t = db.create_table("t", two_col_schema(), 64, 4);
  std::vector<std::byte> p(20);
  for (key_t k = 0; k < 32; ++k) {
    write_u64(std::span<std::byte>(p), 0, k * 7);
    t.insert(k, p, static_cast<part_id_t>(k % 4));
  }
  auto copy = db.clone();
  EXPECT_EQ(copy->state_hash(), db.state_hash());
  const auto& ct = copy->at(0);
  ASSERT_EQ(ct.shard_count(), 4u);
  for (part_id_t s = 0; s < 4; ++s) {
    EXPECT_EQ(ct.shard_capacity(s), t.shard_capacity(s));
    EXPECT_EQ(ct.live_rows_in(s), t.live_rows_in(s));
  }
}

TEST(DualVersion, ShardedSnapshotsAndPublishes) {
  database db;
  auto& t = db.create_table("t", two_col_schema(), 64, 4);
  std::vector<std::byte> p(20);
  write_u64(std::span<std::byte>(p), 0, 5);
  const auto rid = t.insert(9, p, 1);  // shard 1
  ASSERT_EQ(rid_shard(rid), 1u);

  dual_version_store dv(db);
  EXPECT_EQ(read_u64(dv.committed_row(0, rid), 0), 5u);
  write_u64(t.row(rid), 0, 42);
  EXPECT_EQ(read_u64(dv.committed_row(0, rid), 0), 5u);  // still old
  dv.publish(db, 0, rid);
  EXPECT_EQ(read_u64(dv.committed_row(0, rid), 0), 42u);
}

// --- lock-free reader / atomic size guarantees (TSAN-exercised) ------------

// Regression (storage-layer bugfix sweep): size() used to walk every
// bucket unsynchronized while writers held only their own stripe — a data
// race and a torn count. It now reads a single atomic counter; this test
// hammers it (and the lock-free lookup path) against concurrent writers
// and runs under the ThreadSanitizer CI job.
TEST(HashIndex, SizeAndLockFreeLookupSafeUnderConcurrentWriters) {
  hash_index idx(1 << 12);
  constexpr int kWriters = 4;
  constexpr key_t kPerWriter = 2000;
  std::atomic<bool> done{false};
  std::atomic<std::uint64_t> reads{0};

  std::thread reader([&] {
    key_t k = 0;
    while (!done.load(std::memory_order_acquire)) {
      const std::size_t s = idx.size();
      ASSERT_LE(s, static_cast<std::size_t>(kWriters) * kPerWriter);
      const row_id_t r = idx.lookup_unlocked(k);
      if (r != kNoRow) {
        // A published entry is complete: the row is the one its key got.
        ASSERT_EQ(r, k * 10);
      }
      k = (k + 7) % (kWriters * kPerWriter);
      reads.fetch_add(1, std::memory_order_relaxed);
    }
  });
  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&idx, w] {
      for (key_t i = 0; i < kPerWriter; ++i) {
        const key_t k = i * kWriters + w;
        idx.insert(k, k * 10);
        if (i % 3 == 0) idx.erase(k);  // tombstone churn
      }
    });
  }
  for (auto& t : writers) t.join();
  done.store(true, std::memory_order_release);
  reader.join();
  EXPECT_GT(reads.load(), 0u);

  // Exact at the quiescent point: every 3rd key per writer was erased.
  std::size_t expect = 0;
  for (key_t i = 0; i < kPerWriter; ++i) expect += (i % 3 == 0) ? 0 : 1;
  EXPECT_EQ(idx.size(), expect * kWriters);
}

TEST(Database, CatalogResolution) {
  database db;
  db.create_table("alpha", two_col_schema(), 8);
  db.create_table("beta", two_col_schema(), 8);
  EXPECT_EQ(db.cat().id_of("alpha"), 0);
  EXPECT_EQ(db.cat().id_of("beta"), 1);
  EXPECT_EQ(db.cat().name_of(1), "beta");
  EXPECT_THROW(db.cat().id_of("gamma"), std::out_of_range);
  EXPECT_THROW(db.create_table("alpha", two_col_schema(), 8),
               std::invalid_argument);
}

// database::state_hash is order-independent *within* a table but combines
// tables order-sensitively (see database.hpp): swapping two rows between
// tables keeps the multiset of (key, payload) pairs identical yet must
// change the hash, or a recovery that restored rows into the wrong tables
// would go undetected.
TEST(Database, StateHashDistinguishesWhichTableHoldsARow) {
  std::vector<std::byte> p1(20), p2(20);
  write_u64(std::span<std::byte>(p1), 0, 111);
  write_u64(std::span<std::byte>(p2), 0, 222);

  database a;  // alpha holds p1, beta holds p2
  a.create_table("alpha", two_col_schema(), 8).insert(1, p1);
  a.create_table("beta", two_col_schema(), 8).insert(2, p2);

  database b;  // the same two rows, swapped between the tables
  b.create_table("alpha", two_col_schema(), 8).insert(2, p2);
  b.create_table("beta", two_col_schema(), 8).insert(1, p1);

  EXPECT_NE(a.state_hash(), b.state_hash());

  database c;  // identical contents to `a`, different insertion order
  auto& c_alpha = c.create_table("alpha", two_col_schema(), 8);
  auto& c_beta = c.create_table("beta", two_col_schema(), 8);
  c_beta.insert(2, p2);
  c_alpha.insert(1, p1);
  EXPECT_EQ(a.state_hash(), c.state_hash());
}

TEST(Database, CloneMatchesStateHash) {
  database db;
  auto& t = db.create_table("t", two_col_schema(), 32);
  std::vector<std::byte> p(20);
  for (key_t k = 0; k < 10; ++k) {
    write_u64(std::span<std::byte>(p), 0, k * 11);
    t.insert(k, p);
  }
  auto copy = db.clone();
  EXPECT_EQ(copy->state_hash(), db.state_hash());
  // Mutating the clone must not affect the original.
  write_u64(copy->at(0).row(copy->at(0).lookup(3)), 0, 999);
  EXPECT_NE(copy->state_hash(), db.state_hash());
}

TEST(DualVersion, SnapshotsAndPublishes) {
  database db;
  auto& t = db.create_table("t", two_col_schema(), 32);
  std::vector<std::byte> p(20);
  write_u64(std::span<std::byte>(p), 0, 5);
  const auto rid = t.insert(1, p);

  dual_version_store dv(db);
  EXPECT_EQ(read_u64(dv.committed_row(0, rid), 0), 5u);

  write_u64(t.row(rid), 0, 42);  // dirty the working copy
  EXPECT_EQ(read_u64(dv.committed_row(0, rid), 0), 5u);  // still old

  dv.publish(db, 0, rid);
  EXPECT_EQ(read_u64(dv.committed_row(0, rid), 0), 42u);
}

}  // namespace
}  // namespace quecc::storage
