// Unit tests: common substrate (rng, zipf, spinlock, stats, config, pool).
#include <gtest/gtest.h>

#include <mutex>
#include <set>
#include <thread>

#include "common/batch_pool.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "common/stats.hpp"
#include "common/thread_util.hpp"
#include "common/zipf.hpp"

namespace quecc {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  common::rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  common::rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  common::rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  common::rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(5, 15);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 15u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 11u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  common::rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, UniformWhenThetaZero) {
  common::rng r(3);
  common::zipf_generator z(1000, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) counts[z.next(r) / 100] += 1;
  for (const int c : counts) {
    EXPECT_GT(c, 8000);
    EXPECT_LT(c, 12000);
  }
}

TEST(Zipf, SkewConcentratesOnHotKeys) {
  common::rng r(3);
  common::zipf_generator z(10000, 0.99);
  std::uint64_t hot = 0, total = 100000;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (z.next(r) < 100) ++hot;  // hottest 1% of keys
  }
  // Under theta=0.99, the top 1% draws should take far more than 1%.
  EXPECT_GT(hot, total / 4);
}

TEST(Zipf, StaysInDomain) {
  common::rng r(11);
  common::zipf_generator z(50, 0.9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.next(r), 50u);
}

TEST(Spinlock, MutualExclusion) {
  common::spinlock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        std::scoped_lock guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 80000u);
}

TEST(Spinlock, TryLock) {
  common::spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Histogram, PercentilesOrdered) {
  common::latency_histogram h;
  for (std::uint64_t ns = 100; ns <= 100000; ns += 100) h.record_nanos(ns);
  EXPECT_LE(h.percentile_nanos(50), h.percentile_nanos(99));
  EXPECT_GT(h.mean_nanos(), 0.0);
  EXPECT_EQ(h.count(), 1000u);
}

TEST(Histogram, MergeAddsCounts) {
  common::latency_histogram a, b;
  a.record_nanos(1000);
  b.record_nanos(2000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Histogram, EmptyIsZero) {
  common::latency_histogram h;
  EXPECT_EQ(h.percentile_nanos(99), 0.0);
  EXPECT_EQ(h.mean_nanos(), 0.0);
}

TEST(RunMetrics, ThroughputAndMerge) {
  common::run_metrics a;
  a.committed = 1000;
  a.elapsed_seconds = 2.0;
  EXPECT_DOUBLE_EQ(a.throughput(), 500.0);
  common::run_metrics b;
  b.committed = 500;
  b.aborted = 5;
  a.merge(b);
  EXPECT_EQ(a.committed, 1500u);
  EXPECT_EQ(a.aborted, 5u);
}

TEST(Config, ValidateRejectsNonsense) {
  common::config c;
  c.planner_threads = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = common::config{};
  c.batch_size = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = common::config{};
  c.nodes = 8;
  c.partitions = 4;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = common::config{};
  EXPECT_NO_THROW(c.validate());
}

TEST(Config, Describe) {
  common::config c;
  EXPECT_NE(c.describe().find("speculative"), std::string::npos);
  c.execution = common::exec_model::conservative;
  c.iso = common::isolation::read_committed;
  EXPECT_NE(c.describe().find("conservative"), std::string::npos);
  EXPECT_NE(c.describe().find("read-committed"), std::string::npos);
}

TEST(BatchPool, RunsJobOncePerWorkerPerRound) {
  std::atomic<int> runs{0};
  common::batch_pool pool(3, [&](unsigned) { runs.fetch_add(1); }, "t");
  pool.run_round();
  EXPECT_EQ(runs.load(), 3);
  pool.run_round();
  EXPECT_EQ(runs.load(), 6);
}

TEST(BatchPool, SplitPhaseRound) {
  std::atomic<int> runs{0};
  common::batch_pool pool(2, [&](unsigned) { runs.fetch_add(1); }, "t");
  pool.begin_round();
  pool.end_round();
  EXPECT_EQ(runs.load(), 2);
}

TEST(ThreadUtil, HardwareThreadsPositive) {
  EXPECT_GE(common::hardware_threads(), 1u);
}

TEST(ThreadUtil, SpinForMicrosElapses) {
  common::stopwatch sw;
  common::spin_for_micros(500);
  EXPECT_GE(sw.nanos(), 400'000u);
}

TEST(Types, TxnIdPacking) {
  const auto id = make_txn_id(7, 1234);
  EXPECT_EQ(txn_id_batch(id), 7u);
  EXPECT_EQ(txn_id_seq(id), 1234u);
}

}  // namespace
}  // namespace quecc
