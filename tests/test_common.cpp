// Unit tests: common substrate (rng, zipf, spinlock, stats, config, pool,
// topology/placement).
#include <gtest/gtest.h>

#include <array>
#include <cmath>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <set>
#include <thread>

#include "common/batch_pool.hpp"
#include "common/config.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "common/stats.hpp"
#include "common/thread_util.hpp"
#include "common/topology.hpp"
#include "common/zipf.hpp"
#include "obs/metrics.hpp"

namespace quecc {
namespace {

TEST(Rng, DeterministicAcrossInstances) {
  common::rng a(42), b(42);
  for (int i = 0; i < 1000; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  common::rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i) same += a.next() == b.next();
  EXPECT_LT(same, 3);
}

TEST(Rng, NextBelowInRange) {
  common::rng r(7);
  for (int i = 0; i < 10000; ++i) {
    EXPECT_LT(r.next_below(17), 17u);
  }
}

TEST(Rng, NextInInclusiveBounds) {
  common::rng r(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 10000; ++i) {
    const auto v = r.next_in(5, 15);
    EXPECT_GE(v, 5u);
    EXPECT_LE(v, 15u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 11u);  // all values hit
}

TEST(Rng, DoubleInUnitInterval) {
  common::rng r(9);
  for (int i = 0; i < 10000; ++i) {
    const double d = r.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Zipf, UniformWhenThetaZero) {
  common::rng r(3);
  common::zipf_generator z(1000, 0.0);
  std::vector<int> counts(10, 0);
  for (int i = 0; i < 100000; ++i) counts[z.next(r) / 100] += 1;
  for (const int c : counts) {
    EXPECT_GT(c, 8000);
    EXPECT_LT(c, 12000);
  }
}

TEST(Zipf, SkewConcentratesOnHotKeys) {
  common::rng r(3);
  common::zipf_generator z(10000, 0.99);
  std::uint64_t hot = 0, total = 100000;
  for (std::uint64_t i = 0; i < total; ++i) {
    if (z.next(r) < 100) ++hot;  // hottest 1% of keys
  }
  // Under theta=0.99, the top 1% draws should take far more than 1%.
  EXPECT_GT(hot, total / 4);
}

TEST(Zipf, StaysInDomain) {
  common::rng r(11);
  common::zipf_generator z(50, 0.9);
  for (int i = 0; i < 10000; ++i) EXPECT_LT(z.next(r), 50u);
}

TEST(Spinlock, MutualExclusion) {
  common::spinlock lock;
  std::uint64_t counter = 0;
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&] {
      for (int i = 0; i < 20000; ++i) {
        std::scoped_lock guard(lock);
        ++counter;
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(counter, 80000u);
}

TEST(Spinlock, TryLock) {
  common::spinlock lock;
  EXPECT_TRUE(lock.try_lock());
  EXPECT_FALSE(lock.try_lock());
  lock.unlock();
  EXPECT_TRUE(lock.try_lock());
  lock.unlock();
}

TEST(Histogram, PercentilesOrdered) {
  common::latency_histogram h;
  for (std::uint64_t ns = 100; ns <= 100000; ns += 100) h.record_nanos(ns);
  EXPECT_LE(h.percentile_nanos(50), h.percentile_nanos(99));
  EXPECT_GT(h.mean_nanos(), 0.0);
  EXPECT_EQ(h.count(), 1000u);
}

TEST(Histogram, MergeAddsCounts) {
  common::latency_histogram a, b;
  a.record_nanos(1000);
  b.record_nanos(2000);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
}

TEST(Histogram, EmptyIsZero) {
  common::latency_histogram h;
  EXPECT_EQ(h.percentile_nanos(99), 0.0);
  EXPECT_EQ(h.mean_nanos(), 0.0);
  EXPECT_EQ(h.percentile_nanos(0), 0.0);
  EXPECT_EQ(h.percentile_nanos(100), 0.0);
  EXPECT_EQ(h.count(), 0u);
}

TEST(Histogram, ExtremeQuantilesStayInRecordedRange) {
  common::latency_histogram h;
  h.record_nanos(1000);     // bucket ~[512, 1024)
  h.record_nanos(1000000);  // bucket ~[2^19, 2^20)
  // q=0 must land in the smallest recorded bucket, q=100 in the largest —
  // never past the end of the bucket table.
  EXPECT_LT(h.percentile_nanos(0), 2048.0);
  EXPECT_GT(h.percentile_nanos(100), 500000.0);
  EXPECT_LT(h.percentile_nanos(100), 4.0e6);
  // Out-of-range q values clamp instead of reading out of bounds.
  EXPECT_EQ(h.percentile_nanos(-5), h.percentile_nanos(0));
  EXPECT_EQ(h.percentile_nanos(250), h.percentile_nanos(100));
}

TEST(Histogram, ZeroAndHugeSamplesClampToEdgeBuckets) {
  common::latency_histogram h;
  h.record_nanos(0);     // smallest bucket, no underflow
  h.record_nanos(~0ull); // clamps into the last bucket, no overflow
  EXPECT_EQ(h.count(), 2u);
  EXPECT_GT(h.percentile_nanos(100), h.percentile_nanos(0));
}

TEST(Histogram, MergeAfterReset) {
  common::latency_histogram a, b;
  a.record_nanos(1000);
  a.reset();
  EXPECT_EQ(a.count(), 0u);
  EXPECT_EQ(a.mean_nanos(), 0.0);
  b.record_nanos(2000);
  a.merge(b);
  EXPECT_EQ(a.count(), 1u);
  EXPECT_DOUBLE_EQ(a.mean_nanos(), 2000.0);
  // The reset sample must not linger in any bucket.
  EXPECT_GT(a.percentile_nanos(0), 1024.0);
}

TEST(Histogram, MergeEmptyIsNoOp) {
  common::latency_histogram a, empty;
  a.record_nanos(1000);
  a.record_nanos(5000);
  const auto count = a.count();
  const auto sum = a.sum_nanos();
  const double p50 = a.percentile_nanos(50);
  a.merge(empty);
  EXPECT_EQ(a.count(), count);
  EXPECT_EQ(a.sum_nanos(), sum);
  EXPECT_DOUBLE_EQ(a.percentile_nanos(50), p50);
}

TEST(Histogram, MergeIntoEmptyReproducesOther) {
  common::latency_histogram a, b;
  for (std::uint64_t ns : {0ull, 1ull, 999ull, 4096ull, 1000000ull, ~0ull}) {
    b.record_nanos(ns);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), b.count());
  EXPECT_EQ(a.sum_nanos(), b.sum_nanos());
  for (std::size_t i = 0; i < common::latency_histogram::kBuckets; ++i) {
    EXPECT_EQ(a.bucket_count(i), b.bucket_count(i)) << "bucket " << i;
  }
  for (double q : {0.0, 25.0, 50.0, 95.0, 100.0}) {
    EXPECT_DOUBLE_EQ(a.percentile_nanos(q), b.percentile_nanos(q));
  }
}

TEST(Histogram, SingleSampleReportsBucketMidpoint) {
  // A lone sample interpolates to the linear midpoint of its log bucket:
  // 1000ns lands in [512, 1024), every quantile reports (512+1024)/2.
  common::latency_histogram h;
  h.record_nanos(1000);
  for (double q : {0.0, 50.0, 100.0}) {
    EXPECT_DOUBLE_EQ(h.percentile_nanos(q), (512.0 + 1024.0) / 2.0);
  }
}

TEST(Histogram, PercentileInterpolationBoundsAndMonotone) {
  common::latency_histogram h;
  // Spread samples across several buckets.
  for (std::uint64_t ns = 64; ns <= 1 << 20; ns *= 2) {
    for (int i = 0; i < 7; ++i) h.record_nanos(ns + static_cast<unsigned>(i));
  }
  double prev = -1.0;
  for (double q = 0.0; q <= 100.0; q += 2.5) {
    const double p = h.percentile_nanos(q);
    // Quantiles are monotone in q and stay inside the recorded range.
    EXPECT_GE(p, prev) << "q=" << q;
    EXPECT_GE(p, 64.0);
    EXPECT_LE(p, std::ldexp(1.0, 21));
    prev = p;
  }
}

TEST(Histogram, BucketLowerBounds) {
  EXPECT_DOUBLE_EQ(common::latency_histogram::bucket_lower_nanos(0), 0.0);
  EXPECT_DOUBLE_EQ(common::latency_histogram::bucket_lower_nanos(1), 2.0);
  EXPECT_DOUBLE_EQ(common::latency_histogram::bucket_lower_nanos(10), 1024.0);
  EXPECT_DOUBLE_EQ(common::latency_histogram::bucket_lower_nanos(63),
                   std::ldexp(1.0, 63));
}

TEST(Histogram, MergeBucketCountsMatchesMerge) {
  // merge_bucket_counts over a raw bucket array must agree with merge()
  // over the histogram those buckets came from (the obs registry folds
  // per-thread atomic shards through this path).
  common::latency_histogram src;
  for (std::uint64_t ns : {100ull, 2000ull, 2048ull, 700000ull}) {
    src.record_nanos(ns);
  }
  std::array<std::uint64_t, common::latency_histogram::kBuckets> raw{};
  for (std::size_t i = 0; i < raw.size(); ++i) raw[i] = src.bucket_count(i);

  common::latency_histogram via_merge, via_raw;
  via_merge.record_nanos(50);
  via_raw.record_nanos(50);
  via_merge.merge(src);
  via_raw.merge_bucket_counts(raw.data(), src.count(), src.sum_nanos());
  EXPECT_EQ(via_raw.count(), via_merge.count());
  EXPECT_EQ(via_raw.sum_nanos(), via_merge.sum_nanos());
  for (std::size_t i = 0; i < raw.size(); ++i) {
    EXPECT_EQ(via_raw.bucket_count(i), via_merge.bucket_count(i));
  }
  for (double q : {0.0, 50.0, 99.0, 100.0}) {
    EXPECT_DOUBLE_EQ(via_raw.percentile_nanos(q),
                     via_merge.percentile_nanos(q));
  }
}

TEST(RunMetrics, ThroughputAndMerge) {
  common::run_metrics a;
  a.committed = 1000;
  a.elapsed_seconds = 2.0;
  EXPECT_DOUBLE_EQ(a.throughput(), 500.0);
  common::run_metrics b;
  b.committed = 500;
  b.aborted = 5;
  a.merge(b);
  EXPECT_EQ(a.committed, 1500u);
  EXPECT_EQ(a.aborted, 5u);
}

TEST(RunMetrics, SummarySplitsQueueAndExecLatency) {
  common::run_metrics m;
  m.committed = 10;
  m.elapsed_seconds = 1.0;
  m.txn_latency.record_nanos(1000);
  // Closed-loop runs never record queueing: the summary shows exec only.
  auto s = m.summary("x");
  EXPECT_NE(s.find("exec{"), std::string::npos);
  EXPECT_EQ(s.find("queue{"), std::string::npos);
  EXPECT_EQ(s.find("e2e{"), std::string::npos);
  // The async path records the split; both lines must appear.
  m.queue_latency.record_nanos(5000);
  m.e2e_latency.record_nanos(6000);
  s = m.summary("x");
  EXPECT_NE(s.find("queue{"), std::string::npos);
  EXPECT_NE(s.find("e2e{"), std::string::npos);
}

TEST(RunMetrics, MergeCombinesLatencySplit) {
  common::run_metrics a, b;
  b.queue_latency.record_nanos(100);
  b.e2e_latency.record_nanos(200);
  b.txn_latency.record_nanos(50);
  a.merge(b);
  EXPECT_EQ(a.queue_latency.count(), 1u);
  EXPECT_EQ(a.e2e_latency.count(), 1u);
  EXPECT_EQ(a.txn_latency.count(), 1u);
}

TEST(Config, ValidateRejectsNonsense) {
  common::config c;
  c.planner_threads = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = common::config{};
  c.batch_size = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = common::config{};
  c.admission_capacity = 0;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = common::config{};
  c.nodes = 8;
  c.partitions = 4;
  EXPECT_THROW(c.validate(), std::invalid_argument);
  c = common::config{};
  EXPECT_NO_THROW(c.validate());
}

TEST(Config, Describe) {
  common::config c;
  EXPECT_NE(c.describe().find("speculative"), std::string::npos);
  c.execution = common::exec_model::conservative;
  c.iso = common::isolation::read_committed;
  EXPECT_NE(c.describe().find("conservative"), std::string::npos);
  EXPECT_NE(c.describe().find("read-committed"), std::string::npos);
}

TEST(BatchPool, RunsJobOncePerWorkerPerRound) {
  std::atomic<int> runs{0};
  common::batch_pool pool(3, [&](unsigned) { runs.fetch_add(1); }, "t");
  pool.run_round();
  EXPECT_EQ(runs.load(), 3);
  pool.run_round();
  EXPECT_EQ(runs.load(), 6);
}

TEST(BatchPool, SplitPhaseRound) {
  std::atomic<int> runs{0};
  common::batch_pool pool(2, [&](unsigned) { runs.fetch_add(1); }, "t");
  pool.begin_round();
  pool.end_round();
  EXPECT_EQ(runs.load(), 2);
}

TEST(ThreadUtil, HardwareThreadsPositive) {
  EXPECT_GE(common::hardware_threads(), 1u);
}

TEST(ThreadUtil, SpinForMicrosElapses) {
  common::stopwatch sw;
  common::spin_for_micros(500);
  EXPECT_GE(sw.nanos(), 400'000u);
}

TEST(Types, TxnIdPacking) {
  const auto id = make_txn_id(7, 1234);
  EXPECT_EQ(txn_id_batch(id), 7u);
  EXPECT_EQ(txn_id_seq(id), 1234u);
}

// --- topology / NUMA placement (common/topology.hpp) ------------------------

TEST(Topology, ParseCpulistHandlesRangesCommasAndJunk) {
  using V = std::vector<unsigned>;
  EXPECT_EQ(common::parse_cpulist("0-3,8,10-11"), (V{0, 1, 2, 3, 8, 10, 11}));
  EXPECT_EQ(common::parse_cpulist(" 2 , 0-1 \n"), (V{0, 1, 2}));
  EXPECT_EQ(common::parse_cpulist("3,1,2-3"), (V{1, 2, 3}));  // sort + dedup
  EXPECT_TRUE(common::parse_cpulist("").empty());
  EXPECT_TRUE(common::parse_cpulist("garbage").empty());
  EXPECT_TRUE(common::parse_cpulist("5-2").empty());  // inverted range
}

/// Synthetic two-socket topology: node 0 owns cpus 0-3, node 2 owns 4-7
/// (sparse node ids, like a real box with a disabled socket in between).
common::topology two_socket_topo() {
  common::topology t;
  t.nodes.push_back({0, {0, 1, 2, 3}});
  t.nodes.push_back({2, {4, 5, 6, 7}});
  return t;
}

TEST(Topology, ReadTopologyParsesFakeSysfsAndSkipsCpulessNodes) {
  namespace fs = std::filesystem;
  std::string root = (fs::temp_directory_path() / "quecc-sysfs-XXXXXX").string();
  ASSERT_NE(::mkdtemp(root.data()), nullptr);
  fs::create_directories(root + "/node0");
  fs::create_directories(root + "/node1");
  fs::create_directories(root + "/node3");
  std::ofstream(root + "/node0/cpulist") << "0-1\n";
  std::ofstream(root + "/node1/cpulist") << "\n";  // memory-only node
  std::ofstream(root + "/node3/cpulist") << "2-3\n";

  const common::topology t = common::read_topology(root);
  ASSERT_EQ(t.nodes.size(), 2u);  // cpuless node1 skipped, sparse id kept
  EXPECT_EQ(t.nodes[0].id, 0u);
  EXPECT_EQ(t.nodes[1].id, 3u);
  EXPECT_TRUE(t.multi_node());
  EXPECT_EQ(t.cpu_count(), 4u);
  EXPECT_EQ(t.flatten(), (std::vector<unsigned>{0, 1, 2, 3}));
  EXPECT_EQ(t.node_of_cpu(3), 3u);
  EXPECT_EQ(t.node_of_cpu(99), 0u);  // unknown cpu -> first node

  std::error_code ec;
  fs::remove_all(root, ec);
}

TEST(Topology, ReadTopologyFallsBackToSingleNode) {
  const common::topology t =
      common::read_topology("/nonexistent/quecc-sysfs");
  ASSERT_EQ(t.nodes.size(), 1u);
  EXPECT_FALSE(t.multi_node());
  EXPECT_EQ(t.cpu_count(), common::hardware_threads());
}

TEST(Placement, CompactPacksExecutorsNodeMajor) {
  const auto topo = two_socket_topo();
  common::placement_spec spec;
  spec.planners = 2;
  spec.executors = 6;
  spec.policy = common::pin_policy::compact;
  const auto plan = common::compute_placement(topo, spec);
  // Executors 0-3 fill node 0's cpus, 4-5 start node 2's.
  EXPECT_EQ(plan.executor_cpu,
            (std::vector<unsigned>{0, 1, 2, 3, 4, 5}));
  EXPECT_EQ(plan.executor_node,
            (std::vector<unsigned>{0, 0, 0, 0, 2, 2}));
  // Arena a belongs on executor (a % E)'s socket.
  EXPECT_EQ(plan.node_of_arena(0), 0u);
  EXPECT_EQ(plan.node_of_arena(4), 2u);
  EXPECT_EQ(plan.node_of_arena(6), 0u);  // wraps: 6 % 6 = executor 0
}

TEST(Placement, SpreadRoundRobinsExecutorsAcrossNodes) {
  const auto topo = two_socket_topo();
  common::placement_spec spec;
  spec.planners = 2;
  spec.executors = 4;
  spec.policy = common::pin_policy::spread;
  const auto plan = common::compute_placement(topo, spec);
  EXPECT_EQ(plan.executor_node, (std::vector<unsigned>{0, 2, 0, 2}));
  EXPECT_EQ(plan.executor_cpu, (std::vector<unsigned>{0, 4, 1, 5}));
}

TEST(Placement, NoneKeepsLegacyRawIndexAssignment) {
  const auto topo = two_socket_topo();
  common::placement_spec spec;
  spec.planners = 2;
  spec.executors = 2;
  spec.policy = common::pin_policy::none;
  const auto plan = common::compute_placement(topo, spec);
  EXPECT_EQ(plan.planner_cpu, (std::vector<unsigned>{0, 1}));
  EXPECT_EQ(plan.executor_cpu, (std::vector<unsigned>{2, 3}));  // p + e
  EXPECT_EQ(plan.epilogue_cpu, 4u);
  EXPECT_EQ(plan.epilogue_node, 2u);  // attribution still topology-aware
}

TEST(Placement, PlannersSpreadAndEpilogueLandsOnNodeZero) {
  const auto topo = two_socket_topo();
  common::placement_spec spec;
  spec.planners = 4;
  spec.executors = 4;
  spec.policy = common::pin_policy::compact;
  const auto plan = common::compute_placement(topo, spec);
  // Executors claimed node 0's cpus 0-3; planners alternate nodes and
  // claim past what executors took on each node.
  EXPECT_EQ(plan.planner_cpu, (std::vector<unsigned>{0, 4, 1, 5}));
  EXPECT_EQ(plan.epilogue_node, 0u);
  // Placement computation never touches affinity — pure function.
  const auto again = common::compute_placement(topo, spec);
  EXPECT_EQ(plan.planner_cpu, again.planner_cpu);
  EXPECT_EQ(plan.executor_cpu, again.executor_cpu);
}

TEST(Placement, DescribeListsThreadsAndArenas) {
  const auto topo = two_socket_topo();
  common::placement_spec spec;
  spec.planners = 1;
  spec.executors = 2;
  spec.policy = common::pin_policy::compact;
  const auto plan = common::compute_placement(topo, spec);
  const std::string map = plan.describe(4);
  EXPECT_NE(map.find("planner 0"), std::string::npos);
  EXPECT_NE(map.find("executor 1"), std::string::npos);
  EXPECT_NE(map.find("epilogue"), std::string::npos);
  EXPECT_NE(map.find("arena 3"), std::string::npos);
}

TEST(Topology, BindMemoryDegradesCleanlyOnSingleNode) {
  // On a single-node box (CI) binding must be a clean no-op, never an
  // error path that crashes; on multi-node boxes it is best-effort.
  alignas(4096) static char page[4096];
  if (!common::system_topology().multi_node()) {
    EXPECT_FALSE(common::bind_memory_to_node(page, sizeof page, 0));
  }
  EXPECT_FALSE(common::bind_memory_to_node(nullptr, 64, 0));
  EXPECT_FALSE(common::bind_memory_to_node(page, 0, 0));
  (void)common::node_of_address(page);  // must not crash; -1 is fine
}

TEST(ThreadUtil, PinPastCpuCountWrapsAndCounts) {
  // Satellite of the three-stage PR: pinning past the machine's cpu count
  // used to be a silent no-op (oversubscribed --pin-threads runs gave no
  // hint several workers shared one core). It must now wrap through the
  // topology and bump thread.pin_wrapped_total.
  auto wrapped_total = [] {
    const auto snap = obs::snapshot_metrics();
    for (const auto& [name, v] : snap.counters) {
      if (name == "thread.pin_wrapped_total") return v;
    }
    return std::uint64_t{0};
  };
  const auto before = wrapped_total();
  bool ok = false;
  std::thread t([&] {
    ok = common::pin_self_to(common::hardware_threads() + 7);
  });
  t.join();
#if !defined(QUECC_OBS_COMPILED_OUT)
  if (ok) {  // platforms refusing affinity: nothing to assert
    EXPECT_GT(wrapped_total(), before);
  }
#else
  (void)ok;
  (void)before;  // inert registry: the wrap itself must still work
#endif
}

}  // namespace
}  // namespace quecc
