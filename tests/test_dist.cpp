// Tests for the simulated cluster: network semantics, distributed
// queue-oriented engine, and distributed Calvin — multi-node correctness,
// message accounting, and cross-engine equivalence.
#include <gtest/gtest.h>

#include <thread>

#include "dist/dist_calvin.hpp"
#include "dist/dist_quecc.hpp"
#include "dist/partitioner.hpp"
#include "net/network.hpp"
#include "test_util.hpp"
#include "workload/bank.hpp"
#include "workload/tpcc.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

TEST(Network, LoopbackIsImmediateAndFree) {
  net::network n(2, 1000);
  n.send({0, 0, net::msg_type::batch_done, 7, 0, {}});
  net::message m;
  ASSERT_TRUE(n.poll(0, m));
  EXPECT_EQ(m.a, 7u);
  EXPECT_EQ(n.messages_sent(), 0u);  // loopback not billed
}

TEST(Network, RemoteMessagesPayLatency) {
  net::network n(2, 3000);  // 3ms
  n.send({0, 1, net::msg_type::batch_done, 1, 0, {}});
  EXPECT_EQ(n.messages_sent(), 1u);
  net::message m;
  EXPECT_FALSE(n.poll(1, m));  // not due yet
  std::this_thread::sleep_for(std::chrono::milliseconds(5));
  EXPECT_TRUE(n.poll(1, m));
  EXPECT_EQ(m.from, 0);
}

TEST(Network, BroadcastSkipsSender) {
  net::network n(3, 0);
  n.broadcast({1, 0, net::msg_type::batch_commit, 0, 0, {}});
  net::message m;
  EXPECT_TRUE(n.poll(0, m));
  EXPECT_FALSE(n.poll(1, m));
  EXPECT_TRUE(n.poll(2, m));
  EXPECT_EQ(n.messages_sent(), 2u);
}

TEST(Placement, PartitionToNodeMapping) {
  dist::placement p{4, 2, 1};  // 4 nodes, 2 executors each
  EXPECT_EQ(p.total_executors(), 8);
  EXPECT_EQ(p.global_executor_of_part(0), 0);
  EXPECT_EQ(p.node_of_part(0), 0);
  EXPECT_EQ(p.node_of_part(2), 1);
  EXPECT_EQ(p.node_of_part(7), 3);
  EXPECT_EQ(p.node_of_part(8), 0);  // wraps
  EXPECT_EQ(p.node_of_executor(5), 2);
}

TEST(Placement, PartitionsNotDivisibleByNodes) {
  dist::placement p{3, 2, 1};  // 6 executor slots, partitions wrap over them
  EXPECT_EQ(p.total_executors(), 6);
  EXPECT_EQ(p.node_of_part(5), 2);
  EXPECT_EQ(p.node_of_part(6), 0);  // 7 partitions % 6 slots: back to node 0
  EXPECT_EQ(p.node_of_part(7), 0);
  for (part_id_t q = 0; q < 64; ++q) {
    // Wrap is stable (same partition, same node) and always in range.
    EXPECT_EQ(p.node_of_part(q),
              p.node_of_part(static_cast<part_id_t>(q % 6)));
    EXPECT_LT(p.node_of_part(q), p.nodes);
  }
}

TEST(Placement, SingleExecutorNodes) {
  dist::placement p{4, 1, 1};  // one executor per node: node == slot
  EXPECT_EQ(p.total_executors(), 4);
  EXPECT_EQ(p.total_planners(), 4);
  for (part_id_t q = 0; q < 12; ++q) {
    EXPECT_EQ(p.global_executor_of_part(q), q % 4);
    EXPECT_EQ(p.node_of_part(q), q % 4);
    EXPECT_EQ(p.local_executor(p.global_executor_of_part(q)), 0);
  }
  EXPECT_EQ(p.node_of_executor(3), 3);
  EXPECT_EQ(p.node_of_planner(2), 2);
}

common::config dist_cfg(std::uint16_t nodes, std::uint32_t latency_us = 20) {
  common::config cfg;
  cfg.nodes = nodes;
  cfg.planner_threads = 1;   // per node
  cfg.executor_threads = 1;  // per node
  cfg.worker_threads = 2;    // per node (Calvin workers)
  cfg.partitions = static_cast<part_id_t>(nodes * 2);
  cfg.net_latency_micros = latency_us;
  return cfg;
}

class DistNodes : public testing::TestWithParam<std::uint16_t> {};
INSTANTIATE_TEST_SUITE_P(Nodes, DistNodes, testing::Values(1, 2, 3, 4),
                         [](const auto& info) {
                           return "N" + std::to_string(info.param);
                         });

TEST_P(DistNodes, DistQueccMatchesSerial) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wcfg.partitions = static_cast<part_id_t>(GetParam() * 2);
  wcfg.multi_partition_ratio = 0.3;  // distributed transactions
  wcfg.mp_parts = 2;
  wcfg.zipf_theta = 0.6;
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(11);
  std::vector<txn::batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(w.make_batch(r, 256, i));

  dist::dist_quecc_engine eng(*db_engine, dist_cfg(GetParam()));
  common::run_metrics m;
  for (auto& b : batches) eng.run_batch(b, m);
  EXPECT_EQ(m.committed, 512u);

  for (auto& b : batches) testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());

  if (GetParam() > 1) {
    EXPECT_GT(m.messages, 0u);
  } else {
    EXPECT_EQ(m.messages, 0u);
  }
}

TEST_P(DistNodes, DistCalvinMatchesSerial) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wcfg.partitions = static_cast<part_id_t>(GetParam() * 2);
  wcfg.multi_partition_ratio = 0.3;
  wcfg.mp_parts = 2;
  wcfg.zipf_theta = 0.6;
  auto w = wl::ycsb(wcfg);

  auto db_engine = testutil::make_loaded_db(w);
  auto db_serial = db_engine->clone();

  common::rng r(13);
  std::vector<txn::batch> batches;
  for (int i = 0; i < 2; ++i) batches.push_back(w.make_batch(r, 256, i));

  dist::dist_calvin_engine eng(*db_engine, dist_cfg(GetParam()));
  common::run_metrics m;
  for (auto& b : batches) eng.run_batch(b, m);
  EXPECT_EQ(m.committed, 512u);

  for (auto& b : batches) testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db_engine->state_hash(), db_serial->state_hash());
}

TEST_P(DistNodes, EnginesAgreeOnTpcc) {
  wl::tpcc_config wcfg;
  wcfg.warehouses = static_cast<std::uint32_t>(GetParam() * 2);
  wcfg.partitions = static_cast<part_id_t>(GetParam() * 2);
  wcfg.initial_orders_per_district = 20;
  wcfg.order_headroom_per_district = 200;
  wcfg.remote_payment_ratio = 0.3;  // plenty of distributed payments
  wcfg.remote_stock_ratio = 0.1;
  auto w = wl::tpcc(wcfg);

  auto db_q = testutil::make_loaded_db(w);
  auto db_c = db_q->clone();
  auto db_s = db_q->clone();

  common::rng r(17);
  auto b = w.make_batch(r, 300);

  {
    dist::dist_quecc_engine eng(*db_q, dist_cfg(GetParam()));
    common::run_metrics m;
    eng.run_batch(b, m);
  }
  b.reset_runtime();
  {
    dist::dist_calvin_engine eng(*db_c, dist_cfg(GetParam()));
    common::run_metrics m;
    eng.run_batch(b, m);
  }
  testutil::replay_in_seq_order(*db_s, b);

  EXPECT_EQ(db_q->state_hash(), db_s->state_hash());
  EXPECT_EQ(db_c->state_hash(), db_s->state_hash());

  std::string why;
  EXPECT_TRUE(w.check_consistency(*db_q, &why)) << why;
}

TEST(Placement, EnginesHandleNonDivisiblePartitions) {
  // 7 partitions over 3 nodes: the wrap path runs inside both engines.
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wcfg.partitions = 7;
  wcfg.multi_partition_ratio = 0.3;
  wcfg.mp_parts = 2;
  auto w = wl::ycsb(wcfg);

  common::config cfg = dist_cfg(3);
  cfg.partitions = 7;

  for (int engine = 0; engine < 2; ++engine) {
    auto db = testutil::make_loaded_db(w);
    auto db_serial = db->clone();
    common::rng r(31);
    auto b = w.make_batch(r, 256);
    common::run_metrics m;
    if (engine == 0) {
      dist::dist_quecc_engine eng(*db, cfg);
      eng.run_batch(b, m);
    } else {
      dist::dist_calvin_engine eng(*db, cfg);
      eng.run_batch(b, m);
    }
    testutil::replay_in_seq_order(*db_serial, b);
    EXPECT_EQ(db->state_hash(), db_serial->state_hash()) << engine;
    EXPECT_GT(m.messages, 0u);
  }
}

TEST(DistBehaviour, QueccCommitCostIsPerBatchNotPerTxn) {
  // The headline structural claim (Section 2.2): queue-oriented commit
  // needs a constant number of messages per batch, while Calvin pays per
  // distributed transaction.
  wl::ycsb_config wcfg;
  wcfg.table_size = 8192;
  wcfg.partitions = 8;
  wcfg.multi_partition_ratio = 1.0;  // every txn is distributed
  wcfg.mp_parts = 2;
  auto w = wl::ycsb(wcfg);

  const auto cfg = dist_cfg(4, 5);

  auto db1 = testutil::make_loaded_db(w);
  common::rng r1(19);
  auto b1 = w.make_batch(r1, 400);
  common::run_metrics mq;
  {
    dist::dist_quecc_engine eng(*db1, cfg);
    eng.run_batch(b1, mq);
  }

  auto db2 = testutil::make_loaded_db(w);
  common::rng r2(19);
  auto b2 = w.make_batch(r2, 400);
  common::run_metrics mc;
  {
    dist::dist_calvin_engine eng(*db2, cfg);
    eng.run_batch(b2, mc);
  }

  // dist-quecc: P*(N-1) plan bundles + (N-1) dones + (N-1) commits ≈ 10.
  // dist-calvin: sequencing + 2 messages per distributed txn ≈ hundreds.
  EXPECT_LT(mq.messages, 50u);
  EXPECT_GT(mc.messages, 400u);
}

TEST(DistBehaviour, BankInvariantAcrossNodes) {
  wl::bank_config wcfg;
  wcfg.accounts = 1024;
  wcfg.partitions = 8;
  auto w = wl::bank(wcfg);

  for (int engine = 0; engine < 2; ++engine) {
    auto db = testutil::make_loaded_db(w);
    const auto expected = w.total_balance(*db);
    common::rng r(23);
    common::run_metrics m;
    auto cfg = dist_cfg(4);
    if (engine == 0) {
      dist::dist_quecc_engine eng(*db, cfg);
      for (int i = 0; i < 2; ++i) {
        auto b = w.make_batch(r, 256, static_cast<std::uint32_t>(i));
        eng.run_batch(b, m);
      }
    } else {
      dist::dist_calvin_engine eng(*db, cfg);
      for (int i = 0; i < 2; ++i) {
        auto b = w.make_batch(r, 256, static_cast<std::uint32_t>(i));
        eng.run_batch(b, m);
      }
    }
    EXPECT_EQ(w.total_balance(*db), expected);
    EXPECT_GT(m.aborted, 0u);
  }
}

}  // namespace
}  // namespace quecc
