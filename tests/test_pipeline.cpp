// Batch-pipelining tests: pipeline_depth must be invisible in results.
//
// The engine's two Figure 1 stages overlap across batches at depth >= 2
// (planners on batch i+1 while batch i executes), but execution and the
// commit epilogue stay sequential by batch id — so a depth-N run must
// produce bit-identical state to the depth-1 lockstep on every workload,
// execution model, isolation level, and arrival mode. These tests pin that
// contract, plus the submit/drain API mechanics and the per-slot phase
// stats that make the overlap observable.
#include <gtest/gtest.h>

#include <deque>
#include <thread>

#include "core/engine.hpp"
#include "harness/runner.hpp"
#include "protocols/iface.hpp"
#include "protocols/session.hpp"
#include "test_util.hpp"
#include "workload/bank.hpp"
#include "workload/tpcc.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

using common::config;
using common::exec_model;
using common::isolation;

config base_cfg(std::uint32_t depth, exec_model exec,
                isolation iso = isolation::serializable) {
  config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.pipeline_depth = depth;
  cfg.execution = exec;
  cfg.iso = iso;
  return cfg;
}

std::unique_ptr<wl::workload> make_named(const std::string& name) {
  if (name == "ycsb") {
    wl::ycsb_config w;
    w.table_size = 4096;
    w.zipf_theta = 0.8;
    w.read_ratio = 0.5;
    w.abort_ratio = 0.05;
    return std::make_unique<wl::ycsb>(w);
  }
  if (name == "bank") {
    wl::bank_config w;
    w.accounts = 512;
    w.max_transfer = 1500;  // often exceeds balance => aborts
    return std::make_unique<wl::bank>(w);
  }
  wl::tpcc_config w;
  w.warehouses = 2;
  w.initial_orders_per_district = 40;
  w.order_headroom_per_district = 2000;
  return std::make_unique<wl::tpcc>(w);
}

/// Closed-loop hash of `batches` batches at the given depth/exec/iso.
std::uint64_t closed_loop_hash(const std::string& wname, std::uint32_t depth,
                               exec_model exec,
                               isolation iso = isolation::serializable,
                               std::uint32_t batches = 6) {
  auto w = make_named(wname);
  storage::database db;
  w->load(db);
  core::quecc_engine eng(db, base_cfg(depth, exec, iso));
  harness::run_options opts;
  opts.batches = batches;
  opts.batch_size = 256;
  opts.seed = 2027;
  const auto res = harness::run_workload(eng, *w, db, opts);
  EXPECT_EQ(res.metrics.committed + res.metrics.aborted, opts.total_txns());
  EXPECT_EQ(res.metrics.batches, batches);
  return res.final_state_hash;
}

// --- depth-1 ≡ depth-2 on every workload / exec-model combination ---------

struct det_params {
  const char* workload;
  exec_model exec;
};

std::string det_name(const testing::TestParamInfo<det_params>& info) {
  return std::string(info.param.workload) + "_" +
         (info.param.exec == exec_model::speculative ? "spec" : "cons");
}

class PipelineDeterminism : public testing::TestWithParam<det_params> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, PipelineDeterminism,
    testing::Values(det_params{"ycsb", exec_model::speculative},
                    det_params{"ycsb", exec_model::conservative},
                    det_params{"bank", exec_model::speculative},
                    det_params{"bank", exec_model::conservative},
                    det_params{"tpcc", exec_model::speculative},
                    det_params{"tpcc", exec_model::conservative}),
    det_name);

TEST_P(PipelineDeterminism, ClosedLoopDepth2MatchesLockstep) {
  const auto [wname, exec] = GetParam();
  const auto h1 = closed_loop_hash(wname, 1, exec);
  const auto h2 = closed_loop_hash(wname, 2, exec);
  EXPECT_EQ(h1, h2);
}

TEST_P(PipelineDeterminism, OpenLoopDepth2MatchesLockstepClosedLoop) {
  const auto [wname, exec] = GetParam();
  const auto closed = closed_loop_hash(wname, 1, exec, isolation::serializable,
                                       /*batches=*/4);

  auto w = make_named(wname);
  storage::database db;
  w->load(db);
  core::quecc_engine eng(db, base_cfg(2, exec));
  harness::run_options opts;
  opts.batches = 4;
  opts.batch_size = 256;
  opts.seed = 2027;
  opts.mode = harness::arrival_mode::open_loop;
  opts.offered_load_tps = 2e6;  // keep the admission queue backed up
  opts.batch_deadline_micros = 200;
  const auto res = harness::run_workload(eng, *w, db, opts);
  EXPECT_EQ(res.metrics.committed + res.metrics.aborted, opts.total_txns());
  EXPECT_EQ(res.final_state_hash, closed);
}

TEST(PipelineDeterminism, DeeperRingsAndWiderGeometriesAgree) {
  const auto h1 = closed_loop_hash("ycsb", 1, exec_model::speculative);
  EXPECT_EQ(h1, closed_loop_hash("ycsb", 3, exec_model::speculative));
  EXPECT_EQ(h1, closed_loop_hash("ycsb", 4, exec_model::speculative));
}

TEST(PipelineDeterminism, ReadCommittedPublishesAtSlotBoundary) {
  // RC publishes the committed image in the (per-slot) epilogue; depth
  // must not change which batch's writes a read queue observes.
  const auto h1 = closed_loop_hash("ycsb", 1, exec_model::speculative,
                                   isolation::read_committed);
  const auto h2 = closed_loop_hash("ycsb", 2, exec_model::speculative,
                                   isolation::read_committed);
  EXPECT_EQ(h1, h2);
}

TEST(PipelineDeterminism, ReadCommittedReadsMatchLockstepUnderIndexChurn) {
  // TPC-C under read-committed: NewOrder inserts and Delivery erases
  // mutate the primary indexes mid-batch while pure reads sit in the
  // dynamically-claimed read queues. Their rids must resolve at the
  // quiescent point (batch_slot::resolve_read_queues), or depth >= 2
  // would make the read *values* timing-dependent — which state hashes
  // alone cannot catch, so compare per-transaction result fingerprints.
  // TPC-C's generator is stateful (district order counters), so each
  // engine gets its own workload + database producing the identical,
  // independent stream.
  struct outcome {
    std::vector<std::vector<std::uint64_t>> fingerprints;
    std::uint64_t hash;
  };
  auto run_at_depth = [](std::uint32_t depth) {
    wl::tpcc_config wcfg;
    wcfg.warehouses = 2;
    wcfg.initial_orders_per_district = 40;
    wcfg.order_headroom_per_district = 2000;
    wl::tpcc w(wcfg);
    auto db = testutil::make_loaded_db(w);
    common::rng r(77);
    core::quecc_engine eng(*db, base_cfg(depth, exec_model::speculative,
                                         isolation::read_committed));
    common::run_metrics m;
    outcome out;
    std::deque<txn::batch> inflight;
    for (int i = 0; i < 4; ++i) {
      inflight.push_back(w.make_batch(r, 256, i));
      eng.submit_batch(inflight.back(), m);
    }
    while (eng.drain_batch()) {
    }
    for (auto& b : inflight) {
      auto fp = testutil::result_fingerprints(b);
      out.fingerprints.insert(out.fingerprints.end(), fp.begin(), fp.end());
    }
    out.hash = db->state_hash();
    return out;
  };
  const outcome lockstep = run_at_depth(1);
  const outcome pipelined = run_at_depth(2);
  EXPECT_EQ(lockstep.hash, pipelined.hash);
  EXPECT_EQ(lockstep.fingerprints, pipelined.fingerprints);
}

// --- third stage (async commit epilogue) -----------------------------------

/// Hash of a fixed YCSB stream through any registered engine at the given
/// depth, with the third pipeline stage (async epilogue) on or off. RC
/// isolation: the epilogue publishes the committed image, so a misplaced
/// publication point shows up directly in read values (and thus writes
/// derived from them — the state hash).
std::uint64_t stage3_hash(const std::string& engine, std::uint32_t depth,
                          exec_model exec, bool stage3,
                          isolation iso = isolation::read_committed) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wcfg.partitions = 4;
  wcfg.zipf_theta = 0.8;
  wcfg.read_ratio = 0.5;
  wcfg.abort_ratio = 0.05;
  wcfg.multi_partition_ratio = engine == "dist-quecc" ? 0.3 : 0.0;
  wl::ycsb w(wcfg);
  storage::database db;
  w.load(db);
  config cfg = base_cfg(depth, exec, iso);
  cfg.partitions = 4;
  cfg.async_epilogue = stage3;
  if (engine == "dist-quecc") {
    cfg.nodes = 2;
    cfg.net_latency_micros = 10;
  }
  auto eng = proto::make_engine(engine, db, cfg);
  harness::run_options opts;
  opts.batches = 5;
  opts.batch_size = 256;
  opts.seed = 2027;
  const auto res = harness::run_workload(*eng, w, db, opts);
  EXPECT_EQ(res.metrics.committed + res.metrics.aborted, opts.total_txns());
  return res.final_state_hash;
}

struct stage3_params {
  const char* engine;
  exec_model exec;
};

std::string stage3_name(const testing::TestParamInfo<stage3_params>& info) {
  std::string e = info.param.engine;
  for (auto& c : e) {
    if (c == '-') c = '_';
  }
  return e + "_" +
         (info.param.exec == exec_model::speculative ? "spec" : "cons");
}

class ThreeStageDeterminism : public testing::TestWithParam<stage3_params> {};

INSTANTIATE_TEST_SUITE_P(
    Grid, ThreeStageDeterminism,
    testing::Values(stage3_params{"quecc", exec_model::speculative},
                    stage3_params{"quecc", exec_model::conservative},
                    stage3_params{"dist-quecc", exec_model::speculative},
                    stage3_params{"dist-quecc", exec_model::conservative}),
    stage3_name);

TEST_P(ThreeStageDeterminism, RcHashesIdenticalAcrossDepthsAndStage3) {
  // The whole depth x stage3 grid must collapse to one hash: the inline
  // depth-1 lockstep (the paper's semantics) is the baseline.
  const auto [engine, exec] = GetParam();
  const auto baseline = stage3_hash(engine, 1, exec, /*stage3=*/false);
  for (std::uint32_t depth : {1u, 2u, 3u}) {
    for (bool s3 : {false, true}) {
      EXPECT_EQ(stage3_hash(engine, depth, exec, s3), baseline)
          << engine << " depth=" << depth << " stage3=" << s3;
    }
  }
}

TEST(ThreeStageDeterminism, SerializableAgreesWithInlineLockstep) {
  const auto base = stage3_hash("quecc", 1, exec_model::speculative,
                                /*stage3=*/false, isolation::serializable);
  EXPECT_EQ(stage3_hash("quecc", 3, exec_model::speculative, true,
                        isolation::serializable),
            base);
  EXPECT_EQ(stage3_hash("quecc", 3, exec_model::speculative, false,
                        isolation::serializable),
            base);
}

TEST(ThreeStageApi, EpilogueWorkerDtorDrainsLeftoverBatches) {
  // Depth-3, async epilogue on, no explicit drain: the destructor must
  // retire every in-flight batch *through the epilogue worker* (all
  // accounting lands in m) before joining threads.
  wl::ycsb_config wcfg;
  wcfg.table_size = 2048;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  auto db_ref = db->clone();
  common::rng r(21), rr(21);
  common::run_metrics m;
  std::deque<txn::batch> inflight;
  {
    auto cfg = base_cfg(3, exec_model::speculative);
    cfg.async_epilogue = true;
    core::quecc_engine eng(*db, cfg);
    for (int i = 0; i < 3; ++i) {
      inflight.push_back(w.make_batch(r, 128, i));
      eng.submit_batch(inflight.back(), m);
    }
  }
  EXPECT_EQ(m.batches, 3u);
  EXPECT_EQ(m.committed + m.aborted, 3u * 128u);

  auto cfg_ref = base_cfg(1, exec_model::speculative);
  cfg_ref.async_epilogue = false;
  core::quecc_engine ref(*db_ref, cfg_ref);
  common::run_metrics mr;
  for (int i = 0; i < 3; ++i) {
    auto b = w.make_batch(rr, 128, i);
    ref.run_batch(b, mr);
  }
  EXPECT_EQ(db->state_hash(), db_ref->state_hash());
  EXPECT_EQ(m.committed, mr.committed);
}

TEST(ThreeStageStats, EpilogueBusyIsAccountedAndSurfaced) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  auto cfg = base_cfg(3, exec_model::speculative);
  cfg.iso = isolation::read_committed;  // publish work makes epilogue busy
  core::quecc_engine eng(*db, cfg);
  harness::run_options opts;
  opts.batches = 4;
  opts.batch_size = 1024;
  const auto res = harness::run_workload(eng, w, *db, opts);
  EXPECT_GT(res.metrics.epilogue_busy_seconds, 0.0);
  EXPECT_NE(res.metrics.summary("quecc").find("epilogue_busy="),
            std::string::npos);
}

TEST(PipelineDeterminism, DistQueccDepth2MatchesLockstep) {
  auto hash_at = [](std::uint32_t depth) {
    wl::ycsb_config wcfg;
    wcfg.table_size = 4096;
    wcfg.partitions = 4;
    wcfg.multi_partition_ratio = 0.3;
    wl::ycsb w(wcfg);
    storage::database db;
    w.load(db);
    config cfg;
    cfg.planner_threads = 1;
    cfg.executor_threads = 2;
    cfg.nodes = 2;
    cfg.partitions = 4;
    cfg.net_latency_micros = 10;
    cfg.pipeline_depth = depth;
    auto eng = proto::make_engine("dist-quecc", db, cfg);
    harness::run_options opts;
    opts.batches = 4;
    opts.batch_size = 256;
    opts.seed = 11;
    const auto res = harness::run_workload(*eng, w, db, opts);
    EXPECT_EQ(res.metrics.committed + res.metrics.aborted, opts.total_txns());
    return res.final_state_hash;
  };
  EXPECT_EQ(hash_at(1), hash_at(2));
}

// --- submit/drain API mechanics -------------------------------------------

TEST(PipelineApi, SubmitDrainPairEqualsRunBatch) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 2048;
  wl::ycsb w(wcfg);

  auto db1 = testutil::make_loaded_db(w);
  auto db2 = db1->clone();
  common::rng r1(9), r2(9);

  core::quecc_engine e1(*db1, base_cfg(2, exec_model::speculative));
  common::run_metrics m1;
  for (int i = 0; i < 3; ++i) {
    auto b = w.make_batch(r1, 200, i);
    e1.run_batch(b, m1);
  }

  core::quecc_engine e2(*db2, base_cfg(2, exec_model::speculative));
  common::run_metrics m2;
  std::deque<txn::batch> inflight;
  for (int i = 0; i < 3; ++i) {
    inflight.push_back(w.make_batch(r2, 200, i));
    e2.submit_batch(inflight.back(), m2);
  }
  while (e2.drain_batch()) {
  }
  EXPECT_EQ(db1->state_hash(), db2->state_hash());
  EXPECT_EQ(m1.committed, m2.committed);
  EXPECT_EQ(m1.aborted, m2.aborted);
  EXPECT_EQ(m2.batches, 3u);
}

TEST(PipelineApi, DrainWithNothingInFlightIsANoOp) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 512;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  core::quecc_engine eng(*db, base_cfg(2, exec_model::speculative));
  EXPECT_FALSE(eng.drain_batch());
  EXPECT_EQ(eng.pipeline_depth(), 2u);
}

TEST(PipelineApi, SubmitBeyondDepthRetiresOldestFirst) {
  // Submitting more batches than the ring holds must transparently drain
  // the oldest (the engine does it on the caller's behalf).
  wl::ycsb_config wcfg;
  wcfg.table_size = 2048;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  auto db_ref = db->clone();
  common::rng r(4), rr(4);

  core::quecc_engine eng(*db, base_cfg(2, exec_model::speculative));
  common::run_metrics m;
  std::deque<txn::batch> inflight;
  for (int i = 0; i < 6; ++i) {
    inflight.push_back(w.make_batch(r, 128, i));
    eng.submit_batch(inflight.back(), m);
  }
  while (eng.drain_batch()) {
  }
  EXPECT_EQ(m.batches, 6u);
  EXPECT_EQ(m.committed + m.aborted, 6u * 128u);

  core::quecc_engine ref(*db_ref, base_cfg(1, exec_model::speculative));
  common::run_metrics mr;
  for (int i = 0; i < 6; ++i) {
    auto b = w.make_batch(rr, 128, i);
    ref.run_batch(b, mr);
  }
  EXPECT_EQ(db->state_hash(), db_ref->state_hash());
}

TEST(PipelineApi, EngineDestructorDrainsLeftoverBatches) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 2048;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  common::rng r(21);
  common::run_metrics m;
  std::deque<txn::batch> inflight;
  {
    core::quecc_engine eng(*db, base_cfg(2, exec_model::speculative));
    for (int i = 0; i < 2; ++i) {
      inflight.push_back(w.make_batch(r, 128, i));
      eng.submit_batch(inflight.back(), m);
    }
    // No drain: the destructor must retire both before stopping workers.
  }
  EXPECT_EQ(m.batches, 2u);
  EXPECT_EQ(m.committed + m.aborted, 2u * 128u);
}

// --- per-slot phase stats --------------------------------------------------

TEST(PipelineStats, BusyTimesAndOccupancyAreReported) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1 << 14;
  wcfg.ops_per_txn = 8;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  core::quecc_engine eng(*db, base_cfg(2, exec_model::speculative));

  harness::run_options opts;
  opts.batches = 4;
  opts.batch_size = 2048;
  const auto res = harness::run_workload(eng, w, *db, opts);

  EXPECT_GT(res.metrics.plan_busy_seconds, 0.0);
  EXPECT_GT(res.metrics.exec_busy_seconds, 0.0);
  EXPECT_GE(res.metrics.pipeline_overlap_seconds, 0.0);
  // summary() must surface the stage accounting at depth >= 2.
  EXPECT_NE(res.metrics.summary("quecc").find("stages{"), std::string::npos);

  const auto& ph = eng.last_phases();
  EXPECT_GT(ph.plan_seconds, 0.0);
  EXPECT_GT(ph.exec_seconds, 0.0);
  EXPECT_GT(ph.plan_busy_seconds, 0.0);
  EXPECT_GT(ph.exec_busy_seconds, 0.0);
  EXPECT_GT(ph.planned_fragments, 0u);
}

TEST(PipelineStats, OverlapIsObservedWhenBatchesAreInFlightTogether) {
  // Two fat batches submitted back to back: batch 1's planning window
  // necessarily intersects batch 0's execution window (both are in flight
  // between the submits and the first drain). Wall-clock windows overlap
  // even on a single-CPU box as long as planning 1 starts before exec 0
  // finishes, which the batch size makes effectively certain.
  wl::ycsb_config wcfg;
  wcfg.table_size = 1 << 14;
  wcfg.ops_per_txn = 16;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  core::quecc_engine eng(*db, base_cfg(2, exec_model::speculative));

  common::rng r(1);
  common::run_metrics m;
  std::deque<txn::batch> inflight;
  for (int i = 0; i < 4; ++i) {
    inflight.push_back(w.make_batch(r, 8192, i));
    eng.submit_batch(inflight.back(), m);
  }
  while (eng.drain_batch()) {
  }
  if (std::thread::hardware_concurrency() >= 4) {
    EXPECT_GT(m.pipeline_overlap_seconds, 0.0);
  } else {
    EXPECT_GE(m.pipeline_overlap_seconds, 0.0);
  }
}

TEST(PipelineStats, LockstepReportsZeroOverlap) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  core::quecc_engine eng(*db, base_cfg(1, exec_model::speculative));
  harness::run_options opts;
  opts.batches = 3;
  opts.batch_size = 512;
  const auto res = harness::run_workload(eng, w, *db, opts);
  EXPECT_EQ(res.metrics.pipeline_overlap_seconds, 0.0);
  EXPECT_EQ(eng.last_phases().overlap_seconds, 0.0);
}

// --- sessions over a pipelined engine --------------------------------------

TEST(PipelineSession, TicketsResolveWithTwoBatchesInFlight) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);

  auto cfg = base_cfg(2, exec_model::speculative);
  cfg.batch_size = 64;
  cfg.batch_deadline_micros = 200;
  core::quecc_engine eng(*db, cfg);
  common::rng r(33);

  proto::session s(eng, cfg);
  std::vector<proto::session::ticket> tickets;
  for (int i = 0; i < 512; ++i) tickets.push_back(s.submit(w.make_txn(r)));
  std::uint64_t done = 0;
  for (auto& t : tickets) {
    const auto res = t.wait();
    EXPECT_NE(res.status, txn::txn_status::active);
    EXPECT_GE(res.e2e_nanos, res.queue_nanos);
    ++done;
  }
  s.close();
  EXPECT_EQ(done, 512u);
  EXPECT_EQ(s.metrics().committed + s.metrics().aborted, 512u);
  EXPECT_GE(s.batches_formed(), 512u / 64u);
}

}  // namespace
}  // namespace quecc
