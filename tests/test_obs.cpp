// Tests for the observability layer (src/obs): metrics registry
// exactness under concurrency, trace ring semantics, JSON validity of
// both exporters, and the "observability never perturbs execution"
// state-hash invariance guarantee.
//
// When built with -DQUECC_OBS_COMPILED_OUT the registry/trace tests that
// assert recorded values are skipped (handles are inert by design), while
// the exporter-validity and state-hash tests still run — pinning that the
// compiled-out configuration stays well-formed and bit-identical.
#include <gtest/gtest.h>

#include <atomic>
#include <cctype>
#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "common/stats.hpp"
#include "core/engine.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "test_util.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

// --- minimal JSON validator -------------------------------------------------
// Recursive-descent acceptor for the full JSON grammar; no tree is built.
// Enough to pin "the exporters emit valid JSON" without a dependency.
class json_checker {
 public:
  static bool valid(const std::string& s) {
    json_checker c(s);
    c.skip_ws();
    if (!c.value()) return false;
    c.skip_ws();
    return c.pos_ == s.size();
  }

 private:
  explicit json_checker(const std::string& s) : s_(s) {}

  bool value() {
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return object();
      case '[': return array();
      case '"': return string();
      case 't': return literal("true");
      case 'f': return literal("false");
      case 'n': return literal("null");
      default: return number();
    }
  }

  bool object() {
    ++pos_;  // '{'
    skip_ws();
    if (peek() == '}') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!string()) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == '}') { ++pos_; return true; }
      return false;
    }
  }

  bool array() {
    ++pos_;  // '['
    skip_ws();
    if (peek() == ']') { ++pos_; return true; }
    while (true) {
      skip_ws();
      if (!value()) return false;
      skip_ws();
      if (peek() == ',') { ++pos_; continue; }
      if (peek() == ']') { ++pos_; return true; }
      return false;
    }
  }

  bool string() {
    if (peek() != '"') return false;
    ++pos_;
    while (pos_ < s_.size()) {
      const char c = s_[pos_];
      if (c == '"') { ++pos_; return true; }
      if (c == '\\') {
        ++pos_;
        if (pos_ >= s_.size()) return false;
        const char e = s_[pos_];
        if (e == 'u') {
          for (int i = 0; i < 4; ++i) {
            ++pos_;
            if (pos_ >= s_.size() || !std::isxdigit(
                    static_cast<unsigned char>(s_[pos_]))) {
              return false;
            }
          }
        } else if (std::string("\"\\/bfnrt").find(e) == std::string::npos) {
          return false;
        }
      } else if (static_cast<unsigned char>(c) < 0x20) {
        return false;  // raw control character
      }
      ++pos_;
    }
    return false;
  }

  bool number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!digits()) return false;
    if (peek() == '.') {
      ++pos_;
      if (!digits()) return false;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!digits()) return false;
    }
    return pos_ > start;
  }

  bool digits() {
    const std::size_t start = pos_;
    while (pos_ < s_.size() &&
           std::isdigit(static_cast<unsigned char>(s_[pos_]))) {
      ++pos_;
    }
    return pos_ > start;
  }

  bool literal(const char* lit) {
    for (const char* p = lit; *p; ++p, ++pos_) {
      if (pos_ >= s_.size() || s_[pos_] != *p) return false;
    }
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r')) {
      ++pos_;
    }
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

TEST(JsonChecker, AcceptsAndRejects) {
  EXPECT_TRUE(json_checker::valid(R"({"a":[1,2.5,-3e2],"b":"x\n","c":null})"));
  EXPECT_TRUE(json_checker::valid("[]"));
  EXPECT_FALSE(json_checker::valid("{"));
  EXPECT_FALSE(json_checker::valid(R"({"a":1,})"));
  EXPECT_FALSE(json_checker::valid("[1 2]"));
  EXPECT_FALSE(json_checker::valid(R"("unterminated)"));
}

std::uint64_t counter_value(const obs::metrics_snapshot& s,
                            const std::string& name) {
  for (const auto& [n, v] : s.counters) {
    if (n == name) return v;
  }
  return 0;
}

class ObsTest : public testing::Test {
 protected:
  void SetUp() override {
    obs::set_metrics_enabled(true);
    obs::reset_metrics();
    obs::set_tracing_enabled(false);
    obs::clear_trace();
  }
  void TearDown() override {
    obs::set_tracing_enabled(false);
    obs::clear_trace();
    obs::reset_metrics();
  }
};

#if defined(QUECC_OBS_COMPILED_OUT)
#define OBS_SKIP_IF_COMPILED_OUT() \
  GTEST_SKIP() << "observability compiled out"
#else
#define OBS_SKIP_IF_COMPILED_OUT() (void)0
#endif

// --- metrics registry -------------------------------------------------------

TEST_F(ObsTest, ConcurrentCounterIncrementsAreExact) {
  OBS_SKIP_IF_COMPILED_OUT();
  constexpr int kThreads = 8;
  constexpr std::uint64_t kPerThread = 100000;
  const obs::counter c("obs_test.concurrent_total");
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&c] {
      for (std::uint64_t i = 0; i < kPerThread; ++i) c.inc();
      c.inc(5);  // bulk increments count too
    });
  }
  for (auto& t : threads) t.join();
  // The threads exited, so their shards folded into the retired
  // accumulator — the total must survive exactly.
  const auto snap = obs::snapshot_metrics();
  EXPECT_EQ(counter_value(snap, "obs_test.concurrent_total"),
            kThreads * (kPerThread + 5));
}

TEST_F(ObsTest, RegistrationIsIdempotentByName) {
  OBS_SKIP_IF_COMPILED_OUT();
  const obs::counter a("obs_test.shared_total");
  const obs::counter b("obs_test.shared_total");
  a.inc(3);
  b.inc(4);
  const auto snap = obs::snapshot_metrics();
  EXPECT_EQ(counter_value(snap, "obs_test.shared_total"), 7u);
}

TEST_F(ObsTest, KindMismatchThrows) {
  OBS_SKIP_IF_COMPILED_OUT();
  const obs::counter c("obs_test.kind_probe");
  EXPECT_THROW(obs::gauge("obs_test.kind_probe"), std::logic_error);
  EXPECT_THROW(obs::histogram("obs_test.kind_probe"), std::logic_error);
}

TEST_F(ObsTest, GaugeSetAndAdd) {
  OBS_SKIP_IF_COMPILED_OUT();
  const obs::gauge g("obs_test.depth");
  g.set(10);
  g.add(5);
  g.add(-12);
  const auto snap = obs::snapshot_metrics();
  std::int64_t v = 0;
  for (const auto& [n, gv] : snap.gauges) {
    if (n == "obs_test.depth") v = gv;
  }
  EXPECT_EQ(v, 3);
}

TEST_F(ObsTest, HistogramShardsMergeAcrossThreads) {
  OBS_SKIP_IF_COMPILED_OUT();
  const obs::histogram h("obs_test.latency_nanos");
  common::latency_histogram reference;
  static constexpr std::uint64_t kSamples[] = {100, 900, 5000, 70000,
                                               1000000};
  for (const std::uint64_t ns : kSamples) reference.record_nanos(ns);

  // Each thread records the full sample set into its own shard; the
  // scrape must merge them into exactly 4x the reference distribution.
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&h] {
      for (const std::uint64_t ns : kSamples) h.record_nanos(ns);
    });
  }
  for (auto& t : threads) t.join();

  const auto snap = obs::snapshot_metrics();
  const common::latency_histogram* merged = nullptr;
  for (const auto& [n, hist] : snap.histograms) {
    if (n == "obs_test.latency_nanos") merged = &hist;
  }
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count(), 4 * reference.count());
  EXPECT_EQ(merged->sum_nanos(), 4 * reference.sum_nanos());
  for (std::size_t b = 0; b < common::latency_histogram::kBuckets; ++b) {
    EXPECT_EQ(merged->bucket_count(b), 4 * reference.bucket_count(b))
        << "bucket " << b;
  }
}

TEST_F(ObsTest, DisabledMetricsDropIncrements) {
  OBS_SKIP_IF_COMPILED_OUT();
  const obs::counter c("obs_test.gated_total");
  c.inc();
  obs::set_metrics_enabled(false);
  c.inc(100);
  obs::set_metrics_enabled(true);
  c.inc();
  const auto snap = obs::snapshot_metrics();
  EXPECT_EQ(counter_value(snap, "obs_test.gated_total"), 2u);
}

TEST_F(ObsTest, ResetZeroesButKeepsNames) {
  OBS_SKIP_IF_COMPILED_OUT();
  const obs::counter c("obs_test.reset_total");
  c.inc(42);
  obs::reset_metrics();
  c.inc(1);
  const auto snap = obs::snapshot_metrics();
  EXPECT_EQ(counter_value(snap, "obs_test.reset_total"), 1u);
}

TEST_F(ObsTest, SnapshotIsNameSorted) {
  OBS_SKIP_IF_COMPILED_OUT();
  obs::counter("obs_test.zz_total").inc();
  obs::counter("obs_test.aa_total").inc();
  const auto snap = obs::snapshot_metrics();
  for (std::size_t i = 1; i < snap.counters.size(); ++i) {
    EXPECT_LT(snap.counters[i - 1].first, snap.counters[i].first);
  }
}

// --- metrics JSON exporter --------------------------------------------------

TEST_F(ObsTest, MetricsJsonIsValidAndCarriesSections) {
  obs::counter("obs_test.json_total").inc(7);
  obs::gauge("obs_test.json_depth").set(-2);
  obs::histogram("obs_test.json_nanos").record_nanos(1500);
  std::ostringstream os;
  obs::write_metrics_json(os);
  const std::string doc = os.str();
  EXPECT_TRUE(json_checker::valid(doc)) << doc;
  EXPECT_NE(doc.find("\"counters\""), std::string::npos);
  EXPECT_NE(doc.find("\"gauges\""), std::string::npos);
  EXPECT_NE(doc.find("\"histograms\""), std::string::npos);
#if !defined(QUECC_OBS_COMPILED_OUT)
  EXPECT_NE(doc.find("\"obs_test.json_total\":7"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"obs_test.json_depth\":-2"), std::string::npos);
  // Histogram shape: count + percentile estimates + sparse buckets.
  EXPECT_NE(doc.find("\"p50_nanos\""), std::string::npos);
  EXPECT_NE(doc.find("\"buckets\""), std::string::npos);
#endif
}

TEST_F(ObsTest, JsonWriterEscapesStrings) {
  std::ostringstream os;
  {
    obs::json_writer w(os);
    w.begin_object();
    w.kv("k\"ey\n", "va\\lue\t\x01");
    w.end_object();
  }
  const std::string doc = os.str();
  EXPECT_TRUE(json_checker::valid(doc)) << doc;
}

// --- trace recorder ---------------------------------------------------------

TEST_F(ObsTest, RingWrapKeepsNewestEvents) {
  OBS_SKIP_IF_COMPILED_OUT();
  obs::set_tracing_enabled(true);
  // Overfill one thread's ring by 2x: the survivors must be exactly the
  // newest kTraceRingCapacity events, none torn.
  const std::size_t total = 2 * obs::kTraceRingCapacity;
  for (std::size_t i = 0; i < total; ++i) {
    obs::record_span(obs::trace_stage::plan, /*start=*/i + 1, /*dur=*/2,
                     /*batch=*/i, /*slot=*/3);
  }
  const auto events = obs::snapshot_trace();
  ASSERT_EQ(events.size(), obs::kTraceRingCapacity);
  for (std::size_t i = 0; i < events.size(); ++i) {
    const auto& e = events[i];
    const std::size_t expect = obs::kTraceRingCapacity + i;
    EXPECT_EQ(e.start_nanos, expect + 1);
    EXPECT_EQ(e.dur_nanos, 2u);
    EXPECT_EQ(e.batch, expect);
    EXPECT_EQ(e.slot, 3u);
    EXPECT_EQ(e.stage, obs::trace_stage::plan);
  }
}

TEST_F(ObsTest, PerThreadTimestampsAreMonotone) {
  OBS_SKIP_IF_COMPILED_OUT();
  obs::set_tracing_enabled(true);
  // Each thread records a chain of sequential RAII spans; within one
  // thread (= one ring = one tid) the spans must be non-overlapping and
  // ordered: monotone clock, no torn events.
  std::vector<std::thread> threads;
  for (int t = 0; t < 3; ++t) {
    threads.emplace_back([t] {
      for (std::uint64_t i = 0; i < 200; ++i) {
        obs::trace_span span(obs::trace_stage::exec, /*batch=*/i,
                             /*slot=*/static_cast<std::uint32_t>(t));
      }
    });
  }
  for (auto& t : threads) t.join();
  const auto events = obs::snapshot_trace();
  ASSERT_EQ(events.size(), 3u * 200u);
  for (std::size_t i = 1; i < events.size(); ++i) {
    if (events[i].tid != events[i - 1].tid) continue;
    EXPECT_GE(events[i].start_nanos,
              events[i - 1].start_nanos + events[i - 1].dur_nanos)
        << "overlapping spans within tid " << events[i].tid;
  }
}

TEST_F(ObsTest, DisabledTracingRecordsNothing) {
  OBS_SKIP_IF_COMPILED_OUT();
  obs::record_span(obs::trace_stage::plan, 1, 1);
  { obs::trace_span span(obs::trace_stage::exec); }
  EXPECT_TRUE(obs::snapshot_trace().empty());
}

TEST_F(ObsTest, ReenableDropsOldGeneration) {
  OBS_SKIP_IF_COMPILED_OUT();
  obs::set_tracing_enabled(true);
  obs::record_span(obs::trace_stage::plan, 1, 1);
  obs::set_tracing_enabled(false);
  obs::set_tracing_enabled(true);  // fresh generation
  obs::record_span(obs::trace_stage::exec, 10, 1);
  const auto events = obs::snapshot_trace();
  ASSERT_EQ(events.size(), 1u);
  EXPECT_EQ(events[0].stage, obs::trace_stage::exec);
}

TEST_F(ObsTest, ChromeTraceJsonIsValid) {
  obs::set_tracing_enabled(true);
  obs::record_span(obs::trace_stage::plan, 1000, 500, /*batch=*/7,
                   /*slot=*/1);
  obs::record_span(obs::trace_stage::checkpoint, 2000, 300);  // no batch
  std::ostringstream os;
  obs::write_chrome_trace(os);
  const std::string doc = os.str();
  EXPECT_TRUE(json_checker::valid(doc)) << doc;
  EXPECT_NE(doc.find("\"traceEvents\""), std::string::npos);
#if !defined(QUECC_OBS_COMPILED_OUT)
  EXPECT_NE(doc.find("\"name\":\"plan\""), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"batch\":7"), std::string::npos);
  // The batch-less span must not claim a batch/slot.
  EXPECT_NE(doc.find("\"name\":\"checkpoint\""), std::string::npos);
#endif
}

// --- observability never perturbs execution ---------------------------------

std::uint64_t run_engine_hash(bool obs_on) {
  obs::set_metrics_enabled(obs_on);
  obs::set_tracing_enabled(obs_on);
  wl::ycsb_config wcfg;
  wcfg.table_size = 4096;
  wcfg.zipf_theta = 0.9;
  wcfg.read_ratio = 0.5;
  auto w = wl::ycsb(wcfg);
  auto db = testutil::make_loaded_db(w);

  common::config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.batch_size = 256;

  common::rng r(7);
  common::run_metrics m;
  {
    core::quecc_engine eng(*db, cfg);
    for (int i = 0; i < 3; ++i) {
      auto b = w.make_batch(r, 256, i);
      eng.run_batch(b, m);
    }
  }
  obs::set_tracing_enabled(false);
  obs::set_metrics_enabled(true);
  return db->state_hash();
}

TEST_F(ObsTest, StateHashInvariantUnderObservability) {
  // The same workload must produce a bit-identical database whether the
  // metrics/trace layer records everything or nothing. Building the whole
  // suite with -DQUECC_OBS_COMPILED_OUT runs this same test against the
  // compiled-out layer, closing the enabled-vs-compiled-out leg.
  const std::uint64_t with_obs = run_engine_hash(true);
  const std::uint64_t without_obs = run_engine_hash(false);
  EXPECT_EQ(with_obs, without_obs);
}

}  // namespace
}  // namespace quecc
