// Unit tests: harness (runner, report formatting) and targeted
// speculation-recovery scenarios on hand-built batches.
#include <gtest/gtest.h>

#include "core/engine.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "test_util.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

TEST(Report, TablePrinterAligns) {
  harness::table_printer t({"name", "value"});
  t.row({"short", "1"});
  t.row({"a-much-longer-name", "23456"});
  const auto s = t.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  // Every line has the same width.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Report, RateFormatting) {
  EXPECT_EQ(harness::format_rate(1'500'000), "1.50M txn/s");
  EXPECT_EQ(harness::format_rate(2'500), "2.5K txn/s");
  EXPECT_EQ(harness::format_rate(42), "42 txn/s");
}

TEST(Report, FactorFormatting) {
  EXPECT_EQ(harness::format_factor(22.4), "22x");
  EXPECT_EQ(harness::format_factor(2.97), "2.97x");
}

TEST(Runner, AggregatesAcrossBatches) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1024;
  wl::ycsb w(wcfg);
  storage::database db;
  w.load(db);

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  core::quecc_engine eng(db, cfg);

  common::rng r(1);
  const auto res = harness::run_workload(eng, w, db, r, 3, 100);
  EXPECT_EQ(res.metrics.committed, 300u);
  EXPECT_EQ(res.metrics.batches, 3u);
  EXPECT_EQ(res.final_state_hash, db.state_hash());
  EXPECT_GT(res.metrics.elapsed_seconds, 0.0);
}

// --- targeted speculation-recovery scenarios --------------------------------

// Build a 3-txn chain on one record: T0 RMWs key K and aborts afterwards
// (abort check planted later in T0), T1 reads K (dirty under speculation),
// T2 reads what T1 wrote elsewhere. Verifies cascade depth 2.
TEST(SpecRecovery, CascadeChainsAcrossRecords) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 256;
  wcfg.ops_per_txn = 2;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  const txn::procedure* proc;
  {
    common::rng r(1);
    proc = w.make_txn(r)->proc;
  }

  auto mk = [&](std::initializer_list<txn::fragment> frags) {
    auto t = std::make_unique<txn::txn_desc>();
    t->proc = proc;
    std::uint16_t idx = 0;
    for (auto f : frags) {
      f.idx = idx++;
      t->frags.push_back(f);
    }
    return t;
  };
  auto frag = [](key_t key, txn::op_kind kind, std::uint16_t logic,
                 std::uint64_t aux, std::uint16_t out) {
    txn::fragment f;
    f.table = 0;
    f.key = key;
    f.part = static_cast<part_id_t>(key % 2);
    f.kind = kind;
    f.logic = logic;
    f.aux = aux;
    f.output_slot = out;
    return f;
  };

  // T0: abortable check (doomed, aux=1) then RMW on key 10.
  auto check = frag(10, txn::op_kind::read, wl::ycsb::op_abort_check, 1,
                    txn::kNoSlot);
  check.abortable = true;
  auto t0 = mk({check,
                frag(10, txn::op_kind::update, wl::ycsb::op_rmw, 100, 0)});
  // T1: RMW key 10 (reads T0's dirty write), RMW key 20.
  auto t1 = mk({frag(10, txn::op_kind::update, wl::ycsb::op_rmw, 7, 0),
                frag(20, txn::op_kind::update, wl::ycsb::op_rmw, 3, 1)});
  // T2: reads key 20 (poisoned transitively through T1).
  auto t2 = mk({frag(20, txn::op_kind::read, wl::ycsb::op_read, 0, 0)});

  txn::batch b;
  txn::txn_desc& rt0 = b.add(std::move(t0));
  txn::txn_desc& rt1 = b.add(std::move(t1));
  txn::txn_desc& rt2 = b.add(std::move(t2));
  b.validate();

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 2;
  cfg.execution = common::exec_model::speculative;
  core::quecc_engine eng(*db, cfg);
  common::run_metrics m;
  eng.run_batch(b, m);

  EXPECT_TRUE(rt0.aborted());
  EXPECT_FALSE(rt1.aborted());
  EXPECT_FALSE(rt2.aborted());

  // Final state must be as if T0 never ran: key10 = 7, key20 = 3, and T2
  // must have read T1's committed value.
  const auto& tab = db->at(0);
  EXPECT_EQ(storage::read_u64(tab.row(tab.lookup(10)), 0), 7u);
  EXPECT_EQ(storage::read_u64(tab.row(tab.lookup(20)), 0), 3u);
  EXPECT_EQ(rt2.slot_value(0), 3u);
  EXPECT_EQ(m.aborted, 1u);
  EXPECT_EQ(m.committed, 2u);
}

// A committed transaction that only *blind-writes* after an aborted writer
// still converges to the serial outcome (taint-by-write is handled).
TEST(SpecRecovery, BlindWriteAfterAbortedWriter) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 64;
  wcfg.ops_per_txn = 1;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  auto db_serial = db->clone();
  const txn::procedure* proc;
  {
    common::rng r(1);
    proc = w.make_txn(r)->proc;
  }

  auto frag = [](key_t key, txn::op_kind kind, std::uint16_t logic,
                 std::uint64_t aux) {
    txn::fragment f;
    f.table = 0;
    f.key = key;
    f.part = 0;
    f.kind = kind;
    f.logic = logic;
    f.aux = aux;
    return f;
  };

  auto t0 = std::make_unique<txn::txn_desc>();
  t0->proc = proc;
  auto check = frag(5, txn::op_kind::read, wl::ycsb::op_abort_check, 1);
  check.abortable = true;
  check.idx = 0;
  t0->frags.push_back(check);
  auto w0 = frag(5, txn::op_kind::update, wl::ycsb::op_rmw, 50);
  w0.idx = 1;
  w0.output_slot = 0;
  t0->frags.push_back(w0);

  auto t1 = std::make_unique<txn::txn_desc>();
  t1->proc = proc;
  auto w1 = frag(5, txn::op_kind::update, wl::ycsb::op_write, 999);
  w1.idx = 0;
  t1->frags.push_back(w1);

  txn::batch b;
  b.add(std::move(t0));
  b.add(std::move(t1));
  b.validate();

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  cfg.execution = common::exec_model::speculative;
  core::quecc_engine eng(*db, cfg);
  common::run_metrics m;
  eng.run_batch(b, m);

  testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db->state_hash(), db_serial->state_hash());
  const auto& tab = db->at(0);
  EXPECT_EQ(storage::read_u64(tab.row(tab.lookup(5)), 0), 999u);
}

}  // namespace
}  // namespace quecc
