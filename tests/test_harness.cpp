// Unit tests: harness (runner, report formatting), the async submission
// path (admission queue, batch former, proto::session), and targeted
// speculation-recovery scenarios on hand-built batches.
#include <gtest/gtest.h>

#include <thread>
#include <vector>

#include "core/admission.hpp"
#include "core/engine.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "protocols/session.hpp"
#include "test_util.hpp"
#include "workload/ycsb.hpp"

namespace quecc {
namespace {

TEST(Report, TablePrinterAligns) {
  harness::table_printer t({"name", "value"});
  t.row({"short", "1"});
  t.row({"a-much-longer-name", "23456"});
  const auto s = t.str();
  EXPECT_NE(s.find("| name"), std::string::npos);
  EXPECT_NE(s.find("a-much-longer-name"), std::string::npos);
  // Every line has the same width.
  std::size_t first_len = s.find('\n');
  std::size_t pos = 0;
  while (pos < s.size()) {
    const auto next = s.find('\n', pos);
    if (next == std::string::npos) break;
    EXPECT_EQ(next - pos, first_len);
    pos = next + 1;
  }
}

TEST(Report, RateFormatting) {
  EXPECT_EQ(harness::format_rate(1'500'000), "1.50M txn/s");
  EXPECT_EQ(harness::format_rate(2'500), "2.5K txn/s");
  EXPECT_EQ(harness::format_rate(42), "42 txn/s");
}

TEST(Report, FactorFormatting) {
  EXPECT_EQ(harness::format_factor(22.4), "22x");
  EXPECT_EQ(harness::format_factor(2.97), "2.97x");
}

TEST(Runner, AggregatesAcrossBatches) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1024;
  wl::ycsb w(wcfg);
  storage::database db;
  w.load(db);

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  core::quecc_engine eng(db, cfg);

  harness::run_options opts;
  opts.batches = 3;
  opts.batch_size = 100;
  opts.seed = 1;
  const auto res = harness::run_workload(eng, w, db, opts);
  EXPECT_EQ(res.metrics.committed, 300u);
  EXPECT_EQ(res.metrics.batches, 3u);
  EXPECT_EQ(res.final_state_hash, db.state_hash());
  EXPECT_GT(res.metrics.elapsed_seconds, 0.0);
  // Closed-loop runs record no queueing: there is no admission queue.
  EXPECT_EQ(res.metrics.queue_latency.count(), 0u);
}

// --- admission queue + batch former ----------------------------------------

TEST(Admission, BatchClosesOnSize) {
  core::admission_queue q(64);
  for (int i = 0; i < 10; ++i) {
    core::admitted_txn a;
    a.txn = std::make_unique<txn::txn_desc>();
    ASSERT_TRUE(q.submit(std::move(a)));
  }
  // max=4 closes immediately on size — a huge deadline must not be waited.
  const auto batch = q.pop_batch(4, /*deadline_micros=*/60'000'000);
  EXPECT_EQ(batch.size(), 4u);
  EXPECT_EQ(q.depth(), 6u);
  EXPECT_EQ(q.admitted(), 10u);
}

TEST(Admission, DeadlineClosesPartialBatch) {
  core::admission_queue q(64);
  core::admitted_txn a;
  a.txn = std::make_unique<txn::txn_desc>();
  ASSERT_TRUE(q.submit(std::move(a)));
  const auto t0 = common::now_nanos();
  const auto batch = q.pop_batch(1024, /*deadline_micros=*/1000);
  const auto waited = common::now_nanos() - t0;
  EXPECT_EQ(batch.size(), 1u);  // partial: deadline fired
  // The 1ms deadline, not batch fill, must bound the wait. Generous slack
  // for loaded CI boxes, but tight enough to catch a deadline regression.
  EXPECT_LT(waited, 500ull * 1'000'000);
}

// Draining must wake producers blocked on a full queue *during* batch
// forming, not after it: with capacity < batch size, a willing submitter
// refills the freed slots and the batch still closes on size, fast —
// not partial after the full deadline.
TEST(Admission, DrainWakesBlockedProducersMidBatch) {
  core::admission_queue q(2);
  std::thread producer([&] {
    for (int i = 0; i < 6; ++i) {
      core::admitted_txn a;
      a.txn = std::make_unique<txn::txn_desc>();
      ASSERT_TRUE(q.submit(std::move(a)));  // blocks while full
    }
  });
  const auto t0 = common::now_nanos();
  const auto batch = q.pop_batch(6, /*deadline_micros=*/10'000'000);
  const auto waited = common::now_nanos() - t0;
  producer.join();
  EXPECT_EQ(batch.size(), 6u);              // closed on size...
  EXPECT_LT(waited, 5ull * 1'000'000'000);  // ...not on the 10s deadline
}

TEST(Admission, CloseDrainsThenReturnsEmpty) {
  core::admission_queue q(8);
  core::admitted_txn a;
  a.txn = std::make_unique<txn::txn_desc>();
  ASSERT_TRUE(q.submit(std::move(a)));
  q.close();
  // Still drains what was admitted before the close...
  EXPECT_EQ(q.pop_batch(8, 0).size(), 1u);
  // ...then reports drained-and-closed, and rejects new submissions.
  EXPECT_TRUE(q.pop_batch(8, 0).empty());
  core::admitted_txn b;
  b.txn = std::make_unique<txn::txn_desc>();
  EXPECT_FALSE(q.submit(std::move(b)));
  EXPECT_FALSE(q.try_submit(b));
}

TEST(Admission, TrySubmitRespectsCapacity) {
  core::admission_queue q(2);
  for (int i = 0; i < 2; ++i) {
    core::admitted_txn a;
    a.txn = std::make_unique<txn::txn_desc>();
    ASSERT_TRUE(q.try_submit(a));
  }
  core::admitted_txn overflow;
  overflow.txn = std::make_unique<txn::txn_desc>();
  EXPECT_FALSE(q.try_submit(overflow));
  EXPECT_TRUE(overflow.txn != nullptr);  // rejected submission intact
  EXPECT_EQ(q.pop_batch(2, 0).size(), 2u);
  EXPECT_TRUE(q.try_submit(overflow));  // capacity freed
}

// --- per-session admission caps (config::admission_session_cap) ------------

TEST(Admission, SessionCapBoundsPerClientQueueDepth) {
  core::admission_queue q(8, /*session_cap=*/2);
  auto mk = [](std::uint32_t client) {
    core::admitted_txn a;
    a.txn = std::make_unique<txn::txn_desc>();
    a.client = client;
    return a;
  };
  core::admitted_txn a0 = mk(0), a1 = mk(0), a2 = mk(0);
  ASSERT_TRUE(q.try_submit(a0));
  ASSERT_TRUE(q.try_submit(a1));
  EXPECT_FALSE(q.try_submit(a2));  // client 0 hit its cap...
  EXPECT_EQ(q.in_queue(0), 2u);
  core::admitted_txn b0 = mk(1), b1 = mk(1);
  EXPECT_TRUE(q.try_submit(b0));  // ...while the queue still has room
  EXPECT_TRUE(q.try_submit(b1));  // for other sessions
  EXPECT_EQ(q.depth(), 4u);

  // Draining releases the per-session slots.
  EXPECT_EQ(q.pop_batch(8, 0).size(), 4u);
  EXPECT_EQ(q.in_queue(0), 0u);
  EXPECT_TRUE(q.try_submit(a2));
}

// Fairness acceptance: a greedy session that submits as fast as it can
// must not be able to occupy the whole admission queue — a second session
// always finds room, because the greedy one blocks on its own cap first.
TEST(Admission, GreedySessionCannotStarveOther) {
  core::admission_queue q(/*capacity=*/4, /*session_cap=*/2);
  constexpr std::uint32_t kGreedy = 16;
  std::thread greedy([&] {
    for (std::uint32_t i = 0; i < kGreedy; ++i) {
      core::admitted_txn a;
      a.txn = std::make_unique<txn::txn_desc>();
      a.client = 0;
      ASSERT_TRUE(q.submit(std::move(a)));  // blocks at cap, not capacity
    }
  });
  // Wait until the greedy session saturated its cap and is blocked.
  while (q.in_queue(0) < 2) std::this_thread::yield();

  // The polite session gets in on every attempt — no starvation, no
  // waiting for the greedy backlog: after each drain the greedy session
  // holds at most its cap (2 of 4 slots), so room always remains.
  std::uint32_t polite_admitted = 0;
  for (int round = 0; round < 8; ++round) {
    core::admitted_txn b;
    b.txn = std::make_unique<txn::txn_desc>();
    b.client = 1;
    if (q.try_submit(b)) ++polite_admitted;
    (void)q.pop_batch(4, 0);  // full drain: next round starts empty-ish
  }
  EXPECT_EQ(polite_admitted, 8u);

  // Drain the remaining greedy backlog so the producer can finish.
  while (q.admitted() < kGreedy + polite_admitted || q.depth() > 0) {
    if (q.depth() > 0) {
      (void)q.pop_batch(8, 0);
    } else {
      std::this_thread::yield();
    }
  }
  greedy.join();
  EXPECT_EQ(q.admitted(), kGreedy + polite_admitted);
}

// --- proto::session ---------------------------------------------------------

// Acceptance: a deadline-triggered *partial* batch commits correctly — a
// session holding fewer than batch_size transactions must not wait for the
// batch to fill, and its final state must equal a closed-loop run of the
// same transactions.
TEST(Session, DeadlinePartialBatchMatchesClosedLoop) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1024;
  wl::ycsb w(wcfg);

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  cfg.batch_size = 1024;  // far more than we will submit
  cfg.batch_deadline_micros = 2000;

  constexpr std::uint32_t kTxns = 10;

  // Async path: submit 10 transactions, wait on every ticket.
  storage::database db_async;
  w.load(db_async);
  {
    core::quecc_engine eng(db_async, cfg);
    proto::session s(eng, cfg);
    common::rng r(5);
    std::vector<proto::session::ticket> tickets;
    for (std::uint32_t i = 0; i < kTxns; ++i) {
      tickets.push_back(s.submit(w.make_txn(r)));
    }
    for (const auto& t : tickets) {
      ASSERT_TRUE(t.valid());
      const auto res = t.wait();  // resolves only because the deadline fired
      EXPECT_EQ(res.status, txn::txn_status::committed);
      EXPECT_GE(res.e2e_nanos, res.queue_nanos);
    }
    s.close();
    EXPECT_EQ(s.metrics().committed, kTxns);
    EXPECT_EQ(s.metrics().e2e_latency.count(), kTxns);
    // Every batch was deadline-closed: none reached batch_size.
    EXPECT_GE(s.batches_formed(), 1u);
  }

  // Closed-loop reference: the same generator stream through run_batch.
  storage::database db_ref;
  w.load(db_ref);
  {
    core::quecc_engine eng(db_ref, cfg);
    common::rng r(5);
    auto b = w.make_batch(r, kTxns);
    common::run_metrics m;
    eng.run_batch(b, m);
  }

  EXPECT_EQ(db_async.state_hash(), db_ref.state_hash());
}

// Acceptance: open-loop runs measure queueing — end-to-end latency
// (submit -> commit) must exceed pure execution latency, which is all a
// closed-loop replay can see.
TEST(Runner, OpenLoopMeasuresQueueingDelay) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1024;
  wl::ycsb w(wcfg);
  storage::database db;
  w.load(db);

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  core::quecc_engine eng(db, cfg);

  harness::run_options opts;
  opts.mode = harness::arrival_mode::open_loop;
  opts.batches = 2;
  opts.batch_size = 128;
  opts.seed = 1;
  opts.offered_load_tps = 50'000;
  opts.batch_deadline_micros = 1000;
  const auto res = harness::run_workload(eng, w, db, opts);

  const auto total = opts.total_txns();
  EXPECT_EQ(res.metrics.committed, total);
  EXPECT_EQ(res.metrics.queue_latency.count(), total);
  EXPECT_EQ(res.metrics.e2e_latency.count(), total);
  EXPECT_EQ(res.offered_load_tps, opts.offered_load_tps);

  // Submit->commit includes queueing for a batch to form, so it strictly
  // dominates the execution-only histogram.
  EXPECT_GT(res.metrics.e2e_latency.mean_nanos(),
            res.metrics.txn_latency.mean_nanos());
  EXPECT_GE(res.metrics.e2e_latency.percentile_nanos(50),
            res.metrics.txn_latency.percentile_nanos(50));
  EXPECT_GE(res.metrics.e2e_latency.percentile_nanos(99),
            res.metrics.txn_latency.percentile_nanos(99));

  // Determinism across arrival timing: the open-loop run commits the same
  // transaction stream a closed-loop run would.
  storage::database db_ref;
  w.load(db_ref);
  core::quecc_engine eng_ref(db_ref, cfg);
  harness::run_options closed = opts;
  closed.mode = harness::arrival_mode::closed_loop;
  const auto ref = harness::run_workload(eng_ref, w, db_ref, closed);
  EXPECT_EQ(res.final_state_hash, ref.final_state_hash);
}

// A malformed plan must not reach the pump thread (where a validation
// throw would terminate the process): it is rejected at submit, resolving
// as aborted, and the session keeps serving well-formed transactions.
TEST(Session, MalformedPlanRejectedAtSubmit) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 256;
  wl::ycsb w(wcfg);
  storage::database db;
  w.load(db);

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  cfg.batch_deadline_micros = 500;
  core::quecc_engine eng(db, cfg);
  proto::session s(eng, cfg);
  common::rng r(4);

  auto bad = w.make_txn(r);
  ASSERT_GT(bad->frags.size(), 1u);
  bad->frags[0].idx = 7;  // violates "fragment idx values are 0..n-1"
  auto bad_ticket = s.submit(std::move(bad));
  ASSERT_TRUE(bad_ticket.valid());
  EXPECT_EQ(bad_ticket.wait().status, txn::txn_status::aborted);

  auto null_ticket = s.submit(nullptr);
  ASSERT_TRUE(null_ticket.valid());
  EXPECT_EQ(null_ticket.wait().status, txn::txn_status::aborted);

  auto bad2 = w.make_txn(r);
  bad2->frags[0].idx = 7;
  EXPECT_FALSE(s.post(std::move(bad2)));  // fire-and-forget path too

  auto good = s.submit(w.make_txn(r));
  EXPECT_EQ(good.wait().status, txn::txn_status::committed);
  s.close();
  EXPECT_EQ(s.metrics().committed, 1u);
}

TEST(Session, SubmitAfterCloseReturnsInvalidTicket) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 256;
  wl::ycsb w(wcfg);
  storage::database db;
  w.load(db);

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  core::quecc_engine eng(db, cfg);
  proto::session s(eng, cfg);
  common::rng r(3);
  auto live = s.submit(w.make_txn(r));
  EXPECT_TRUE(live.valid());
  s.close();
  auto dead = s.submit(w.make_txn(r));
  EXPECT_FALSE(dead.valid());
  // wait() on an invalid ticket resolves immediately as aborted.
  EXPECT_EQ(dead.wait().status, txn::txn_status::aborted);
  EXPECT_FALSE(s.post(w.make_txn(r)));
  EXPECT_EQ(live.wait().status, txn::txn_status::committed);
}

TEST(Session, ConstructorRejectsZeroBatchSize) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 256;
  wl::ycsb w(wcfg);
  storage::database db;
  w.load(db);
  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  core::quecc_engine eng(db, cfg);
  cfg.batch_size = 0;  // would silently kill the pump: tickets hang forever
  EXPECT_THROW(proto::session(eng, cfg), std::invalid_argument);
  cfg = common::config{};
  cfg.admission_capacity = 0;
  EXPECT_THROW(proto::session(eng, cfg), std::invalid_argument);
}

TEST(Runner, OpenLoopRejectsNonPositiveLoad) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 256;
  wl::ycsb w(wcfg);
  storage::database db;
  w.load(db);
  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  core::quecc_engine eng(db, cfg);

  harness::run_options opts;
  opts.mode = harness::arrival_mode::open_loop;
  opts.offered_load_tps = 0;
  EXPECT_THROW(harness::run_workload(eng, w, db, opts),
               std::invalid_argument);
}

// --- targeted speculation-recovery scenarios --------------------------------

// Build a 3-txn chain on one record: T0 RMWs key K and aborts afterwards
// (abort check planted later in T0), T1 reads K (dirty under speculation),
// T2 reads what T1 wrote elsewhere. Verifies cascade depth 2.
TEST(SpecRecovery, CascadeChainsAcrossRecords) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 256;
  wcfg.ops_per_txn = 2;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  const txn::procedure* proc;
  {
    common::rng r(1);
    proc = w.make_txn(r)->proc;
  }

  auto mk = [&](std::initializer_list<txn::fragment> frags) {
    auto t = std::make_unique<txn::txn_desc>();
    t->proc = proc;
    std::uint16_t idx = 0;
    for (auto f : frags) {
      f.idx = idx++;
      t->frags.push_back(f);
    }
    return t;
  };
  auto frag = [](key_t key, txn::op_kind kind, std::uint16_t logic,
                 std::uint64_t aux, std::uint16_t out) {
    txn::fragment f;
    f.table = 0;
    f.key = key;
    f.part = static_cast<part_id_t>(key % 4);  // ycsb home partition rule
    f.kind = kind;
    f.logic = logic;
    f.aux = aux;
    f.output_slot = out;
    return f;
  };

  // T0: abortable check (doomed, aux=1) then RMW on key 10.
  auto check = frag(10, txn::op_kind::read, wl::ycsb::op_abort_check, 1,
                    txn::kNoSlot);
  check.abortable = true;
  auto t0 = mk({check,
                frag(10, txn::op_kind::update, wl::ycsb::op_rmw, 100, 0)});
  // T1: RMW key 10 (reads T0's dirty write), RMW key 20.
  auto t1 = mk({frag(10, txn::op_kind::update, wl::ycsb::op_rmw, 7, 0),
                frag(20, txn::op_kind::update, wl::ycsb::op_rmw, 3, 1)});
  // T2: reads key 20 (poisoned transitively through T1).
  auto t2 = mk({frag(20, txn::op_kind::read, wl::ycsb::op_read, 0, 0)});

  txn::batch b;
  txn::txn_desc& rt0 = b.add(std::move(t0));
  txn::txn_desc& rt1 = b.add(std::move(t1));
  txn::txn_desc& rt2 = b.add(std::move(t2));
  b.validate();

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 2;
  cfg.execution = common::exec_model::speculative;
  core::quecc_engine eng(*db, cfg);
  common::run_metrics m;
  eng.run_batch(b, m);

  EXPECT_TRUE(rt0.aborted());
  EXPECT_FALSE(rt1.aborted());
  EXPECT_FALSE(rt2.aborted());

  // Final state must be as if T0 never ran: key10 = 7, key20 = 3, and T2
  // must have read T1's committed value.
  const auto& tab = db->at(0);
  EXPECT_EQ(storage::read_u64(tab.row(tab.lookup(10, 2)), 0), 7u);
  EXPECT_EQ(storage::read_u64(tab.row(tab.lookup(20, 0)), 0), 3u);
  EXPECT_EQ(rt2.slot_value(0), 3u);
  EXPECT_EQ(m.aborted, 1u);
  EXPECT_EQ(m.committed, 2u);
}

// A committed transaction that only *blind-writes* after an aborted writer
// still converges to the serial outcome (taint-by-write is handled).
TEST(SpecRecovery, BlindWriteAfterAbortedWriter) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 64;
  wcfg.ops_per_txn = 1;
  wl::ycsb w(wcfg);
  auto db = testutil::make_loaded_db(w);
  auto db_serial = db->clone();
  const txn::procedure* proc;
  {
    common::rng r(1);
    proc = w.make_txn(r)->proc;
  }

  auto frag = [](key_t key, txn::op_kind kind, std::uint16_t logic,
                 std::uint64_t aux) {
    txn::fragment f;
    f.table = 0;
    f.key = key;
    f.part = static_cast<part_id_t>(key % 4);  // ycsb home partition rule
    f.kind = kind;
    f.logic = logic;
    f.aux = aux;
    return f;
  };

  auto t0 = std::make_unique<txn::txn_desc>();
  t0->proc = proc;
  auto check = frag(5, txn::op_kind::read, wl::ycsb::op_abort_check, 1);
  check.abortable = true;
  check.idx = 0;
  t0->frags.push_back(check);
  auto w0 = frag(5, txn::op_kind::update, wl::ycsb::op_rmw, 50);
  w0.idx = 1;
  w0.output_slot = 0;
  t0->frags.push_back(w0);

  auto t1 = std::make_unique<txn::txn_desc>();
  t1->proc = proc;
  auto w1 = frag(5, txn::op_kind::update, wl::ycsb::op_write, 999);
  w1.idx = 0;
  t1->frags.push_back(w1);

  txn::batch b;
  b.add(std::move(t0));
  b.add(std::move(t1));
  b.validate();

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  cfg.execution = common::exec_model::speculative;
  core::quecc_engine eng(*db, cfg);
  common::run_metrics m;
  eng.run_batch(b, m);

  testutil::replay_in_seq_order(*db_serial, b);
  EXPECT_EQ(db->state_hash(), db_serial->state_hash());
  const auto& tab = db->at(0);
  EXPECT_EQ(storage::read_u64(tab.row(tab.lookup(5, 1)), 0), 999u);
}

}  // namespace
}  // namespace quecc
