// MUST PASS: an unordered iteration in determinism-relevant code with a
// // quecc-ok(unordered) line justification, and a whole function
// whitelisted via QUECC_UNORDERED_OK. Both escape hatches must keep the
// analyzer quiet — and both leave a written claim of order-independence.
//
// Analyzed (never compiled) by tests/analyze via tools/quecc-analyze.
#include <cstdint>
#include <unordered_set>

#include "common/phase_annotations.hpp"

namespace fx {

EPILOGUE_PHASE void publish_dirty(const std::unordered_set<std::uint64_t>& d,
                                  std::uint64_t& sum_out) {
  std::uint64_t sum = 0;
  // quecc-ok(unordered): sum is commutative, order cannot reach output
  for (std::uint64_t rid : d) sum += rid;
  sum_out = sum;
}

QUECC_UNORDERED_OK("membership count only; iteration order is unobservable")
EPILOGUE_PHASE std::uint64_t count_dirty(
    const std::unordered_set<std::uint64_t>& d) {
  std::uint64_t n = 0;
  for (std::uint64_t rid : d) n += rid != 0 ? 1 : 1;
  return n;
}

}  // namespace fx
