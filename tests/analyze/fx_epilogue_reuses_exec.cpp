// MUST PASS: the epilogue calling exec-phase helpers is the one allowed
// cross-phase direction — speculative recovery re-executes fragments with
// the execution machinery (spec_manager::recover -> run_txn_serially).
// Every other cross-phase edge (plan->exec, exec->epilogue, ...) is a
// violation; see fx_plan_calls_exec.cpp.
//
// Analyzed (never compiled) by tests/analyze via tools/quecc-analyze.
#include "common/phase_annotations.hpp"

namespace fx {

EXEC_PHASE void reexecute_fragment(int seq) { (void)seq; }

EPILOGUE_PHASE void recover_batch(int aborted_seq) {
  reexecute_fragment(aborted_seq);
}

}  // namespace fx
