// MUST FLAG [unordered]: a range-for over an unordered_map in a function
// whose result feeds the plan codec. Hash iteration order is
// implementation-defined, so the serialized bytes would differ across
// stdlibs/runs — sort first, or justify with // quecc-ok(unordered).
//
// Analyzed (never compiled) by tests/analyze via tools/quecc-analyze.
#include <cstdint>
#include <unordered_map>
#include <vector>

namespace quecc::log {
// Serialization sink (matches the analyzer's SINKS list by qualified name).
void encode_batch(const std::vector<std::uint64_t>& vals,
                  std::vector<unsigned char>& out);
}  // namespace quecc::log

namespace fx {

inline void serialize_state(
    const std::unordered_map<std::uint64_t, std::uint64_t>& state,
    std::vector<unsigned char>& out) {
  std::vector<std::uint64_t> vals;
  for (const auto& [key, val] : state) {  // order leaks into the codec
    vals.push_back(val);
  }
  quecc::log::encode_batch(vals, out);
}

}  // namespace fx
