// MUST PASS: clocks and unordered iteration in code that is neither
// reachable from a determinism root nor feeding a serialization sink.
// Metrics/reporting code is free to use wall clocks and hash-order
// iteration — the contract covers only the planned-batch -> replayed-state
// -> serialized-output path.
//
// Analyzed (never compiled) by tests/analyze via tools/quecc-analyze.
#include <chrono>
#include <cstdint>
#include <string>
#include <unordered_map>

namespace fx {

inline double sample_elapsed_seconds(
    std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

inline std::uint64_t sum_counters(
    const std::unordered_map<std::string, std::uint64_t>& counters) {
  std::uint64_t total = 0;
  for (const auto& [name, value] : counters) total += value;
  return total;
}

}  // namespace fx
