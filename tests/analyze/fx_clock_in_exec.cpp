// MUST FLAG [nondet]: an exec-phase root reaches a steady_clock read
// through an unannotated helper. Clock-dependent branches in execution are
// exactly the replay-divergence bug the determinism contract exists to
// catch — the helper needs QUECC_NONDET("why") or the clock must go.
//
// Analyzed (never compiled) by tests/analyze via tools/quecc-analyze.
#include <chrono>

#include "common/phase_annotations.hpp"

namespace fx {

// Unannotated helper: traversal passes straight through it.
inline std::uint64_t helper_latency_probe() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

EXEC_PHASE void apply_fragment(std::uint64_t& out) {
  out = helper_latency_probe();
}

}  // namespace fx
