// MUST PASS: the clock read sits behind a QUECC_NONDET("why") boundary —
// the audited escape hatch. The analyzer neither traverses into the
// function nor flags its banned calls; the annotation's reason string is
// the audit trail.
//
// Analyzed (never compiled) by tests/analyze via tools/quecc-analyze.
#include <chrono>
#include <cstdint>

#include "common/phase_annotations.hpp"

namespace fx {

QUECC_NONDET("latency stat only; reading never influences results")
inline std::uint64_t read_stats_clock() {
  return static_cast<std::uint64_t>(
      std::chrono::steady_clock::now().time_since_epoch().count());
}

EXEC_PHASE void apply_fragment(std::uint64_t& latency_out) {
  latency_out = read_stats_clock();
}

}  // namespace fx
