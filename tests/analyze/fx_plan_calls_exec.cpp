// MUST FLAG [phase]: a plan-phase function reaches an exec-phase function
// through an unannotated intermediate. At pipeline depth >= 2 planning
// overlaps the previous batch's execution, so plan-phase code touching
// exec-phase machinery (index mutators, row writes) races with it — the
// PR 4 deferred-resolution rule, here enforced statically.
//
// Analyzed (never compiled) by tests/analyze via tools/quecc-analyze.
#include "common/phase_annotations.hpp"

namespace fx {

EXEC_PHASE void index_insert(int key) { (void)key; }

// Unannotated intermediate: the violation is transitive.
inline void resolve_eagerly(int key) { index_insert(key); }

PLAN_PHASE void plan_txn(int key) { resolve_eagerly(key); }

}  // namespace fx
