#!/usr/bin/env sh
# Durability smoke test: SIGKILL a durable queccctl run mid-flight, recover
# from its command log, resume the remainder of the deterministic stream,
# and require the final state hash to equal an uninterrupted run's.
#
# Runs with --pipeline-depth 2 so the kill lands while two batches are in
# flight (batch records of in-flight batches interleave with commit
# records — exactly the log shape recovery must handle). Because --recover
# resumes *durably in place*, a second --recover of the same log must be a
# pure replay of the full stream landing on the same hash — that asserts
# the resumed run really kept appending.
#
# Two legs: YCSB on the hash index (the original smoke), and the full
# scan-based 5-txn TPC-C mix on the ordered index (--tpcc-full), which
# additionally exercises v3 checkpoints of ordered arenas and scan-fragment
# (key_hi) plan-log round-trips.
#
# Usage: scripts/recovery_smoke.sh [build-dir]   (default: build)
set -eu

cd "$(dirname "$0")/.."
BUILD=${1:-build}
CTL=$BUILD/examples/queccctl
[ -x "$CTL" ] || { echo "recovery smoke: $CTL not built"; exit 1; }

TMP=$(mktemp -d)
trap 'rm -rf "$TMP"' EXIT

run_leg() {
    NAME=$1
    ARGS=$2
    LOG="$TMP/log-$NAME"

    # Reference: the uninterrupted (in-memory) run of the same stream.
    REF=$($CTL $ARGS | sed -n 's/^state hash: //p')
    [ -n "$REF" ] || { echo "recovery smoke [$NAME]: no reference hash"; exit 1; }

    # Durable run, killed hard mid-flight (whatever batches managed to
    # fsync a commit record survive; an in-flight write may leave a torn
    # tail).
    $CTL $ARGS --durable --log-dir "$LOG" --checkpoint-every 8 \
        > "$TMP/run.out" 2>&1 &
    PID=$!
    sleep 0.4
    kill -9 "$PID" 2>/dev/null || true
    wait "$PID" 2>/dev/null || true

    # Recover + resume must land on the reference hash, wherever the kill
    # hit.
    GOT=$($CTL $ARGS --recover --log-dir "$LOG" | tee "$TMP/recover.out" \
          | sed -n 's/^state hash: //p')
    if [ "$REF" != "$GOT" ]; then
        echo "recovery smoke [$NAME]: hash mismatch (ref=$REF got=$GOT)"
        cat "$TMP/recover.out"
        exit 1
    fi

    # The resumed run continued the log in place: recovering it again must
    # be a full replay (no resumed txns left) that lands on the same hash.
    AGAIN=$($CTL $ARGS --recover --log-dir "$LOG" \
            | tee "$TMP/recover2.out" | sed -n 's/^state hash: //p')
    if [ "$REF" != "$AGAIN" ]; then
        echo "recovery smoke [$NAME]: resumed-log replay mismatch" \
             "(ref=$REF got=$AGAIN)"
        cat "$TMP/recover2.out"
        exit 1
    fi
    if grep -q '^resumed durably' "$TMP/recover2.out"; then
        echo "recovery smoke [$NAME]: second recovery still had txns to resume"
        cat "$TMP/recover2.out"
        exit 1
    fi
    echo "recovery smoke [$NAME]: ok (state hash $REF)"
}

# --partitions 4 (explicit) so the runs exercise sharded storage: four
# per-partition arenas, per-shard checkpoints, and shard-aware restore.
run_leg ycsb "--workload ycsb --batches 48 --batch-size 1024 --seed 7 \
--pipeline-depth 2 --partitions 4"

run_leg tpcc-full "--workload tpcc --tpcc-full --index ordered --batches 24 \
--batch-size 1024 --seed 7 --pipeline-depth 2 --partitions 4"
