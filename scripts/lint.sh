#!/usr/bin/env sh
# Project lint: clang-tidy (profile in .clang-tidy) plus the custom
# concurrency lints that clang-tidy has no check for. Drives itself off the
# compile database exported by CMake (CMAKE_EXPORT_COMPILE_COMMANDS=ON).
#
#   scripts/lint.sh [build-dir]     # default build dir: ./build
#
# The custom lints always run (plain python3). clang-tidy runs when it is
# on PATH and the compile database exists; the CI lint job guarantees both,
# so a local skip is a note, not a pass.
set -eu

cd "$(dirname "$0")/.."
BUILD_DIR="${1:-build}"

# ---------------------------------------------------------------------------
# Custom concurrency lints. Three rules:
#
# 1. No raw standard-library lock primitives outside common/mutex.hpp.
#    std::mutex & friends carry no thread-safety attributes, so code using
#    them is invisible to -Wthread-safety; everything must go through
#    common::mutex / common::mutex_lock / common::cond_var (or
#    common::spinlock / spin_guard), which do.
#
# 2. A file declaring a common::mutex or common::spinlock member must
#    contain at least one thread-safety annotation (GUARDED_BY / REQUIRES /
#    ACQUIRE / CAPABILITY...). A lock with no annotated contract protects
#    nothing the analysis can see — either annotate what it guards or
#    document why nothing needs it (and keep the lock out of the header).
#
# 3. Every memory_order_relaxed needs a justifying comment: a comment
#    containing the word "relaxed" on the same line or within the four
#    preceding lines. A covered relaxed line extends cover to relaxed
#    lines within the next four lines, so one comment may justify an
#    adjacent cluster ("relaxed (all stores below): ...").
# ---------------------------------------------------------------------------
python3 - <<'PY'
import pathlib
import re
import sys

SRC = pathlib.Path("src")
errors = []

RAW_PRIMITIVES = re.compile(
    r"std::(mutex|timed_mutex|recursive_mutex|shared_mutex|scoped_lock"
    r"|lock_guard|unique_lock|shared_lock|condition_variable(_any)?)\b")
LOCK_MEMBER = re.compile(
    r"^\s*(?:mutable\s+)?(?:quecc::)?common::(?:mutex|spinlock)\s+\w+")
ANNOTATION = re.compile(
    r"\b(GUARDED_BY|PT_GUARDED_BY|REQUIRES|ACQUIRE|RELEASE|EXCLUDES"
    r"|CAPABILITY|TRY_ACQUIRE)\b")
RELAXED = "memory_order_relaxed"
RELAXED_COMMENT = re.compile(r"//.*relaxed", re.IGNORECASE)
WINDOW = 4  # lines a justifying comment (or covered line) reaches forward

def code_part(line: str) -> str:
    """The line with any trailing // comment stripped (no block comments or
    string literals containing '//' in this codebase's hot paths; kept
    deliberately simple)."""
    return line.split("//", 1)[0]

for path in sorted(SRC.rglob("*.[ch]pp")):
    rel = path.as_posix()
    lines = path.read_text().splitlines()

    # Rule 1: raw std primitives (common/mutex.hpp wraps them; std::once_flag
    # and std::atomic are fine — they need no capability annotations).
    if rel != "src/common/mutex.hpp":
        for i, line in enumerate(lines, 1):
            m = RAW_PRIMITIVES.search(code_part(line))
            if m:
                errors.append(
                    f"{rel}:{i}: raw std::{m.group(1)} — use the annotated "
                    "wrappers in common/mutex.hpp so -Wthread-safety can "
                    "see the lock")

    # Rule 2: lock members imply annotations somewhere in the file.
    member_line = next(
        (i for i, line in enumerate(lines, 1)
         if LOCK_MEMBER.match(code_part(line))), None)
    if member_line is not None and rel not in (
            "src/common/mutex.hpp", "src/common/spinlock.hpp"):
        if not any(ANNOTATION.search(code_part(l)) for l in lines):
            errors.append(
                f"{rel}:{member_line}: common::mutex/spinlock member but no "
                "thread-safety annotations in the file — declare what the "
                "lock guards (GUARDED_BY/REQUIRES)")

    # Rule 3: memory_order_relaxed needs a nearby justifying comment.
    covered = set()
    for i, line in enumerate(lines, 1):
        if RELAXED not in line:
            continue
        ok = any(
            RELAXED_COMMENT.search(lines[j - 1])
            for j in range(max(1, i - WINDOW), i + 1))
        ok = ok or any(j in covered for j in range(i - WINDOW, i))
        if ok:
            covered.add(i)
        else:
            errors.append(
                f"{rel}:{i}: memory_order_relaxed without a justifying "
                "comment (say why relaxed is sound within the 4 lines above)")

if errors:
    print("\n".join(errors))
    print(f"\nlint: {len(errors)} finding(s)", file=sys.stderr)
    sys.exit(1)
print("lint: custom concurrency lints clean")
PY

# ---------------------------------------------------------------------------
# Determinism contract: tools/quecc-analyze over src/ (phase discipline,
# banned nondeterministic APIs, ordered-output hygiene — see
# src/common/phase_annotations.hpp). The text frontend needs only python3;
# --frontend=auto upgrades itself to libclang when the bindings and the
# compile database are available (the clang CI job).
# ---------------------------------------------------------------------------
python3 tools/quecc-analyze --frontend=auto --compile-db "$BUILD_DIR/compile_commands.json"

# ---------------------------------------------------------------------------
# clang-tidy over every src/ translation unit in the compile database.
# ---------------------------------------------------------------------------
if ! command -v clang-tidy >/dev/null 2>&1; then
    echo "lint: clang-tidy not on PATH — skipping (CI runs it)"
    exit 0
fi
if [ ! -f "$BUILD_DIR/compile_commands.json" ]; then
    echo "lint: $BUILD_DIR/compile_commands.json missing — configure first:" >&2
    echo "  cmake -B $BUILD_DIR -S ." >&2
    exit 1
fi

if command -v run-clang-tidy >/dev/null 2>&1; then
    run-clang-tidy -p "$BUILD_DIR" -quiet "src/.*\.cpp$"
else
    # Fall back to sequential clang-tidy; slower, same findings.
    find src -name '*.cpp' -print | xargs clang-tidy -p "$BUILD_DIR" --quiet
fi
echo "lint: clang-tidy clean"
