#!/usr/bin/env sh
# Tier-1 verification: configure, build everything, run the full test
# suite. Exactly what CI runs; keep it in sync with README "Build & test".
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# Pipelined determinism: depth-1 vs depth-2 state-hash equality across
# workloads/exec models/arrival modes (also part of ctest above; run
# explicitly so a pipelining regression is named in the output).
(cd build && ctest -R test_pipeline --output-on-failure)

# Durability: kill -9 a durable (pipelined) run mid-flight, recover,
# resume durably in place, compare hashes.
./scripts/recovery_smoke.sh build
