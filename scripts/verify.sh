#!/usr/bin/env sh
# Tier-1 verification: configure, build everything, run the full test
# suite. Exactly what CI runs; keep it in sync with README "Build & test".
set -eu

cd "$(dirname "$0")/.."

cmake -B build -S .
cmake --build build -j "$(nproc)"
(cd build && ctest --output-on-failure -j "$(nproc)")

# Durability: kill -9 a durable run mid-flight, recover, compare hashes.
./scripts/recovery_smoke.sh build
