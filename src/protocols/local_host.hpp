// In-place fragment host with local undo — shared by every engine that
// executes a transaction in one thread directly against table rows
// (serial reference, H-Store partitions, Calvin workers, and the
// speculation manager's recovery pass).
//
// Always resolves records by key (robust to same-batch inserts/erases),
// keeps an undo stack so a deterministic logic abort rolls the transaction
// back immediately, and optionally records dirtied rows for read-committed
// publishing.
#pragma once

#include <cstring>
#include <span>
#include <utility>
#include <vector>

#include "common/phase_annotations.hpp"
#include "storage/database.hpp"
#include "txn/procedure.hpp"

namespace quecc::proto {

class inplace_host final : public txn::frag_host {
 public:
  struct journal_entry {
    table_id_t table;
    key_t key;
    storage::row_id_t rid;
    txn::op_kind op;
    std::vector<std::byte> before;
  };

  explicit inplace_host(
      storage::database& db,
      std::vector<std::pair<table_id_t, storage::row_id_t>>* dirty = nullptr)
      : db_(db), dirty_(dirty) {}

  /// Record every mutation (including rollback restores) into `j`, never
  /// cleared by begin_txn(). Reverse-applying the journal restores the
  /// database to its state when the journal was attached — the speculation
  /// manager uses this to unwind a recovery pass that needs escalation.
  void set_journal(std::vector<journal_entry>* j) noexcept { journal_ = j; }

  void begin_txn() { undo_.clear(); }

  /// Undo every effect since begin_txn(), newest first.
  void rollback_txn() {
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      auto& tab = db_.at(it->table);
      switch (it->op) {
        case txn::op_kind::update: {
          auto row = tab.row(it->rid);
          if (journal_ != nullptr) {
            journal_->push_back({it->table, it->key, it->rid,
                                 txn::op_kind::update,
                                 {row.begin(), row.end()}});
          }
          std::memcpy(row.data(), it->before.data(), it->before.size());
          break;
        }
        case txn::op_kind::insert:
          if (journal_ != nullptr) {
            journal_->push_back({it->table, it->key, it->rid,
                                 txn::op_kind::erase, {}});
          }
          tab.erase(it->key, storage::rid_shard(it->rid));
          break;
        case txn::op_kind::erase:
          if (journal_ != nullptr) {
            journal_->push_back({it->table, it->key, it->rid,
                                 txn::op_kind::insert, {}});
          }
          tab.index_row(it->key, it->rid);
          break;
        case txn::op_kind::read:
        case txn::op_kind::scan:
          break;
      }
    }
    undo_.clear();
  }

  EXEC_PHASE std::span<const std::byte> read_row(const txn::fragment& f,
                                                 txn::txn_desc&) override {
    // Partition-local: home arena, no index lock (frag_host contract —
    // conflicting ops on a key are already serialized upstream).
    const auto rid = db_.at(f.table).lookup_local(f.key, f.part);
    if (rid == storage::kNoRow) return {};
    return db_.at(f.table).row(rid);
  }

  EXEC_PHASE std::span<std::byte> update_row(const txn::fragment& f,
                                             txn::txn_desc&) override {
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup_local(f.key, f.part);
    if (rid == storage::kNoRow) return {};
    auto row = tab.row(rid);
    undo_.push_back({f.table, f.key, rid, txn::op_kind::update,
                     {row.begin(), row.end()}});
    if (journal_ != nullptr) journal_->push_back(undo_.back());
    if (dirty_ != nullptr) dirty_->emplace_back(f.table, rid);
    return row;
  }

  EXEC_PHASE std::span<std::byte> insert_row(const txn::fragment& f,
                                             txn::txn_desc&) override {
    auto& tab = db_.at(f.table);
    const auto rid = tab.allocate_row(f.part);
    auto row = tab.row(rid);
    std::memset(row.data(), 0, row.size());
    if (!tab.index_row(f.key, rid)) {
      tab.retire_unindexed(rid);  // duplicate key: recycle the slot
      return {};
    }
    undo_.push_back({f.table, f.key, rid, txn::op_kind::insert, {}});
    if (journal_ != nullptr) journal_->push_back(undo_.back());
    if (dirty_ != nullptr) dirty_->emplace_back(f.table, rid);
    return row;
  }

  EXEC_PHASE bool erase_row(const txn::fragment& f, txn::txn_desc&) override {
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup_local(f.key, f.part);
    if (rid == storage::kNoRow) return false;
    if (!tab.erase(f.key, f.part)) return false;
    undo_.push_back({f.table, f.key, rid, txn::op_kind::erase, {}});
    if (journal_ != nullptr) journal_->push_back(undo_.back());
    return true;
  }

  /// Serial scan: a single-partition scan visits the home shard; a
  /// kAllParts scan visits every shard in ascending shard order, each in
  /// ascending key order. This matches the queue-oriented fan-out, whose
  /// per-partition partials sum commutatively (the kAllParts contract —
  /// u64-summable partials; table shard_count must equal the partition
  /// count, which every sharded loader guarantees).
  EXEC_PHASE bool scan_rows(const txn::fragment& f, txn::txn_desc&,
                            scan_row_fn fn, void* ctx) override {
    const auto& tab = db_.at(f.table);
    struct tramp_ctx {
      const storage::table* tab;
      scan_row_fn fn;
      void* ctx;
      bool stopped = false;
    } tc{&tab, fn, ctx};
    const auto visit = [](void* raw, key_t k, storage::row_id_t rid) {
      auto* c = static_cast<tramp_ctx*>(raw);
      if (!c->fn(c->ctx, k, c->tab->row(rid))) {
        c->stopped = true;
        return false;
      }
      return true;
    };
    if (f.part != txn::kAllParts) {
      return tab.visit_range_in(f.part, f.key, f.key_hi, visit, &tc);
    }
    bool supported = true;
    for (part_id_t s = 0; s < tab.shard_count() && !tc.stopped; ++s) {
      supported = tab.visit_range_in(s, f.key, f.key_hi, visit, &tc);
      if (!supported) break;
    }
    return supported;
  }

 private:
  storage::database& db_;
  std::vector<std::pair<table_id_t, storage::row_id_t>>* dirty_;
  std::vector<journal_entry> undo_;  ///< per-txn, cleared by begin_txn
  std::vector<journal_entry>* journal_ = nullptr;  ///< external, persistent
};

/// Reverse-apply a journal (newest first), restoring the database to its
/// state when the journal was attached.
inline void unwind_journal(storage::database& db,
                           const std::vector<inplace_host::journal_entry>& j) {
  for (auto it = j.rbegin(); it != j.rend(); ++it) {
    auto& tab = db.at(it->table);
    switch (it->op) {
      case txn::op_kind::update:
        std::memcpy(tab.row(it->rid).data(), it->before.data(),
                    it->before.size());
        break;
      case txn::op_kind::insert:
        tab.erase(it->key, storage::rid_shard(it->rid));
        break;
      case txn::op_kind::erase:
        tab.index_row(it->key, it->rid);
        break;
      case txn::op_kind::read:
      case txn::op_kind::scan:
        break;
    }
  }
}

/// Run one transaction's fragments in index order against `host`.
/// Returns true when the transaction committed, false on logic abort
/// (the host has already been rolled back). Leaves txn status set.
/// Exec-phase: the serial engines' whole execution stage, and the unit of
/// re-execution the commit epilogue's speculation recovery reuses.
EXEC_PHASE bool run_txn_serially(txn::txn_desc& t, inplace_host& host);

}  // namespace quecc::proto
