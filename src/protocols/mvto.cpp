#include "protocols/mvto.hpp"

#include <cstring>
#include <memory>

#include "common/spinlock.hpp"
#include "common/thread_annotations.hpp"

namespace quecc::proto {

namespace {
/// Versions kept per row after pruning. Generous enough that only extreme
/// stragglers lose their snapshot (they abort and retry with a fresh ts).
constexpr std::size_t kKeepVersions = 8;
}  // namespace

/// Sidecar version chains, one record per (table, rid).
class mvto_engine::version_store {
 public:
  explicit version_store(storage::database& db) : db_(db) {
    // Sidecars mirror the tables' per-partition arenas: rids address a
    // (shard, slot), so each shard gets its own rec array.
    tables_.resize(db.table_count());
    for (table_id_t t = 0; t < db.table_count(); ++t) {
      const auto& tab = db.at(t);
      tables_[t].resize(tab.shard_count());
      for (part_id_t s = 0; s < tab.shard_count(); ++s) {
        tables_[t][s] = std::make_unique<rec[]>(tab.shard_capacity(s));
      }
    }
  }

  struct version {
    std::uint64_t wts = 0;
    bool committed = false;
    std::vector<std::byte> data;
  };

  struct rec {
    common::spinlock latch;
    std::uint64_t max_rts GUARDED_BY(latch) = 0;
    bool initialized GUARDED_BY(latch) = false;  ///< lazily base-row seeded
    std::vector<version> chain GUARDED_BY(latch);
  };

  rec& at(table_id_t table, storage::row_id_t rid) {
    return tables_[table][storage::rid_shard(rid)][storage::rid_slot(rid)];
  }

  /// Seed version 0 from the loaded base row on first touch.
  void ensure_seeded(table_id_t table, storage::row_id_t rid, rec& r)
      REQUIRES(r.latch) {
    if (r.initialized) return;
    const auto row = db_.at(table).row(rid);
    r.chain.push_back({0, true, {row.begin(), row.end()}});
    r.initialized = true;
  }

 private:
  storage::database& db_;
  std::vector<std::vector<std::unique_ptr<rec[]>>> tables_;
};

namespace {

using version_store = mvto_engine::version_store;

class mvto_ctx final : public worker_ctx, public txn::frag_host {
 public:
  mvto_ctx(storage::database& db, version_store& store,
           std::atomic<std::uint64_t>& ts_source)
      : db_(db), store_(store), ts_source_(ts_source) {}

  txn::frag_host& host() override { return *this; }

  void begin(txn::txn_desc&) override {
    cc_failed_ = false;
    // relaxed: timestamp allocation needs uniqueness, not ordering — every
    // chain access that uses ts_ happens under the record latch.
    ts_ = ts_source_.fetch_add(1, std::memory_order_relaxed);
    writes_.clear();
    read_bufs_.clear();
  }

  bool cc_failed() const noexcept override { return cc_failed_; }

  bool try_commit(txn::txn_desc&,
                  const std::function<void()>& at_serialization) override {
    // MVTO's serial order is timestamp order; the reads already enforced
    // it via max_rts, so commit just publishes pending versions.
    at_serialization();
    for (auto& w : writes_) {
      auto& tab = db_.at(w.table);
      if (w.op == txn::op_kind::insert) {
        const auto rid = tab.allocate_row(w.part);
        auto row = tab.row(rid);
        if (!w.buf.empty()) {  // empty data() is null; null memcpy src is UB
          std::memcpy(row.data(), w.buf.data(),
                      std::min(w.buf.size(), row.size()));
        }
        auto& r = store_.at(w.table, rid);
        common::spin_guard guard(r.latch);
        r.chain.push_back({ts_, true, std::move(w.buf)});
        r.initialized = true;
        if (!tab.index_row(w.key, rid)) {
          r.chain.clear();
          r.initialized = false;
          tab.retire_unindexed(rid);
        }
        continue;
      }
      auto& r = store_.at(w.table, w.rid);
      common::spin_guard guard(r.latch);
      for (auto& v : r.chain) {
        if (v.wts == ts_) {
          // Adopt the logic's private buffer as the version payload, then
          // mirror the newest committed version into the base row so the
          // harness's state hash sees MVTO's logical state.
          if (w.op == txn::op_kind::update) v.data = std::move(w.buf);
          v.committed = true;
          // Erase versions carry no payload, and memcpy from an empty
          // vector's data() (null) is UB even at size zero.
          if (!v.data.empty()) {
            std::memcpy(tab.row(w.rid).data(), v.data.data(), v.data.size());
          }
          break;
        }
      }
      prune(r);
      if (w.op == txn::op_kind::erase) {
        tab.erase(w.key, storage::rid_shard(w.rid));
      }
    }
    return true;
  }

  void abort_attempt(txn::txn_desc&) override {
    for (auto& w : writes_) {
      if (w.op == txn::op_kind::insert || w.rid == storage::kNoRow) continue;
      auto& r = store_.at(w.table, w.rid);
      common::spin_guard guard(r.latch);
      for (std::size_t i = 0; i < r.chain.size(); ++i) {
        if (r.chain[i].wts == ts_ && !r.chain[i].committed) {
          r.chain.erase(r.chain.begin() + static_cast<std::ptrdiff_t>(i));
          break;
        }
      }
    }
    writes_.clear();
    read_bufs_.clear();
  }

  // --- frag_host -----------------------------------------------------------
  std::span<const std::byte> read_row(const txn::fragment& f,
                                      txn::txn_desc&) override {
    if (auto* w = find_write(f.table, f.key)) return w->buf;
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return {};
    auto& r = store_.at(f.table, rid);
    auto& buf = read_bufs_.emplace_back();
    {
      common::spin_guard guard(r.latch);
      store_.ensure_seeded(f.table, rid, r);
      // A pending writer older than us might commit underneath our read:
      // its outcome is unknown, so reading past it is unsafe.
      for (const auto& v : r.chain) {
        if (!v.committed && v.wts < ts_) {
          cc_failed_ = true;
          return {};
        }
      }
      const version_store::version* best = nullptr;
      for (const auto& v : r.chain) {
        if (v.committed && v.wts <= ts_ &&
            (best == nullptr || v.wts > best->wts)) {
          best = &v;
        }
      }
      if (best == nullptr) {  // snapshot pruned away: retry with fresh ts
        cc_failed_ = true;
        return {};
      }
      if (r.max_rts < ts_) r.max_rts = ts_;
      buf.assign(best->data.begin(), best->data.end());
    }
    return buf;
  }

  std::span<std::byte> update_row(const txn::fragment& f,
                                  txn::txn_desc&) override {
    if (auto* w = find_write(f.table, f.key)) return w->buf;
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return {};
    auto& r = store_.at(f.table, rid);
    std::vector<std::byte> base;
    {
      common::spin_guard guard(r.latch);
      store_.ensure_seeded(f.table, rid, r);
      // Write rule: abort when a later reader already saw this row, when a
      // later version exists, or when another writer is pending.
      if (r.max_rts > ts_) {
        cc_failed_ = true;
        return {};
      }
      const version_store::version* latest = nullptr;
      for (const auto& v : r.chain) {
        if (!v.committed) {
          cc_failed_ = true;  // pending writer (any ts): first-writer-wins
          return {};
        }
        if (latest == nullptr || v.wts > latest->wts) latest = &v;
      }
      if (latest == nullptr || latest->wts > ts_) {
        cc_failed_ = true;
        return {};
      }
      base.assign(latest->data.begin(), latest->data.end());
      r.chain.push_back({ts_, false, std::move(base)});
    }
    auto& w = writes_.emplace_back();
    w.table = f.table;
    w.key = f.key;
    w.rid = rid;
    w.op = txn::op_kind::update;
    // Logic mutates a private buffer seeded from the predecessor version;
    // commit adopts it as the pending version's payload (the chain may
    // reallocate while unlatched, so handing out a span into it is unsafe).
    {
      common::spin_guard guard(r.latch);
      for (auto& v : r.chain) {
        if (v.wts == ts_ && !v.committed) {
          w.buf = v.data;
          break;
        }
      }
    }
    return w.buf;
  }

  std::span<std::byte> insert_row(const txn::fragment& f,
                                  txn::txn_desc&) override {
    auto& w = writes_.emplace_back();
    w.table = f.table;
    w.key = f.key;
    w.part = f.part;  // home arena for the install-time allocation
    w.op = txn::op_kind::insert;
    w.buf.assign(db_.at(f.table).layout().row_size(), std::byte{0});
    return w.buf;
  }

  bool erase_row(const txn::fragment& f, txn::txn_desc&) override {
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return false;
    auto& r = store_.at(f.table, rid);
    {
      common::spin_guard guard(r.latch);
      store_.ensure_seeded(f.table, rid, r);
      if (r.max_rts > ts_) {
        cc_failed_ = true;
        return false;
      }
      for (const auto& v : r.chain) {
        if (!v.committed) {
          cc_failed_ = true;
          return false;
        }
      }
      r.chain.push_back({ts_, false, {}});
    }
    auto& w = writes_.emplace_back();
    w.table = f.table;
    w.key = f.key;
    w.rid = rid;
    w.op = txn::op_kind::erase;
    return true;
  }

 private:
  struct write_rec {
    table_id_t table;
    key_t key;
    part_id_t part = 0;  ///< home partition (insert install routes by it)
    storage::row_id_t rid = storage::kNoRow;
    txn::op_kind op = txn::op_kind::update;
    std::vector<std::byte> buf;
  };

  write_rec* find_write(table_id_t table, key_t key) {
    for (auto& w : writes_) {
      if (w.table == table && w.key == key && w.op != txn::op_kind::erase) {
        return &w;
      }
    }
    return nullptr;
  }

  void prune(version_store::rec& r) REQUIRES(r.latch) {
    // Drop oldest committed versions beyond the keep limit; pending
    // versions (there is at most one) are never pruned.
    while (r.chain.size() > kKeepVersions && r.chain.front().committed) {
      r.chain.erase(r.chain.begin());
    }
  }

  storage::database& db_;
  version_store& store_;
  std::atomic<std::uint64_t>& ts_source_;
  std::uint64_t ts_ = 0;
  bool cc_failed_ = false;
  std::vector<write_rec> writes_;
  std::vector<std::vector<std::byte>> read_bufs_;
};

}  // namespace

mvto_engine::mvto_engine(storage::database& db, const common::config& cfg)
    : nd_engine_base(db, cfg, "mvto"),
      store_(std::make_shared<version_store>(db)) {}

std::unique_ptr<worker_ctx> mvto_engine::make_worker(unsigned) {
  return std::make_unique<mvto_ctx>(db_, *store_, ts_source_);
}

}  // namespace quecc::proto
