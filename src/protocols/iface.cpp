#include "protocols/iface.hpp"

#include <stdexcept>

#include "core/engine.hpp"
#include "dist/dist_calvin.hpp"
#include "dist/dist_quecc.hpp"
#include "protocols/calvin.hpp"
#include "protocols/hstore.hpp"
#include "protocols/mvto.hpp"
#include "protocols/serial.hpp"
#include "protocols/silo.hpp"
#include "protocols/tictoc.hpp"
#include "protocols/twopl.hpp"

namespace quecc::proto {

std::unique_ptr<engine> make_engine(const std::string& name,
                                    storage::database& db,
                                    const common::config& cfg) {
  if (name == "quecc") return std::make_unique<core::quecc_engine>(db, cfg);
  if (name == "serial") return std::make_unique<serial_engine>(db, cfg);
  if (name == "2pl-nowait") {
    return std::make_unique<twopl_engine>(db, cfg, twopl_variant::no_wait);
  }
  if (name == "2pl-waitdie") {
    return std::make_unique<twopl_engine>(db, cfg, twopl_variant::wait_die);
  }
  if (name == "silo") return std::make_unique<silo_engine>(db, cfg);
  if (name == "tictoc") return std::make_unique<tictoc_engine>(db, cfg);
  if (name == "mvto") return std::make_unique<mvto_engine>(db, cfg);
  if (name == "hstore") return std::make_unique<hstore_engine>(db, cfg);
  if (name == "calvin") return std::make_unique<calvin_engine>(db, cfg);
  if (name == "dist-quecc") {
    return std::make_unique<dist::dist_quecc_engine>(db, cfg);
  }
  if (name == "dist-calvin") {
    return std::make_unique<dist::dist_calvin_engine>(db, cfg);
  }
  throw std::invalid_argument("unknown engine: " + name);
}

std::vector<std::string> engine_names() {
  return {"quecc",  "serial", "2pl-nowait", "2pl-waitdie",
          "silo",   "tictoc", "mvto",       "hstore",
          "calvin", "dist-quecc", "dist-calvin"};
}

}  // namespace quecc::proto
