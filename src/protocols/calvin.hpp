// Calvin-style deterministic locking (Thomson et al., SIGMOD'12) —
// the distributed baseline of Table 2 row 2, here in its single-node form
// (src/dist/dist_calvin.* adds the sequencer + simulated cluster).
//
// A single lock-scheduler thread walks the batch in sequence order and
// requests every transaction's declared locks in that order; grants are
// strictly FIFO per record, so the execution is deterministic and
// equivalent to sequence order. Worker threads execute transactions whose
// locks are all granted (thread-to-transaction assignment — the paper's
// Section 5 contrast with thread-to-queue) and release locks on completion,
// cascading grants to waiters. The single-threaded scheduler is Calvin's
// well-known bottleneck and the effect the comparison measures.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/batch_pool.hpp"
#include "common/spinlock.hpp"
#include "common/thread_annotations.hpp"
#include "protocols/iface.hpp"

namespace quecc::proto {

class calvin_engine final : public engine {
 public:
  calvin_engine(storage::database& db, const common::config& cfg);

  const char* name() const noexcept override { return "calvin"; }
  void run_batch(txn::batch& b, common::run_metrics& m) override;

 private:
  struct lock_request {
    seq_t seq;
    bool exclusive;
  };
  struct lock_entry {
    bool held_exclusive = false;
    std::uint32_t holders = 0;
    std::vector<lock_request> waiters;  // FIFO, seq order by construction
  };
  struct stripe {
    common::spinlock latch;
    std::unordered_map<std::uint64_t, lock_entry> locks GUARDED_BY(latch);
  };
  static constexpr std::size_t kStripes = 64;

  void worker_job(unsigned worker);
  void ensure_pool();
  void schedule(txn::batch& b);
  void release_locks(txn::txn_desc& t);
  void push_ready(seq_t s);
  bool pop_ready(seq_t& s);

  static std::uint64_t rec_of(table_id_t table, key_t key) noexcept;
  stripe& stripe_of(std::uint64_t rec) noexcept {
    return stripes_[rec % kStripes];
  }

  /// Declared lock set of a transaction: unique records with the strongest
  /// required mode.
  static void lock_set(const txn::txn_desc& t,
                       std::vector<std::pair<std::uint64_t, bool>>& out);

  storage::database& db_;
  common::config cfg_;
  std::unique_ptr<common::batch_pool> pool_;

  txn::batch* current_ = nullptr;
  std::uint64_t batch_start_nanos_ = 0;
  std::array<stripe, kStripes> stripes_;
  std::vector<std::atomic<std::uint32_t>> pending_locks_;

  /// Ready queue, same hybrid protocol as dist_calvin's node_ready (and
  /// deliberately not GUARDED_BY): producers push under ready_latch_ and
  /// release-publish via ready_count_; consumers pop latch-free through an
  /// acquire load of ready_count_ + CAS on ready_head_. ready_ never
  /// reallocates mid-batch (capacity reserved up front).
  common::spinlock ready_latch_;  ///< serializes producers only
  std::vector<seq_t> ready_;
  std::atomic<std::size_t> ready_head_{0};
  std::atomic<std::size_t> ready_count_{0};
  std::atomic<std::uint32_t> remaining_{0};
  std::vector<common::run_metrics> worker_metrics_;
};

}  // namespace quecc::proto
