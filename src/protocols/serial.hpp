// Serial reference engine: executes the batch single-threaded in sequence
// order. Zero concurrency, trivially serializable — the ground truth every
// other engine's final state is compared against in the test suite.
#pragma once

#include "protocols/iface.hpp"
#include "protocols/local_host.hpp"

namespace quecc::proto {

class serial_engine final : public engine {
 public:
  serial_engine(storage::database& db, const common::config& cfg);

  const char* name() const noexcept override { return "serial"; }
  void run_batch(txn::batch& b, common::run_metrics& m) override;
  const std::vector<seq_t>* commit_order() const noexcept override {
    return &commit_order_;
  }

 private:
  storage::database& db_;
  common::config cfg_;
  std::vector<seq_t> commit_order_;
};

}  // namespace quecc::proto
