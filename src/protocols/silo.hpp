// Silo-style optimistic concurrency control (Tu et al., SOSP'13), ported
// to the shared test-bed the way the paper ports it into ExpoDB.
//
// Reads record a TID snapshot; writes are buffered privately. Commit locks
// the write set in a deterministic global order, validates the read set
// (TID unchanged, not locked by others), then installs buffered writes with
// a fresh TID. Epoch-based durability machinery is out of scope (no
// logging in the test-bed); the concurrency control core is faithful.
//
// row_meta.word1 is the TID word: bit 63 = lock, bits 0..62 = version.
#pragma once

#include "protocols/nd_base.hpp"

namespace quecc::proto {

class silo_engine final : public nd_engine_base {
 public:
  silo_engine(storage::database& db, const common::config& cfg)
      : nd_engine_base(db, cfg, "silo") {}

 protected:
  std::unique_ptr<worker_ctx> make_worker(unsigned w) override;
};

}  // namespace quecc::proto
