#include "protocols/silo.hpp"

#include <algorithm>
#include <cstring>

#include "common/spinlock.hpp"

namespace quecc::proto {

namespace {

constexpr std::uint64_t kLockBit = 1ull << 63;
constexpr std::uint64_t kTidMask = kLockBit - 1;

class silo_ctx final : public worker_ctx, public txn::frag_host {
 public:
  explicit silo_ctx(storage::database& db) : db_(db) {}

  txn::frag_host& host() override { return *this; }

  void begin(txn::txn_desc&) override {
    cc_failed_ = false;
    reads_.clear();
    writes_.clear();
    read_bufs_.clear();
  }

  bool cc_failed() const noexcept override { return cc_failed_; }

  bool try_commit(txn::txn_desc&,
                  const std::function<void()>& at_serialization) override {
    // Phase 1: lock the write set in deterministic (table, key) order —
    // unique per record, so concurrent committers cannot deadlock.
    std::sort(writes_.begin(), writes_.end(), [](const auto& a,
                                                 const auto& b) {
      return std::tie(a.table, a.key) < std::tie(b.table, b.key);
    });
    std::size_t locked = 0;
    for (auto& w : writes_) {
      if (w.op == txn::op_kind::insert) continue;  // private until install
      if (!lock_tid(db_.at(w.table).meta(w.rid).word1)) {
        unlock_first(locked);
        return false;
      }
      ++locked;
      w.locked = true;
    }

    // Phase 2: validate the read set.
    std::uint64_t max_tid = 0;
    for (const auto& r : reads_) {
      const std::uint64_t cur =
          db_.at(r.table).meta(r.rid).word1.load(std::memory_order_acquire);
      if ((cur & kTidMask) != r.tid ||
          (((cur & kLockBit) != 0) && !in_write_set(r.table, r.rid))) {
        unlock_first(locked);
        return false;
      }
      max_tid = std::max(max_tid, r.tid);
    }
    for (const auto& w : writes_) {
      if (w.op != txn::op_kind::insert) {
        max_tid = std::max(
            max_tid, db_.at(w.table).meta(w.rid).word1.load(
                         std::memory_order_acquire) &
                         kTidMask);
      }
    }
    const std::uint64_t commit_tid = max_tid + 1;

    // Phase 3: serialization point — locks held, validation passed.
    at_serialization();

    // Install. Inserts allocate + index here so concurrent readers only
    // ever see fully-built rows.
    for (auto& w : writes_) {
      auto& tab = db_.at(w.table);
      switch (w.op) {
        case txn::op_kind::update: {
          auto row = tab.row(w.rid);
          std::memcpy(row.data(), w.buf.data(), w.buf.size());
          tab.meta(w.rid).word1.store(commit_tid, std::memory_order_release);
          w.locked = false;
          break;
        }
        case txn::op_kind::insert: {
          const auto rid = tab.allocate_row(w.part);
          auto row = tab.row(rid);
          std::memcpy(row.data(), w.buf.data(),
                      std::min(w.buf.size(), row.size()));
          tab.meta(rid).word1.store(commit_tid, std::memory_order_release);
          if (!tab.index_row(w.key, rid)) tab.retire_unindexed(rid);
          break;
        }
        case txn::op_kind::erase: {
          tab.erase(w.key, storage::rid_shard(w.rid));
          tab.meta(w.rid).word1.store(commit_tid, std::memory_order_release);
          w.locked = false;
          break;
        }
        case txn::op_kind::read:
        case txn::op_kind::scan:
          break;
      }
    }
    return true;
  }

  void abort_attempt(txn::txn_desc&) override {
    // Nothing was installed; buffers are private. Locks, if any, were
    // released on the failing path already.
    reads_.clear();
    writes_.clear();
    read_bufs_.clear();
  }

  // --- frag_host -----------------------------------------------------------
  std::span<const std::byte> read_row(const txn::fragment& f,
                                      txn::txn_desc&) override {
    if (auto* w = find_write(f.table, f.key)) return w->buf;  // own write
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return {};
    auto& buf = read_bufs_.emplace_back();
    const std::uint64_t tid = stable_copy(f.table, rid, buf);
    reads_.push_back({f.table, rid, tid});
    return buf;
  }

  std::span<std::byte> update_row(const txn::fragment& f,
                                  txn::txn_desc&) override {
    if (auto* w = find_write(f.table, f.key)) return w->buf;
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return {};
    auto& w = writes_.emplace_back();
    w.table = f.table;
    w.key = f.key;
    w.rid = rid;
    w.op = txn::op_kind::update;
    const std::uint64_t tid = stable_copy(f.table, rid, w.buf);
    reads_.push_back({f.table, rid, tid});  // RMW validates the read, too
    return w.buf;
  }

  std::span<std::byte> insert_row(const txn::fragment& f,
                                  txn::txn_desc&) override {
    auto& w = writes_.emplace_back();
    w.table = f.table;
    w.key = f.key;
    w.part = f.part;  // home arena for the install-time allocation
    w.op = txn::op_kind::insert;
    w.buf.assign(db_.at(f.table).layout().row_size(), std::byte{0});
    return w.buf;
  }

  bool erase_row(const txn::fragment& f, txn::txn_desc&) override {
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return false;
    auto& w = writes_.emplace_back();
    w.table = f.table;
    w.key = f.key;
    w.rid = rid;
    w.op = txn::op_kind::erase;
    return true;
  }

 private:
  struct read_rec {
    table_id_t table;
    storage::row_id_t rid;
    std::uint64_t tid;
  };
  struct write_rec {
    table_id_t table;
    key_t key;
    part_id_t part = 0;  ///< home partition (insert install routes by it)
    storage::row_id_t rid = storage::kNoRow;
    txn::op_kind op = txn::op_kind::update;
    bool locked = false;
    std::vector<std::byte> buf;
  };

  write_rec* find_write(table_id_t table, key_t key) {
    for (auto& w : writes_) {
      if (w.table == table && w.key == key &&
          w.op != txn::op_kind::erase) {
        return &w;
      }
    }
    return nullptr;
  }

  bool in_write_set(table_id_t table, storage::row_id_t rid) const {
    for (const auto& w : writes_) {
      if (w.table == table && w.rid == rid) return true;
    }
    return false;
  }

  /// Optimistic stable read: TID unlocked and unchanged around the copy.
  std::uint64_t stable_copy(table_id_t table, storage::row_id_t rid,
                            std::vector<std::byte>& out) {
    auto& tab = db_.at(table);
    auto& word = tab.meta(rid).word1;
    const auto row = tab.row(rid);
    out.resize(row.size());
    common::backoff bo;
    while (true) {
      const std::uint64_t v1 = word.load(std::memory_order_acquire);
      if ((v1 & kLockBit) == 0) {
        std::memcpy(out.data(), row.data(), row.size());
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t v2 = word.load(std::memory_order_acquire);
        if (v1 == v2) return v1;
      }
      bo.spin();
    }
  }

  static bool lock_tid(std::atomic<std::uint64_t>& word) {
    std::uint64_t cur = word.load(std::memory_order_acquire);
    while (true) {
      if ((cur & kLockBit) != 0) return false;  // occupied: validation abort
      if (word.compare_exchange_weak(cur, cur | kLockBit,
                                     std::memory_order_acq_rel)) {
        return true;
      }
    }
  }

  void unlock_first(std::size_t n) {
    for (auto& w : writes_) {
      if (n == 0) break;
      if (w.locked) {
        db_.at(w.table).meta(w.rid).word1.fetch_and(
            kTidMask, std::memory_order_release);
        w.locked = false;
        --n;
      }
    }
  }

  storage::database& db_;
  bool cc_failed_ = false;
  std::vector<read_rec> reads_;
  std::vector<write_rec> writes_;
  std::vector<std::vector<std::byte>> read_bufs_;
};

}  // namespace

std::unique_ptr<worker_ctx> silo_engine::make_worker(unsigned) {
  return std::make_unique<silo_ctx>(db_);
}

}  // namespace quecc::proto
