// H-Store-style partitioned deterministic execution (Kallman et al.,
// VLDB'08) — the baseline of Table 2 row 1.
//
// One single-threaded executor owns each partition; single-partition
// transactions run serially on their home partition with no concurrency
// control at all (H-Store's headline trick). A multi-partition transaction
// takes partition-level locks on every participant: all participant
// executors rendezvous at the transaction's sequence position, the lowest
// participant runs it alone while the others stall, and a configurable
// busy-wait charges the 2PC coordination cost. This blocking behaviour —
// not the per-transaction work — is what collapses under multi-partition
// workloads, which is exactly the effect the paper's comparison exercises.
#pragma once

#include <atomic>
#include <memory>

#include "common/batch_pool.hpp"
#include "protocols/iface.hpp"

namespace quecc::proto {

class hstore_engine final : public engine {
 public:
  hstore_engine(storage::database& db, const common::config& cfg);

  const char* name() const noexcept override { return "hstore"; }
  void run_batch(txn::batch& b, common::run_metrics& m) override;

 private:
  /// Multi-partition rendezvous, lock-free by design: participants
  /// release-increment `arrived`, the home partition acquire-spins to the
  /// participant count, executes, then release-stores `done` which the
  /// others acquire-spin on. The plain fields are set in the pre-pass,
  /// before workers start.
  struct mp_state {
    std::atomic<std::uint32_t> arrived{0};
    std::atomic<bool> done{false};
    std::uint32_t participants = 0;
    part_id_t home = 0;
  };

  void worker_job(unsigned worker);
  void ensure_pool();

  storage::database& db_;
  common::config cfg_;
  std::unique_ptr<common::batch_pool> pool_;

  txn::batch* current_ = nullptr;
  std::uint64_t batch_start_nanos_ = 0;
  // Per-partition ordered work lists; entry = (txn index, mp index or -1).
  std::vector<std::vector<std::pair<std::uint32_t, std::int32_t>>> lists_;
  std::vector<std::unique_ptr<mp_state>> mp_states_;
  std::vector<common::run_metrics> worker_metrics_;
};

}  // namespace quecc::proto
