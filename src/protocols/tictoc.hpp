// TicToc-style timestamp-ordering OCC (Yu et al., SIGMOD'16).
//
// Every row carries a write timestamp (wts) and a read timestamp (rts);
// transactions compute their commit timestamp lazily from the data they
// actually touched, extending read leases at validation instead of
// aborting whenever possible — the "time traveling" trick.
//
// row_meta.word1 = lock bit (63) | wts; row_meta.word2 = rts.
#pragma once

#include "protocols/nd_base.hpp"

namespace quecc::proto {

class tictoc_engine final : public nd_engine_base {
 public:
  tictoc_engine(storage::database& db, const common::config& cfg)
      : nd_engine_base(db, cfg, "tictoc") {}

 protected:
  std::unique_ptr<worker_ctx> make_worker(unsigned w) override;
};

}  // namespace quecc::proto
