// Client session: the asynchronous submission front door to any engine.
//
// A session turns the engine's batch primitives — submit_batch /
// drain_batch, or run_batch for non-pipelined engines — into a
// server-shaped API: clients call submit() from any number of threads and
// get back a ticket; a pump thread drains the admission queue through a
// batch former (closing batches on size or deadline, see
// core/admission.hpp) and feeds formed batches to the engine. Against a
// pipelined engine (engine::pipeline_depth() >= 2) the pump keeps that
// many batches in flight whenever the admission queue holds a backlog, so
// batch i+1 is being planned while batch i executes; with no backlog it
// drains eagerly so a trickle client never waits on the next batch's
// deadline. Tickets resolve at drain time with the transaction's final
// status plus its queueing delay and end-to-end latency, both measured
// from *submit time* — the quantity a loaded system's clients actually
// experience, which the closed-loop harness cannot see.
//
// Durable ack: the pump calls engine::sync_durable() after every batch,
// *before* resolving tickets. Against a durable engine (config::durable)
// a resolved ticket therefore means the batch's commit record is fsynced
// — the group-commit wait shows up in e2e latency, not as a weaker
// acknowledgement. Against in-memory engines sync_durable is a no-op and
// nothing changes.
//
// Fairness: submissions may carry a client id (default 0); when
// config::admission_session_cap is set, each client id is capped to that
// many queued transactions, so one greedy client cannot occupy the whole
// admission queue and starve the rest.
//
//   proto::session s(*eng, cfg);
//   auto t = s.submit(std::move(txn));
//   auto r = t.wait();   // {status, queue_nanos, e2e_nanos}
//   s.close();           // drain + stop (also runs on destruction)
#pragma once

#include <memory>
#include <mutex>
#include <thread>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "core/admission.hpp"
#include "protocols/iface.hpp"

namespace quecc::proto {

class session {
 public:
  /// Handle to one submitted transaction. Copyable; wait() may be called
  /// from any thread, repeatedly.
  class ticket {
   public:
    ticket() = default;

    struct result {
      txn::txn_status status = txn::txn_status::aborted;
      std::uint64_t queue_nanos = 0;  ///< submit -> batch execution start
      std::uint64_t e2e_nanos = 0;    ///< submit -> batch commit
      std::vector<std::uint64_t> slots;  ///< value-slot results at commit
    };

    /// Block until the transaction's batch committed. Returns an aborted
    /// result immediately on an invalid (default-constructed or rejected)
    /// ticket.
    result wait() const;

    bool valid() const noexcept { return st_ != nullptr; }
    bool done() const noexcept { return st_ && st_->is_done(); }

   private:
    friend class session;
    explicit ticket(std::shared_ptr<core::ticket_state> st)
        : st_(std::move(st)) {}
    std::shared_ptr<core::ticket_state> st_;
  };

  /// Wraps `eng`, which must outlive the session. `cfg` supplies
  /// batch_size, batch_deadline_micros, and admission_capacity. The pump
  /// thread starts immediately. The session must be the engine's only
  /// driver while it is open (run_batch is single-caller).
  session(engine& eng, const common::config& cfg);
  ~session();

  session(const session&) = delete;
  session& operator=(const session&) = delete;

  /// Submit a planned transaction (thread-safe; blocks while the admission
  /// queue is full or `client`'s session cap is reached). Returns an
  /// invalid ticket after close(). A malformed plan (txn::validate_plan
  /// failure) or null transaction is rejected here, on the submitting
  /// thread: its ticket resolves immediately as aborted instead of
  /// poisoning the batch pipeline.
  ticket submit(std::unique_ptr<txn::txn_desc> t, std::uint32_t client = 0);

  /// Same, but the caller supplies the submit timestamp (common::now_nanos
  /// clock). The open-loop harness passes the *scheduled* arrival time so
  /// any submission slip is charged to queueing delay, as a real client
  /// would experience it.
  ticket submit_at(std::unique_ptr<txn::txn_desc> t,
                   std::uint64_t submit_nanos, std::uint32_t client = 0);

  /// Fire-and-forget submit: no ticket, so the pump skips the per-txn
  /// result snapshot and wakeup — the cheap path for load generators that
  /// only read the aggregated metrics(). Queue/e2e histograms still record
  /// every posted transaction. Blocks while the admission queue is full,
  /// like submit(). Returns false when the transaction was rejected
  /// (malformed plan, null, or session closed).
  bool post(std::unique_ptr<txn::txn_desc> t, std::uint64_t submit_nanos = 0,
            std::uint32_t client = 0);

  /// Stop accepting submissions, drain every admitted transaction through
  /// the engine, and join the pump thread. Idempotent; concurrent close()
  /// calls are safe (late callers block until the first finishes), though
  /// as with any object no call may race the destructor itself. Also run
  /// by the destructor.
  void close();

  /// Aggregated metrics: the engine's counters plus the session's
  /// queue/e2e latency histograms. Stable only after close().
  const common::run_metrics& metrics() const noexcept { return metrics_; }

  std::uint32_t batches_formed() const noexcept {
    return former_.batches_formed();
  }

  /// common::now_nanos timestamp of the most recent batch commit (0 if no
  /// batch committed yet). Stable only after close(); the open-loop
  /// harness uses it to bound the measurement window at last commit.
  std::uint64_t last_commit_nanos() const noexcept {
    return last_commit_nanos_;
  }

 private:
  void pump_main();
  static bool prepare(const std::unique_ptr<txn::txn_desc>& t);

  // Synchronization: cross-thread hand-offs go through queue_ (its own
  // mutex) and core::ticket_state (release-publish of `done`); metrics_
  // and last_commit_nanos_ are pump-thread-private until close() joins the
  // pump, whose join is the happens-before edge that makes them readable —
  // hence no lock and no GUARDED_BY on them.
  engine& eng_;
  core::admission_queue queue_;
  core::batch_former former_;
  common::run_metrics metrics_;
  std::uint64_t last_commit_nanos_ = 0;  ///< pump-written; read after close()
  std::thread pump_;
  std::once_flag close_once_;
};

}  // namespace quecc::proto
