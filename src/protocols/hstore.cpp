#include "protocols/hstore.hpp"

#include <algorithm>
#include <chrono>

#include "common/spinlock.hpp"
#include "common/thread_util.hpp"
#include "protocols/local_host.hpp"

namespace quecc::proto {


hstore_engine::hstore_engine(storage::database& db,
                             const common::config& cfg)
    : db_(db), cfg_(cfg) {
  cfg_.validate();
  lists_.resize(cfg_.partitions);
}

void hstore_engine::ensure_pool() {
  if (pool_) return;
  worker_metrics_.resize(cfg_.partitions);
  pool_ = std::make_unique<common::batch_pool>(
      cfg_.partitions, [this](unsigned w) { worker_job(w); }, "hstore",
      cfg_.pin_threads);
}

void hstore_engine::run_batch(txn::batch& b, common::run_metrics& m) {
  ensure_pool();
  common::stopwatch sw;
  current_ = &b;
  batch_start_nanos_ = common::now_nanos();
  for (auto& l : lists_) l.clear();
  mp_states_.clear();
  for (auto& wm : worker_metrics_) wm = common::run_metrics{};

  // Classify transactions and build per-partition ordered work lists.
  // Every participant sees a multi-partition transaction at the same
  // relative position, so the rendezvous below cannot deadlock.
  std::vector<part_id_t> parts;
  for (std::uint32_t i = 0; i < b.size(); ++i) {
    const txn::txn_desc& t = b.at(i);
    parts.clear();
    for (const auto& f : t.frags) {
      // Reads of replicated tables (TPC-C ITEM) are served locally by any
      // partition, exactly like H-Store's replicated dimension tables.
      if (!f.updates_database() && db_.at(f.table).replicated()) continue;
      const auto p = static_cast<part_id_t>(f.part % cfg_.partitions);
      bool seen = false;
      for (const auto q : parts) seen = seen || q == p;
      if (!seen) parts.push_back(p);
    }
    // A transaction touching only replicated tables runs anywhere.
    if (parts.empty()) parts.push_back(0);
    if (parts.size() == 1) {
      lists_[parts[0]].emplace_back(i, -1);
    } else {
      auto st = std::make_unique<mp_state>();
      st->participants = static_cast<std::uint32_t>(parts.size());
      st->home = *std::min_element(parts.begin(), parts.end());
      const auto mp = static_cast<std::int32_t>(mp_states_.size());
      mp_states_.push_back(std::move(st));
      for (const auto p : parts) lists_[p].emplace_back(i, mp);
    }
  }

  pool_->run_round();

  for (auto& wm : worker_metrics_) m.merge(wm);
  m.batches += 1;
  m.elapsed_seconds += sw.seconds();
}

void hstore_engine::worker_job(unsigned worker) {
  txn::batch& b = *current_;
  common::run_metrics& wm = worker_metrics_[worker];
  inplace_host host(db_);

  auto execute = [&](txn::txn_desc& t) {
    if (run_txn_serially(t, host)) {
      wm.committed += 1;
    } else {
      wm.aborted += 1;
    }
    wm.txn_latency.record_nanos(common::now_nanos() - batch_start_nanos_);
  };

  for (const auto& [txn_idx, mp_idx] : lists_[worker]) {
    txn::txn_desc& t = b.at(txn_idx);
    if (mp_idx < 0) {
      execute(t);  // single-partition: serial, lock-free, the happy path
      continue;
    }
    // Multi-partition: partition-level rendezvous. Everyone stalls until
    // the home partition has run the transaction and charged the 2PC cost.
    mp_state& st = *mp_states_[static_cast<std::size_t>(mp_idx)];
    st.arrived.fetch_add(1, std::memory_order_acq_rel);
    common::backoff bo;
    if (worker == st.home) {
      while (st.arrived.load(std::memory_order_acquire) < st.participants) {
        bo.spin();
      }
      execute(t);
      common::spin_for_micros(cfg_.hstore_coord_micros);
      st.done.store(true, std::memory_order_release);
    } else {
      while (!st.done.load(std::memory_order_acquire)) bo.spin();
    }
  }
}

}  // namespace quecc::proto
