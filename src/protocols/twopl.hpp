// Two-phase locking baselines.
//
//  * 2PL-NoWait — shared/exclusive row latches; any conflict aborts the
//    requester immediately (deadlock-free by construction). This is the
//    exact baseline named in Table 2 row 3 of the paper.
//  * 2PL-WaitDie — exclusive-only port: older transactions (smaller
//    timestamp) wait for the holder, younger ones die and retry with the
//    same timestamp. Exclusive-only keeps the holder timestamp unambiguous;
//    the reduced read concurrency is documented in DESIGN.md.
//
// Lock state lives in row_meta.word1 (bit 63 = exclusive, low bits =
// shared count) and word2 (holder timestamp, wait-die only).
#pragma once

#include "protocols/nd_base.hpp"

namespace quecc::proto {

enum class twopl_variant { no_wait, wait_die };

class twopl_engine final : public nd_engine_base {
 public:
  twopl_engine(storage::database& db, const common::config& cfg,
               twopl_variant variant);

 protected:
  std::unique_ptr<worker_ctx> make_worker(unsigned w) override;

 private:
  twopl_variant variant_;
  std::atomic<std::uint64_t> ts_source_{1};  ///< wait-die timestamps
};

}  // namespace quecc::proto
