#include "protocols/nd_base.hpp"

#include "txn/procedure.hpp"

namespace quecc::proto {

nd_engine_base::nd_engine_base(storage::database& db,
                               const common::config& cfg,
                               const char* display_name)
    : db_(db), cfg_(cfg), display_name_(display_name) {
  cfg_.validate();
}

void nd_engine_base::ensure_pool() {
  if (pool_) return;
  // Deferred so that make_worker (a virtual) is never called during the
  // base constructor.
  const unsigned n = cfg_.worker_threads;
  workers_.reserve(n);
  for (unsigned w = 0; w < n; ++w) workers_.push_back(make_worker(w));
  worker_metrics_.resize(n);
  pool_ = std::make_unique<common::batch_pool>(
      n, [this](unsigned w) { worker_job(w); }, display_name_,
      cfg_.pin_threads);
}

void nd_engine_base::run_batch(txn::batch& b, common::run_metrics& m) {
  ensure_pool();
  common::stopwatch sw;
  current_ = &b;
  // relaxed: reset before run_round() releases the workers (the pool's
  // round barrier is the publication edge).
  cursor_.store(0, std::memory_order_relaxed);
  {
    // Workers are quiescent between rounds, but reset under the lock
    // anyway: the guarded-access contract stays unconditional.
    common::spin_guard guard(order_lock_);
    commit_order_.clear();
    commit_order_.reserve(b.size());
  }
  for (auto& wm : worker_metrics_) wm = common::run_metrics{};

  pool_->run_round();

  for (auto& wm : worker_metrics_) m.merge(wm);
  m.batches += 1;
  m.elapsed_seconds += sw.seconds();
}

void nd_engine_base::worker_job(unsigned w) {
  worker_ctx& ctx = *workers_[w];
  common::run_metrics& wm = worker_metrics_[w];
  txn::batch& b = *current_;

  while (true) {
    // relaxed: work-stealing cursor; claiming an index needs atomicity
    // only — batch contents were published by the round barrier.
    const std::size_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    if (i >= b.size()) break;
    txn::txn_desc& t = b.at(i);

    common::stopwatch txn_sw;
    common::backoff bo;
    while (true) {  // retry loop: cc aborts restart, logic aborts are final
      t.reset_runtime();
      ctx.begin(t);

      bool logic_abort = false;
      for (const auto& f : t.frags) {
        // Thread-to-transaction execution: fragments run in idx order in
        // this thread, so data dependencies are trivially satisfied.
        const auto st = t.proc->run_fragment(f, t, ctx.host());
        if (f.abortable) {
          // relaxed: single-thread execution here; the counter only feeds
          // this protocol family's own bookkeeping.
          t.pending_abortables.fetch_sub(1, std::memory_order_relaxed);
        }
        if (ctx.cc_failed()) break;
        if (st == txn::frag_status::abort) {
          logic_abort = true;
          break;
        }
      }

      if (ctx.cc_failed()) {
        ctx.abort_attempt(t);
        wm.cc_aborts += 1;
        bo.spin();
        continue;
      }
      if (logic_abort) {
        t.mark_aborted();  // final status first: abort_attempt may read it
        ctx.abort_attempt(t);
        wm.aborted += 1;
        break;
      }
      const auto record_order = [this, &t] {
        common::spin_guard guard(order_lock_);
        commit_order_.push_back(t.seq);
      };
      if (!ctx.try_commit(t, record_order)) {
        ctx.abort_attempt(t);
        wm.cc_aborts += 1;
        bo.spin();
        continue;
      }
      t.status.store(txn::txn_status::committed, std::memory_order_release);
      wm.committed += 1;
      break;
    }
    wm.txn_latency.record_nanos(txn_sw.nanos());
  }
}

}  // namespace quecc::proto
