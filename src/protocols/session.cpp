#include "protocols/session.hpp"

#include <stdexcept>
#include <utility>

#include "common/thread_util.hpp"
#include "txn/procedure.hpp"

namespace quecc::proto {

session::ticket::result session::ticket::wait() const {
  result r;
  if (!st_) return r;
  st_->wait();
  r.status = st_->status;
  r.queue_nanos = st_->queue_nanos;
  r.e2e_nanos = st_->e2e_nanos;
  r.slots = st_->slots;
  return r;
}

namespace {
const common::config& checked(const common::config& cfg) {
  // A zero batch_size would make the pump mistake pop_batch's empty
  // result for "closed and drained" and exit — every later ticket.wait()
  // would hang. Fail loudly instead; the engine validates its own copy,
  // but the session's cfg is a separate parameter.
  if (cfg.batch_size == 0) throw std::invalid_argument("batch_size == 0");
  if (cfg.admission_capacity == 0) {
    throw std::invalid_argument("admission_capacity == 0");
  }
  return cfg;
}
}  // namespace

session::session(engine& eng, const common::config& cfg)
    : eng_(eng),
      queue_(checked(cfg).admission_capacity, cfg.admission_session_cap),
      former_(queue_, cfg) {
  pump_ = std::thread([this] { pump_main(); });
}

session::~session() { close(); }

session::ticket session::submit(std::unique_ptr<txn::txn_desc> t,
                                std::uint32_t client) {
  return submit_at(std::move(t), 0, client);
}

// Reject malformed plans on the submitting thread: batch::validate()
// throwing on the pump thread would terminate the process.
bool session::prepare(const std::unique_ptr<txn::txn_desc>& t) {
  if (t == nullptr || t->proc == nullptr) return false;
  // validate_plan checks output slots against the runtime slot vector,
  // which batch::add sizes from the procedure — size it up front.
  t->resize_slots(t->proc->slot_count());
  try {
    txn::validate_plan(*t);
  } catch (const std::logic_error&) {
    return false;
  }
  return true;
}

session::ticket session::submit_at(std::unique_ptr<txn::txn_desc> t,
                                   std::uint64_t submit_nanos,
                                   std::uint32_t client) {
  auto st = std::make_shared<core::ticket_state>();
  if (!prepare(t)) {
    st->complete(txn::txn_status::aborted, 0, 0);
    return ticket{std::move(st)};
  }
  core::admitted_txn a{std::move(t), st, submit_nanos, client};
  if (!queue_.submit(std::move(a))) return ticket{};  // closed
  return ticket{std::move(st)};
}

bool session::post(std::unique_ptr<txn::txn_desc> t,
                   std::uint64_t submit_nanos, std::uint32_t client) {
  if (!prepare(t)) return false;
  core::admitted_txn a{std::move(t), nullptr, submit_nanos, client};
  return queue_.submit(std::move(a));
}

void session::close() {
  // call_once makes concurrent close() calls safe: one caller joins, the
  // others block until it is done. (As with any object, no call — close()
  // included — may race the destructor itself.)
  std::call_once(close_once_, [this] {
    queue_.close();
    if (pump_.joinable()) pump_.join();
  });
}

void session::pump_main() {
  common::name_self("quecc-pump");
  for (;;) {
    auto f = former_.next();
    if (!f.valid) return;  // queue closed and drained

    const std::uint64_t exec_start = common::now_nanos();
    eng_.run_batch(f.batch, metrics_);
    // Durable ack: tickets must not resolve before the batch's commit
    // record is on stable storage. The group-commit wait lands in e2e
    // latency (it is real client-visible time), not in the engine's
    // execution histogram. No-op for in-memory engines.
    eng_.sync_durable();
    const std::uint64_t exec_done = common::now_nanos();
    last_commit_nanos_ = exec_done;

    for (std::size_t i = 0; i < f.batch.size(); ++i) {
      const std::uint64_t submitted = f.submit_nanos[i];
      const std::uint64_t queue_ns =
          exec_start > submitted ? exec_start - submitted : 0;
      const std::uint64_t e2e_ns =
          exec_done > submitted ? exec_done - submitted : 0;
      metrics_.queue_latency.record_nanos(queue_ns);
      metrics_.e2e_latency.record_nanos(e2e_ns);
      if (f.tickets[i]) {
        const txn::txn_desc& t = f.batch.at(i);
        auto& slots = f.tickets[i]->slots;
        const auto n = static_cast<std::uint16_t>(t.slot_count());
        slots.resize(n);
        for (std::uint16_t k = 0; k < n; ++k) slots[k] = t.slot_value(k);
        f.tickets[i]->complete(t.status.load(std::memory_order_acquire),
                               queue_ns, e2e_ns);
      }
    }
  }
}

}  // namespace quecc::proto
