#include "protocols/session.hpp"

#include <algorithm>
#include <deque>
#include <stdexcept>
#include <utility>

#include "common/thread_util.hpp"
#include "txn/procedure.hpp"

namespace quecc::proto {

session::ticket::result session::ticket::wait() const {
  result r;
  if (!st_) return r;
  st_->wait();
  r.status = st_->status;
  r.queue_nanos = st_->queue_nanos;
  r.e2e_nanos = st_->e2e_nanos;
  r.slots = st_->slots;
  return r;
}

namespace {
const common::config& checked(const common::config& cfg) {
  // A zero batch_size would make the pump mistake pop_batch's empty
  // result for "closed and drained" and exit — every later ticket.wait()
  // would hang. Fail loudly instead; the engine validates its own copy,
  // but the session's cfg is a separate parameter.
  if (cfg.batch_size == 0) throw std::invalid_argument("batch_size == 0");
  if (cfg.admission_capacity == 0) {
    throw std::invalid_argument("admission_capacity == 0");
  }
  return cfg;
}
}  // namespace

session::session(engine& eng, const common::config& cfg)
    : eng_(eng),
      queue_(checked(cfg).admission_capacity, cfg.admission_session_cap),
      former_(queue_, cfg) {
  pump_ = std::thread([this] { pump_main(); });
}

session::~session() { close(); }

session::ticket session::submit(std::unique_ptr<txn::txn_desc> t,
                                std::uint32_t client) {
  return submit_at(std::move(t), 0, client);
}

// Reject malformed plans on the submitting thread: batch::validate()
// throwing on the pump thread would terminate the process.
bool session::prepare(const std::unique_ptr<txn::txn_desc>& t) {
  if (t == nullptr || t->proc == nullptr) return false;
  // validate_plan checks output slots against the runtime slot vector,
  // which batch::add sizes from the procedure — size it up front.
  t->resize_slots(t->proc->slot_count());
  try {
    txn::validate_plan(*t);
  } catch (const std::logic_error&) {
    return false;
  }
  return true;
}

session::ticket session::submit_at(std::unique_ptr<txn::txn_desc> t,
                                   std::uint64_t submit_nanos,
                                   std::uint32_t client) {
  auto st = std::make_shared<core::ticket_state>();
  if (!prepare(t)) {
    st->complete(txn::txn_status::aborted, 0, 0);
    return ticket{std::move(st)};
  }
  core::admitted_txn a{std::move(t), st, submit_nanos, client};
  if (!queue_.submit(std::move(a))) return ticket{};  // closed
  return ticket{std::move(st)};
}

bool session::post(std::unique_ptr<txn::txn_desc> t,
                   std::uint64_t submit_nanos, std::uint32_t client) {
  if (!prepare(t)) return false;
  core::admitted_txn a{std::move(t), nullptr, submit_nanos, client};
  return queue_.submit(std::move(a));
}

void session::close() {
  // call_once makes concurrent close() calls safe: one caller joins, the
  // others block until it is done. (As with any object, no call — close()
  // included — may race the destructor itself.)
  std::call_once(close_once_, [this] {
    queue_.close();
    if (pump_.joinable()) pump_.join();
  });
}

void session::pump_main() {
  common::name_self("quecc-pump");
  // Pipelined pump: keep up to the engine's pipeline depth batches in
  // flight so the engine's planners work on batch i+1 while batch i
  // executes. Batches live in `inflight` (a deque never relocates held
  // elements) until their drain; tickets resolve at drain + durable ack.
  const std::uint32_t depth = std::max<std::uint32_t>(1, eng_.pipeline_depth());
  struct inflight_batch {
    core::batch_former::formed f;
    std::uint64_t engine_nanos = 0;  ///< handed to the engine (exec start)
  };
  std::deque<inflight_batch> inflight;

  auto drain_oldest = [&] {
    eng_.drain_batch();
    // Durable ack: tickets must not resolve before the batch's commit
    // record is on stable storage. The group-commit wait lands in e2e
    // latency (it is real client-visible time), not in the engine's
    // execution histogram. No-op for in-memory engines.
    eng_.sync_durable();
    const std::uint64_t exec_done = common::now_nanos();
    last_commit_nanos_ = exec_done;
    inflight_batch& ib = inflight.front();
    const std::uint64_t exec_start = ib.engine_nanos;

    for (std::size_t i = 0; i < ib.f.batch.size(); ++i) {
      const std::uint64_t submitted = ib.f.submit_nanos[i];
      const std::uint64_t queue_ns =
          exec_start > submitted ? exec_start - submitted : 0;
      const std::uint64_t e2e_ns =
          exec_done > submitted ? exec_done - submitted : 0;
      metrics_.queue_latency.record_nanos(queue_ns);
      metrics_.e2e_latency.record_nanos(e2e_ns);
      if (ib.f.tickets[i]) {
        const txn::txn_desc& t = ib.f.batch.at(i);
        auto& slots = ib.f.tickets[i]->slots;
        const auto n = static_cast<std::uint16_t>(t.slot_count());
        slots.resize(n);
        for (std::uint16_t k = 0; k < n; ++k) slots[k] = t.slot_value(k);
        ib.f.tickets[i]->complete(t.status.load(std::memory_order_acquire),
                                  queue_ns, e2e_ns);
      }
    }
    inflight.pop_front();
  };

  for (;;) {
    while (inflight.size() >= depth) drain_oldest();
    // With in-flight batches but an empty admission queue, resolve what
    // is in flight instead of parking in the former: otherwise a trickle
    // client's commit would wait on the *next* batch's deadline. Under
    // backlog the branch never fires and the pipeline stays full.
    if (!inflight.empty() && queue_.depth() == 0) {
      drain_oldest();
      continue;
    }
    auto f = former_.next();
    if (!f.valid) break;  // queue closed and drained
    // Move into the deque *before* submit: the engine keeps a pointer to
    // the batch until its drain.
    inflight.push_back({std::move(f), 0});
    inflight.back().engine_nanos = common::now_nanos();
    eng_.submit_batch(inflight.back().f.batch, metrics_);
  }
  while (!inflight.empty()) drain_oldest();
}

}  // namespace quecc::proto
