#include "protocols/twopl.hpp"

#include <cstring>

#include "common/spinlock.hpp"
#include "protocols/local_host.hpp"

namespace quecc::proto {

namespace {

constexpr std::uint64_t kXBit = 1ull << 63;

enum class lock_mode : std::uint8_t { shared, exclusive };

/// Worker context implementing both 2PL flavours. Writes go in place under
/// exclusive latches with undo logging; aborts roll back then release.
class twopl_ctx final : public worker_ctx, public txn::frag_host {
 public:
  twopl_ctx(storage::database& db, twopl_variant variant,
            std::atomic<std::uint64_t>& ts_source)
      : db_(db), variant_(variant), ts_source_(ts_source) {}

  txn::frag_host& host() override { return *this; }

  void begin(txn::txn_desc&) override {
    cc_failed_ = false;
    held_.clear();
    undo_.clear();
    // Wait-die keeps the *first* attempt's timestamp across retries so a
    // repeatedly-dying transaction eventually becomes the oldest and wins.
    // relaxed: timestamps need uniqueness only, not ordering.
    if (ts_ == 0) ts_ = ts_source_.fetch_add(1, std::memory_order_relaxed);
  }

  bool cc_failed() const noexcept override { return cc_failed_; }

  bool try_commit(txn::txn_desc&,
                  const std::function<void()>& at_serialization) override {
    // 2PL serialization point: all locks held right now.
    at_serialization();
    release_all();
    undo_.clear();
    ts_ = 0;  // fresh timestamp for the worker's next transaction
    return true;
  }

  void abort_attempt(txn::txn_desc& t) override {
    rollback(t);
    release_all();
    if (t.aborted()) ts_ = 0;  // logic abort is final; next txn re-stamps
  }

  // --- frag_host -----------------------------------------------------------
  std::span<const std::byte> read_row(const txn::fragment& f,
                                      txn::txn_desc&) override {
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return {};
    if (!acquire(f.table, rid, lock_mode::shared)) return {};
    return tab.row(rid);
  }

  std::span<std::byte> update_row(const txn::fragment& f,
                                  txn::txn_desc&) override {
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return {};
    if (!acquire(f.table, rid, lock_mode::exclusive)) return {};
    auto row = tab.row(rid);
    undo_.push_back({f.table, f.key, rid, txn::op_kind::update,
                     {row.begin(), row.end()}});
    return row;
  }

  std::span<std::byte> insert_row(const txn::fragment& f,
                                  txn::txn_desc&) override {
    auto& tab = db_.at(f.table);
    const auto rid = tab.allocate_row(f.part);
    auto row = tab.row(rid);
    std::memset(row.data(), 0, row.size());
    // The new row is exclusively ours until commit: latch it before
    // indexing so a concurrent reader that finds the key conflicts
    // normally instead of seeing a half-built record.
    tab.meta(rid).word1.store(kXBit | 1, std::memory_order_release);
    if (variant_ == twopl_variant::wait_die) {
      tab.meta(rid).word2.store(ts_, std::memory_order_release);
    }
    held_.push_back({f.table, rid, lock_mode::exclusive});
    if (!tab.index_row(f.key, rid)) {
      // Duplicate key: drop the latch we just took on the unindexed slot
      // and recycle it instead of leaking loader headroom on every retry.
      tab.meta(rid).word1.store(0, std::memory_order_release);
      held_.pop_back();
      tab.retire_unindexed(rid);
      cc_failed_ = true;  // treat as conflict and retry
      return {};
    }
    undo_.push_back({f.table, f.key, rid, txn::op_kind::insert, {}});
    return row;
  }

  bool erase_row(const txn::fragment& f, txn::txn_desc&) override {
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return false;
    if (!acquire(f.table, rid, lock_mode::exclusive)) return false;
    if (!tab.erase(f.key, f.part)) return false;
    undo_.push_back({f.table, f.key, rid, txn::op_kind::erase, {}});
    return true;
  }

 private:
  struct held_lock {
    table_id_t table;
    storage::row_id_t rid;
    lock_mode mode;
  };
  struct undo_rec {
    table_id_t table;
    key_t key;
    storage::row_id_t rid;
    txn::op_kind op;
    std::vector<std::byte> before;
  };

  held_lock* find_held(table_id_t table, storage::row_id_t rid) {
    for (auto& h : held_) {
      if (h.table == table && h.rid == rid) return &h;
    }
    return nullptr;
  }

  bool acquire(table_id_t table, storage::row_id_t rid, lock_mode want) {
    if (held_lock* h = find_held(table, rid)) {
      if (h->mode == lock_mode::exclusive || want == lock_mode::shared) {
        return true;
      }
      if (!upgrade(table, rid)) {
        cc_failed_ = true;
        return false;
      }
      h->mode = lock_mode::exclusive;
      return true;
    }
    const bool ok = variant_ == twopl_variant::no_wait
                        ? acquire_no_wait(table, rid, want)
                        : acquire_wait_die(table, rid);
    if (!ok) {
      cc_failed_ = true;
      return false;
    }
    held_.push_back({table, rid,
                     variant_ == twopl_variant::wait_die
                         ? lock_mode::exclusive
                         : want});
    return true;
  }

  bool acquire_no_wait(table_id_t table, storage::row_id_t rid,
                       lock_mode want) {
    auto& w = db_.at(table).meta(rid).word1;
    std::uint64_t cur = w.load(std::memory_order_acquire);
    while (true) {
      if (want == lock_mode::shared) {
        if ((cur & kXBit) != 0) return false;  // no-wait: abort on conflict
        if (w.compare_exchange_weak(cur, cur + 1, std::memory_order_acq_rel))
          return true;
      } else {
        if (cur != 0) return false;
        if (w.compare_exchange_weak(cur, kXBit | 1,
                                    std::memory_order_acq_rel))
          return true;
      }
    }
  }

  bool upgrade(table_id_t table, storage::row_id_t rid) {
    // NoWait upgrade: succeeds only when we are the sole reader.
    auto& w = db_.at(table).meta(rid).word1;
    std::uint64_t expect = 1;
    return w.compare_exchange_strong(expect, kXBit | 1,
                                     std::memory_order_acq_rel);
  }

  bool acquire_wait_die(table_id_t table, storage::row_id_t rid) {
    auto& meta = db_.at(table).meta(rid);
    common::backoff bo;
    while (true) {
      std::uint64_t cur = meta.word1.load(std::memory_order_acquire);
      if (cur == 0) {
        if (meta.word1.compare_exchange_weak(cur, kXBit | 1,
                                             std::memory_order_acq_rel)) {
          meta.word2.store(ts_, std::memory_order_release);
          return true;
        }
        continue;
      }
      const std::uint64_t holder_ts =
          meta.word2.load(std::memory_order_acquire);
      if (ts_ >= holder_ts) return false;  // younger dies
      bo.spin();                           // older waits
    }
  }

  void release_all() {
    for (const auto& h : held_) {
      auto& w = db_.at(h.table).meta(h.rid).word1;
      if (h.mode == lock_mode::exclusive) {
        w.store(0, std::memory_order_release);
      } else {
        w.fetch_sub(1, std::memory_order_acq_rel);
      }
    }
    held_.clear();
  }

  void rollback(txn::txn_desc&) {
    for (auto it = undo_.rbegin(); it != undo_.rend(); ++it) {
      auto& tab = db_.at(it->table);
      switch (it->op) {
        case txn::op_kind::update:
          std::memcpy(tab.row(it->rid).data(), it->before.data(),
                      it->before.size());
          break;
        case txn::op_kind::insert:
          tab.erase(it->key, storage::rid_shard(it->rid));
          break;
        case txn::op_kind::erase:
          tab.index_row(it->key, it->rid);
          break;
        case txn::op_kind::read:
        case txn::op_kind::scan:
          break;
      }
    }
    undo_.clear();
  }

  storage::database& db_;
  twopl_variant variant_;
  std::atomic<std::uint64_t>& ts_source_;
  std::uint64_t ts_ = 0;
  bool cc_failed_ = false;
  std::vector<held_lock> held_;
  std::vector<undo_rec> undo_;
};

}  // namespace

twopl_engine::twopl_engine(storage::database& db, const common::config& cfg,
                           twopl_variant variant)
    : nd_engine_base(db, cfg,
                     variant == twopl_variant::no_wait ? "2pl-nowait"
                                                       : "2pl-waitdie"),
      variant_(variant) {}

std::unique_ptr<worker_ctx> twopl_engine::make_worker(unsigned) {
  return std::make_unique<twopl_ctx>(db_, variant_, ts_source_);
}

}  // namespace quecc::proto
