// Shared skeleton for the non-deterministic baseline protocols
// (2PL-NoWait / 2PL-WaitDie / Silo / TicToc / MVTO).
//
// These are the "classical" protocols of paper Section 1: worker threads
// claim whole transactions (thread-to-transaction assignment), execute
// their fragments in index order, and resolve conflicts with per-record
// concurrency control — aborting and retrying when the protocol demands
// it. The skeleton owns the worker pool, the retry loop, metrics, and the
// commit-order trace; each protocol supplies a worker context that
// implements its locking / validation / versioning rules.
#pragma once

#include <atomic>
#include <functional>
#include <memory>
#include <vector>

#include "common/batch_pool.hpp"
#include "common/spinlock.hpp"
#include "common/stats.hpp"
#include "common/thread_annotations.hpp"
#include "protocols/iface.hpp"
#include "txn/procedure.hpp"

namespace quecc::proto {

/// Per-worker, per-protocol execution state.
class worker_ctx {
 public:
  virtual ~worker_ctx() = default;

  /// Host handed to fragment logic for this attempt.
  virtual txn::frag_host& host() = 0;

  /// Start an attempt of `t`. Called after t.reset_runtime().
  virtual void begin(txn::txn_desc& t) = 0;

  /// True when the protocol vetoed the attempt inside a host call (lock
  /// conflict, inconsistent read, write-rule violation, ...).
  virtual bool cc_failed() const noexcept = 0;

  /// Validate + install. Returns false on concurrency-control abort; the
  /// context must then be clean enough for abort_attempt() to run.
  /// `at_serialization` must be invoked exactly once on the success path,
  /// at the protocol's serialization point (e.g. while write locks are
  /// held), so the recorded commit order is conflict-consistent — the
  /// serializability property tests replay batches in that order.
  virtual bool try_commit(txn::txn_desc& t,
                          const std::function<void()>& at_serialization) = 0;

  /// Undo the attempt's effects and release protocol resources. Used for
  /// both cc retries and final logic aborts.
  virtual void abort_attempt(txn::txn_desc& t) = 0;
};

class nd_engine_base : public engine {
 public:
  nd_engine_base(storage::database& db, const common::config& cfg,
                 const char* display_name);

  const char* name() const noexcept override { return display_name_; }
  void run_batch(txn::batch& b, common::run_metrics& m) override;
  /// Read at quiescent points only (between run_batch calls): the pointer
  /// itself is stable, and workers stopped appending when run_round
  /// returned. Taking the address is not a guarded access under TSA.
  const std::vector<seq_t>* commit_order() const noexcept override {
    return &commit_order_;
  }

 protected:
  virtual std::unique_ptr<worker_ctx> make_worker(unsigned w) = 0;

  storage::database& db_;
  common::config cfg_;

 private:
  void worker_job(unsigned w);
  void ensure_pool();

  const char* display_name_;
  std::unique_ptr<common::batch_pool> pool_;
  std::vector<std::unique_ptr<worker_ctx>> workers_;
  std::vector<common::run_metrics> worker_metrics_;

  txn::batch* current_ = nullptr;
  std::atomic<std::size_t> cursor_{0};
  common::spinlock order_lock_;
  std::vector<seq_t> commit_order_ GUARDED_BY(order_lock_);
};

}  // namespace quecc::proto
