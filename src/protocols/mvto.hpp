// Multi-version timestamp ordering (MVTO).
//
// Stands in for the multi-version baselines of Table 2 row 3 (Cicada,
// ERMIA, FOEDUS) — see the substitution note in DESIGN.md §2.5: those
// systems' contention behaviour (timestamped version chains, read-rule and
// write-rule aborts) is what drives the paper's comparison, and MVTO
// exercises exactly that machinery.
//
// Versions live in a sidecar store (per-row chains under a per-row latch).
// Reads return the newest committed version with wts <= ts and raise the
// row's read timestamp; writes abort when they arrive "too late" (a later
// read or write already observed the row). The newest committed version is
// mirrored into the base table row at commit so the database's logical
// state stays inspectable by the shared test harness.
#pragma once

#include "protocols/nd_base.hpp"

namespace quecc::proto {

class mvto_engine final : public nd_engine_base {
 public:
  mvto_engine(storage::database& db, const common::config& cfg);

 protected:
  std::unique_ptr<worker_ctx> make_worker(unsigned w) override;

 public:
  /// Sidecar version-chain storage; public so the worker context (an
  /// implementation detail in the .cpp) can name it.
  class version_store;

 private:
  std::shared_ptr<version_store> store_;
  std::atomic<std::uint64_t> ts_source_{1};
};

}  // namespace quecc::proto
