// Common engine interface: every transaction processing protocol in the
// repository (the queue-oriented engine and all ported baselines) plugs in
// here, mirroring how the paper ports all protocols into the single
// ExpoDB test-bed for apples-to-apples comparison (Section 4).
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "storage/database.hpp"
#include "txn/batch.hpp"

namespace quecc::proto {

class engine {
 public:
  virtual ~engine() = default;

  virtual const char* name() const noexcept = 0;

  /// Process one batch of transactions to completion, accumulating
  /// throughput / abort / latency metrics into `m`. On return every
  /// transaction in `b` has a final status (committed or aborted) and the
  /// database reflects exactly the committed transactions' effects.
  /// Pipelined engines drain every in-flight batch first, so a run_batch
  /// call always returns with the engine quiescent.
  virtual void run_batch(txn::batch& b, common::run_metrics& m) = 0;

  // --- pipelined batch API ------------------------------------------------
  // Engines whose two Figure 1 stages are independent across batches
  // (pipeline_depth() >= 2) accept up to that many batches in flight:
  // submit_batch hands a batch to the planning stage and returns while the
  // previous batch is still executing; drain_batch retires the oldest
  // in-flight batch (execution + commit epilogue complete, statuses
  // final). Batches drain strictly in submission order. `b` and `m` must
  // stay alive until the matching drain. Like run_batch, the pipelined
  // calls are single-caller: one thread drives submission and draining.

  /// Hand `b` to the engine. Default (non-pipelined engines): process it
  /// synchronously — submit_batch + drain_batch then behaves exactly like
  /// run_batch. Pipelined engines return once the planning stage owns the
  /// batch; if the pipeline is full they first retire the oldest batch.
  virtual void submit_batch(txn::batch& b, common::run_metrics& m) {
    run_batch(b, m);
  }

  /// Retire the oldest in-flight batch: block until it finished executing,
  /// run its commit epilogue, and free its pipeline slot. Returns false
  /// when nothing was in flight (always, for non-pipelined engines — their
  /// submit_batch already completed the work).
  virtual bool drain_batch() { return false; }

  /// How many batches this engine can usefully keep in flight (1 = the
  /// submit/drain pair degenerates to run_batch). Callers use it to bound
  /// their in-flight window.
  virtual std::uint32_t pipeline_depth() const noexcept { return 1; }

  /// Commit order (txn seqs) of the most recent batch, when the protocol
  /// tracks one. Deterministic engines return nullptr: their equivalent
  /// serial order is always sequence order. Property tests re-execute the
  /// batch serially in this order to verify serializability.
  virtual const std::vector<seq_t>* commit_order() const noexcept {
    return nullptr;
  }

  /// Block until every batch run so far is durable on stable storage.
  /// No-op for engines without a durability layer (everything except the
  /// queue-oriented engine under config::durable). proto::session calls
  /// this after each batch, before resolving tickets, which is what makes
  /// ticket::wait a *durable* acknowledgement; the closed-loop harness
  /// calls it when run_options::durability is set.
  virtual void sync_durable() {}
};

/// Instantiate an engine by name. Centralized:
///   "quecc", "serial", "2pl-nowait", "2pl-waitdie", "silo", "tictoc",
///   "mvto", "hstore", "calvin".
/// Distributed (simulated cluster, cfg.nodes nodes):
///   "dist-quecc", "dist-calvin".
/// Throws std::invalid_argument for unknown names.
std::unique_ptr<engine> make_engine(const std::string& name,
                                    storage::database& db,
                                    const common::config& cfg);

/// Every name make_engine accepts, in presentation order.
std::vector<std::string> engine_names();

}  // namespace quecc::proto
