#include "protocols/calvin.hpp"

#include <algorithm>
#include <chrono>

#include "common/thread_util.hpp"
#include "protocols/local_host.hpp"

namespace quecc::proto {


calvin_engine::calvin_engine(storage::database& db,
                             const common::config& cfg)
    : db_(db), cfg_(cfg) {
  cfg_.validate();
}

std::uint64_t calvin_engine::rec_of(table_id_t table, key_t key) noexcept {
  return record_hash(table, key);
}

void calvin_engine::lock_set(
    const txn::txn_desc& t,
    std::vector<std::pair<std::uint64_t, bool>>& out) {
  out.clear();
  for (const auto& f : t.frags) {
    const std::uint64_t rec = rec_of(f.table, f.key);
    const bool exclusive = f.updates_database();
    bool found = false;
    for (auto& [r, x] : out) {
      if (r == rec) {
        x = x || exclusive;  // strongest required mode
        found = true;
        break;
      }
    }
    if (!found) out.emplace_back(rec, exclusive);
  }
}

void calvin_engine::ensure_pool() {
  if (pool_) return;
  worker_metrics_.resize(cfg_.worker_threads);
  pool_ = std::make_unique<common::batch_pool>(
      cfg_.worker_threads, [this](unsigned w) { worker_job(w); }, "calvin",
      cfg_.pin_threads);
}

void calvin_engine::push_ready(seq_t s) {
  common::spin_guard guard(ready_latch_);
  ready_.push_back(s);  // capacity reserved per batch: no reallocation
  ready_count_.fetch_add(1, std::memory_order_release);
}

bool calvin_engine::pop_ready(seq_t& s) {
  common::backoff bo;
  while (true) {
    // relaxed: head only advances via the CAS below (acq_rel); the acquire
    // load of count pairs with the producer's release publish.
    const std::size_t h = ready_head_.load(std::memory_order_relaxed);
    const std::size_t c = ready_count_.load(std::memory_order_acquire);
    if (h < c) {
      std::size_t expect = h;
      if (ready_head_.compare_exchange_weak(expect, h + 1,
                                            std::memory_order_acq_rel)) {
        s = ready_[h];
        return true;
      }
      continue;
    }
    if (remaining_.load(std::memory_order_acquire) == 0) return false;
    bo.spin();
  }
}

void calvin_engine::run_batch(txn::batch& b, common::run_metrics& m) {
  ensure_pool();
  common::stopwatch sw;
  current_ = &b;
  batch_start_nanos_ = common::now_nanos();
  // Workers are quiescent between batches, but clear under the latch
  // anyway: the guarded-access contract stays unconditional.
  for (auto& s : stripes_) {
    common::spin_guard guard(s.latch);
    s.locks.clear();
  }
  for (auto& wm : worker_metrics_) wm = common::run_metrics{};

  // Pre-pass: initialize every transaction's ungranted-lock counter before
  // workers can possibly release locks into it.
  pending_locks_ = std::vector<std::atomic<std::uint32_t>>(b.size());
  std::vector<std::pair<std::uint64_t, bool>> set;
  for (std::size_t i = 0; i < b.size(); ++i) {
    lock_set(b.at(i), set);
    // relaxed: pre-pass, before begin_round() releases the workers.
    pending_locks_[i].store(static_cast<std::uint32_t>(set.size()),
                            std::memory_order_relaxed);
  }
  ready_.clear();
  ready_.reserve(b.size());
  // relaxed: pre-pass, before workers start (see above).
  ready_head_.store(0, std::memory_order_relaxed);
  ready_count_.store(0, std::memory_order_relaxed);
  remaining_.store(static_cast<std::uint32_t>(b.size()),
                   std::memory_order_release);

  pool_->begin_round();
  schedule(b);  // this thread IS Calvin's single-threaded lock scheduler
  pool_->end_round();

  for (auto& wm : worker_metrics_) m.merge(wm);
  m.batches += 1;
  m.elapsed_seconds += sw.seconds();
}

void calvin_engine::schedule(txn::batch& b) {
  std::vector<std::pair<std::uint64_t, bool>> set;
  for (std::size_t i = 0; i < b.size(); ++i) {
    const auto seq = static_cast<seq_t>(i);
    lock_set(b.at(i), set);
    if (set.empty()) {
      push_ready(seq);
      continue;
    }
    for (const auto& [rec, exclusive] : set) {
      stripe& st = stripe_of(rec);
      bool granted = false;
      {
        common::spin_guard guard(st.latch);
        lock_entry& e = st.locks[rec];
        if (e.waiters.empty() &&
            (e.holders == 0 || (!exclusive && !e.held_exclusive))) {
          e.held_exclusive = e.holders == 0 ? exclusive
                                            : e.held_exclusive;
          e.holders += 1;
          granted = true;
        } else {
          e.waiters.push_back({seq, exclusive});
        }
      }
      if (granted &&
          pending_locks_[seq].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        push_ready(seq);
      }
    }
  }
}

void calvin_engine::release_locks(txn::txn_desc& t) {
  std::vector<std::pair<std::uint64_t, bool>> set;
  lock_set(t, set);
  std::vector<seq_t> newly_ready;
  for (const auto& [rec, exclusive] : set) {
    stripe& st = stripe_of(rec);
    std::vector<seq_t> granted;
    {
      common::spin_guard guard(st.latch);
      lock_entry& e = st.locks[rec];
      e.holders -= 1;
      if (e.holders == 0) e.held_exclusive = false;
      // FIFO grant: head waiter, then consecutive shared waiters.
      while (!e.waiters.empty()) {
        const lock_request& w = e.waiters.front();
        const bool can_grant =
            e.holders == 0 || (!w.exclusive && !e.held_exclusive);
        if (!can_grant) break;
        e.held_exclusive = e.holders == 0 ? w.exclusive : e.held_exclusive;
        e.holders += 1;
        granted.push_back(w.seq);
        e.waiters.erase(e.waiters.begin());
        if (e.held_exclusive) break;
      }
    }
    for (const seq_t s : granted) {
      if (pending_locks_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        newly_ready.push_back(s);
      }
    }
  }
  for (const seq_t s : newly_ready) push_ready(s);
}

void calvin_engine::worker_job(unsigned worker) {
  txn::batch& b = *current_;
  common::run_metrics& wm = worker_metrics_[worker];
  inplace_host host(db_);

  seq_t s;
  while (pop_ready(s)) {
    txn::txn_desc& t = b.at(s);
    if (run_txn_serially(t, host)) {
      wm.committed += 1;
    } else {
      wm.aborted += 1;
    }
    wm.txn_latency.record_nanos(common::now_nanos() - batch_start_nanos_);
    release_locks(t);
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace quecc::proto
