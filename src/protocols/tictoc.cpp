#include "protocols/tictoc.hpp"

#include <algorithm>
#include <cstring>

#include "common/spinlock.hpp"

namespace quecc::proto {

namespace {

constexpr std::uint64_t kLockBit = 1ull << 63;
constexpr std::uint64_t kWtsMask = kLockBit - 1;

class tictoc_ctx final : public worker_ctx, public txn::frag_host {
 public:
  explicit tictoc_ctx(storage::database& db) : db_(db) {}

  txn::frag_host& host() override { return *this; }

  void begin(txn::txn_desc&) override {
    cc_failed_ = false;
    reads_.clear();
    writes_.clear();
    read_bufs_.clear();
  }

  bool cc_failed() const noexcept override { return cc_failed_; }

  bool try_commit(txn::txn_desc&,
                  const std::function<void()>& at_serialization) override {
    // Lock write set in deterministic order.
    std::sort(writes_.begin(), writes_.end(), [](const auto& a,
                                                 const auto& b) {
      return std::tie(a.table, a.key) < std::tie(b.table, b.key);
    });
    for (auto& w : writes_) {
      if (w.op == txn::op_kind::insert) continue;
      if (!lock_row(w)) {
        unlock_all();
        return false;
      }
    }

    // Compute commit_ts: above every touched read lease, at or above every
    // observed write version.
    std::uint64_t commit_ts = 0;
    for (const auto& w : writes_) {
      if (w.op == txn::op_kind::insert) continue;
      const std::uint64_t rts =
          db_.at(w.table).meta(w.rid).word2.load(std::memory_order_acquire);
      commit_ts = std::max(commit_ts, rts + 1);
    }
    for (const auto& r : reads_) commit_ts = std::max(commit_ts, r.wts);

    // Validate / extend read leases to commit_ts.
    for (const auto& r : reads_) {
      if (in_write_set(r.table, r.rid)) continue;  // validated via lock
      auto& meta = db_.at(r.table).meta(r.rid);
      while (true) {
        const std::uint64_t v = meta.word1.load(std::memory_order_acquire);
        std::uint64_t rts = meta.word2.load(std::memory_order_acquire);
        if ((v & kWtsMask) != r.wts) {  // overwritten since we read it
          unlock_all();
          return false;
        }
        if (rts >= commit_ts) break;  // lease already long enough
        if ((v & kLockBit) != 0) {    // a writer owns it: cannot extend
          unlock_all();
          return false;
        }
        if (meta.word2.compare_exchange_weak(rts, commit_ts,
                                             std::memory_order_acq_rel)) {
          break;
        }
      }
    }

    at_serialization();  // locks held, validation passed

    for (auto& w : writes_) {
      auto& tab = db_.at(w.table);
      switch (w.op) {
        case txn::op_kind::update: {
          std::memcpy(tab.row(w.rid).data(), w.buf.data(), w.buf.size());
          // relaxed: the release store of word1 (the wts/lock word readers
          // validate against) below publishes rts alongside the row bytes.
          tab.meta(w.rid).word2.store(commit_ts, std::memory_order_relaxed);
          tab.meta(w.rid).word1.store(commit_ts, std::memory_order_release);
          w.locked = false;
          break;
        }
        case txn::op_kind::insert: {
          const auto rid = tab.allocate_row(w.part);
          auto row = tab.row(rid);
          std::memcpy(row.data(), w.buf.data(),
                      std::min(w.buf.size(), row.size()));
          // relaxed: published by the word1 release store below (see above).
          tab.meta(rid).word2.store(commit_ts, std::memory_order_relaxed);
          tab.meta(rid).word1.store(commit_ts, std::memory_order_release);
          if (!tab.index_row(w.key, rid)) tab.retire_unindexed(rid);
          break;
        }
        case txn::op_kind::erase: {
          tab.erase(w.key, storage::rid_shard(w.rid));
          // relaxed: the release store of word1 (the wts/lock word readers
          // validate against) below publishes rts alongside the row bytes.
          tab.meta(w.rid).word2.store(commit_ts, std::memory_order_relaxed);
          tab.meta(w.rid).word1.store(commit_ts, std::memory_order_release);
          w.locked = false;
          break;
        }
        case txn::op_kind::read:
        case txn::op_kind::scan:
          break;
      }
    }
    return true;
  }

  void abort_attempt(txn::txn_desc&) override {
    reads_.clear();
    writes_.clear();
    read_bufs_.clear();
  }

  // --- frag_host -----------------------------------------------------------
  std::span<const std::byte> read_row(const txn::fragment& f,
                                      txn::txn_desc&) override {
    if (auto* w = find_write(f.table, f.key)) return w->buf;
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return {};
    auto& buf = read_bufs_.emplace_back();
    const auto [wts, rts] = stable_copy(f.table, rid, buf);
    reads_.push_back({f.table, rid, wts, rts});
    return buf;
  }

  std::span<std::byte> update_row(const txn::fragment& f,
                                  txn::txn_desc&) override {
    if (auto* w = find_write(f.table, f.key)) return w->buf;
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return {};
    auto& w = writes_.emplace_back();
    w.table = f.table;
    w.key = f.key;
    w.rid = rid;
    w.op = txn::op_kind::update;
    const auto [wts, rts] = stable_copy(f.table, rid, w.buf);
    w.read_wts = wts;
    return w.buf;
  }

  std::span<std::byte> insert_row(const txn::fragment& f,
                                  txn::txn_desc&) override {
    auto& w = writes_.emplace_back();
    w.table = f.table;
    w.key = f.key;
    w.part = f.part;  // home arena for the install-time allocation
    w.op = txn::op_kind::insert;
    w.buf.assign(db_.at(f.table).layout().row_size(), std::byte{0});
    return w.buf;
  }

  bool erase_row(const txn::fragment& f, txn::txn_desc&) override {
    auto& tab = db_.at(f.table);
    const auto rid = tab.lookup(f.key, f.part);
    if (rid == storage::kNoRow) return false;
    auto& w = writes_.emplace_back();
    w.table = f.table;
    w.key = f.key;
    w.rid = rid;
    w.op = txn::op_kind::erase;
    w.read_wts =
        tab.meta(rid).word1.load(std::memory_order_acquire) & kWtsMask;
    return true;
  }

 private:
  struct read_rec {
    table_id_t table;
    storage::row_id_t rid;
    std::uint64_t wts;
    std::uint64_t rts;
  };
  struct write_rec {
    table_id_t table;
    key_t key;
    part_id_t part = 0;  ///< home partition (insert install routes by it)
    storage::row_id_t rid = storage::kNoRow;
    txn::op_kind op = txn::op_kind::update;
    bool locked = false;
    std::uint64_t read_wts = 0;  ///< wts observed when the RMW read it
    std::vector<std::byte> buf;
  };

  write_rec* find_write(table_id_t table, key_t key) {
    for (auto& w : writes_) {
      if (w.table == table && w.key == key && w.op != txn::op_kind::erase) {
        return &w;
      }
    }
    return nullptr;
  }

  bool in_write_set(table_id_t table, storage::row_id_t rid) const {
    for (const auto& w : writes_) {
      if (w.table == table && w.rid == rid) return true;
    }
    return false;
  }

  std::pair<std::uint64_t, std::uint64_t> stable_copy(
      table_id_t table, storage::row_id_t rid, std::vector<std::byte>& out) {
    auto& tab = db_.at(table);
    auto& meta = tab.meta(rid);
    const auto row = tab.row(rid);
    out.resize(row.size());
    common::backoff bo;
    while (true) {
      const std::uint64_t v1 = meta.word1.load(std::memory_order_acquire);
      if ((v1 & kLockBit) == 0) {
        const std::uint64_t rts = meta.word2.load(std::memory_order_acquire);
        std::memcpy(out.data(), row.data(), row.size());
        std::atomic_thread_fence(std::memory_order_acquire);
        const std::uint64_t v2 = meta.word1.load(std::memory_order_acquire);
        if (v1 == v2) return {v1 & kWtsMask, rts};
      }
      bo.spin();
    }
  }

  /// Lock and verify the version we buffered is still current — a stale
  /// RMW must retry, otherwise we would overwrite a concurrent update.
  bool lock_row(write_rec& w) {
    auto& word = db_.at(w.table).meta(w.rid).word1;
    std::uint64_t cur = word.load(std::memory_order_acquire);
    while (true) {
      if ((cur & kLockBit) != 0) return false;
      if ((cur & kWtsMask) != w.read_wts) return false;
      if (word.compare_exchange_weak(cur, cur | kLockBit,
                                     std::memory_order_acq_rel)) {
        w.locked = true;
        return true;
      }
    }
  }

  void unlock_all() {
    for (auto& w : writes_) {
      if (w.locked) {
        db_.at(w.table).meta(w.rid).word1.fetch_and(
            kWtsMask, std::memory_order_release);
        w.locked = false;
      }
    }
  }

  storage::database& db_;
  bool cc_failed_ = false;
  std::vector<read_rec> reads_;
  std::vector<write_rec> writes_;
  std::vector<std::vector<std::byte>> read_bufs_;
};

}  // namespace

std::unique_ptr<worker_ctx> tictoc_engine::make_worker(unsigned) {
  return std::make_unique<tictoc_ctx>(db_);
}

}  // namespace quecc::proto
