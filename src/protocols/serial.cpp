#include "protocols/serial.hpp"

#include "common/stats.hpp"
#include "txn/procedure.hpp"

namespace quecc::proto {

bool run_txn_serially(txn::txn_desc& t, inplace_host& host) {
  host.begin_txn();
  for (const auto& f : t.frags) {
    // Serial execution: data dependencies are ready by construction
    // (producer idx < consumer idx, checked by validate_plan).
    const auto st = t.proc->run_fragment(f, t, host);
    if (f.abortable) {
      // relaxed: serial execution — nobody observes the countdown midway.
      t.pending_abortables.fetch_sub(1, std::memory_order_relaxed);
    }
    if (st == txn::frag_status::abort) {
      t.mark_aborted();
      host.rollback_txn();
      return false;
    }
  }
  t.status.store(txn::txn_status::committed, std::memory_order_release);
  return true;
}

serial_engine::serial_engine(storage::database& db, const common::config& cfg)
    : db_(db), cfg_(cfg) {}

void serial_engine::run_batch(txn::batch& b, common::run_metrics& m) {
  common::stopwatch sw;
  commit_order_.clear();
  inplace_host host(db_);
  for (auto& tp : b) {
    txn::txn_desc& t = *tp;
    common::stopwatch txn_sw;
    if (run_txn_serially(t, host)) {
      m.committed += 1;
      commit_order_.push_back(t.seq);
    } else {
      m.aborted += 1;
    }
    m.txn_latency.record_nanos(txn_sw.nanos());
  }
  m.batches += 1;
  m.elapsed_seconds += sw.seconds();
}

}  // namespace quecc::proto
