// Workload interface: loads a schema + initial data and generates planned
// transactions (fragments, dependencies, arguments) for the engines.
//
// Generators are deterministic functions of their seed, which is what lets
// the test suite compare engines on identical batches and re-run batches
// for determinism checks. A workload object owns its procedure instances,
// so it must outlive every batch generated from it.
#pragma once

#include <memory>

#include "common/rng.hpp"
#include "storage/database.hpp"
#include "txn/batch.hpp"

namespace quecc::wl {

class workload {
 public:
  virtual ~workload() = default;

  virtual const char* name() const noexcept = 0;

  /// Create tables and load the initial database population.
  virtual void load(storage::database& db) = 0;

  /// Generate one planned transaction. Generators may carry state that the
  /// transaction's *execution* is expected to reach (e.g. TPC-C order-id
  /// assignment), which is sound because every engine in the repository
  /// produces sequence-order-equivalent results for committed work.
  virtual std::unique_ptr<txn::txn_desc> make_txn(common::rng& r) = 0;

  /// Resolve one of this workload's procedures by its name. The command
  /// log (src/log/) serializes plans with procedure *names*; recovery
  /// rebinds them here (log::resolver_for). nullptr when unknown.
  virtual const txn::procedure* find_procedure(
      const std::string& name) const {
    (void)name;
    return nullptr;
  }

  /// Convenience: a batch of `n` transactions, validated.
  txn::batch make_batch(common::rng& r, std::uint32_t n,
                        std::uint32_t batch_id = 0) {
    txn::batch b(batch_id);
    for (std::uint32_t i = 0; i < n; ++i) b.add(make_txn(r));
    b.validate();
    return b;
  }
};

}  // namespace quecc::wl
