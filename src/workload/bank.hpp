// Bank micro-workload: classic transfer transactions with an abortable
// balance check and a conserved-total invariant.
//
// Used by the property-test suite (sum of balances is constant under every
// engine, isolation level, and execution model) and by the bank_audit
// example. A transfer is three fragments:
//   f0 (abortable read)  — abort when source balance < amount
//   f1 (update)          — source -= amount
//   f2 (update)          — destination += amount
// which exercises commit dependencies (f1/f2 depend on f0's verdict) and,
// under speculative execution, cascading aborts across transfers.
#pragma once

#include "txn/procedure.hpp"
#include "workload/workload.hpp"

namespace quecc::wl {

struct bank_config {
  std::uint64_t accounts = 4096;
  std::uint64_t initial_balance = 1000;
  std::uint64_t max_transfer = 1500;  ///< > initial balance => real aborts
  part_id_t partitions = 4;
};

class bank final : public workload {
 public:
  explicit bank(bank_config cfg);

  const char* name() const noexcept override { return "bank"; }
  void load(storage::database& db) override;
  std::unique_ptr<txn::txn_desc> make_txn(common::rng& r) override;
  const txn::procedure* find_procedure(
      const std::string& name) const override {
    return name == proc_.name() ? &proc_ : nullptr;
  }

  const bank_config& cfg() const noexcept { return cfg_; }

  /// Invariant: equals accounts * initial_balance forever.
  std::uint64_t total_balance(const storage::database& db) const;

  enum logic : std::uint16_t {
    check_source = 0,  ///< abortable: abort when balance < aux
    debit = 1,         ///< balance -= aux
    credit = 2,        ///< balance += aux
  };

 private:
  bank_config cfg_;
  txn::procedure proc_;
  table_id_t table_ = 0;
};

}  // namespace quecc::wl
