#include "workload/bank.hpp"

namespace quecc::wl {

namespace {

storage::schema account_schema() {
  return storage::schema({{"BALANCE", storage::col_type::u64, 8},
                          {"OWNER", storage::col_type::bytes, 16}});
}

txn::frag_status run_fragment(const txn::fragment& f, txn::txn_desc& t,
                              txn::frag_host& h) {
  switch (static_cast<bank::logic>(f.logic)) {
    case bank::check_source: {
      const auto row = h.read_row(f, t);
      if (row.empty()) return txn::frag_status::abort;
      return storage::read_u64(row, 0) < f.aux ? txn::frag_status::abort
                                               : txn::frag_status::ok;
    }
    case bank::debit: {
      auto row = h.update_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      storage::write_u64(row, 0, storage::read_u64(row, 0) - f.aux);
      return txn::frag_status::ok;
    }
    case bank::credit: {
      auto row = h.update_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      storage::write_u64(row, 0, storage::read_u64(row, 0) + f.aux);
      return txn::frag_status::ok;
    }
  }
  return txn::frag_status::ok;
}

}  // namespace

bank::bank(bank_config cfg)
    : cfg_(cfg), proc_("bank-transfer", &run_fragment, 1) {}

void bank::load(storage::database& db) {
  // One arena per partition; account a's home partition is a % partitions.
  auto& tab = db.create_table("account", account_schema(), cfg_.accounts + 1,
                              cfg_.partitions);
  table_ = tab.id();
  std::vector<std::byte> row(tab.layout().row_size());
  for (std::uint64_t a = 0; a < cfg_.accounts; ++a) {
    std::span<std::byte> s(row);
    storage::write_u64(s, 0, cfg_.initial_balance);
    tab.insert(a, row, static_cast<part_id_t>(a % cfg_.partitions));
  }
}

std::unique_ptr<txn::txn_desc> bank::make_txn(common::rng& r) {
  auto t = std::make_unique<txn::txn_desc>();
  t->proc = &proc_;

  const std::uint64_t src = r.next_below(cfg_.accounts);
  std::uint64_t dst = r.next_below(cfg_.accounts);
  if (dst == src) dst = (dst + 1) % cfg_.accounts;
  const std::uint64_t amount = 1 + r.next_below(cfg_.max_transfer);

  const auto part = [this](std::uint64_t a) {
    return static_cast<part_id_t>(a % cfg_.partitions);
  };

  txn::fragment check;
  check.table = table_;
  check.key = src;
  check.part = part(src);
  check.kind = txn::op_kind::read;
  check.abortable = true;
  check.logic = check_source;
  check.aux = amount;
  check.idx = 0;
  t->frags.push_back(check);

  txn::fragment deb;
  deb.table = table_;
  deb.key = src;
  deb.part = part(src);
  deb.kind = txn::op_kind::update;
  deb.logic = debit;
  deb.aux = amount;
  deb.idx = 1;
  t->frags.push_back(deb);

  txn::fragment cred;
  cred.table = table_;
  cred.key = dst;
  cred.part = part(dst);
  cred.kind = txn::op_kind::update;
  cred.logic = credit;
  cred.aux = amount;
  cred.idx = 2;
  t->frags.push_back(cred);

  return t;
}

std::uint64_t bank::total_balance(const storage::database& db) const {
  const auto& tab = db.at(table_);
  std::uint64_t sum = 0;
  tab.for_each_live([&](key_t, storage::row_id_t rid) {
    sum += storage::read_u64(tab.row(rid), 0);
  });
  return sum;
}

}  // namespace quecc::wl
