#include "workload/tpcc.hpp"

#include <algorithm>
#include <bit>
#include <string>

namespace quecc::wl {

namespace {

// ---------------------------------------------------------------------------
// Column layouts. Offsets are fixed by construction order; the enums below
// name them so fragment logic stays readable.
// ---------------------------------------------------------------------------
storage::schema warehouse_schema() {
  return storage::schema({{"W_TAX", storage::col_type::f64, 8},
                          {"W_YTD", storage::col_type::f64, 8},
                          {"W_NAME", storage::col_type::bytes, 10}});
}
storage::schema district_schema() {
  return storage::schema({{"D_TAX", storage::col_type::f64, 8},
                          {"D_YTD", storage::col_type::f64, 8},
                          {"D_NEXT_O_ID", storage::col_type::u64, 8},
                          {"D_NAME", storage::col_type::bytes, 10}});
}
storage::schema customer_schema() {
  return storage::schema({{"C_BALANCE", storage::col_type::f64, 8},
                          {"C_YTD_PAYMENT", storage::col_type::f64, 8},
                          {"C_PAYMENT_CNT", storage::col_type::u64, 8},
                          {"C_DELIVERY_CNT", storage::col_type::u64, 8},
                          {"C_DISCOUNT", storage::col_type::f64, 8},
                          {"C_CREDIT", storage::col_type::u64, 8},
                          {"C_LAST", storage::col_type::bytes, 16},
                          {"C_DATA", storage::col_type::bytes, 32}});
}
storage::schema history_schema() {
  return storage::schema({{"H_AMOUNT", storage::col_type::f64, 8},
                          {"H_W_ID", storage::col_type::u64, 8},
                          {"H_D_ID", storage::col_type::u64, 8},
                          {"H_C_ID", storage::col_type::u64, 8},
                          {"H_DATE", storage::col_type::u64, 8}});
}
storage::schema new_order_schema() {
  return storage::schema({{"NO_O_ID", storage::col_type::u64, 8}});
}
storage::schema orders_schema() {
  return storage::schema({{"O_C_ID", storage::col_type::u64, 8},
                          {"O_ENTRY_D", storage::col_type::u64, 8},
                          {"O_CARRIER_ID", storage::col_type::u64, 8},
                          {"O_OL_CNT", storage::col_type::u64, 8},
                          {"O_ALL_LOCAL", storage::col_type::u64, 8}});
}
storage::schema order_line_schema() {
  return storage::schema({{"OL_I_ID", storage::col_type::u64, 8},
                          {"OL_SUPPLY_W_ID", storage::col_type::u64, 8},
                          {"OL_QUANTITY", storage::col_type::u64, 8},
                          {"OL_AMOUNT", storage::col_type::f64, 8},
                          {"OL_DELIVERY_D", storage::col_type::u64, 8}});
}
storage::schema item_schema() {
  return storage::schema({{"I_PRICE", storage::col_type::f64, 8},
                          {"I_IM_ID", storage::col_type::u64, 8},
                          {"I_NAME", storage::col_type::bytes, 24}});
}
storage::schema stock_schema() {
  return storage::schema({{"S_QUANTITY", storage::col_type::i64, 8},
                          {"S_YTD", storage::col_type::f64, 8},
                          {"S_ORDER_CNT", storage::col_type::u64, 8},
                          {"S_REMOTE_CNT", storage::col_type::u64, 8},
                          {"S_DATA", storage::col_type::bytes, 32}});
}

// Column byte offsets (kept in sync with the schemas above).
namespace col {
// warehouse
constexpr std::size_t w_tax = 0, w_ytd = 8;
// district
constexpr std::size_t d_tax = 0, d_ytd = 8, d_next_o_id = 16;
// customer
constexpr std::size_t c_balance = 0, c_ytd_payment = 8, c_payment_cnt = 16,
                      c_delivery_cnt = 24, c_discount = 32, c_credit = 40;
// history
constexpr std::size_t h_amount = 0, h_w_id = 8, h_d_id = 16, h_c_id = 24,
                      h_date = 32;
// new_order
constexpr std::size_t no_o_id = 0;
// orders
constexpr std::size_t o_c_id = 0, o_entry_d = 8, o_carrier_id = 16,
                      o_ol_cnt = 24, o_all_local = 32;
// order_line
constexpr std::size_t ol_i_id = 0, ol_supply_w_id = 8, ol_quantity = 16,
                      ol_amount = 24, ol_delivery_d = 32;
// item
constexpr std::size_t i_price = 0, i_im_id = 8;
// stock
constexpr std::size_t s_quantity = 0, s_ytd = 8, s_order_cnt = 16,
                      s_remote_cnt = 24;
}  // namespace col

// Slot assignments.
namespace slot {
// NewOrder: 0..14 item prices, then taxes/discount.
constexpr std::uint16_t w_tax = 15, d_tax = 16, c_discount = 17;
constexpr std::uint16_t no_slots = 18;
// Payment: new balance out.
constexpr std::uint16_t pay_balance = 0, pay_slots = 1;
// OrderStatus: balance, carrier, then per-line amounts.
constexpr std::uint16_t os_balance = 0, os_carrier = 1, os_line0 = 2,
                        os_slots = 2 + kMaxOrderLines;
// Delivery: 0..14 line amounts.
constexpr std::uint16_t dl_slots = kMaxOrderLines;
// StockLevel: 0..14 quantities, aggregate count, scanned line count.
constexpr std::uint16_t sl_count = 15, sl_lines = 16, sl_slots = 17;
}  // namespace slot

std::uint64_t d2b(double v) noexcept { return std::bit_cast<std::uint64_t>(v); }
double b2d(std::uint64_t v) noexcept { return std::bit_cast<double>(v); }

/// Deterministic per-key pseudo-random value for loaders.
std::uint64_t mix(std::uint64_t a, std::uint64_t b = 0) noexcept {
  std::uint64_t h = a * 0x9e3779b97f4a7c15ull + b + 1;
  h ^= h >> 31;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 29;
  return h;
}

double item_price(std::uint64_t i) noexcept {
  return 1.0 + static_cast<double>(mix(i, 11) % 9900) / 100.0;  // 1..100
}

// ---------------------------------------------------------------------------
// Fragment logic
// ---------------------------------------------------------------------------
enum no_logic : std::uint16_t {
  no_item_check = 0,
  no_warehouse_read,
  no_district_update,
  no_customer_read,
  no_order_insert,
  no_new_order_insert,
  no_stock_update,
  no_order_line_insert,
};

enum pay_logic : std::uint16_t {
  pay_warehouse = 0,
  pay_district,
  pay_customer,
  pay_history_insert,
};

enum os_logic : std::uint16_t {
  os_customer = 0,
  os_order,
  os_order_line,
  os_line_scan,  ///< scan_profiles: one range scan over the order's lines
};

enum dl_logic : std::uint16_t {
  dl_new_order_erase = 0,
  dl_order_update,
  dl_order_line_update,
  dl_customer_update,
};

enum sl_logic : std::uint16_t {
  sl_stock_read = 0,
  sl_aggregate,
  sl_line_scan,  ///< scan_profiles: range scan over the last 20 orders' lines
};

// NewOrder args layout.
namespace noa {
constexpr std::size_t w = 0, d = 1, c = 2, o_id = 3, ol_cnt = 4, date = 5,
                      items = 6;  // triples: i_id, supply_w, qty
constexpr std::size_t i_id(std::size_t j) { return items + 3 * j; }
constexpr std::size_t supply_w(std::size_t j) { return items + 3 * j + 1; }
constexpr std::size_t qty(std::size_t j) { return items + 3 * j + 2; }
}  // namespace noa

txn::frag_status run_new_order(const txn::fragment& f, txn::txn_desc& t,
                               txn::frag_host& h) {
  const std::size_t j = f.aux;  // item index for per-item fragments
  switch (static_cast<no_logic>(f.logic)) {
    case no_item_check: {
      const auto row = h.read_row(f, t);
      if (row.empty()) return txn::frag_status::abort;  // invalid item
      t.produce(static_cast<std::uint16_t>(j),
                d2b(storage::read_f64(row, col::i_price)));
      return txn::frag_status::ok;
    }
    case no_warehouse_read: {
      const auto row = h.read_row(f, t);
      t.produce(slot::w_tax,
                row.empty() ? 0 : d2b(storage::read_f64(row, col::w_tax)));
      return txn::frag_status::ok;
    }
    case no_district_update: {
      auto row = h.update_row(f, t);
      if (row.empty()) {
        t.produce(slot::d_tax, 0);
        return txn::frag_status::ok;
      }
      t.produce(slot::d_tax, d2b(storage::read_f64(row, col::d_tax)));
      // Commutative max-write keeps D_NEXT_O_ID equal to (max issued
      // order id + 1) under every commit order the baselines can produce;
      // in sequence order it degenerates to the spec's read-increment.
      const std::uint64_t next = storage::read_u64(row, col::d_next_o_id);
      storage::write_u64(row, col::d_next_o_id, std::max(next, f.aux));
      return txn::frag_status::ok;
    }
    case no_customer_read: {
      const auto row = h.read_row(f, t);
      t.produce(slot::c_discount,
                row.empty() ? 0
                            : d2b(storage::read_f64(row, col::c_discount)));
      return txn::frag_status::ok;
    }
    case no_order_insert: {
      auto row = h.insert_row(f, t);
      if (row.empty()) return txn::frag_status::ok;  // duplicate: no-op
      storage::write_u64(row, col::o_c_id, t.args[noa::c]);
      storage::write_u64(row, col::o_entry_d, t.args[noa::date]);
      storage::write_u64(row, col::o_carrier_id, 0);
      storage::write_u64(row, col::o_ol_cnt, t.args[noa::ol_cnt]);
      storage::write_u64(row, col::o_all_local, f.aux);
      return txn::frag_status::ok;
    }
    case no_new_order_insert: {
      auto row = h.insert_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      storage::write_u64(row, col::no_o_id, t.args[noa::o_id]);
      return txn::frag_status::ok;
    }
    case no_stock_update: {
      auto row = h.update_row(f, t);
      if (row.empty()) return txn::frag_status::ok;  // invalid item's stock
      const auto qty = static_cast<std::int64_t>(t.args[noa::qty(j)]);
      std::int64_t s = storage::read_i64(row, col::s_quantity);
      s = (s - qty >= 10) ? s - qty : s - qty + 91;
      storage::write_i64(row, col::s_quantity, s);
      storage::write_f64(row, col::s_ytd,
                         storage::read_f64(row, col::s_ytd) +
                             static_cast<double>(qty));
      storage::write_u64(row, col::s_order_cnt,
                         storage::read_u64(row, col::s_order_cnt) + 1);
      if (t.args[noa::supply_w(j)] != t.args[noa::w]) {
        storage::write_u64(row, col::s_remote_cnt,
                           storage::read_u64(row, col::s_remote_cnt) + 1);
      }
      return txn::frag_status::ok;
    }
    case no_order_line_insert: {
      auto row = h.insert_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      const double price = b2d(t.slot_value(static_cast<std::uint16_t>(j)));
      const double w_tax = b2d(t.slot_value(slot::w_tax));
      const double d_tax = b2d(t.slot_value(slot::d_tax));
      const double disc = b2d(t.slot_value(slot::c_discount));
      const auto qty = static_cast<double>(t.args[noa::qty(j)]);
      storage::write_u64(row, col::ol_i_id, t.args[noa::i_id(j)]);
      storage::write_u64(row, col::ol_supply_w_id, t.args[noa::supply_w(j)]);
      storage::write_u64(row, col::ol_quantity, t.args[noa::qty(j)]);
      storage::write_f64(row, col::ol_amount,
                         qty * price * (1.0 + w_tax + d_tax) * (1.0 - disc));
      storage::write_u64(row, col::ol_delivery_d, 0);
      return txn::frag_status::ok;
    }
  }
  return txn::frag_status::ok;
}

// Payment args layout.
namespace paya {
constexpr std::size_t w = 0, d = 1, c_w = 2, c_d = 3, c = 4, amount = 5,
                      date = 6;
}

txn::frag_status run_payment(const txn::fragment& f, txn::txn_desc& t,
                             txn::frag_host& h) {
  const double amt = b2d(t.args[paya::amount]);
  switch (static_cast<pay_logic>(f.logic)) {
    case pay_warehouse: {
      auto row = h.update_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      storage::write_f64(row, col::w_ytd,
                         storage::read_f64(row, col::w_ytd) + amt);
      return txn::frag_status::ok;
    }
    case pay_district: {
      auto row = h.update_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      storage::write_f64(row, col::d_ytd,
                         storage::read_f64(row, col::d_ytd) + amt);
      return txn::frag_status::ok;
    }
    case pay_customer: {
      auto row = h.update_row(f, t);
      if (row.empty()) {
        t.produce(slot::pay_balance, 0);
        return txn::frag_status::ok;
      }
      const double bal = storage::read_f64(row, col::c_balance) - amt;
      storage::write_f64(row, col::c_balance, bal);
      storage::write_f64(row, col::c_ytd_payment,
                         storage::read_f64(row, col::c_ytd_payment) + amt);
      storage::write_u64(row, col::c_payment_cnt,
                         storage::read_u64(row, col::c_payment_cnt) + 1);
      t.produce(slot::pay_balance, d2b(bal));
      return txn::frag_status::ok;
    }
    case pay_history_insert: {
      auto row = h.insert_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      storage::write_f64(row, col::h_amount, amt);
      storage::write_u64(row, col::h_w_id, t.args[paya::w]);
      storage::write_u64(row, col::h_d_id, t.args[paya::d]);
      storage::write_u64(row, col::h_c_id, t.args[paya::c]);
      storage::write_u64(row, col::h_date, t.args[paya::date]);
      return txn::frag_status::ok;
    }
  }
  return txn::frag_status::ok;
}

txn::frag_status run_order_status(const txn::fragment& f, txn::txn_desc& t,
                                  txn::frag_host& h) {
  switch (static_cast<os_logic>(f.logic)) {
    case os_customer: {
      const auto row = h.read_row(f, t);
      t.produce(slot::os_balance,
                row.empty() ? 0 : d2b(storage::read_f64(row, col::c_balance)));
      return txn::frag_status::ok;
    }
    case os_order: {
      const auto row = h.read_row(f, t);
      t.produce(slot::os_carrier,
                row.empty() ? 0 : storage::read_u64(row, col::o_carrier_id));
      return txn::frag_status::ok;
    }
    case os_order_line: {
      const auto row = h.read_row(f, t);
      t.produce(static_cast<std::uint16_t>(slot::os_line0 + f.aux),
                row.empty() ? 0 : d2b(storage::read_f64(row, col::ol_amount)));
      return txn::frag_status::ok;
    }
    case os_line_scan: {
      // One ordered range scan over [ol 0, ol 16) of the order's key
      // block. Single partition (the order's home warehouse), so every
      // host visits the same lines in ascending key order and the double
      // sum is bit-deterministic.
      struct acc {
        double sum = 0.0;
      } a;
      h.scan_rows(
          f, t,
          [](void* raw, key_t, std::span<const std::byte> row) {
            static_cast<acc*>(raw)->sum +=
                storage::read_f64(row, col::ol_amount);
            return true;
          },
          &a);
      t.produce(slot::os_line0, d2b(a.sum));
      return txn::frag_status::ok;
    }
  }
  return txn::frag_status::ok;
}

// Delivery args layout.
namespace dla {
constexpr std::size_t w = 0, d = 1, o = 2, c = 3, ol_cnt = 4, carrier = 5,
                      date = 6;
}

txn::frag_status run_delivery(const txn::fragment& f, txn::txn_desc& t,
                              txn::frag_host& h) {
  switch (static_cast<dl_logic>(f.logic)) {
    case dl_new_order_erase: {
      h.erase_row(f, t);  // missing (aborted NewOrder): skip, per spec
      return txn::frag_status::ok;
    }
    case dl_order_update: {
      auto row = h.update_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      storage::write_u64(row, col::o_carrier_id, t.args[dla::carrier]);
      return txn::frag_status::ok;
    }
    case dl_order_line_update: {
      auto row = h.update_row(f, t);
      if (row.empty()) {
        t.produce(static_cast<std::uint16_t>(f.aux), d2b(0.0));
        return txn::frag_status::ok;
      }
      storage::write_u64(row, col::ol_delivery_d, t.args[dla::date]);
      t.produce(static_cast<std::uint16_t>(f.aux),
                d2b(storage::read_f64(row, col::ol_amount)));
      return txn::frag_status::ok;
    }
    case dl_customer_update: {
      auto row = h.update_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      double sum = 0.0;
      for (std::uint64_t m = f.input_mask; m != 0; m &= m - 1) {
        sum += b2d(t.slot_value(
            static_cast<std::uint16_t>(__builtin_ctzll(m))));
      }
      storage::write_f64(row, col::c_balance,
                         storage::read_f64(row, col::c_balance) + sum);
      storage::write_u64(row, col::c_delivery_cnt,
                         storage::read_u64(row, col::c_delivery_cnt) + 1);
      return txn::frag_status::ok;
    }
  }
  return txn::frag_status::ok;
}

// StockLevel args layout.
namespace sla {
constexpr std::size_t w = 0, d = 1, threshold = 2, count = 3;
}

txn::frag_status run_stock_level(const txn::fragment& f, txn::txn_desc& t,
                                 txn::frag_host& h) {
  switch (static_cast<sl_logic>(f.logic)) {
    case sl_stock_read: {
      const auto row = h.read_row(f, t);
      // Missing stock (invalid item): report "plenty" so it never counts.
      t.produce(static_cast<std::uint16_t>(f.aux),
                row.empty()
                    ? static_cast<std::uint64_t>(1) << 40
                    : static_cast<std::uint64_t>(
                          storage::read_i64(row, col::s_quantity)));
      return txn::frag_status::ok;
    }
    case sl_aggregate: {
      const auto row = h.read_row(f, t);  // district anchor (unused value)
      (void)row;
      const auto threshold = t.args[sla::threshold];
      std::uint64_t below = 0;
      for (std::uint64_t m = f.input_mask; m != 0; m &= m - 1) {
        const auto q = t.slot_value(
            static_cast<std::uint16_t>(__builtin_ctzll(m)));
        if (q < threshold) ++below;
      }
      t.produce(slot::sl_count, below);
      return txn::frag_status::ok;
    }
    case sl_line_scan: {
      // Counts order lines across the recent-order window — the genuine
      // range read the spec's "last 20 orders" join opens with. u64 count,
      // single partition, ascending key order on every host.
      struct acc {
        std::uint64_t lines = 0;
      } a;
      h.scan_rows(
          f, t,
          [](void* raw, key_t, std::span<const std::byte>) {
            ++static_cast<acc*>(raw)->lines;
            return true;
          },
          &a);
      t.produce(slot::sl_lines, a.lines);
      return txn::frag_status::ok;
    }
  }
  return txn::frag_status::ok;
}

}  // namespace

// ---------------------------------------------------------------------------
// Workload
// ---------------------------------------------------------------------------
tpcc::tpcc(tpcc_config cfg)
    : cfg_(cfg),
      new_order_proc_("tpcc-new-order", &run_new_order, slot::no_slots),
      payment_proc_("tpcc-payment", &run_payment, slot::pay_slots),
      order_status_proc_("tpcc-order-status", &run_order_status,
                         slot::os_slots),
      delivery_proc_("tpcc-delivery", &run_delivery, slot::dl_slots),
      stock_level_proc_("tpcc-stock-level", &run_stock_level,
                        slot::sl_slots) {
  dstate_.resize(static_cast<std::size_t>(cfg_.warehouses) *
                 kDistrictsPerWarehouse);
}

void tpcc::load(storage::database& db) {
  const std::uint64_t W = cfg_.warehouses;
  const part_id_t P = cfg_.partitions;
  const std::uint64_t n0 = cfg_.initial_orders_per_district;
  const std::uint64_t order_cap =
      W * kDistrictsPerWarehouse *
      (n0 + cfg_.order_headroom_per_district);

  // Warehouse-keyed tables get one arena per partition, sized from the
  // shard's actual warehouse share (warehouses stripe as w % partitions,
  // so shares are uneven whenever W % P != 0 — classic 1-warehouse TPC-C
  // puts everything in shard 0). The +1 keeps empty shards constructible.
  std::vector<std::uint64_t> wshare(P, 0);
  for (std::uint64_t w = 0; w < W; ++w) ++wshare[part_of_warehouse(w)];
  const auto by_warehouse = [&](std::uint64_t rows_per_warehouse) {
    std::vector<std::size_t> caps(P);
    for (part_id_t s = 0; s < P; ++s) {
      caps[s] = static_cast<std::size_t>(wshare[s] * rows_per_warehouse) + 1;
    }
    return caps;
  };
  const std::uint64_t orders_per_warehouse =
      kDistrictsPerWarehouse * (n0 + cfg_.order_headroom_per_district);

  // Index selection rides in the schema (storage::schema::with_index):
  // every table follows cfg_.index, and ORDER-LINE is forced onto the
  // ordered backend when the scan profiles are on — its key packing
  // (order block * 16 + line number) makes an order's lines, and a
  // district's recent orders, contiguous key ranges.
  const storage::index_kind idx = cfg_.index;
  const storage::index_kind ol_idx =
      cfg_.scan_profiles ? storage::index_kind::ordered : idx;

  auto& wh = db.create_table("warehouse", warehouse_schema().with_index(idx),
                             by_warehouse(1));
  auto& di = db.create_table("district", district_schema().with_index(idx),
                             by_warehouse(kDistrictsPerWarehouse));
  auto& cu = db.create_table("customer", customer_schema().with_index(idx),
                             by_warehouse(kDistrictsPerWarehouse *
                                          kCustomersPerDistrict));
  // HISTORY keys are a global insert counter, so the home partition (the
  // payment's warehouse) is not derivable from the key and the per-shard
  // share is workload-skew dependent: keep it a single arena.
  auto& hi = db.create_table("history", history_schema().with_index(idx),
                             order_cap * 2);
  auto& no = db.create_table("new_order", new_order_schema().with_index(idx),
                             by_warehouse(orders_per_warehouse));
  auto& od = db.create_table("orders", orders_schema().with_index(idx),
                             by_warehouse(orders_per_warehouse));
  auto& ol = db.create_table("order_line",
                             order_line_schema().with_index(ol_idx),
                             by_warehouse(orders_per_warehouse *
                                          kMaxOrderLines));
  // ITEM is read-only and replicated per partition: one shard that every
  // partition's (lock-free) lookups route to.
  auto& it = db.create_table("item", item_schema().with_index(idx),
                             kItems + 1);
  it.set_replicated(true);
  auto& st = db.create_table("stock", stock_schema().with_index(idx),
                             by_warehouse(kItems + 16));

  warehouse_ = wh.id();
  district_ = di.id();
  customer_ = cu.id();
  history_ = hi.id();
  new_order_ = no.id();
  orders_ = od.id();
  order_line_ = ol.id();
  item_ = it.id();
  stock_ = st.id();

  std::vector<std::byte> buf(128);
  const auto row = [&buf](std::size_t n) {
    return std::span<std::byte>(buf.data(), n);
  };

  // Items (shared across warehouses).
  for (std::uint64_t i = 0; i < kItems; ++i) {
    auto r = row(it.layout().row_size());
    std::fill(r.begin(), r.end(), std::byte{0});
    storage::write_f64(r, col::i_price, item_price(i));
    storage::write_u64(r, col::i_im_id, mix(i, 2) % 10000);
    it.insert(item_key(i), r);
  }

  for (std::uint64_t w = 0; w < W; ++w) {
    const part_id_t part = part_of_warehouse(w);
    {
      auto r = row(wh.layout().row_size());
      std::fill(r.begin(), r.end(), std::byte{0});
      storage::write_f64(r, col::w_tax,
                         static_cast<double>(mix(w, 3) % 2000) / 10000.0);
      storage::write_f64(r, col::w_ytd, 300000.0);
      wh.insert(warehouse_key(w), r, part);
    }
    for (std::uint64_t i = 0; i < kItems; ++i) {
      auto r = row(st.layout().row_size());
      std::fill(r.begin(), r.end(), std::byte{0});
      storage::write_i64(r, col::s_quantity,
                         10 + static_cast<std::int64_t>(mix(w, i) % 91));
      st.insert(stock_key(w, i), r, part);
    }
    for (std::uint64_t d = 0; d < kDistrictsPerWarehouse; ++d) {
      district_state& ds = district_of(w, d);
      ds.next_o_id = n0;
      ds.delivery_ptr = n0 * 7 / 10;
      ds.orders.reserve(n0 + cfg_.order_headroom_per_district);
      {
        auto r = row(di.layout().row_size());
        std::fill(r.begin(), r.end(), std::byte{0});
        storage::write_f64(r, col::d_tax,
                           static_cast<double>(mix(w * 10 + d, 4) % 2000) /
                               10000.0);
        storage::write_f64(r, col::d_ytd, 30000.0);
        storage::write_u64(r, col::d_next_o_id, n0);
        di.insert(district_key(w, d), r, part);
      }
      for (std::uint64_t c = 0; c < kCustomersPerDistrict; ++c) {
        auto r = row(cu.layout().row_size());
        std::fill(r.begin(), r.end(), std::byte{0});
        storage::write_f64(r, col::c_balance, -10.0);
        storage::write_f64(r, col::c_ytd_payment, 10.0);
        storage::write_f64(r, col::c_discount,
                           static_cast<double>(mix(c, 5) % 5000) / 10000.0);
        storage::write_u64(r, col::c_credit, mix(c, 6) % 10 == 0 ? 1 : 0);
        cu.insert(customer_key(w, d, c), r, part);
      }
      // Initial order history: the first 70% are delivered (no NEW-ORDER
      // row, carrier set); the rest await Delivery transactions.
      for (std::uint64_t o = 0; o < n0; ++o) {
        order_meta meta;
        meta.customer = static_cast<std::uint32_t>((o * 7 + d) %
                                                   kCustomersPerDistrict);
        meta.ol_cnt = static_cast<std::uint8_t>(5 + mix(o, d) % 11);
        const bool delivered = o < ds.delivery_ptr;
        {
          auto r = row(od.layout().row_size());
          std::fill(r.begin(), r.end(), std::byte{0});
          storage::write_u64(r, col::o_c_id, meta.customer);
          storage::write_u64(r, col::o_entry_d, o);
          storage::write_u64(r, col::o_carrier_id,
                             delivered ? 1 + o % 10 : 0);
          storage::write_u64(r, col::o_ol_cnt, meta.ol_cnt);
          storage::write_u64(r, col::o_all_local, 1);
          od.insert(order_key(w, d, o), r, part);
        }
        if (!delivered) {
          auto r = row(no.layout().row_size());
          std::fill(r.begin(), r.end(), std::byte{0});
          storage::write_u64(r, col::no_o_id, o);
          no.insert(order_key(w, d, o), r, part);
        }
        for (std::uint64_t l = 0; l < meta.ol_cnt; ++l) {
          const std::uint64_t i = mix(o * 16 + l, d) % kItems;
          meta.items[l] = static_cast<std::uint32_t>(i);
          auto r = row(ol.layout().row_size());
          std::fill(r.begin(), r.end(), std::byte{0});
          storage::write_u64(r, col::ol_i_id, i);
          storage::write_u64(r, col::ol_supply_w_id, w);
          storage::write_u64(r, col::ol_quantity, 5);
          storage::write_f64(r, col::ol_amount, 5.0 * item_price(i));
          storage::write_u64(r, col::ol_delivery_d, delivered ? 1 : 0);
          ol.insert(order_line_key(w, d, o, l + 1), r, part);
        }
        ds.orders.push_back(meta);
      }
    }
  }
}

std::unique_ptr<txn::txn_desc> tpcc::make_txn(common::rng& r) {
  const double mix_total = cfg_.new_order_ratio + cfg_.payment_ratio +
                           cfg_.order_status_ratio + cfg_.delivery_ratio +
                           cfg_.stock_level_ratio;
  double roll = r.next_double() * mix_total;
  if ((roll -= cfg_.new_order_ratio) < 0) return make_new_order(r);
  if ((roll -= cfg_.payment_ratio) < 0) return make_payment(r);
  if ((roll -= cfg_.order_status_ratio) < 0) return make_order_status(r);
  if ((roll -= cfg_.delivery_ratio) < 0) return make_delivery(r);
  return make_stock_level(r);
}

std::unique_ptr<txn::txn_desc> tpcc::make_new_order(common::rng& r) {
  auto t = std::make_unique<txn::txn_desc>();
  t->proc = &new_order_proc_;

  const std::uint64_t w = r.next_below(cfg_.warehouses);
  const std::uint64_t d = r.next_below(kDistrictsPerWarehouse);
  const std::uint64_t c = r.next_below(kCustomersPerDistrict);
  const std::uint32_t ol_cnt = static_cast<std::uint32_t>(r.next_in(5, 15));
  const bool doomed = r.next_bool(cfg_.invalid_item_ratio);
  const part_id_t home = part_of_warehouse(w);

  district_state& ds = district_of(w, d);
  const std::uint64_t o_id = ds.next_o_id;  // pre-assigned (deterministic DB)

  order_meta meta;
  meta.customer = static_cast<std::uint32_t>(c);
  meta.ol_cnt = static_cast<std::uint8_t>(ol_cnt);

  t->args = {w, d, c, o_id, ol_cnt, date_counter_++};
  bool all_local = true;
  for (std::uint32_t j = 0; j < ol_cnt; ++j) {
    std::uint64_t i_id = r.next_below(kItems);
    if (doomed && j == ol_cnt - 1) i_id = kInvalidItem;  // plant user abort
    std::uint64_t supply_w = w;
    if (cfg_.warehouses > 1 && r.next_bool(cfg_.remote_stock_ratio)) {
      supply_w = r.next_below(cfg_.warehouses);
      if (supply_w != w) all_local = false;
    }
    meta.items[j] = static_cast<std::uint32_t>(i_id);
    t->args.push_back(i_id);
    t->args.push_back(supply_w);
    t->args.push_back(r.next_in(1, 10));
  }

  std::uint16_t idx = 0;
  // Abortable item checks first (conservative-liveness ordering).
  for (std::uint32_t j = 0; j < ol_cnt; ++j) {
    txn::fragment f;
    f.table = item_;
    f.key = item_key(t->args[noa::i_id(j)]);
    f.part = static_cast<part_id_t>(f.key % cfg_.partitions);
    f.kind = txn::op_kind::read;
    f.abortable = true;
    f.logic = no_item_check;
    f.output_slot = static_cast<std::uint16_t>(j);
    f.aux = j;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = warehouse_;
    f.key = warehouse_key(w);
    f.part = home;
    f.kind = txn::op_kind::read;
    f.logic = no_warehouse_read;
    f.output_slot = slot::w_tax;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = district_;
    f.key = district_key(w, d);
    f.part = home;
    f.kind = txn::op_kind::update;
    f.logic = no_district_update;
    f.output_slot = slot::d_tax;
    f.aux = o_id + 1;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = customer_;
    f.key = customer_key(w, d, c);
    f.part = home;
    f.kind = txn::op_kind::read;
    f.logic = no_customer_read;
    f.output_slot = slot::c_discount;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  for (std::uint32_t j = 0; j < ol_cnt; ++j) {
    txn::fragment f;
    f.table = stock_;
    f.key = stock_key(t->args[noa::supply_w(j)], t->args[noa::i_id(j)]);
    f.part = part_of_warehouse(t->args[noa::supply_w(j)]);
    f.kind = txn::op_kind::update;
    f.logic = no_stock_update;
    f.aux = j;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = orders_;
    f.key = order_key(w, d, o_id);
    f.part = home;
    f.kind = txn::op_kind::insert;
    f.logic = no_order_insert;
    f.aux = all_local ? 1 : 0;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = new_order_;
    f.key = order_key(w, d, o_id);
    f.part = home;
    f.kind = txn::op_kind::insert;
    f.logic = no_new_order_insert;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  for (std::uint32_t j = 0; j < ol_cnt; ++j) {
    txn::fragment f;
    f.table = order_line_;
    f.key = order_line_key(w, d, o_id, j + 1);
    f.part = home;
    f.kind = txn::op_kind::insert;
    f.logic = no_order_line_insert;
    f.aux = j;
    f.input_mask = (1ull << j) | (1ull << slot::w_tax) |
                   (1ull << slot::d_tax) | (1ull << slot::c_discount);
    f.idx = idx++;
    t->frags.push_back(f);
  }

  // Generator bookkeeping mirrors the deterministic outcome: doomed
  // NewOrders abort and consume no order id.
  if (!doomed) {
    ds.orders.push_back(meta);
    ds.next_o_id += 1;
  }
  return t;
}

std::unique_ptr<txn::txn_desc> tpcc::make_payment(common::rng& r) {
  auto t = std::make_unique<txn::txn_desc>();
  t->proc = &payment_proc_;

  const std::uint64_t w = r.next_below(cfg_.warehouses);
  const std::uint64_t d = r.next_below(kDistrictsPerWarehouse);
  std::uint64_t c_w = w, c_d = d;
  if (cfg_.warehouses > 1 && r.next_bool(cfg_.remote_payment_ratio)) {
    c_w = r.next_below(cfg_.warehouses);
    c_d = r.next_below(kDistrictsPerWarehouse);
  }
  const std::uint64_t c = r.next_below(kCustomersPerDistrict);
  const double amount = 1.0 + static_cast<double>(r.next_below(499900)) / 100.0;

  t->args = {w, d, c_w, c_d, c, d2b(amount), date_counter_++};

  std::uint16_t idx = 0;
  {
    txn::fragment f;
    f.table = warehouse_;
    f.key = warehouse_key(w);
    f.part = part_of_warehouse(w);
    f.kind = txn::op_kind::update;
    f.logic = pay_warehouse;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = district_;
    f.key = district_key(w, d);
    f.part = part_of_warehouse(w);
    f.kind = txn::op_kind::update;
    f.logic = pay_district;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = customer_;
    f.key = customer_key(c_w, c_d, c);
    f.part = part_of_warehouse(c_w);  // remote customer: multi-partition
    f.kind = txn::op_kind::update;
    f.logic = pay_customer;
    f.output_slot = slot::pay_balance;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = history_;
    f.key = history_counter_++;
    f.part = part_of_warehouse(w);
    f.kind = txn::op_kind::insert;
    f.logic = pay_history_insert;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  return t;
}

std::unique_ptr<txn::txn_desc> tpcc::make_order_status(common::rng& r) {
  auto t = std::make_unique<txn::txn_desc>();
  t->proc = &order_status_proc_;

  const std::uint64_t w = r.next_below(cfg_.warehouses);
  const std::uint64_t d = r.next_below(kDistrictsPerWarehouse);
  district_state& ds = district_of(w, d);
  const std::uint64_t o = r.next_below(ds.next_o_id);
  const order_meta& meta = ds.orders[o];
  const part_id_t home = part_of_warehouse(w);

  t->args = {w, d, meta.customer, o, meta.ol_cnt};

  std::uint16_t idx = 0;
  {
    txn::fragment f;
    f.table = customer_;
    f.key = customer_key(w, d, meta.customer);
    f.part = home;
    f.kind = txn::op_kind::read;
    f.logic = os_customer;
    f.output_slot = slot::os_balance;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = orders_;
    f.key = order_key(w, d, o);
    f.part = home;
    f.kind = txn::op_kind::read;
    f.logic = os_order;
    f.output_slot = slot::os_carrier;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  if (cfg_.scan_profiles) {
    // One range scan over the order's whole line block [ol 0, ol 16)
    // replaces the per-line point reads; the sum of OL_AMOUNT lands in
    // the first line slot.
    txn::fragment f;
    f.table = order_line_;
    f.key = order_line_key(w, d, o, 0);
    f.key_hi = order_line_key(w, d, o, kMaxOrderLines + 1);
    f.part = home;
    f.kind = txn::op_kind::scan;
    f.logic = os_line_scan;
    f.output_slot = slot::os_line0;
    f.idx = idx++;
    t->frags.push_back(f);
    return t;
  }
  for (std::uint32_t l = 0; l < meta.ol_cnt; ++l) {
    txn::fragment f;
    f.table = order_line_;
    f.key = order_line_key(w, d, o, l + 1);
    f.part = home;
    f.kind = txn::op_kind::read;
    f.logic = os_order_line;
    f.aux = l;
    f.output_slot = static_cast<std::uint16_t>(slot::os_line0 + l);
    f.idx = idx++;
    t->frags.push_back(f);
  }
  return t;
}

std::unique_ptr<txn::txn_desc> tpcc::make_delivery(common::rng& r) {
  const std::uint64_t w = r.next_below(cfg_.warehouses);
  const std::uint64_t d = r.next_below(kDistrictsPerWarehouse);
  district_state& ds = district_of(w, d);
  if (ds.delivery_ptr >= ds.next_o_id) {
    return make_payment(r);  // nothing to deliver in this district
  }
  const std::uint64_t o = ds.delivery_ptr++;
  const order_meta& meta = ds.orders[o];
  const part_id_t home = part_of_warehouse(w);

  auto t = std::make_unique<txn::txn_desc>();
  t->proc = &delivery_proc_;
  t->args = {w,          d,
             o,          meta.customer,
             meta.ol_cnt, 1 + r.next_below(10),
             date_counter_++};

  std::uint16_t idx = 0;
  {
    txn::fragment f;
    f.table = new_order_;
    f.key = order_key(w, d, o);
    f.part = home;
    f.kind = txn::op_kind::erase;
    f.logic = dl_new_order_erase;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = orders_;
    f.key = order_key(w, d, o);
    f.part = home;
    f.kind = txn::op_kind::update;
    f.logic = dl_order_update;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  std::uint64_t line_mask = 0;
  for (std::uint32_t l = 0; l < meta.ol_cnt; ++l) {
    txn::fragment f;
    f.table = order_line_;
    f.key = order_line_key(w, d, o, l + 1);
    f.part = home;
    f.kind = txn::op_kind::update;
    f.logic = dl_order_line_update;
    f.aux = l;
    f.output_slot = static_cast<std::uint16_t>(l);
    f.idx = idx++;
    t->frags.push_back(f);
    line_mask |= 1ull << l;
  }
  {
    txn::fragment f;
    f.table = customer_;
    f.key = customer_key(w, d, meta.customer);
    f.part = home;
    f.kind = txn::op_kind::update;
    f.logic = dl_customer_update;
    f.input_mask = line_mask;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  return t;
}

std::unique_ptr<txn::txn_desc> tpcc::make_stock_level(common::rng& r) {
  auto t = std::make_unique<txn::txn_desc>();
  t->proc = &stock_level_proc_;

  const std::uint64_t w = r.next_below(cfg_.warehouses);
  const std::uint64_t d = r.next_below(kDistrictsPerWarehouse);
  district_state& ds = district_of(w, d);
  const std::uint64_t o = ds.next_o_id - 1;  // most recent order
  const order_meta& meta = ds.orders[o];
  const part_id_t home = part_of_warehouse(w);
  const std::uint64_t threshold = r.next_in(10, 20);

  t->args = {w, d, threshold, meta.ol_cnt};

  std::uint16_t idx = 0;
  std::uint64_t qty_mask = 0;
  for (std::uint32_t l = 0; l < meta.ol_cnt; ++l) {
    txn::fragment f;
    f.table = stock_;
    f.key = stock_key(w, meta.items[l]);
    f.part = home;
    f.kind = txn::op_kind::read;
    f.logic = sl_stock_read;
    f.aux = l;
    f.output_slot = static_cast<std::uint16_t>(l);
    f.idx = idx++;
    t->frags.push_back(f);
    qty_mask |= 1ull << l;
  }
  if (cfg_.scan_profiles) {
    // The spec's "last 20 orders" join opens with a range read: scan the
    // order-line key range covering the district's 20 most recent orders
    // (contiguous by key packing) and report the line count.
    const std::uint64_t o_lo =
        ds.next_o_id > 20 ? ds.next_o_id - 20 : 0;
    txn::fragment f;
    f.table = order_line_;
    f.key = order_line_key(w, d, o_lo, 0);
    f.key_hi = order_line_key(w, d, ds.next_o_id, 0);
    f.part = home;
    f.kind = txn::op_kind::scan;
    f.logic = sl_line_scan;
    f.output_slot = slot::sl_lines;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  {
    txn::fragment f;
    f.table = district_;
    f.key = district_key(w, d);
    f.part = home;
    f.kind = txn::op_kind::read;
    f.logic = sl_aggregate;
    f.input_mask = qty_mask;
    f.output_slot = slot::sl_count;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  return t;
}

bool tpcc::check_consistency(const storage::database& db,
                             std::string* why) const {
  const auto& od = db.at(orders_);
  const auto& di = db.at(district_);
  std::vector<std::uint64_t> max_o(dstate_.size(), 0);
  od.for_each_live([&](key_t k, storage::row_id_t) {
    const std::uint64_t district = k / kOrderSpace;
    const std::uint64_t o = k % kOrderSpace;
    if (district < max_o.size()) max_o[district] = std::max(max_o[district], o);
  });
  for (std::size_t district = 0; district < dstate_.size(); ++district) {
    const auto rid = di.lookup(
        district, part_of_warehouse(district / kDistrictsPerWarehouse));
    if (rid == storage::kNoRow) continue;
    const std::uint64_t next =
        storage::read_u64(di.row(rid), col::d_next_o_id);
    if (next != max_o[district] + 1) {
      if (why != nullptr) {
        *why = "district " + std::to_string(district) + ": D_NEXT_O_ID=" +
               std::to_string(next) + " but max order id=" +
               std::to_string(max_o[district]);
      }
      return false;
    }
  }
  return true;
}

double tpcc::money_sum(const storage::database& db) const {
  const auto& cu = db.at(customer_);
  double sum = 0.0;
  cu.for_each_live([&](key_t, storage::row_id_t rid) {
    const auto row = cu.row(rid);
    sum += storage::read_f64(row, col::c_balance) +
           storage::read_f64(row, col::c_ytd_payment);
  });
  return sum;
}

}  // namespace quecc::wl
