#include "workload/ycsb.hpp"

#include <algorithm>

namespace quecc::wl {

namespace {

constexpr std::size_t kFields = 10;  ///< FIELD0..FIELD9, 8 bytes each

storage::schema make_schema() {
  std::vector<storage::column> cols;
  cols.reserve(kFields);
  for (std::size_t i = 0; i < kFields; ++i) {
    cols.push_back({"FIELD" + std::to_string(i), storage::col_type::u64, 8});
  }
  return storage::schema(std::move(cols));
}

txn::frag_status run_fragment(const txn::fragment& f, txn::txn_desc& t,
                              txn::frag_host& h) {
  switch (static_cast<ycsb::logic>(f.logic)) {
    // Law: fragment logic produces its declared output slot on every
    // non-abort path (even for missing rows), or downstream consumers
    // would wait forever.
    case ycsb::op_read: {
      const auto row = h.read_row(f, t);
      t.produce(f.output_slot, row.empty() ? 0 : storage::read_u64(row, 0));
      return txn::frag_status::ok;
    }
    case ycsb::op_write: {
      auto row = h.update_row(f, t);
      if (!row.empty()) storage::write_u64(row, 0, f.aux);
      if (f.output_slot != txn::kNoSlot) t.produce(f.output_slot, f.aux);
      return txn::frag_status::ok;
    }
    case ycsb::op_rmw: {
      auto row = h.update_row(f, t);
      const std::uint64_t v =
          (row.empty() ? 0 : storage::read_u64(row, 0)) + f.aux;
      if (!row.empty()) storage::write_u64(row, 0, v);
      if (f.output_slot != txn::kNoSlot) t.produce(f.output_slot, v);
      return txn::frag_status::ok;
    }
    case ycsb::op_dep_write: {
      auto row = h.update_row(f, t);
      const std::uint16_t in =
          static_cast<std::uint16_t>(__builtin_ctzll(f.input_mask));
      const std::uint64_t v = t.slot_value(in) + f.aux;
      if (!row.empty()) storage::write_u64(row, 0, v);
      if (f.output_slot != txn::kNoSlot) t.produce(f.output_slot, v);
      return txn::frag_status::ok;
    }
    case ycsb::op_abort_check: {
      // The abort decision is deterministic (carried in aux by the
      // generator) but still routed through a read so the fragment
      // participates in conflict/speculation dependency tracking.
      const auto row = h.read_row(f, t);
      (void)row;
      return f.aux != 0 ? txn::frag_status::abort : txn::frag_status::ok;
    }
    case ycsb::op_scan_sum: {
      // Sums FIELD0 over [key, key_hi). The partial is a u64 and addition
      // commutes, so the kAllParts contract holds: the planner arms the
      // output slot with the partition count and each per-partition
      // invocation contributes through produce_partial; serial hosts visit
      // every shard in one call and plain-produce the full sum.
      struct acc {
        std::uint64_t sum = 0;
      } a;
      h.scan_rows(
          f, t,
          [](void* raw, key_t, std::span<const std::byte> row) {
            static_cast<acc*>(raw)->sum += storage::read_u64(row, 0);
            return true;
          },
          &a);
      t.produce_partial(f.output_slot, a.sum);
      return txn::frag_status::ok;
    }
  }
  return txn::frag_status::ok;
}

}  // namespace

ycsb::ycsb(ycsb_config cfg)
    : cfg_(cfg),
      zipf_(cfg.table_size, cfg.zipf_theta),
      proc_("ycsb", &run_fragment,
            static_cast<std::uint16_t>(cfg.ops_per_txn + 1)) {}

void ycsb::load(storage::database& db) {
  // One arena per partition; key k's home partition is k % partitions, so
  // the even capacity split covers every shard's key share. Scans need
  // the ordered backend; otherwise the configured one applies.
  const storage::index_kind idx = cfg_.scan_ratio > 0
                                      ? storage::index_kind::ordered
                                      : cfg_.index;
  auto& tab = db.create_table("usertable", make_schema().with_index(idx),
                              cfg_.table_size + 16, cfg_.partitions);
  table_ = tab.id();
  std::vector<std::byte> row(tab.layout().row_size());
  for (std::uint64_t k = 0; k < cfg_.table_size; ++k) {
    // FIELD0 starts at 0 (tests sum it); other fields get key-derived
    // filler so rows are distinguishable in state hashes.
    std::span<std::byte> s(row);
    storage::write_u64(s, 0, 0);
    for (std::size_t fld = 1; fld < kFields; ++fld) {
      storage::write_u64(s, fld * 8, k * 1000 + fld);
    }
    tab.insert(k, row, static_cast<part_id_t>(k % cfg_.partitions));
  }
}

std::unique_ptr<txn::txn_desc> ycsb::make_txn(common::rng& r) {
  auto t = std::make_unique<txn::txn_desc>();
  t->proc = &proc_;

  // --- YCSB-E style scan transaction --------------------------------------
  if (cfg_.scan_ratio > 0 && r.next_bool(cfg_.scan_ratio)) {
    const std::uint64_t len =
        std::min<std::uint64_t>(cfg_.scan_len, cfg_.table_size);
    const key_t lo =
        std::min<key_t>(zipf_.next(r), cfg_.table_size - len);
    txn::fragment f;
    f.table = table_;
    f.key = lo;
    f.key_hi = lo + len;
    f.part = txn::kAllParts;  // contiguous keys stripe across partitions
    f.kind = txn::op_kind::scan;
    f.logic = op_scan_sum;
    f.output_slot = 0;
    f.idx = 0;
    t->frags.push_back(f);
    return t;
  }

  // --- choose distinct keys -----------------------------------------------
  const bool multi_part =
      cfg_.multi_partition_ratio > 0 && r.next_bool(cfg_.multi_partition_ratio);
  const auto home =
      static_cast<part_id_t>(r.next_below(cfg_.partitions));
  std::vector<key_t> keys;
  keys.reserve(cfg_.ops_per_txn);
  while (keys.size() < cfg_.ops_per_txn) {
    key_t k = zipf_.next(r);
    if (multi_part) {
      // Spread ops across mp_parts partitions round-robin.
      const auto target = static_cast<part_id_t>(
          (home + keys.size() % cfg_.mp_parts) % cfg_.partitions);
      k = k - (k % cfg_.partitions) + target;
      if (k >= cfg_.table_size) k %= cfg_.table_size;
    } else {
      k = k - (k % cfg_.partitions) + home;
      if (k >= cfg_.table_size) k %= cfg_.table_size;
    }
    if (std::find(keys.begin(), keys.end(), k) == keys.end()) {
      keys.push_back(k);
    }
  }

  const bool doomed = cfg_.abort_ratio > 0 && r.next_bool(cfg_.abort_ratio);
  const std::uint32_t abort_pos = cfg_.ops_per_txn / 2;

  // --- build fragments -----------------------------------------------------
  std::uint16_t idx = 0;
  if (doomed || cfg_.abort_ratio > 0) {
    // Abortable fragments precede updates (conservative-liveness rule), so
    // the check reads the key the middle op would have touched.
    txn::fragment f;
    f.table = table_;
    f.key = keys[abort_pos];
    f.part = static_cast<part_id_t>(f.key % cfg_.partitions);
    f.kind = txn::op_kind::read;
    f.abortable = true;
    f.logic = op_abort_check;
    f.aux = doomed ? 1 : 0;
    f.idx = idx++;
    t->frags.push_back(f);
  }
  for (std::uint32_t i = 0; i < cfg_.ops_per_txn; ++i) {
    txn::fragment f;
    f.table = table_;
    f.key = keys[i];
    f.part = static_cast<part_id_t>(f.key % cfg_.partitions);
    f.idx = idx++;
    const bool is_read = r.next_bool(cfg_.read_ratio);
    if (is_read) {
      f.kind = txn::op_kind::read;
      f.logic = op_read;
      f.output_slot = static_cast<std::uint16_t>(i);
    } else if (cfg_.dependent_ops && i > 0) {
      f.kind = txn::op_kind::update;
      f.logic = op_dep_write;
      f.input_mask = 1ull << (i - 1);
      f.output_slot = static_cast<std::uint16_t>(i);
      f.aux = r.next_below(100);
    } else if (cfg_.rmw) {
      f.kind = txn::op_kind::update;
      f.logic = op_rmw;
      f.output_slot = static_cast<std::uint16_t>(i);
      f.aux = r.next_below(100);
    } else {
      f.kind = txn::op_kind::update;  // blind write
      f.logic = op_write;
      f.aux = r.next_below(1000);
    }
    // dependent_ops chains need every op to produce its slot, reads and
    // writes alike; plain mixes only produce for reads/rmws (above).
    if (cfg_.dependent_ops && f.output_slot == txn::kNoSlot) {
      f.output_slot = static_cast<std::uint16_t>(i);
    }
    t->frags.push_back(f);
  }
  return t;
}

std::uint64_t ycsb::field0_sum(const storage::database& db) const {
  const auto& tab = db.at(table_);
  std::uint64_t sum = 0;
  tab.for_each_live([&](key_t, storage::row_id_t rid) {
    sum += storage::read_u64(tab.row(rid), 0);
  });
  return sum;
}

}  // namespace quecc::wl
