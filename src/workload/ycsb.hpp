// YCSB workload (Cooper et al., SoCC'10) — the paper's micro-benchmark.
//
// One "usertable" of fixed-size rows; transactions perform `ops_per_txn`
// point operations on zipf-distributed keys. Knobs map directly onto the
// paper's experimental axes:
//   * zipf_theta            — contention (Section 2.1's high-contention axis)
//   * multi_partition_ratio — Table 2 row 1's multi-partition workload
//   * read_ratio            — read/write mix
//   * dependent_ops         — chains data dependencies between a txn's ops
//                             (exercises intra-transaction parallelism)
//   * abort_ratio           — fraction of txns carrying an abortable check
//                             that fires (exercises speculation recovery)
#pragma once

#include <vector>

#include "common/config.hpp"
#include "common/zipf.hpp"
#include "storage/index_backend.hpp"
#include "txn/procedure.hpp"
#include "workload/workload.hpp"

namespace quecc::wl {

struct ycsb_config {
  std::uint64_t table_size = 1 << 18;
  std::uint32_t ops_per_txn = 10;
  double read_ratio = 0.5;
  double zipf_theta = 0.0;
  part_id_t partitions = 4;
  /// Fraction of transactions whose keys span `mp_parts` partitions;
  /// the rest stay within one home partition (H-Store's sweet spot).
  double multi_partition_ratio = 0.0;
  std::uint32_t mp_parts = 2;
  /// Writes become read-modify-writes when true (blind writes otherwise).
  bool rmw = true;
  /// Op i's written value depends on op i-1's read (data dependencies).
  bool dependent_ops = false;
  /// Fraction of transactions that deterministically abort mid-way.
  double abort_ratio = 0.0;
  /// Fraction of transactions replaced by a YCSB-E style range scan: one
  /// fragment summing FIELD0 over [lo, lo + scan_len). Contiguous keys
  /// stripe across every partition (home = k % partitions), so scans plan
  /// as kAllParts fan-out fragments whose per-partition partials sum
  /// commutatively. Forces the ordered index backend.
  double scan_ratio = 0.0;
  std::uint32_t scan_len = 64;  ///< keys per scan
  /// Index backend for the usertable (ordered is forced when
  /// scan_ratio > 0; point-only runs hash identically under either).
  storage::index_kind index = storage::index_kind::hash;
};

class ycsb final : public workload {
 public:
  explicit ycsb(ycsb_config cfg);

  const char* name() const noexcept override { return "ycsb"; }
  void load(storage::database& db) override;
  std::unique_ptr<txn::txn_desc> make_txn(common::rng& r) override;
  const txn::procedure* find_procedure(
      const std::string& name) const override {
    return name == proc_.name() ? &proc_ : nullptr;
  }

  const ycsb_config& cfg() const noexcept { return cfg_; }

  /// Sum of every row's FIELD0 — a cheap workload-level invariant used by
  /// tests (RMW deltas are generated to cancel out when requested).
  std::uint64_t field0_sum(const storage::database& db) const;

  // Fragment logic selectors (public for tests).
  enum logic : std::uint16_t {
    op_read = 0,       ///< read FIELD0 -> output slot
    op_write = 1,      ///< FIELD0 = aux
    op_rmw = 2,        ///< FIELD0 += aux -> output slot
    op_dep_write = 3,  ///< FIELD0 = input-slot value + aux -> output slot
    op_abort_check = 4, ///< abortable read: aborts when aux != 0
    op_scan_sum = 5    ///< sum FIELD0 over [key, key_hi) -> output slot
  };

 private:
  ycsb_config cfg_;
  common::zipf_generator zipf_;
  txn::procedure proc_;
  table_id_t table_ = 0;
};

}  // namespace quecc::wl
