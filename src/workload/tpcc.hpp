// TPC-C workload — the paper's macro-benchmark (Table 2 row 3 runs it at
// one warehouse, the classic high-contention configuration).
//
// Full nine-table schema with five transaction profiles compiled into the
// fragment model:
//   NewOrder    — abortable item lookups (1% invalid item = deterministic
//                 user abort), district order-id assignment, stock updates,
//                 order / new-order / order-line inserts with data
//                 dependencies (price, taxes, discount -> amount).
//   Payment     — warehouse/district YTD updates, customer balance update
//                 (15% remote warehouse -> multi-partition), history insert.
//   OrderStatus — read-only customer + order + order-line reads.
//   Delivery    — new-order consumption (erase), carrier update, order-line
//                 delivery dates feeding the customer balance via data
//                 dependencies. One district per transaction (documented
//                 simplification, DESIGN.md).
//   StockLevel  — read-only stock scans of the most recent order's items
//                 with an aggregating fragment.
//
// Documented deviations from the spec (all standard in research test-beds):
// payment by customer-id only (no last-name index), delivery handles one
// district per transaction, initial orders per district configurable
// (default 300), dates are deterministic counters.
//
// Deterministic order-id assignment: the generator pre-assigns o_id in
// generation order, skipping doomed NewOrders (their abort is decided at
// generation time by planting an invalid item). This is the deterministic-
// database prerequisite — write sets must be computable upfront — and it is
// exactly how the execution in sequence order plays out, which the
// equivalence tests verify end to end.
#pragma once

#include <cstdint>
#include <vector>

#include "storage/index_backend.hpp"
#include "txn/procedure.hpp"
#include "workload/workload.hpp"

namespace quecc::wl {

// --- dimensional constants -------------------------------------------------
inline constexpr std::uint32_t kDistrictsPerWarehouse = 10;
inline constexpr std::uint32_t kCustomersPerDistrict = 3000;
inline constexpr std::uint32_t kItems = 100000;
inline constexpr std::uint32_t kMaxOrderLines = 15;
inline constexpr std::uint64_t kInvalidItem = kItems + 7;  ///< plants aborts
inline constexpr std::uint64_t kOrderSpace = 1ull << 24;

// --- key packing (documented, tested) ---------------------------------------
constexpr key_t warehouse_key(std::uint64_t w) noexcept { return w; }
constexpr key_t district_key(std::uint64_t w, std::uint64_t d) noexcept {
  return w * kDistrictsPerWarehouse + d;
}
constexpr key_t customer_key(std::uint64_t w, std::uint64_t d,
                             std::uint64_t c) noexcept {
  return district_key(w, d) * kCustomersPerDistrict + c;
}
constexpr key_t item_key(std::uint64_t i) noexcept { return i; }
constexpr key_t stock_key(std::uint64_t w, std::uint64_t i) noexcept {
  return w * (kItems + 16) + i;
}
constexpr key_t order_key(std::uint64_t w, std::uint64_t d,
                          std::uint64_t o) noexcept {
  return district_key(w, d) * kOrderSpace + o;
}
constexpr key_t order_line_key(std::uint64_t w, std::uint64_t d,
                               std::uint64_t o, std::uint64_t ol) noexcept {
  return order_key(w, d, o) * (kMaxOrderLines + 1) + ol;
}

struct tpcc_config {
  std::uint32_t warehouses = 1;
  part_id_t partitions = 4;  ///< partition of warehouse w = w % partitions
  std::uint32_t initial_orders_per_district = 300;
  /// Extra order slots per district reserved for benchmark inserts.
  std::uint32_t order_headroom_per_district = 8000;

  // Transaction mix (normalized internally).
  double new_order_ratio = 0.45;
  double payment_ratio = 0.43;
  double order_status_ratio = 0.04;
  double delivery_ratio = 0.04;
  double stock_level_ratio = 0.04;

  double remote_payment_ratio = 0.15;  ///< customer in a remote warehouse
  double remote_stock_ratio = 0.01;    ///< item supplied by remote warehouse
  double invalid_item_ratio = 0.01;    ///< doomed NewOrders (user abort)

  /// Scan-based profiles (the full 5-txn mix as the spec phrases it):
  /// OrderStatus reads the order's lines with one ordered range scan
  /// instead of per-line point reads, and StockLevel scans the last 20
  /// orders' order-line key range. Forces ORDER-LINE onto the ordered
  /// index backend regardless of `index`.
  bool scan_profiles = false;
  /// Index backend for every table (ORDER-LINE is forced to ordered when
  /// scan_profiles is set). Point-only runs produce identical state
  /// hashes under either backend.
  storage::index_kind index = storage::index_kind::hash;
};

class tpcc final : public workload {
 public:
  explicit tpcc(tpcc_config cfg);

  const char* name() const noexcept override { return "tpcc"; }
  void load(storage::database& db) override;
  std::unique_ptr<txn::txn_desc> make_txn(common::rng& r) override;
  const txn::procedure* find_procedure(
      const std::string& name) const override {
    for (const txn::procedure* p :
         {&new_order_proc_, &payment_proc_, &order_status_proc_,
          &delivery_proc_, &stock_level_proc_}) {
      if (p->name() == name) return p;
    }
    return nullptr;
  }

  const tpcc_config& cfg() const noexcept { return cfg_; }

  /// TPC-C consistency condition 1 (adapted): for every district,
  /// D_NEXT_O_ID - 1 equals the maximum order id present in ORDERS and
  /// NEW-ORDER. Returns false (and the offending district via *bad) when
  /// violated. Used by the integration tests.
  bool check_consistency(const storage::database& db,
                         std::string* why = nullptr) const;

  /// Sum of all customer balances + YTD payments (money conservation
  /// check used by tests; payments move money, they do not create it).
  double money_sum(const storage::database& db) const;

  // Table ids (valid after load()).
  table_id_t t_warehouse() const noexcept { return warehouse_; }
  table_id_t t_district() const noexcept { return district_; }
  table_id_t t_customer() const noexcept { return customer_; }
  table_id_t t_history() const noexcept { return history_; }
  table_id_t t_new_order() const noexcept { return new_order_; }
  table_id_t t_orders() const noexcept { return orders_; }
  table_id_t t_order_line() const noexcept { return order_line_; }
  table_id_t t_item() const noexcept { return item_; }
  table_id_t t_stock() const noexcept { return stock_; }

 private:
  struct order_meta {
    std::uint32_t customer = 0;
    std::uint8_t ol_cnt = 0;
    std::uint32_t items[kMaxOrderLines] = {};
  };
  struct district_state {
    std::uint64_t next_o_id = 0;
    std::uint64_t delivery_ptr = 0;
    std::vector<order_meta> orders;  ///< indexed by o_id
  };

  std::unique_ptr<txn::txn_desc> make_new_order(common::rng& r);
  std::unique_ptr<txn::txn_desc> make_payment(common::rng& r);
  std::unique_ptr<txn::txn_desc> make_order_status(common::rng& r);
  std::unique_ptr<txn::txn_desc> make_delivery(common::rng& r);
  std::unique_ptr<txn::txn_desc> make_stock_level(common::rng& r);

  part_id_t part_of_warehouse(std::uint64_t w) const noexcept {
    return static_cast<part_id_t>(w % cfg_.partitions);
  }
  district_state& district_of(std::uint64_t w, std::uint64_t d) {
    return dstate_[w * kDistrictsPerWarehouse + d];
  }

  tpcc_config cfg_;
  txn::procedure new_order_proc_;
  txn::procedure payment_proc_;
  txn::procedure order_status_proc_;
  txn::procedure delivery_proc_;
  txn::procedure stock_level_proc_;

  std::vector<district_state> dstate_;
  std::uint64_t history_counter_ = 0;
  std::uint64_t date_counter_ = 1;

  table_id_t warehouse_ = 0, district_ = 0, customer_ = 0, history_ = 0,
             new_order_ = 0, orders_ = 0, order_line_ = 0, item_ = 0,
             stock_ = 0;
};

}  // namespace quecc::wl
