// Benchmark/test runner: drives an engine over generated batches and
// aggregates the paper's key metrics (throughput and latency, Section 4).
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/stats.hpp"
#include "protocols/iface.hpp"
#include "workload/workload.hpp"

namespace quecc::harness {

struct run_result {
  common::run_metrics metrics;
  std::uint64_t final_state_hash = 0;
};

/// Generate `batches` batches of `batch_size` transactions from `w` (using
/// `r`, which advances deterministically) and run them through `eng`
/// against `db`. Returns aggregated metrics plus the database state hash.
run_result run_workload(proto::engine& eng, wl::workload& w,
                        storage::database& db, common::rng& r,
                        std::uint32_t batches, std::uint32_t batch_size);

}  // namespace quecc::harness
