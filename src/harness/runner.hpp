// Benchmark/test runner: drives an engine over a generated transaction
// stream and aggregates the paper's key metrics (throughput and latency,
// Section 4).
//
// Two arrival modes:
//   * closed_loop — form `batches` batches of `batch_size` and feed them
//     through the engine's pipelined submit/drain API back to back (the
//     paper's experiment shape; used by the property tests, which need
//     exact batch boundaries). A pipelined engine keeps pipeline_depth
//     batches in flight; depth-1 engines run in the old lockstep.
//   * open_loop   — a Poisson arrival process at `offered_load_tps`
//     submits transactions through a proto::session; batches form by
//     size-or-deadline and latency is measured from *submit time*, so
//     queueing delay — invisible to a closed loop — shows up in
//     run_metrics::queue_latency / e2e_latency.
#pragma once

#include <cstdint>

#include "common/config.hpp"
#include "common/stats.hpp"
#include "protocols/iface.hpp"
#include "workload/workload.hpp"

namespace quecc::harness {

enum class arrival_mode : std::uint8_t {
  closed_loop,  ///< pre-formed batches, no queueing (today's behavior)
  open_loop,    ///< Poisson arrivals via a proto::session
};

/// Options for run_workload. The first two members keep the old positional
/// (batches, batch_size) brace-init working for closed-loop callers.
struct run_options {
  std::uint32_t batches = 4;       ///< closed: batch count; open: total
  std::uint32_t batch_size = 1024; ///<   txns = batches * batch_size
  arrival_mode mode = arrival_mode::closed_loop;
  std::uint64_t seed = 42;         ///< workload-generation rng seed

  // --- open-loop only (admission defaults come from common::config so
  // there is a single source of truth for the knobs) -----------------------
  double offered_load_tps = 100'000.0;  ///< Poisson arrival rate
  std::uint32_t batch_deadline_micros =
      common::config{}.batch_deadline_micros;  ///< batch former timer
  std::uint32_t admission_capacity =
      common::config{}.admission_capacity;  ///< bounded admission queue

  // --- durability ---------------------------------------------------------
  /// Treat the run as durable: the closed loop waits on
  /// engine::sync_durable() after every batch (per-batch durable ack, the
  /// fsync wait charged to elapsed time) and both loops sync before the
  /// final state hash is taken. The engine must have been built with
  /// config::durable; against an in-memory engine this is a no-op. The
  /// open-loop path gets per-batch durable acks from proto::session
  /// regardless of this flag.
  bool durability = false;

  std::uint64_t total_txns() const noexcept {
    return static_cast<std::uint64_t>(batches) * batch_size;
  }
};

struct run_result {
  common::run_metrics metrics;
  std::uint64_t final_state_hash = 0;
  /// Open-loop: the offered arrival rate, for achieved-vs-offered reports
  /// (metrics.throughput() is the achieved rate over the run's wall time).
  double offered_load_tps = 0.0;
};

/// Drive `eng` over transactions generated from `w` (deterministically
/// from `opts.seed`) against `db` according to `opts`. Returns aggregated
/// metrics plus the database state hash.
run_result run_workload(proto::engine& eng, wl::workload& w,
                        storage::database& db, const run_options& opts);

}  // namespace quecc::harness
