// Result-table formatting: benches print paper-style rows (protocol,
// throughput, speedup) so EXPERIMENTS.md can quote them directly.
#pragma once

#include <string>
#include <vector>

#include "common/stats.hpp"
#include "common/types.hpp"

namespace quecc::obs {
class json_writer;
}  // namespace quecc::obs

namespace quecc::harness {

/// Fixed-width text table. Collect rows, then str()/print().
class table_printer {
 public:
  explicit table_printer(std::vector<std::string> headers);

  void row(std::vector<std::string> cells);
  std::string str() const;
  void print() const;  ///< to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1234567" -> "1.23M txn/s"-style human formatting.
std::string format_rate(double per_second);

/// Fixed-precision helper ("12.3x", "0.98x").
std::string format_factor(double factor);

/// Pipeline-stage occupancy one-liner, e.g.
/// "plan 62% | exec 48% | overlap 31% of exec" — busy fractions are each
/// stage's cumulative thread-busy time normalized by stage width *
/// elapsed wall time, and overlap is the plan-during-exec wall time as a
/// fraction of cumulative executor busy time. This is the truthful way to
/// present per-stage load at pipeline_depth >= 2, where per-batch phase
/// wall times overlap across batches and no longer sum to the run time.
std::string format_pipeline(const common::run_metrics& m,
                            worker_id_t planner_threads,
                            worker_id_t executor_threads);

/// Serialize one run's metrics as a JSON object value (throughput, commit
/// and abort counts, stage busy times, and the three latency histograms in
/// the obs::write_histogram_json shape). The caller owns the surrounding
/// document: call inside an object after w.key(...), or at the root. The
/// machine-readable twin of run_metrics::summary() — `queccctl
/// --metrics-json` and the bench BENCH_<name>.json reports both embed it.
void write_run_metrics_json(obs::json_writer& w, const common::run_metrics& m);

}  // namespace quecc::harness
