// Result-table formatting: benches print paper-style rows (protocol,
// throughput, speedup) so EXPERIMENTS.md can quote them directly.
#pragma once

#include <string>
#include <vector>

namespace quecc::harness {

/// Fixed-width text table. Collect rows, then str()/print().
class table_printer {
 public:
  explicit table_printer(std::vector<std::string> headers);

  void row(std::vector<std::string> cells);
  std::string str() const;
  void print() const;  ///< to stdout

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// "1234567" -> "1.23M txn/s"-style human formatting.
std::string format_rate(double per_second);

/// Fixed-precision helper ("12.3x", "0.98x").
std::string format_factor(double factor);

}  // namespace quecc::harness
