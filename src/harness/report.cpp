#include "harness/report.hpp"

#include <cstdio>
#include <iomanip>
#include <sstream>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace quecc::harness {

table_printer::table_printer(std::vector<std::string> headers)
    : headers_(std::move(headers)) {}

void table_printer::row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

std::string table_printer::str() const {
  std::vector<std::size_t> widths(headers_.size());
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    widths[c] = headers_[c].size();
    for (const auto& r : rows_) widths[c] = std::max(widths[c], r[c].size());
  }
  std::ostringstream os;
  auto emit = [&](const std::vector<std::string>& cells) {
    os << "|";
    for (std::size_t c = 0; c < cells.size(); ++c) {
      os << " " << std::left << std::setw(static_cast<int>(widths[c]))
         << cells[c] << " |";
    }
    os << "\n";
  };
  emit(headers_);
  os << "|";
  for (const auto w : widths) os << std::string(w + 2, '-') << "|";
  os << "\n";
  for (const auto& r : rows_) emit(r);
  return os.str();
}

void table_printer::print() const { std::fputs(str().c_str(), stdout); }

std::string format_rate(double per_second) {
  std::ostringstream os;
  os << std::fixed;
  if (per_second >= 1e6) {
    os << std::setprecision(2) << per_second / 1e6 << "M txn/s";
  } else if (per_second >= 1e3) {
    os << std::setprecision(1) << per_second / 1e3 << "K txn/s";
  } else {
    os << std::setprecision(0) << per_second << " txn/s";
  }
  return os.str();
}

std::string format_factor(double factor) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(factor >= 10 ? 0 : 2) << factor
     << "x";
  return os.str();
}

std::string format_pipeline(const common::run_metrics& m,
                            worker_id_t planner_threads,
                            worker_id_t executor_threads) {
  auto pct = [](double num, double den) {
    return den > 0 ? static_cast<int>(100.0 * num / den + 0.5) : 0;
  };
  std::ostringstream os;
  os << "plan "
     << pct(m.plan_busy_seconds, planner_threads * m.elapsed_seconds)
     << "% | exec "
     << pct(m.exec_busy_seconds, executor_threads * m.elapsed_seconds)
     << "% | epilogue " << pct(m.epilogue_busy_seconds, m.elapsed_seconds)
     << "% | overlap "
     << pct(m.pipeline_overlap_seconds, m.exec_busy_seconds)
     << "% of exec";
  return os.str();
}

void write_run_metrics_json(obs::json_writer& w,
                            const common::run_metrics& m) {
  w.begin_object();
  w.kv("throughput_tps", m.throughput());
  w.kv("committed", m.committed);
  w.kv("user_aborts", m.aborted);
  w.kv("cc_aborts", m.cc_aborts);
  w.kv("batches", m.batches);
  w.kv("messages", m.messages);
  w.kv("elapsed_seconds", m.elapsed_seconds);
  w.kv("plan_busy_seconds", m.plan_busy_seconds);
  w.kv("exec_busy_seconds", m.exec_busy_seconds);
  w.kv("epilogue_busy_seconds", m.epilogue_busy_seconds);
  w.kv("pipeline_overlap_seconds", m.pipeline_overlap_seconds);
  w.key("txn_latency");
  obs::write_histogram_json(w, m.txn_latency);
  w.key("queue_latency");
  obs::write_histogram_json(w, m.queue_latency);
  w.key("e2e_latency");
  obs::write_histogram_json(w, m.e2e_latency);
  w.end_object();
}

}  // namespace quecc::harness
