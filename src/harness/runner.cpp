#include "harness/runner.hpp"

namespace quecc::harness {

run_result run_workload(proto::engine& eng, wl::workload& w,
                        storage::database& db, common::rng& r,
                        std::uint32_t batches, std::uint32_t batch_size) {
  run_result out;
  for (std::uint32_t i = 0; i < batches; ++i) {
    txn::batch b = w.make_batch(r, batch_size, i);
    eng.run_batch(b, out.metrics);
  }
  out.final_state_hash = db.state_hash();
  return out;
}

}  // namespace quecc::harness
