#include "harness/runner.hpp"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <deque>
#include <memory>
#include <stdexcept>
#include <thread>
#include <vector>

#include "common/rng.hpp"
#include "obs/metrics.hpp"
#include "protocols/session.hpp"

namespace quecc::harness {

namespace {

run_result run_closed_loop(proto::engine& eng, wl::workload& w,
                           storage::database& db, const run_options& opts) {
  run_result out;
  common::rng r(opts.seed);
  // Drive the engine through its pipelined API, keeping up to its
  // pipeline depth batches in flight: batch i+1 is generated and planned
  // while batch i executes (generation overlaps engine work that is
  // already pending, so it hides inside the pipeline's busy windows).
  // Depth-1 engines (submit_batch == run_batch) follow the exact
  // sequence the old loop produced. Batches park in a deque — stable
  // addresses, at most `depth` alive — until their drain retires them.
  const std::uint32_t depth = std::max<std::uint32_t>(1, eng.pipeline_depth());
  std::deque<txn::batch> inflight;
  std::uint32_t next = 0;
  auto drain_one = [&] {
    eng.drain_batch();
    inflight.pop_front();
    if (opts.durability) {
      // Per-batch durable ack. While more batches are in flight the
      // engine's next drain-to-drain window already spans this wait; when
      // the pipeline just emptied (always, at depth 1) nothing else will
      // account for it, so charge it to elapsed time here — durable
      // closed-loop throughput must include the fsyncs it pays for.
      common::stopwatch sync_sw;
      eng.sync_durable();
      if (inflight.empty()) {
        out.metrics.elapsed_seconds += sync_sw.seconds();
      }
    }
  };
  while (next < opts.batches || !inflight.empty()) {
    if (next < opts.batches && inflight.size() < depth) {
      inflight.push_back(w.make_batch(r, opts.batch_size, next));
      ++next;
      eng.submit_batch(inflight.back(), out.metrics);
    } else {
      drain_one();
    }
  }
  out.final_state_hash = db.state_hash();
  return out;
}

run_result run_open_loop(proto::engine& eng, wl::workload& w,
                         storage::database& db, const run_options& opts) {
  if (!(opts.offered_load_tps > 0)) {
    throw std::invalid_argument("open_loop requires offered_load_tps > 0");
  }
  run_result out;
  out.offered_load_tps = opts.offered_load_tps;

  common::config scfg;  // only the admission knobs matter to a session
  scfg.batch_size = opts.batch_size;
  scfg.batch_deadline_micros = opts.batch_deadline_micros;
  scfg.admission_capacity = opts.admission_capacity;

  // Workload generation uses opts.seed exactly like the closed loop, so an
  // open-loop run submits the *same* transaction stream; a separate rng
  // drives the arrival process so the plans don't depend on the timing.
  common::rng r(opts.seed);
  common::rng arrivals(opts.seed ^ 0x9e3779b97f4a7c15ull);
  const double rate = opts.offered_load_tps;

  // Pre-generate the whole stream so generation cost never pollutes the
  // arrival schedule: slip charged to queueing below is then admission
  // backpressure (real system queueing), not generator overhead.
  const std::uint64_t total = opts.total_txns();
  std::vector<std::unique_ptr<txn::txn_desc>> stream;
  stream.reserve(total);
  for (std::uint64_t i = 0; i < total; ++i) stream.push_back(w.make_txn(r));

  common::stopwatch wall;
  std::uint64_t first_arrival = 0;
  std::uint64_t last_commit = 0;
  {
    proto::session s(eng, scfg);
    std::uint64_t next_arrival = common::now_nanos();
    for (auto& t : stream) {
      // Poisson process: exponential inter-arrival times.
      const double u = arrivals.next_double();
      next_arrival += static_cast<std::uint64_t>(
          -std::log1p(-u) / rate * 1e9);
      if (first_arrival == 0) first_arrival = next_arrival;
      const auto when = std::chrono::steady_clock::time_point(
          std::chrono::nanoseconds(next_arrival));
      std::this_thread::sleep_until(when);
      // Charge latency from the *scheduled* arrival: if admission blocks
      // (queue full) or the submitter slips, clients still experienced it.
      // Fire-and-forget: nobody waits per-txn, the histograms aggregate.
      if (!s.post(std::move(t), next_arrival)) {
        // Mirror the closed-loop path, where batch::validate() throws on a
        // malformed plan — never drop transactions silently.
        throw std::logic_error("open_loop: workload produced a plan the "
                               "session rejected");
      }
    }
    s.close();  // drain everything through the engine
    out.metrics = s.metrics();
    last_commit = s.last_commit_nanos();
  }
  // Achieved throughput is measured from the first scheduled arrival to
  // the last batch commit: the drain of work still in flight after the
  // final arrival counts (otherwise an over-capacity run would report
  // achieved ~= offered, since every commit lands but the clock stopped
  // at the last submit), while session startup, stream pre-generation,
  // and the pump join stay excluded.
  out.metrics.elapsed_seconds = last_commit > first_arrival
                                    ? (last_commit - first_arrival) / 1e9
                                    : wall.seconds();
  out.final_state_hash = db.state_hash();
  return out;
}

}  // namespace

run_result run_workload(proto::engine& eng, wl::workload& w,
                        storage::database& db, const run_options& opts) {
  run_result out = opts.mode == arrival_mode::open_loop
                       ? run_open_loop(eng, w, db, opts)
                       : run_closed_loop(eng, w, db, opts);
  // Per-engine outcome counters at the one choke point every protocol
  // passes through: name-spaced on engine::name() so a comparison run
  // (e.g. table2) reports each engine's commits/aborts separately.
  const std::string prefix = std::string("engine.") + eng.name();
  obs::counter(prefix + ".committed_total").inc(out.metrics.committed);
  obs::counter(prefix + ".user_aborts_total").inc(out.metrics.aborted);
  obs::counter(prefix + ".cc_aborts_total").inc(out.metrics.cc_aborts);
  obs::counter(prefix + ".batches_total").inc(out.metrics.batches);
  return out;
}

}  // namespace quecc::harness
