#include "common/zipf.hpp"

#include <cmath>

namespace quecc::common {

zipf_generator::zipf_generator(std::uint64_t n, double theta)
    : n_(n), theta_(theta) {
  // theta == 0 is handled by the same formulas (zeta(n, 0) == n), but we
  // keep the uniform fast path in next() for clarity and speed.
  zetan_ = zeta(n_, theta_);
  const double zeta2 = zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_theta_ = 1.0 + std::pow(0.5, theta_);
}

double zipf_generator::zeta(std::uint64_t n, double theta) noexcept {
  double sum = 0.0;
  for (std::uint64_t i = 1; i <= n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i), theta);
  }
  return sum;
}

std::uint64_t zipf_generator::next(rng& r) noexcept {
  if (theta_ == 0.0) {
    return r.next_below(n_);
  }
  const double u = r.next_double();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_theta_) return 1;
  const auto v = static_cast<std::uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return v >= n_ ? n_ - 1 : v;
}

}  // namespace quecc::common
