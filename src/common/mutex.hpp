// Annotated mutex + RAII lock for Clang Thread Safety Analysis.
//
// libstdc++'s std::mutex carries no capability attributes, so the analysis
// cannot see acquisitions made through it or through std::unique_lock.
// `common::mutex` is a zero-cost wrapper that is a real CAPABILITY, and
// `common::mutex_lock` the SCOPED_CAPABILITY guard; every GUARDED_BY
// member in the codebase hangs off one of these (or common::spinlock).
//
// Condition variables: use `common::cond_var` (std::condition_variable_any)
// with a mutex_lock directly — the guard is relockable (unlock()/lock()),
// which is exactly what a cv wait needs, and the analysis tracks the
// capability across the wait. Write waits as explicit loops,
//
//     common::mutex_lock lk(mu_);
//     while (!ready_) cv_.wait(lk);
//
// not with the predicate-lambda overloads: a lambda body is analyzed as a
// separate function that cannot see the caller's held capabilities, so a
// predicate touching GUARDED_BY members would be (falsely) flagged.
#pragma once

#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.hpp"

namespace quecc::common {

/// std::mutex as a Clang TSA capability. Satisfies Lockable.
class CAPABILITY("mutex") mutex {
 public:
  mutex() = default;
  mutex(const mutex&) = delete;
  mutex& operator=(const mutex&) = delete;

  void lock() ACQUIRE() { mu_.lock(); }
  bool try_lock() TRY_ACQUIRE(true) { return mu_.try_lock(); }
  void unlock() RELEASE() { mu_.unlock(); }

 private:
  std::mutex mu_;
};

/// Condition variable usable with common::mutex_lock (BasicLockable).
using cond_var = std::condition_variable_any;

/// RAII guard over common::mutex; relockable so condition-variable waits
/// and unlock-work-relock windows (e.g. the WAL flusher's fsync) stay
/// visible to the analysis.
class SCOPED_CAPABILITY mutex_lock {
 public:
  explicit mutex_lock(mutex& m) ACQUIRE(m) : mu_(m) { mu_.lock(); }
  ~mutex_lock() RELEASE() {
    if (held_) mu_.unlock();
  }

  mutex_lock(const mutex_lock&) = delete;
  mutex_lock& operator=(const mutex_lock&) = delete;

  void unlock() RELEASE() {
    held_ = false;
    mu_.unlock();
  }
  void lock() ACQUIRE() {
    mu_.lock();
    held_ = true;
  }

 private:
  mutex& mu_;
  bool held_ = true;
};

}  // namespace quecc::common
