// Zipfian key-distribution generator (YCSB-compatible).
//
// YCSB's hot-key skew is the contention knob for most experiments in the
// paper: theta = 0 is the "low-contention uniform" access pattern of
// Table 2 row 2, while theta in [0.6, 0.99] produces the "high-contention"
// regime of Section 2.1.
#pragma once

#include <cstdint>

#include "common/rng.hpp"

namespace quecc::common {

/// Draws values in [0, n) with probability proportional to 1/rank^theta,
/// using the Gray et al. rejection-free method popularized by YCSB.
///
/// theta == 0 degenerates to a uniform distribution. The generator is
/// deterministic given (n, theta, rng state).
class zipf_generator {
 public:
  zipf_generator(std::uint64_t n, double theta);

  /// Next zipf-distributed value in [0, n).
  std::uint64_t next(rng& r) noexcept;

  std::uint64_t domain() const noexcept { return n_; }
  double theta() const noexcept { return theta_; }

 private:
  static double zeta(std::uint64_t n, double theta) noexcept;

  std::uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_theta_;
};

}  // namespace quecc::common
