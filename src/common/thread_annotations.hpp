// Clang Thread Safety Analysis annotations (no-ops on other compilers).
//
// These macros turn the pipeline's locking discipline — which mutex guards
// which member, which functions must (or must not) hold which capability —
// into contracts the compiler checks on every build: the `quecc` library
// compiles with `-Wthread-safety -Werror=thread-safety` under Clang (see
// CMakeLists.txt), and tests/compile_fail/ asserts that violating an
// annotation really is a compile error. GCC builds see empty macros and
// identical code.
//
// Usage map (see the README "Concurrency invariants" section):
//   CAPABILITY("mutex")   on a lockable type (common::mutex, spinlock)
//   SCOPED_CAPABILITY     on RAII guards (mutex_lock, spin_guard)
//   GUARDED_BY(mu)        on data members only accessed with `mu` held
//   PT_GUARDED_BY(mu)     on pointers whose *pointee* needs `mu`
//   REQUIRES(mu)          caller must hold `mu` (private _locked helpers)
//   ACQUIRE/RELEASE(mu)   function acquires/releases `mu` itself
//   TRY_ACQUIRE(ok, mu)   try_lock-shaped acquisition
//   EXCLUDES(mu)          caller must NOT hold `mu` (self-deadlock guard)
//   NO_THREAD_SAFETY_ANALYSIS  last resort; prefer EXCLUDES or a
//                              release/acquire proof comment instead
//
// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html
#pragma once

#if defined(__clang__) && defined(__has_attribute)
#define QUECC_TSA_HAS(x) __has_attribute(x)
#else
#define QUECC_TSA_HAS(x) 0
#endif

#if QUECC_TSA_HAS(capability)
#define QUECC_TSA(x) __attribute__((x))
#else
#define QUECC_TSA(x)  // no-op off Clang
#endif

#define CAPABILITY(x) QUECC_TSA(capability(x))
#define SCOPED_CAPABILITY QUECC_TSA(scoped_lockable)

#define GUARDED_BY(x) QUECC_TSA(guarded_by(x))
#define PT_GUARDED_BY(x) QUECC_TSA(pt_guarded_by(x))

#define ACQUIRED_BEFORE(...) QUECC_TSA(acquired_before(__VA_ARGS__))
#define ACQUIRED_AFTER(...) QUECC_TSA(acquired_after(__VA_ARGS__))

#define REQUIRES(...) QUECC_TSA(requires_capability(__VA_ARGS__))
#define REQUIRES_SHARED(...) QUECC_TSA(requires_shared_capability(__VA_ARGS__))

#define ACQUIRE(...) QUECC_TSA(acquire_capability(__VA_ARGS__))
#define ACQUIRE_SHARED(...) QUECC_TSA(acquire_shared_capability(__VA_ARGS__))
#define RELEASE(...) QUECC_TSA(release_capability(__VA_ARGS__))
#define RELEASE_SHARED(...) QUECC_TSA(release_shared_capability(__VA_ARGS__))
#define RELEASE_GENERIC(...) QUECC_TSA(release_generic_capability(__VA_ARGS__))

#define TRY_ACQUIRE(...) QUECC_TSA(try_acquire_capability(__VA_ARGS__))
#define TRY_ACQUIRE_SHARED(...) \
  QUECC_TSA(try_acquire_shared_capability(__VA_ARGS__))

#define EXCLUDES(...) QUECC_TSA(locks_excluded(__VA_ARGS__))

#define ASSERT_CAPABILITY(x) QUECC_TSA(assert_capability(x))
#define ASSERT_SHARED_CAPABILITY(x) QUECC_TSA(assert_shared_capability(x))

#define RETURN_CAPABILITY(x) QUECC_TSA(lock_returned(x))

#define NO_THREAD_SAFETY_ANALYSIS QUECC_TSA(no_thread_safety_analysis)
