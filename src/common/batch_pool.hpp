// Persistent worker pool with batch-synchronous rounds.
//
// Engines keep one pool for their lifetime (CP.41: minimize thread
// creation/destruction) and trigger a "round" per batch: every worker runs
// the engine-supplied job once, then the pool quiesces. Barriers provide
// the happens-before edges between the coordinator's batch setup, the
// workers' execution, and the coordinator's epilogue.
#pragma once

#include <barrier>
#include <functional>
#include <thread>
#include <vector>

namespace quecc::common {

class batch_pool {
 public:
  using job_fn = std::function<void(unsigned worker)>;

  /// Spawns `workers` threads running `job` once per round. `name` prefixes
  /// thread names; `pin` requests best-effort CPU affinity.
  batch_pool(unsigned workers, job_fn job, const std::string& name,
             bool pin = false);
  ~batch_pool();

  batch_pool(const batch_pool&) = delete;
  batch_pool& operator=(const batch_pool&) = delete;

  /// Run one round: blocks until every worker finished the job.
  void run_round();

  /// Split-phase round, for engines whose coordinator works concurrently
  /// with the workers (e.g. Calvin's lock scheduler): begin_round()
  /// releases the workers and returns immediately; end_round() blocks
  /// until they finish.
  void begin_round();
  void end_round();

  unsigned size() const noexcept { return workers_; }

 private:
  void worker_main(unsigned w, const std::string& name, bool pin);

  unsigned workers_;
  job_fn job_;
  std::atomic<bool> stop_{false};
  std::barrier<> sync_;
  std::vector<std::thread> threads_;
};

}  // namespace quecc::common
