#include "common/config.hpp"

#include <sstream>
#include <stdexcept>

namespace quecc::common {

const char* to_string(exec_model m) noexcept {
  switch (m) {
    case exec_model::speculative:
      return "speculative";
    case exec_model::conservative:
      return "conservative";
  }
  return "?";
}

const char* to_string(isolation i) noexcept {
  switch (i) {
    case isolation::serializable:
      return "serializable";
    case isolation::read_committed:
      return "read-committed";
  }
  return "?";
}

const char* to_string(pin_policy p) noexcept {
  switch (p) {
    case pin_policy::none:
      return "none";
    case pin_policy::compact:
      return "compact";
    case pin_policy::spread:
      return "spread";
  }
  return "?";
}

std::string config::describe() const {
  std::ostringstream os;
  os << "P=" << planner_threads << " E=" << executor_threads
     << " batch=" << batch_size << " depth=" << pipeline_depth
     << " deadline=" << batch_deadline_micros << "us parts=" << partitions
     << " " << to_string(execution) << "/" << to_string(iso);
  if (!async_epilogue) os << " epilogue=inline";
  if (pin_threads) os << " pin=" << to_string(pin_mode);
  if (numa_bind) os << " numa-bind";
  if (nodes > 1) os << " nodes=" << nodes << " lat=" << net_latency_micros << "us";
  if (durable) {
    os << " durable(log=" << log_dir << " gc=" << group_commit_micros << "us";
    if (checkpoint_interval_batches > 0) {
      os << " ckpt=" << checkpoint_interval_batches;
    }
    os << ")";
  }
  return os.str();
}

void config::validate() const {
  if (planner_threads == 0) throw std::invalid_argument("planner_threads == 0");
  if (executor_threads == 0)
    throw std::invalid_argument("executor_threads == 0");
  if (worker_threads == 0) throw std::invalid_argument("worker_threads == 0");
  if (batch_size == 0) throw std::invalid_argument("batch_size == 0");
  if (pipeline_depth == 0) throw std::invalid_argument("pipeline_depth == 0");
  if (admission_capacity == 0)
    throw std::invalid_argument("admission_capacity == 0");
  if (partitions == 0) throw std::invalid_argument("partitions == 0");
  if (nodes == 0) throw std::invalid_argument("nodes == 0");
  if (nodes > partitions)
    throw std::invalid_argument("nodes must not exceed partitions");
  if (durable && log_dir.empty())
    throw std::invalid_argument("durable requires a log_dir");
  if (durable && log_segment_bytes == 0)
    throw std::invalid_argument("log_segment_bytes == 0");
}

}  // namespace quecc::common
