#include "common/batch_pool.hpp"

#include "common/thread_util.hpp"

namespace quecc::common {

batch_pool::batch_pool(unsigned workers, job_fn job, const std::string& name,
                       bool pin)
    : workers_(workers),
      job_(std::move(job)),
      sync_(static_cast<std::ptrdiff_t>(workers) + 1) {
  threads_.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    threads_.emplace_back([this, w, name, pin] { worker_main(w, name, pin); });
  }
}

batch_pool::~batch_pool() {
  stop_.store(true, std::memory_order_release);
  sync_.arrive_and_wait();  // wake workers into the stop check
  for (auto& t : threads_) t.join();
}

void batch_pool::worker_main(unsigned w, const std::string& name, bool pin) {
  name_self(name + "-" + std::to_string(w));
  if (pin) pin_self_to(w);
  while (true) {
    sync_.arrive_and_wait();  // round start
    if (stop_.load(std::memory_order_acquire)) return;
    job_(w);
    sync_.arrive_and_wait();  // round end
  }
}

void batch_pool::run_round() {
  begin_round();
  end_round();
}

void batch_pool::begin_round() { sync_.arrive_and_wait(); }

void batch_pool::end_round() { sync_.arrive_and_wait(); }

}  // namespace quecc::common
