// Determinism contract as code: pipeline-phase and nondeterminism
// annotations, checked by tools/quecc-analyze.
//
// QueCC's correctness story — command-log recovery (src/log/), bit-identical
// pipeline depths (core/engine), and planned-batch replication — rests on
// one contract: *execution is a deterministic function of the planned
// batch*. These macros make the contract a static property instead of a
// probabilistic end-to-end one:
//
//   PLAN_PHASE / EXEC_PHASE / EPILOGUE_PHASE
//       Tag a function as belonging to one of the three per-batch stages
//       (paper Figure 1: planning -> execution -> commit epilogue). Every
//       tagged function is a *determinism root*: code reachable from it
//       must not call the banned nondeterministic APIs (clocks, random
//       sources, environment reads — see tools/quecc-analyze BANNED).
//       Phase tags also encode the PR 4 pipeline rule: at depth >= 2 the
//       planning stage overlaps the previous batch's execution, so
//       plan-phase code must never reach exec- or epilogue-phase functions
//       (e.g. the index mutators) — and exec-phase code must never reach
//       plan- or epilogue-phase functions. The epilogue may reuse
//       exec-phase helpers (speculative recovery re-executes fragments).
//
//   REPLAY_ENTRY
//       A determinism root with no phase-ordering restrictions: recovery
//       replay drives all three phases in sequence from one call.
//
//   QUECC_NONDET("why")
//       The audited escape hatch. Marks a function as an intentional
//       nondeterminism boundary (stats clocks, group-commit timers,
//       admission deadlines): the analyzer does not traverse into it and
//       does not flag its banned calls. The string must say why the
//       nondeterminism cannot leak into planned batches, replayed state,
//       or serialized output. Keep these rare and leaf-like — every one
//       is a hole in the static proof.
//
//   QUECC_UNORDERED_OK("why")
//       Suppresses only the ordered-output-hygiene rule (range-for over an
//       unordered container in determinism-relevant code) for a whole
//       function whose iteration order provably cannot reach output. For a
//       single loop, prefer a `// quecc-ok(unordered): why` line comment.
//
// Under Clang the macros expand to [[clang::annotate]] so the contract is
// visible to libclang (tools/quecc-analyze --frontend=clang, the CI mode).
// Elsewhere they expand to nothing; the analyzer's built-in text frontend
// reads the macro tokens straight from the source, so the contract is
// checked even on toolchains without clang (scripts/lint.sh, ctest).
#pragma once

#if defined(__clang__)
#define QUECC_PHASE_ANNOTATE_(tag) [[clang::annotate(tag)]]
#else
#define QUECC_PHASE_ANNOTATE_(tag)
#endif

#define PLAN_PHASE QUECC_PHASE_ANNOTATE_("quecc::phase::plan")
#define EXEC_PHASE QUECC_PHASE_ANNOTATE_("quecc::phase::exec")
#define EPILOGUE_PHASE QUECC_PHASE_ANNOTATE_("quecc::phase::epilogue")
#define REPLAY_ENTRY QUECC_PHASE_ANNOTATE_("quecc::phase::replay")
#define QUECC_NONDET(why) QUECC_PHASE_ANNOTATE_("quecc::nondet: " why)
#define QUECC_UNORDERED_OK(why) \
  QUECC_PHASE_ANNOTATE_("quecc::unordered-ok: " why)
