// Metrics: counters, wall-clock timers, and latency histograms.
//
// The harness reports throughput (txns/s), abort counts, and latency
// percentiles — the "key performance metrics" named in Section 4 of the
// paper. Histograms use fixed log-scaled buckets so recording is wait-free
// per thread; aggregation merges per-thread instances.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <string>

#include "common/phase_annotations.hpp"

namespace quecc::common {

/// Monotonic clock reading in nanoseconds since an arbitrary epoch. All
/// latency metrics derive from this one clock choice.
QUECC_NONDET(
    "monotonic stats clock; readings feed latency metrics and stage-window "
    "accounting only, never transaction results, planned batches, or "
    "serialized state")
inline std::uint64_t now_nanos() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// Monotonic wall-clock stopwatch.
class stopwatch {
 public:
  QUECC_NONDET("stats stopwatch; timings never influence execution")
  stopwatch() : start_(clock::now()) {}

  QUECC_NONDET("stats stopwatch; timings never influence execution")
  void restart() { start_ = clock::now(); }

  /// Elapsed time in seconds.
  QUECC_NONDET("stats stopwatch; timings never influence execution")
  double seconds() const {
    return std::chrono::duration<double>(clock::now() - start_).count();
  }

  /// Elapsed time in nanoseconds.
  QUECC_NONDET("stats stopwatch; timings never influence execution")
  std::uint64_t nanos() const {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(clock::now() -
                                                             start_)
            .count());
  }

 private:
  using clock = std::chrono::steady_clock;
  clock::time_point start_;
};

/// Log-bucketed latency histogram covering 1ns .. ~1100s.
/// Recording is a single increment; not thread-safe by design — keep one
/// per worker and merge() at the end (CP.3: minimize shared writable data).
class latency_histogram {
 public:
  static constexpr std::size_t kBuckets = 64;

  void record_nanos(std::uint64_t ns) noexcept;
  /// Bucket-wise addition. Merging an empty histogram is a no-op; merging
  /// into an empty histogram reproduces `other` exactly (pinned by
  /// tests/test_common.cpp).
  void merge(const latency_histogram& other) noexcept;
  /// Raw-bucket merge for external per-thread shards (the obs registry
  /// aggregates atomic bucket cells into a plain histogram on scrape).
  /// `buckets` must point at kBuckets counts laid out like buckets_.
  void merge_bucket_counts(const std::uint64_t* buckets, std::uint64_t count,
                           std::uint64_t sum_ns) noexcept;
  void reset() noexcept;

  std::uint64_t count() const noexcept { return count_; }
  std::uint64_t sum_nanos() const noexcept { return sum_; }
  std::uint64_t bucket_count(std::size_t b) const noexcept {
    return buckets_[b];
  }
  /// Lower bound of bucket b: 0 for b == 0, else 2^b nanoseconds. Bucket b
  /// holds samples in [lower, 2^(b+1)) (the last bucket also absorbs
  /// anything larger).
  static double bucket_lower_nanos(std::size_t b) noexcept;
  double mean_nanos() const noexcept;
  /// Percentile in nanoseconds, q clamped to [0, 100]. The rank is placed
  /// by linear interpolation *within* its log bucket (rank r among a
  /// bucket's n samples sits at the (r + 0.5)/n point of the bucket's
  /// span), so a single sample reports the bucket's linear midpoint and
  /// quantiles move smoothly instead of jumping between bucket midpoints.
  /// Exact values are still bucket-resolution estimates.
  double percentile_nanos(double q) const noexcept;

  std::string summary() const;

 private:
  std::array<std::uint64_t, kBuckets> buckets_{};
  std::uint64_t count_ = 0;
  std::uint64_t sum_ = 0;
};

/// Per-run metrics emitted by engines and aggregated by the harness.
struct run_metrics {
  std::uint64_t committed = 0;
  std::uint64_t aborted = 0;         ///< user/logic aborts (deterministic)
  std::uint64_t cc_aborts = 0;       ///< protocol-induced aborts + retries
  std::uint64_t batches = 0;
  std::uint64_t messages = 0;        ///< simulated network messages
  double elapsed_seconds = 0.0;
  /// Pipeline stage accounting (queue-oriented engines only). Busy times
  /// are summed across the stage's threads — at pipeline_depth >= 2 the
  /// per-batch wall-clock phases overlap across batches and stop adding
  /// up, so busy time is what summary() can still report truthfully.
  double plan_busy_seconds = 0.0;  ///< cumulative planner busy time
  double exec_busy_seconds = 0.0;  ///< cumulative executor busy time
  /// Cumulative commit-epilogue time (recovery + RC publish + commit
  /// record + durable wait). With the three-stage pipeline this runs on
  /// the epilogue worker, overlapped with the next batch's execution — so
  /// at depth >= 2 it stops being a subset of elapsed_seconds.
  double epilogue_busy_seconds = 0.0;
  /// Wall-clock overlap between batches' planning windows and earlier
  /// batches' execution windows — the time the two Figure 1 stages ran
  /// concurrently. 0 in lockstep (pipeline_depth == 1).
  double pipeline_overlap_seconds = 0.0;
  /// Pure execution latency: batch execution start -> txn commit. Recorded
  /// by every engine; excludes any time spent waiting for admission.
  latency_histogram txn_latency;
  /// Queueing delay: client submit -> batch execution start. Recorded only
  /// on the async submission path (proto::session / open-loop harness).
  latency_histogram queue_latency;
  /// End-to-end latency: client submit -> batch commit. Recorded only on
  /// the async submission path; always >= the execution latency.
  latency_histogram e2e_latency;

  double throughput() const noexcept {
    return elapsed_seconds > 0 ? static_cast<double>(committed) /
                                     elapsed_seconds
                               : 0.0;
  }

  void merge(const run_metrics& other);
  std::string summary(const std::string& label) const;
};

}  // namespace quecc::common
