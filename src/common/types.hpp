// Fundamental value types shared across the whole engine.
//
// The repository models a deterministic, main-memory OLTP system, so keys,
// transaction sequence numbers, and partition ids are plain integral types
// chosen once here and used consistently everywhere.
#pragma once

#include <cstdint>
#include <limits>

namespace quecc {

/// Primary-key type used by every table. Workloads that need composite keys
/// (e.g. TPC-C district = (w_id, d_id)) encode them into 64 bits with
/// documented packing helpers in the workload headers.
using key_t = std::uint64_t;

/// Position of a transaction inside a batch. Sequence order is the
/// deterministic serial-equivalent order of the paradigm.
using seq_t = std::uint32_t;

/// Globally unique transaction identity: (batch id << 32) | seq.
using txn_id_t = std::uint64_t;

/// Index of a storage partition; partitions are the unit of queue routing.
using part_id_t = std::uint16_t;

/// Index of a table in the catalog.
using table_id_t = std::uint16_t;

/// Planner / executor thread indexes.
using worker_id_t = std::uint16_t;

inline constexpr key_t kInvalidKey = std::numeric_limits<key_t>::max();
inline constexpr seq_t kInvalidSeq = std::numeric_limits<seq_t>::max();

/// Make a global transaction id out of a batch id and an in-batch sequence.
constexpr txn_id_t make_txn_id(std::uint32_t batch, seq_t seq) noexcept {
  return (static_cast<txn_id_t>(batch) << 32) | seq;
}

constexpr std::uint32_t txn_id_batch(txn_id_t id) noexcept {
  return static_cast<std::uint32_t>(id >> 32);
}

constexpr seq_t txn_id_seq(txn_id_t id) noexcept {
  return static_cast<seq_t>(id & 0xffffffffu);
}

/// Stable record-identity hash (splitmix/murmur finalizer) shared by queue
/// routing (core::planner) and the Calvin lock tables: same (table, key)
/// must hash the same everywhere, or queue placement and lock identity
/// would silently disagree if one copy were ever retuned.
constexpr std::uint64_t record_hash(table_id_t table, key_t key) noexcept {
  std::uint64_t h =
      key + 0x9e3779b97f4a7c15ull * (static_cast<std::uint64_t>(table) + 1);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 29;
  return h;
}

}  // namespace quecc
