// Deterministic, fast pseudo-random number generation.
//
// Workload generation and property tests must be reproducible across runs
// and machines, so we use a self-contained xoshiro256** implementation
// seeded through splitmix64 instead of std::mt19937 (whose distributions
// are not guaranteed to be identical across standard libraries).
#pragma once

#include <cstdint>

namespace quecc::common {

/// splitmix64: used to expand a single 64-bit seed into generator state.
constexpr std::uint64_t splitmix64(std::uint64_t& x) noexcept {
  x += 0x9e3779b97f4a7c15ull;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
  return z ^ (z >> 31);
}

/// xoshiro256** by Blackman & Vigna. Small, fast, and with exactly
/// reproducible output given a seed, which the determinism tests rely on.
class rng {
 public:
  explicit rng(std::uint64_t seed = 0x5eedu) noexcept { reseed(seed); }

  void reseed(std::uint64_t seed) noexcept {
    for (auto& word : state_) word = splitmix64(seed);
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    // Lemire's multiply-shift rejection-free mapping is fine here: a tiny
    // modulo bias (< 2^-64 * bound) is irrelevant for workload skew.
    return static_cast<std::uint64_t>(
        (static_cast<unsigned __int128>(next()) * bound) >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  std::uint64_t next_in(std::uint64_t lo, std::uint64_t hi) noexcept {
    return lo + next_below(hi - lo + 1);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Bernoulli trial with probability p.
  bool next_bool(double p) noexcept { return next_double() < p; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t state_[4]{};
};

}  // namespace quecc::common
