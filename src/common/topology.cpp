#include "common/topology.hpp"

#include <algorithm>
#include <charconv>
#include <fstream>
#include <sstream>

#include "common/thread_util.hpp"

#if defined(__linux__)
#include <sys/syscall.h>
#include <unistd.h>
#endif

namespace quecc::common {

std::vector<unsigned> topology::flatten() const {
  std::vector<unsigned> all;
  all.reserve(cpu_count());
  for (const auto& nd : nodes) {
    all.insert(all.end(), nd.cpus.begin(), nd.cpus.end());
  }
  return all;
}

unsigned topology::node_of_cpu(unsigned cpu) const noexcept {
  for (const auto& nd : nodes) {
    if (std::find(nd.cpus.begin(), nd.cpus.end(), cpu) != nd.cpus.end()) {
      return nd.id;
    }
  }
  return nodes.empty() ? 0 : nodes.front().id;
}

std::vector<unsigned> parse_cpulist(std::string_view text) {
  std::vector<unsigned> cpus;
  std::size_t pos = 0;
  auto parse_uint = [&](std::string_view tok, unsigned& out) {
    const char* b = tok.data();
    const char* e = b + tok.size();
    while (b < e && (*b == ' ' || *b == '\t')) ++b;
    while (e > b && (e[-1] == ' ' || e[-1] == '\t' || e[-1] == '\n')) --e;
    return std::from_chars(b, e, out).ec == std::errc{};
  };
  while (pos <= text.size()) {
    const std::size_t comma = text.find(',', pos);
    std::string_view tok = text.substr(
        pos, comma == std::string_view::npos ? text.size() - pos
                                             : comma - pos);
    const std::size_t dash = tok.find('-');
    unsigned lo = 0, hi = 0;
    if (dash == std::string_view::npos) {
      if (parse_uint(tok, lo)) cpus.push_back(lo);
    } else if (parse_uint(tok.substr(0, dash), lo) &&
               parse_uint(tok.substr(dash + 1), hi) && lo <= hi &&
               hi - lo < 4096) {
      for (unsigned c = lo; c <= hi; ++c) cpus.push_back(c);
    }
    if (comma == std::string_view::npos) break;
    pos = comma + 1;
  }
  std::sort(cpus.begin(), cpus.end());
  cpus.erase(std::unique(cpus.begin(), cpus.end()), cpus.end());
  return cpus;
}

namespace {

topology fallback_topology() {
  topology t;
  numa_node n0;
  n0.id = 0;
  for (unsigned c = 0; c < hardware_threads(); ++c) n0.cpus.push_back(c);
  t.nodes.push_back(std::move(n0));
  return t;
}

}  // namespace

topology read_topology(const std::string& sysfs_root) {
  topology t;
  // Node ids may be sparse (node0, node2, ...); probe a generous id range
  // instead of walking the directory — no <filesystem> surprises and the
  // misses cost one failed open each.
  constexpr unsigned kMaxProbe = 1024;
  for (unsigned id = 0; id < kMaxProbe; ++id) {
    std::ifstream in(sysfs_root + "/node" + std::to_string(id) + "/cpulist");
    if (!in) continue;
    std::string line;
    std::getline(in, line);
    numa_node nd;
    nd.id = id;
    nd.cpus = parse_cpulist(line);
    if (!nd.cpus.empty()) t.nodes.push_back(std::move(nd));
  }
  if (t.nodes.empty()) return fallback_topology();
  return t;
}

const topology& system_topology() {
  static const topology topo = read_topology("/sys/devices/system/node");
  return topo;
}

placement_plan compute_placement(const topology& topo,
                                 const placement_spec& spec) {
  placement_plan plan;
  const std::vector<unsigned> all = topo.flatten();
  const std::size_t ncpus = all.empty() ? 1 : all.size();
  const std::size_t nnodes = topo.nodes.empty() ? 1 : topo.nodes.size();
  plan.planner_cpu.resize(spec.planners);
  plan.executor_cpu.resize(spec.executors);
  plan.executor_node.resize(spec.executors);

  if (spec.policy == pin_policy::none) {
    // Legacy raw-index assignment, wrapped by the real cpu count; node
    // attribution still follows so arena binding stays meaningful.
    for (worker_id_t p = 0; p < spec.planners; ++p) {
      plan.planner_cpu[p] = static_cast<unsigned>(p % ncpus);
    }
    for (worker_id_t e = 0; e < spec.executors; ++e) {
      plan.executor_cpu[e] =
          static_cast<unsigned>((spec.planners + e) % ncpus);
      plan.executor_node[e] = topo.node_of_cpu(plan.executor_cpu[e]);
    }
    plan.epilogue_cpu = static_cast<unsigned>(
        (spec.planners + spec.executors) % ncpus);
    plan.epilogue_node = topo.node_of_cpu(plan.epilogue_cpu);
    return plan;
  }

  // Per-node claim cursors: executors claim cpus first (they are the
  // bandwidth-bound stage), planners and the epilogue worker slot in after
  // them so nothing doubles up until a node's cpus are exhausted.
  std::vector<std::size_t> cursor(nnodes, 0);
  auto claim = [&](std::size_t node_idx) {
    const auto& cpus = topo.nodes[node_idx].cpus;
    return cpus[cursor[node_idx]++ % cpus.size()];
  };

  for (worker_id_t e = 0; e < spec.executors; ++e) {
    std::size_t node_idx;
    if (spec.policy == pin_policy::compact) {
      // Pack node-major: fill node 0's cpus, then node 1's, ... so
      // consecutive executors (and the partitions striped onto them,
      // p % E) share a socket with their arenas.
      std::size_t flat = e;
      node_idx = 0;
      while (node_idx + 1 < nnodes &&
             flat >= topo.nodes[node_idx].cpus.size()) {
        flat -= topo.nodes[node_idx].cpus.size();
        ++node_idx;
      }
    } else {  // spread
      node_idx = e % nnodes;
    }
    plan.executor_cpu[e] = claim(node_idx);
    plan.executor_node[e] = topo.nodes[node_idx].id;
  }
  // Planners spread across nodes under both policies: they write into
  // every executor's queues, so no single socket is a better home.
  for (worker_id_t p = 0; p < spec.planners; ++p) {
    plan.planner_cpu[p] = claim(p % nnodes);
  }
  // Epilogue worker near the log device — node 0 by heuristic (where
  // storage IRQ lines usually land); a knob can refine this later.
  plan.epilogue_cpu = claim(0);
  plan.epilogue_node = topo.nodes.front().id;
  return plan;
}

std::string placement_plan::describe(part_id_t arenas) const {
  std::ostringstream os;
  for (std::size_t p = 0; p < planner_cpu.size(); ++p) {
    os << "  planner " << p << " -> cpu " << planner_cpu[p] << "\n";
  }
  for (std::size_t e = 0; e < executor_cpu.size(); ++e) {
    os << "  executor " << e << " -> cpu " << executor_cpu[e] << " (node "
       << executor_node[e] << ")\n";
  }
  os << "  epilogue -> cpu " << epilogue_cpu << " (node " << epilogue_node
     << ")\n";
  for (part_id_t a = 0; a < arenas; ++a) {
    os << "  arena " << a << " -> node " << node_of_arena(a) << "\n";
  }
  return os.str();
}

#if defined(__linux__)

namespace {
// Raw-syscall mbind/get_mempolicy: the container toolchain has no libnuma
// and must not grow the dependency; the ABI constants are stable kernel
// UAPI (linux/mempolicy.h).
constexpr int kMpolBind = 2;
constexpr unsigned kMpolMfMove = 1u << 1;
constexpr int kMpolFNode = 1 << 0;
constexpr int kMpolFAddr = 1 << 1;
constexpr std::size_t kMaskWords = 16;  // up to 1024 nodes
constexpr std::size_t kBitsPerWord = 8 * sizeof(unsigned long);
}  // namespace

bool bind_memory_to_node(void* addr, std::size_t len, unsigned node) noexcept {
  if (addr == nullptr || len == 0) return false;
  if (node >= kMaskWords * kBitsPerWord) return false;
  if (!system_topology().multi_node()) return false;  // nothing to migrate
  const long page = sysconf(_SC_PAGESIZE);
  if (page <= 0) return false;
  const auto base = reinterpret_cast<std::uintptr_t>(addr);
  const std::uintptr_t aligned =
      base & ~static_cast<std::uintptr_t>(page - 1);
  len += base - aligned;
  unsigned long mask[kMaskWords] = {};
  mask[node / kBitsPerWord] |= 1ul << (node % kBitsPerWord);
  // MPOL_MF_MOVE: arena slabs are zero-filled at allocation, so their
  // pages are already faulted on the loader's node and must be migrated —
  // first-touch alone would be a silent no-op here.
  return syscall(__NR_mbind, aligned, len, kMpolBind, mask,
                 kMaskWords * kBitsPerWord + 1, kMpolMfMove) == 0;
}

int node_of_address(const void* addr) noexcept {
  int node = -1;
  if (syscall(__NR_get_mempolicy, &node, nullptr, 0ul, addr,
              kMpolFNode | kMpolFAddr) != 0) {
    return -1;
  }
  return node;
}

#else  // !__linux__

bool bind_memory_to_node(void*, std::size_t, unsigned) noexcept {
  return false;
}
int node_of_address(const void*) noexcept { return -1; }

#endif

}  // namespace quecc::common
