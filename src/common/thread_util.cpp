#include "common/thread_util.hpp"

#include <pthread.h>
#include <sched.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "common/spinlock.hpp"
#include "common/topology.hpp"
#include "obs/metrics.hpp"

namespace quecc::common {

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_self_to(unsigned cpu) noexcept {
#if defined(__linux__)
  const topology& topo = system_topology();
  const std::vector<unsigned> cpus = topo.flatten();
  unsigned target = cpu;
  if (cpus.empty()) {
    target = cpu % hardware_threads();
  } else if (cpu >= cpus.size()) {
    // Wrap through the real cpu list instead of raw modulo arithmetic on
    // possibly-sparse OS cpu ids; count + warn once per process so
    // oversubscribed --pin-threads runs are visible.
    target = cpus[cpu % cpus.size()];
    static const obs::counter wrapped("thread.pin_wrapped_total");
    wrapped.inc();
    static std::atomic<bool> warned{false};
    // relaxed: the flag guards only this fprintf — no other memory is
    // published through it, and a duplicate warning under a lost race
    // would be harmless anyway (exchange already prevents that).
    if (!warned.exchange(true, std::memory_order_relaxed)) {
      std::fprintf(stderr,
                   "quecc: pin_self_to(%u) wraps (%zu cpus); workers are "
                   "oversubscribed (see thread.pin_wrapped_total)\n",
                   cpu, cpus.size());
    }
  } else if (std::find(cpus.begin(), cpus.end(), cpu) == cpus.end()) {
    // In-range index naming a cpu hole (sparse numbering): remap through
    // the node-major list rather than failing the affinity call.
    target = cpus[cpu % cpus.size()];
  }
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(target, &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

void name_self(const std::string& name) noexcept {
#if defined(__linux__)
  // Linux limits thread names to 15 chars + NUL.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

void yield_cpu() noexcept { std::this_thread::yield(); }

void spin_for_micros(std::uint32_t micros) noexcept {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(micros);
  while (std::chrono::steady_clock::now() < until) cpu_pause();
}

void backoff::yield_now() noexcept { yield_cpu(); }

}  // namespace quecc::common
