#include "common/thread_util.hpp"

#include <pthread.h>
#include <sched.h>

#include <chrono>
#include <thread>

#include "common/spinlock.hpp"

namespace quecc::common {

unsigned hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

bool pin_self_to(unsigned cpu) noexcept {
#if defined(__linux__)
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu % hardware_threads(), &set);
  return pthread_setaffinity_np(pthread_self(), sizeof(set), &set) == 0;
#else
  (void)cpu;
  return false;
#endif
}

void name_self(const std::string& name) noexcept {
#if defined(__linux__)
  // Linux limits thread names to 15 chars + NUL.
  pthread_setname_np(pthread_self(), name.substr(0, 15).c_str());
#else
  (void)name;
#endif
}

void yield_cpu() noexcept { std::this_thread::yield(); }

void spin_for_micros(std::uint32_t micros) noexcept {
  const auto until = std::chrono::steady_clock::now() +
                     std::chrono::microseconds(micros);
  while (std::chrono::steady_clock::now() < until) cpu_pause();
}

void backoff::yield_now() noexcept { yield_cpu(); }

}  // namespace quecc::common
