// Thread affinity and naming helpers.
//
// Worker threads (planners, executors, protocol workers, simulated nodes)
// are long-lived and created once per engine instance (CP.41: minimize
// thread creation/destruction). Pinning is best-effort: on machines with
// fewer cores than workers we simply oversubscribe.
#pragma once

#include <cstdint>
#include <string>

#include "common/phase_annotations.hpp"

namespace quecc::common {

/// Number of hardware threads, never less than 1.
unsigned hardware_threads() noexcept;

/// Best-effort pin of the calling thread to `cpu`. Ids past the machine's
/// cpu count wrap through the topology's node-major cpu list (so the wrap
/// lands on a real OS cpu even when cpu numbering is sparse) and bump the
/// `thread.pin_wrapped_total` counter once per wrapping thread — silent
/// oversubscription was a debugging trap (--pin-threads with more workers
/// than cores pinned several workers to one core with no trace of it).
/// Returns false when the platform refuses (non-fatal; used for benches).
bool pin_self_to(unsigned cpu) noexcept;

/// Best-effort thread name (shows up in debuggers / perf).
void name_self(const std::string& name) noexcept;

/// Implementation detail of backoff::yield_now, kept out of the header so
/// <thread> does not leak into every translation unit.
void yield_cpu() noexcept;

/// Busy-wait for `micros` microseconds. Used to charge simulated
/// coordination costs (e.g. H-Store's 2PC round) without sleeping the
/// thread — the point is to occupy the partition, exactly like the real
/// blocking protocol would.
QUECC_NONDET(
    "calibrated busy-wait; models coordination cost in wall time only and "
    "returns nothing — timing cannot alter transaction results")
void spin_for_micros(std::uint32_t micros) noexcept;

}  // namespace quecc::common
