#include "common/stats.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <iomanip>
#include <sstream>

namespace quecc::common {

namespace {
/// Bucket index: floor(log2(ns)), clamped to the table size.
std::size_t bucket_of(std::uint64_t ns) noexcept {
  if (ns == 0) return 0;
  const auto b = static_cast<std::size_t>(63 - std::countl_zero(ns));
  return std::min(b, latency_histogram::kBuckets - 1);
}

}  // namespace

void latency_histogram::record_nanos(std::uint64_t ns) noexcept {
  ++buckets_[bucket_of(ns)];
  ++count_;
  sum_ += ns;
}

void latency_histogram::merge(const latency_histogram& other) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  count_ += other.count_;
  sum_ += other.sum_;
}

void latency_histogram::merge_bucket_counts(const std::uint64_t* buckets,
                                            std::uint64_t count,
                                            std::uint64_t sum_ns) noexcept {
  for (std::size_t i = 0; i < kBuckets; ++i) buckets_[i] += buckets[i];
  count_ += count;
  sum_ += sum_ns;
}

void latency_histogram::reset() noexcept {
  buckets_.fill(0);
  count_ = 0;
  sum_ = 0;
}

double latency_histogram::mean_nanos() const noexcept {
  return count_ == 0 ? 0.0
                     : static_cast<double>(sum_) / static_cast<double>(count_);
}

double latency_histogram::bucket_lower_nanos(std::size_t b) noexcept {
  return b == 0 ? 0.0 : std::ldexp(1.0, static_cast<int>(b));
}

double latency_histogram::percentile_nanos(double q) const noexcept {
  if (count_ == 0) return 0.0;
  q = std::clamp(q, 0.0, 100.0);
  const double rank = q / 100.0 * static_cast<double>(count_ - 1);
  std::uint64_t before = 0;
  for (std::size_t i = 0; i < kBuckets; ++i) {
    const std::uint64_t n = buckets_[i];
    if (n == 0) continue;
    if (static_cast<double>(before + n) > rank) {
      // Interpolate within bucket [lower, upper): the rank's position
      // among the bucket's n samples, each placed at its interval
      // midpoint — a lone sample lands on the bucket's linear midpoint.
      const double lo = bucket_lower_nanos(i);
      const double hi = std::ldexp(1.0, static_cast<int>(i) + 1);
      const double frac =
          (rank - static_cast<double>(before) + 0.5) / static_cast<double>(n);
      return lo + frac * (hi - lo);
    }
    before += n;
  }
  return bucket_lower_nanos(kBuckets - 1);  // unreachable: count_ > 0
}

std::string latency_histogram::summary() const {
  std::ostringstream os;
  os << "mean=" << mean_nanos() / 1e3 << "us p50="
     << percentile_nanos(50) / 1e3 << "us p99=" << percentile_nanos(99) / 1e3
     << "us";
  return os.str();
}

void run_metrics::merge(const run_metrics& other) {
  committed += other.committed;
  aborted += other.aborted;
  cc_aborts += other.cc_aborts;
  batches += other.batches;
  messages += other.messages;
  elapsed_seconds = std::max(elapsed_seconds, other.elapsed_seconds);
  plan_busy_seconds += other.plan_busy_seconds;
  exec_busy_seconds += other.exec_busy_seconds;
  epilogue_busy_seconds += other.epilogue_busy_seconds;
  pipeline_overlap_seconds += other.pipeline_overlap_seconds;
  txn_latency.merge(other.txn_latency);
  queue_latency.merge(other.queue_latency);
  e2e_latency.merge(other.e2e_latency);
}

std::string run_metrics::summary(const std::string& label) const {
  std::ostringstream os;
  os << label << ": " << static_cast<std::uint64_t>(throughput())
     << " txn/s, committed=" << committed << ", user_aborts=" << aborted
     << ", cc_aborts=" << cc_aborts << ", batches=" << batches;
  if (messages > 0) os << ", msgs=" << messages;
  os << ", exec{" << txn_latency.summary() << "}";
  if (plan_busy_seconds > 0 || exec_busy_seconds > 0) {
    os << ", stages{plan_busy=" << std::fixed << std::setprecision(3)
       << plan_busy_seconds << "s exec_busy=" << exec_busy_seconds
       << "s epilogue_busy=" << epilogue_busy_seconds
       << "s overlap=" << pipeline_overlap_seconds << "s}";
    os.unsetf(std::ios_base::floatfield);
  }
  if (queue_latency.count() > 0) {
    os << ", queue{" << queue_latency.summary() << "}";
  }
  if (e2e_latency.count() > 0) {
    os << ", e2e{" << e2e_latency.summary() << "}";
  }
  return os.str();
}

}  // namespace quecc::common
