// Tiny synchronization primitives used on the engine's hot paths.
//
// The paradigm's point is to need almost no synchronization, so the only
// locks in the core engine guard cold paths (batch hand-off, stats). The
// baseline protocols (2PL, Silo, ...) use `spinlock` as their per-record
// latch, which matches how the original DBx1000/ExpoDB test-beds work.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/thread_annotations.hpp"

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace quecc::common {

/// CPU-friendly busy-wait hint.
inline void cpu_pause() noexcept {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Exponential-backoff helper for spin loops. Starts with pause
/// instructions and escalates to yielding the CPU, which matters on the
/// small machines CI runs on (fewer hardware threads than workers).
class backoff {
 public:
  void spin() noexcept {
    if (count_ < kPauseLimit) {
      for (std::uint32_t i = 0; i < (1u << count_); ++i) cpu_pause();
      ++count_;
    } else {
      yield_now();
    }
  }

  void reset() noexcept { count_ = 0; }

 private:
  static void yield_now() noexcept;
  static constexpr std::uint32_t kPauseLimit = 6;
  std::uint32_t count_ = 0;
};

/// Test-and-test-and-set spinlock with backoff. Satisfies the C++ Lockable
/// requirements and is a Clang TSA capability: guard members with
/// GUARDED_BY(the_lock) and hold it through `spin_guard` (CP.20: RAII,
/// never plain lock()/unlock()) so the analysis tracks the acquisition —
/// std::scoped_lock carries no annotations and hides it.
class CAPABILITY("spinlock") spinlock {
 public:
  void lock() noexcept ACQUIRE() {
    backoff b;
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      // relaxed: pure spin on the TTAS read path; the winning exchange
      // above is the acquire that orders the critical section.
      while (flag_.load(std::memory_order_relaxed)) b.spin();
    }
  }

  bool try_lock() noexcept TRY_ACQUIRE(true) {
    // relaxed: optimistic peek only; acquisition itself is the exchange.
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept RELEASE() {
    flag_.store(false, std::memory_order_release);
  }

 private:
  std::atomic<bool> flag_{false};
};

/// RAII spinlock holder (the annotated replacement for std::scoped_lock
/// over a spinlock). Scope = critical section; TSA releases the capability
/// at the destructor.
class SCOPED_CAPABILITY spin_guard {
 public:
  explicit spin_guard(spinlock& l) noexcept ACQUIRE(l) : l_(l) { l_.lock(); }
  ~spin_guard() RELEASE() { l_.unlock(); }

  spin_guard(const spin_guard&) = delete;
  spin_guard& operator=(const spin_guard&) = delete;

 private:
  spinlock& l_;
};

}  // namespace quecc::common
