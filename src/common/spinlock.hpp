// Tiny synchronization primitives used on the engine's hot paths.
//
// The paradigm's point is to need almost no synchronization, so the only
// locks in the core engine guard cold paths (batch hand-off, stats). The
// baseline protocols (2PL, Silo, ...) use `spinlock` as their per-record
// latch, which matches how the original DBx1000/ExpoDB test-beds work.
#pragma once

#include <atomic>
#include <cstdint>

#if defined(__x86_64__)
#include <immintrin.h>
#endif

namespace quecc::common {

/// CPU-friendly busy-wait hint.
inline void cpu_pause() noexcept {
#if defined(__x86_64__)
  _mm_pause();
#else
  std::atomic_signal_fence(std::memory_order_seq_cst);
#endif
}

/// Exponential-backoff helper for spin loops. Starts with pause
/// instructions and escalates to yielding the CPU, which matters on the
/// small machines CI runs on (fewer hardware threads than workers).
class backoff {
 public:
  void spin() noexcept {
    if (count_ < kPauseLimit) {
      for (std::uint32_t i = 0; i < (1u << count_); ++i) cpu_pause();
      ++count_;
    } else {
      yield_now();
    }
  }

  void reset() noexcept { count_ = 0; }

 private:
  static void yield_now() noexcept;
  static constexpr std::uint32_t kPauseLimit = 6;
  std::uint32_t count_ = 0;
};

/// Test-and-test-and-set spinlock with backoff. Satisfies the C++ Lockable
/// requirements so it composes with std::scoped_lock (CP.20: RAII, never
/// plain lock()/unlock()).
class spinlock {
 public:
  void lock() noexcept {
    backoff b;
    while (true) {
      if (!flag_.exchange(true, std::memory_order_acquire)) return;
      while (flag_.load(std::memory_order_relaxed)) b.spin();
    }
  }

  bool try_lock() noexcept {
    return !flag_.load(std::memory_order_relaxed) &&
           !flag_.exchange(true, std::memory_order_acquire);
  }

  void unlock() noexcept { flag_.store(false, std::memory_order_release); }

 private:
  std::atomic<bool> flag_{false};
};

}  // namespace quecc::common
