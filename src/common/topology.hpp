// Machine topology and NUMA-aware placement.
//
// The paradigm's whole bet is that planning makes execution embarrassingly
// partition-parallel — which only pays off on a real box when a partition's
// executor and the arena holding its rows share a socket. This layer reads
// the NUMA shape from sysfs (`/sys/devices/system/node`), computes a
// deterministic thread→cpu / arena→node assignment from it, and provides a
// best-effort page binding primitive (raw `mbind` syscall — no libnuma
// dependency). Single-node machines (laptops, CI) degrade to one node
// holding every cpu, where compact/spread collapse to the same plan and
// binding is a no-op.
//
// Everything here is best-effort and side-effect free until the caller
// pins or binds: computing a plan never touches affinity.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"

namespace quecc::common {

/// One NUMA node: its id and the OS cpu ids it owns (ascending).
struct numa_node {
  unsigned id = 0;
  std::vector<unsigned> cpus;
};

/// Machine shape. `nodes` is never empty (the fallback is one node owning
/// every hardware thread) and each node's cpu list is never empty.
struct topology {
  std::vector<numa_node> nodes;  ///< ascending node id

  bool multi_node() const noexcept { return nodes.size() > 1; }
  std::size_t cpu_count() const noexcept {
    std::size_t n = 0;
    for (const auto& nd : nodes) n += nd.cpus.size();
    return n;
  }
  /// Node-major flattening: node 0's cpus, then node 1's, ...
  std::vector<unsigned> flatten() const;
  /// NUMA node id owning OS cpu `cpu`; node 0 when unknown.
  unsigned node_of_cpu(unsigned cpu) const noexcept;
};

/// Parse the sysfs cpulist format ("0-3,8,10-11"); ignores whitespace and
/// malformed fragments. Returns ascending, deduplicated cpu ids.
std::vector<unsigned> parse_cpulist(std::string_view text);

/// Read the topology under `sysfs_root` (node*/cpulist). Nodes without
/// cpus (memory-only) are skipped. Falls back to a single node holding
/// hardware_threads() cpus when nothing parseable is found.
topology read_topology(const std::string& sysfs_root);

/// Cached machine topology (probes /sys/devices/system/node once).
const topology& system_topology();

// --- placement plan --------------------------------------------------------

/// Inputs of a placement computation: the engine's stage widths plus the
/// policy knob (config::pin_mode).
struct placement_spec {
  worker_id_t planners = 0;
  worker_id_t executors = 0;
  pin_policy policy = pin_policy::compact;
};

/// Deterministic thread→cpu and executor→node assignment. The arena
/// mapping rides on the executor mapping: partition p's queues anchor at
/// executor p % E (core/planner route(), dist::placement), so arena p
/// belongs on executor (p % E)'s socket.
struct placement_plan {
  std::vector<unsigned> planner_cpu;    ///< [p] -> OS cpu
  std::vector<unsigned> executor_cpu;   ///< [e] -> OS cpu
  std::vector<unsigned> executor_node;  ///< [e] -> NUMA node of that cpu
  unsigned epilogue_cpu = 0;   ///< epilogue worker (near the log device)
  unsigned epilogue_node = 0;

  /// NUMA node that should back arena `a` (= home of executor a % E).
  unsigned node_of_arena(part_id_t a) const noexcept {
    return executor_node.empty()
               ? 0
               : executor_node[a % executor_node.size()];
  }

  /// Multi-line thread→cpu / arena→node map (queccctl --verbose).
  std::string describe(part_id_t arenas) const;
};

/// Compute the assignment for `spec` on `topo`:
///   compact — executors pack node-major (consecutive executors share a
///             socket, so a partition-striped workload stays socket-local);
///   spread  — executors round-robin across nodes (maximizes memory
///             bandwidth per executor at the cost of locality);
///   none    — legacy raw-index assignment (cpu = thread index mod #cpus).
/// Planners spread across nodes under every policy (they write into every
/// executor's queues, so no socket is a better home than another), offset
/// past the cpus executors claimed on each node; the epilogue worker lands
/// on node 0 (where the log device's IRQ lines usually live).
placement_plan compute_placement(const topology& topo,
                                 const placement_spec& spec);

// --- page binding ----------------------------------------------------------

/// Best-effort bind of [addr, addr+len) to NUMA `node` via the raw mbind
/// syscall, migrating already-touched pages (arena slabs are zero-filled
/// by the loader before placement runs). Returns false on non-Linux,
/// syscall failure, or a single-node topology (nothing to do).
bool bind_memory_to_node(void* addr, std::size_t len, unsigned node) noexcept;

/// NUMA node currently backing the page at `addr` (get_mempolicy); -1 when
/// the platform cannot tell.
int node_of_address(const void* addr) noexcept;

}  // namespace quecc::common
