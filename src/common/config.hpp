// Engine configuration knobs.
//
// One struct covers every engine in the repository so the harness can run
// apples-to-apples sweeps; individual engines read only the fields they
// understand. Section 3 of the paper calls out the configurations the
// paradigm must "seamlessly admit": speculative vs conservative execution
// and serializable vs read-committed isolation — those are first-class
// enums here.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace quecc::common {

/// Queue execution mechanism (paper Section 3.2, "Queue Execution
/// Mechanisms").
enum class exec_model : std::uint8_t {
  speculative,   ///< apply writes eagerly; cascading abort + re-execution
  conservative,  ///< updates wait for the txn's abortable fragments
};

/// Isolation level (paper Section 3.2, "Isolation Levels").
enum class isolation : std::uint8_t {
  serializable,
  read_committed,  ///< reads run against committed versions in extra queues
};

/// Thread-placement policy used when `pin_threads` is on (see
/// common/topology.hpp for the exact assignment each policy computes).
enum class pin_policy : std::uint8_t {
  none,     ///< legacy raw-index pinning (thread i -> cpu i mod #cpus)
  compact,  ///< executors pack node-major: partition runs beside its arena
  spread,   ///< executors round-robin across NUMA nodes
};

const char* to_string(exec_model m) noexcept;
const char* to_string(isolation i) noexcept;
const char* to_string(pin_policy p) noexcept;

/// Shared configuration for every engine, centralized and distributed.
struct config {
  // --- threading ---------------------------------------------------------
  worker_id_t planner_threads = 2;   ///< queue-oriented planning phase width
  worker_id_t executor_threads = 2;  ///< queue-oriented execution phase width
  worker_id_t worker_threads = 4;    ///< thread pool size for baselines
  bool pin_threads = false;          ///< best-effort CPU affinity
  /// Placement policy applied when pin_threads is on: compact co-locates a
  /// partition's executor with its arena's socket, spread maximizes memory
  /// bandwidth, none keeps the legacy raw-index pinning.
  pin_policy pin_mode = pin_policy::compact;
  /// Bind each storage arena's slab/meta pages on the NUMA node of the
  /// executor owning the arena's partition (mbind, best-effort; no-op on
  /// single-node machines). Independent of pin_threads, but only useful
  /// together with it.
  bool numa_bind = false;

  // --- batching ----------------------------------------------------------
  std::uint32_t batch_size = 1024;  ///< txns per deterministic batch
  /// Batch-pipeline depth of the queue-oriented engines: how many batches
  /// may be in flight at once. 1 = the paper's lockstep (plan, execute,
  /// commit, repeat); at >= 2 planners start on batch i+1 the moment batch
  /// i's queues are handed to the executors, overlapping the two Figure 1
  /// stages across batches. Execution and the commit epilogue stay
  /// sequential by batch id, so results are bit-identical at every depth.
  std::uint32_t pipeline_depth = 2;
  /// Third pipeline stage: run the commit epilogue's durable tail (WAL
  /// commit record + group-commit fsync wait) on a dedicated epilogue
  /// worker so exec(i+1) overlaps epilogue(i). The state-mutating half
  /// (speculative recovery, RC publish, checkpoints) always stays at the
  /// quiescent point, so results are bit-identical with this on or off.
  /// Effective only at pipeline_depth >= 2 — depth 1 has no batch to
  /// overlap with and degenerates to the inline epilogue either way.
  bool async_epilogue = true;

  // --- admission (async client path) -------------------------------------
  /// A batch former closes a batch on `batch_size` *or* this timer,
  /// whichever fires first, so a trickle of submissions still commits
  /// promptly (0 = close immediately with whatever has arrived).
  std::uint32_t batch_deadline_micros = 2000;
  /// Bounded depth of the client admission queue; submit() blocks when the
  /// queue is full (backpressure instead of unbounded memory growth).
  std::uint32_t admission_capacity = 1u << 16;
  /// Per-client-session cap on transactions waiting in the admission queue
  /// (0 = unlimited). With a cap below the queue capacity, one greedy
  /// session can no longer fill the whole queue and starve the others —
  /// its submits block while other sessions still find room.
  std::uint32_t admission_session_cap = 0;

  // --- durability (queue-oriented command log, src/log/) ------------------
  /// Log planned batches + commit records to `log_dir` and acknowledge
  /// clients only after the commit record is fsynced. Only the
  /// queue-oriented engine ("quecc") implements this; other engines ignore
  /// it. Requires a non-empty log_dir.
  bool durable = false;
  std::string log_dir;
  /// Group-commit window: fsyncs are coalesced so every record appended
  /// within one window shares a single fsync.
  std::uint32_t group_commit_micros = 200;
  /// Take a consistent snapshot + truncate the log every N batches
  /// (0 = never checkpoint; recovery then replays the whole log).
  std::uint32_t checkpoint_interval_batches = 0;
  /// Size-based log segment rotation threshold.
  std::uint64_t log_segment_bytes = 64ull << 20;
  /// Record database::state_hash in every commit record (full table scan
  /// per batch — test/debug aid, not a production default); recovery then
  /// verifies replay batch by batch.
  bool log_verify_hash = false;
  /// Reopen an existing log directory after recovery and continue
  /// appending in place (log_writer resume mode: the newest segment's torn
  /// tail is truncated and writing continues in a fresh segment). Without
  /// this a non-empty log directory is refused. Recovery-resume drivers
  /// (queccctl --recover) set it together with log_resume_stream_pos.
  bool log_resume = false;
  /// Stream position (cumulative transactions) the recovered log already
  /// covers; resumed commit records continue counting from here so a later
  /// recovery reports one consistent position.
  std::uint64_t log_resume_stream_pos = 0;

  // --- paradigm options --------------------------------------------------
  exec_model execution = exec_model::speculative;
  isolation iso = isolation::serializable;

  // --- storage -----------------------------------------------------------
  part_id_t partitions = 4;  ///< home-partition count (queue routing unit)

  // --- distributed simulation --------------------------------------------
  std::uint16_t nodes = 1;                ///< simulated node count
  std::uint32_t net_latency_micros = 50;  ///< one-way message latency
  std::uint32_t seq_epoch_micros = 200;   ///< Calvin sequencer epoch length

  // --- baseline-specific knobs --------------------------------------------
  /// H-Store: coordination cost charged per multi-partition transaction
  /// while the partitions are held (models the blocking 2PC voting rounds
  /// of the original system; ~2 IPC round trips).
  std::uint32_t hstore_coord_micros = 25;

  // --- misc ----------------------------------------------------------------
  std::uint64_t seed = 0x5eedu;  ///< workload / property-test seed

  /// Human-readable one-liner for logs and bench labels.
  std::string describe() const;

  /// Throws std::invalid_argument when fields are inconsistent (e.g. zero
  /// threads, zero partitions, nodes > partitions).
  void validate() const;
};

}  // namespace quecc::common
