// Distributed Calvin over the simulated cluster (Thomson et al., SIGMOD'12;
// the deterministic ordered execution of Saad et al.'s "Processing
// Transactions in a Predefined Order" follows the same contract): a
// sequencer replicates the batch input to every node, each node's
// deterministic lock scheduler walks the replicated sequence acquiring
// locks for locally-homed records in sequence order, and workers execute
// transactions once every lock is granted.
//
// Unlike the queue-oriented engine, communication scales with the number of
// *distributed transactions*: a transaction touching k > 1 nodes pays
// (k-1) remote_reads messages (participants forward their local reads to
// the home node, which stalls until they are delivered) plus (k-1)
// txn_release notifications on completion — the per-transaction cost the
// DistBehaviour.QueccCommitCostIsPerBatchNotPerTxn test contrasts with
// dist-quecc's constant per-batch bill.
//
// Simulation notes (DESIGN.md 2.5): nodes share one process and one
// storage engine, so a single worker executes the whole transaction after
// the remote-read stall, and the N per-node schedulers — which would each
// walk the identical replicated sequence — are folded into one pass in
// sequence order over per-node lock tables; both foldings preserve the
// protocol's determinism and its message/latency bill.
#pragma once

#include <array>
#include <atomic>
#include <memory>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/batch_pool.hpp"
#include "common/spinlock.hpp"
#include "common/thread_annotations.hpp"
#include "dist/partitioner.hpp"
#include "net/network.hpp"
#include "protocols/iface.hpp"

namespace quecc::dist {

class dist_calvin_engine final : public proto::engine {
 public:
  /// `cfg.worker_threads` is per node: the cluster runs
  /// cfg.nodes * cfg.worker_threads Calvin workers.
  dist_calvin_engine(storage::database& db, const common::config& cfg);

  const char* name() const noexcept override { return "dist-calvin"; }
  void run_batch(txn::batch& b, common::run_metrics& m) override;

  const placement& cluster() const noexcept { return pl_; }

 private:
  struct lock_request {
    seq_t seq;
    bool exclusive;
  };
  struct lock_entry {
    bool held_exclusive = false;
    std::uint32_t holders = 0;
    std::vector<lock_request> waiters;  // FIFO, seq order by construction
  };
  struct stripe {
    common::spinlock latch;
    std::unordered_map<std::uint64_t, lock_entry> locks GUARDED_BY(latch);
  };
  static constexpr std::size_t kStripesPerNode = 16;
  /// One lock table (kStripesPerNode stripes) per node.
  struct node_locks {
    std::array<stripe, kStripesPerNode> stripes;
  };
  /// Per-node ready queue: txns homed at the node whose locks are granted.
  ///
  /// Hybrid protocol, deliberately not GUARDED_BY: producers push under the
  /// latch and release-publish via count; consumers pop latch-free — they
  /// acquire-load count, CAS head forward, and read q[h], which the
  /// publishing release made visible. q never reallocates mid-batch
  /// (capacity reserved up front), so the unlatched read is stable.
  struct node_ready {
    common::spinlock latch;  ///< serializes producers only
    std::vector<seq_t> q;
    std::atomic<std::size_t> head{0};
    std::atomic<std::size_t> count{0};
  };
  /// Serializes a node's workers polling the shared inbox.
  struct node_mailbox {
    common::spinlock latch;
  };

  void worker_job(unsigned worker);
  void ensure_pool();
  void sequence(txn::batch& b);
  void schedule(txn::batch& b);
  void release_locks(seq_t seq);
  void push_ready(net::node_id_t node, seq_t s);
  bool pop_ready(net::node_id_t node, seq_t& s);

  /// Stall for the home node's remote-read round of distributed txn `seq`
  /// (bills (k-1) messages, waits one one-way latency), run nothing if the
  /// transaction is single-node.
  void collect_remote_reads(net::node_id_t home, seq_t seq);

  static std::uint64_t rec_of(table_id_t table, key_t key) noexcept;
  stripe& stripe_of(net::node_id_t node, std::uint64_t rec) noexcept {
    return locks_[node].stripes[rec % kStripesPerNode];
  }

  /// Declared lock set: unique records with home node and strongest mode.
  void lock_set(const txn::txn_desc& t,
                std::vector<std::tuple<net::node_id_t, std::uint64_t, bool>>&
                    out) const;

  storage::database& db_;
  common::config cfg_;
  placement pl_;
  net::network net_;
  std::unique_ptr<common::batch_pool> pool_;

  txn::batch* current_ = nullptr;
  std::uint64_t batch_start_nanos_ = 0;
  std::vector<node_locks> locks_;        // [node]
  std::vector<node_ready> ready_;       // [node]
  std::vector<std::atomic<std::uint32_t>> pending_locks_;  // [seq]
  /// Per-txn declared lock sets, computed once per batch in the pre-pass
  /// and reused by schedule() and release_locks().
  std::vector<std::vector<std::tuple<net::node_id_t, std::uint64_t, bool>>>
      lock_sets_;                                          // [seq]
  std::vector<net::node_id_t> home_;                       // [seq]
  std::vector<std::vector<net::node_id_t>> participants_;  // [seq]
  std::vector<std::atomic<std::uint32_t>> reads_arrived_;  // [seq]
  std::vector<node_mailbox> mailbox_;                      // [node]
  std::atomic<std::uint32_t> remaining_{0};
  std::vector<common::run_metrics> worker_metrics_;
};

}  // namespace quecc::dist
