#include "dist/dist_quecc.hpp"

#include <algorithm>
#include <chrono>

#include "common/spinlock.hpp"
#include "common/thread_util.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace quecc::dist {

namespace {

/// Global view of a per-node configuration: the planner slicing and queue
/// routing in core::planner already understand `nodes`, they just need the
/// cluster-wide thread counts.
common::config globalize(const common::config& cfg) {
  common::config g = cfg;
  g.planner_threads =
      static_cast<worker_id_t>(cfg.planner_threads * cfg.nodes);
  g.executor_threads =
      static_cast<worker_id_t>(cfg.executor_threads * cfg.nodes);
  return g;
}

}  // namespace

dist_quecc_engine::dist_quecc_engine(storage::database& db,
                                     const common::config& cfg)
    : db_(db),
      cfg_(globalize(cfg)),
      pl_{cfg.nodes, cfg.executor_threads, cfg.planner_threads},
      net_(cfg.nodes, cfg.net_latency_micros),
      spec_(db) {
  cfg_.validate();
  use_async_epilogue_ = cfg_.async_epilogue && cfg_.pipeline_depth >= 2;
  if (cfg_.iso == common::isolation::read_committed) {
    committed_ = std::make_unique<storage::dual_version_store>(db_);
  }
  pipe_.build(cfg_, db_, committed_.get());

  if (cfg_.pin_threads || cfg_.numa_bind) {
    plan_ = common::compute_placement(
        common::system_topology(),
        {cfg_.planner_threads, cfg_.executor_threads, cfg_.pin_mode});
  }
  if (cfg_.numa_bind) core::bind_arena_memory(db_, plan_);

  const worker_id_t planners = cfg_.planner_threads;
  const worker_id_t execs = cfg_.executor_threads;
  threads_.reserve(static_cast<std::size_t>(planners) + execs + 1);
  for (worker_id_t p = 0; p < planners; ++p) {
    threads_.emplace_back([this, p] { planner_main(p); });
  }
  for (worker_id_t e = 0; e < execs; ++e) {
    threads_.emplace_back([this, e] { executor_main(e); });
  }
  if (use_async_epilogue_) {
    threads_.emplace_back([this] { epilogue_main(); });
  }
}

dist_quecc_engine::~dist_quecc_engine() {
  while (drain_batch()) {
  }
  {
    common::mutex_lock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void dist_quecc_engine::planner_main(worker_id_t p) {
  common::name_self("dq-n" + std::to_string(pl_.node_of_planner(p)) +
                    "-plan-" + std::to_string(p));
  if (cfg_.pin_threads) common::pin_self_to(plan_.planner_cpu[p]);
  for (std::uint64_t n = 0;; ++n) {
    {
      common::mutex_lock lk(mu_);
      while (!(submitted_ > n || stop_)) cv_.wait(lk);
      if (stop_ && submitted_ <= n) return;
    }
    core::batch_slot& s = *pipe_.slots[n % cfg_.pipeline_depth];
    const std::uint64_t t0 = common::now_nanos();
    pipe_.planners[p].plan(*s.batch, s.plan_outs[p]);
    const std::uint64_t t1 = common::now_nanos();
    static const obs::histogram plan_busy("engine.plan_busy_nanos");
    plan_busy.record_nanos(t1 - t0);
    obs::record_span(obs::trace_stage::plan, t0, t1 - t0, s.batch->id(),
                     static_cast<std::uint32_t>(n % cfg_.pipeline_depth));
    // relaxed: stat counter, read at the drain quiescent point.
    s.plan_busy_nanos.fetch_add(t1 - t0, std::memory_order_relaxed);
    if (s.plan_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      // Last planner of the slot ships every remote bundle before marking
      // the batch ready, so this node's executors (and every other's)
      // never start ahead of their inputs. Overlaps the previous batch's
      // execution — the epilogue no longer serializes planning.
      if (pl_.nodes > 1) {
        common::mutex_lock nl(net_mu_);
        ship_plan_bundles(s.batch->id());
      }
      common::mutex_lock lk(mu_);
      s.ready_nanos = common::now_nanos();
      ready_ = n + 1;
      cv_.notify_all();
    }
  }
}

void dist_quecc_engine::executor_main(worker_id_t e) {
  common::name_self("dq-n" + std::to_string(pl_.node_of_executor(e)) +
                    "-exec-" + std::to_string(e));
  if (cfg_.pin_threads) common::pin_self_to(plan_.executor_cpu[e]);
  core::executor& ex = *pipe_.executors[e];
  for (std::uint64_t n = 0;; ++n) {
    core::batch_slot* sp;
    {
      common::mutex_lock lk(mu_);
      // Gated by published_ (see core/engine.cpp): the previous batch's
      // state-mutating epilogue half must finish first; only its commit
      // broadcast may still be in flight on the epilogue worker.
      while (!((ready_ > n && published_ == n) || stop_)) cv_.wait(lk);
      if (stop_ && !(ready_ > n && published_ == n)) return;
      sp = pipe_.slots[n % cfg_.pipeline_depth].get();
      if (sp->exec_start_nanos == 0) {
        sp->exec_start_nanos = common::now_nanos();
        // See core/engine.cpp: RC read-queue rids resolve at the
        // quiescent point, not under concurrent execution.
        if (cfg_.pipeline_depth > 1) sp->resolve_read_queues(db_);
      }
    }
    core::batch_slot& s = *sp;
    const std::uint64_t t0 = common::now_nanos();
    ex.begin_batch(s.submit_nanos);
    ex.run_conflict_queues(s.exec_queues[e]);
    if (!s.read_queues.empty()) {
      ex.run_read_queues(s.read_queues, s.read_cursor);
    }
    const std::uint64_t t1 = common::now_nanos();
    static const obs::histogram exec_busy("engine.exec_busy_nanos");
    exec_busy.record_nanos(t1 - t0);
    obs::record_span(obs::trace_stage::exec, t0, t1 - t0, s.batch->id(),
                     static_cast<std::uint32_t>(n % cfg_.pipeline_depth));
    // relaxed: stat counter, read at the drain quiescent point.
    s.exec_busy_nanos.fetch_add(t1 - t0, std::memory_order_relaxed);
    if (s.exec_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      common::mutex_lock lk(mu_);
      s.exec_end_nanos = common::now_nanos();
      exec_done_ = n + 1;
      cv_.notify_all();
    }
  }
}

void dist_quecc_engine::drain_expected(net::node_id_t node,
                                       net::msg_type type,
                                       std::size_t expected) {
  common::backoff bo;
  std::size_t got = 0;
  net::message msg;
  while (got < expected) {
    if (net_.poll(node, msg)) {
      if (msg.type == type) ++got;
      continue;
    }
    bo.spin();
  }
}

void dist_quecc_engine::ship_plan_bundles(std::uint32_t batch_id) {
  // Every planner ships one bundle (its E queues for that node's
  // executors) to every remote node. The sends overlap, so all nodes
  // resume after a single one-way latency.
  for (worker_id_t p = 0; p < cfg_.planner_threads; ++p) {
    const net::node_id_t from = pl_.node_of_planner(p);
    for (net::node_id_t n = 0; n < pl_.nodes; ++n) {
      if (n == from) continue;
      net_.send({from, n, net::msg_type::plan_queues, p, batch_id, {}});
    }
  }
  const std::size_t remote_planners =
      static_cast<std::size_t>(cfg_.planner_threads) - pl_.planners_per_node;
  for (net::node_id_t n = 0; n < pl_.nodes; ++n) {
    drain_expected(n, net::msg_type::plan_queues, remote_planners);
  }
}

void dist_quecc_engine::done_round(std::uint32_t batch_id) {
  for (net::node_id_t n = 1; n < pl_.nodes; ++n) {
    net_.send({n, 0, net::msg_type::batch_done, batch_id, 0, {}});
  }
  drain_expected(0, net::msg_type::batch_done,
                 static_cast<std::size_t>(pl_.nodes) - 1);
}

void dist_quecc_engine::commit_round(std::uint32_t batch_id) {
  net_.broadcast({0, 0, net::msg_type::batch_commit, batch_id, 0, {}});
  for (net::node_id_t n = 1; n < pl_.nodes; ++n) {
    drain_expected(n, net::msg_type::batch_commit, 1);
  }
}

void dist_quecc_engine::submit_batch(txn::batch& b, common::run_metrics& m) {
  while (true) {
    {
      common::mutex_lock lk(mu_);
      if (submitted_ - drained_ < cfg_.pipeline_depth) break;
    }
    drain_batch();
  }
  common::mutex_lock lk(mu_);
  core::batch_slot& s = *pipe_.slots[submitted_ % cfg_.pipeline_depth];
  s.batch = &b;
  s.metrics = &m;
  s.submit_nanos = common::now_nanos();
  s.ready_nanos = s.exec_start_nanos = s.exec_end_nanos = 0;
  // relaxed: slot resets are published by ++submitted_ under mu_ below.
  s.read_cursor.store(0, std::memory_order_relaxed);
  s.plan_busy_nanos.store(0, std::memory_order_relaxed);
  s.exec_busy_nanos.store(0, std::memory_order_relaxed);
  s.plan_pending.store(cfg_.planner_threads, std::memory_order_relaxed);
  s.exec_pending.store(cfg_.executor_threads, std::memory_order_relaxed);
  ++submitted_;
  cv_.notify_all();
}

void dist_quecc_engine::epilogue_main() {
  common::name_self("dq-epilogue");
  if (cfg_.pin_threads) common::pin_self_to(plan_.epilogue_cpu);
  for (std::uint64_t n = 0;; ++n) {
    {
      common::mutex_lock lk(mu_);
      while (!(exec_done_ > n || stop_)) cv_.wait(lk);
      if (stop_ && exec_done_ <= n) return;
    }
    run_epilogue(n);
  }
}

void dist_quecc_engine::run_epilogue(std::uint64_t n) {
  core::batch_slot& s = *pipe_.slots[n % cfg_.pipeline_depth];
  txn::batch& b = *s.batch;
  common::run_metrics& m = *s.metrics;

  if (pl_.nodes > 1) {
    common::mutex_lock nl(net_mu_);
    done_round(b.id());
  }
  // The nodes share one deterministic view of the batch, so the commit
  // epilogue (speculative recovery + status marking) runs once globally —
  // the paradigm's "no 2PC" commit. Executors for the next batch wait on
  // published_, so this is the per-slot inter-batch quiescent point.
  const std::uint64_t epi0 = common::now_nanos();
  core::batch_epilogue(db_, cfg_, b, pipe_.executors, spec_,
                       committed_.get(), m);

  {
    common::mutex_lock lk(mu_);
    published_ = n + 1;  // releases executors into batch n+1
    cv_.notify_all();
  }

  // Commit broadcast after the publication point: it mutates no database
  // state (the commit decision was implicit in the deterministic phases),
  // so batch n+1's execution overlaps the round's simulated latency.
  // net_mu_ still serializes it against bundle shipments.
  if (pl_.nodes > 1) {
    common::mutex_lock nl(net_mu_);
    commit_round(b.id());
  }
  const std::uint64_t epi1 = common::now_nanos();
  static const obs::histogram epi_hist("engine.epilogue_nanos");
  epi_hist.record_nanos(epi1 - epi0);
  static const obs::counter drained_ctr("engine.batches_drained_total");
  drained_ctr.inc();
  obs::record_span(obs::trace_stage::epilogue, epi0, epi1 - epi0, b.id(),
                   static_cast<std::uint32_t>(n % cfg_.pipeline_depth));

  m.batches += 1;
  // relaxed: quiescent point — workers finished under mu_ (see engine.cpp).
  m.plan_busy_seconds +=
      static_cast<double>(s.plan_busy_nanos.load(std::memory_order_relaxed)) /
      1e9;
  m.exec_busy_seconds +=
      static_cast<double>(s.exec_busy_nanos.load(std::memory_order_relaxed)) /
      1e9;
  m.epilogue_busy_seconds += static_cast<double>(epi1 - epi0) / 1e9;
  // Message accounting by snapshot delta: the network counter is shared
  // with bundle rounds of batches still being planned, so per-batch resets
  // would race — the cumulative delta per retirement attributes every
  // message exactly once across the run.
  const std::uint64_t sent = net_.messages_sent();
  m.messages += sent - last_messages_;
  last_messages_ = sent;
  const std::uint64_t drain_nanos = common::now_nanos();
  const std::uint64_t from = std::max(s.submit_nanos, last_drain_nanos_);
  m.elapsed_seconds += static_cast<double>(drain_nanos - from) / 1e9;
  last_drain_nanos_ = drain_nanos;

  {
    common::mutex_lock lk(mu_);
    epilogue_done_ = n + 1;
    cv_.notify_all();
  }
}

bool dist_quecc_engine::drain_batch() {
  std::uint64_t n;
  core::batch_slot* sp;
  {
    common::mutex_lock lk(mu_);
    if (drained_ == submitted_) return false;
    n = drained_;
    if (use_async_epilogue_) {
      while (epilogue_done_ <= n) cv_.wait(lk);
    } else {
      while (exec_done_ <= n) cv_.wait(lk);
    }
    sp = pipe_.slots[n % cfg_.pipeline_depth].get();
  }
  if (!use_async_epilogue_) run_epilogue(n);

  {
    common::mutex_lock lk(mu_);
    sp->batch = nullptr;
    sp->metrics = nullptr;
    drained_ = n + 1;
    cv_.notify_all();
  }
  return true;
}

void dist_quecc_engine::run_batch(txn::batch& b, common::run_metrics& m) {
  submit_batch(b, m);
  while (drain_batch()) {
  }
}

}  // namespace quecc::dist
