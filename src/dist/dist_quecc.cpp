#include "dist/dist_quecc.hpp"

#include <chrono>

#include "common/spinlock.hpp"
#include "common/thread_util.hpp"

namespace quecc::dist {

namespace {

/// Global view of a per-node configuration: the planner slicing and queue
/// routing in core::planner already understand `nodes`, they just need the
/// cluster-wide thread counts.
common::config globalize(const common::config& cfg) {
  common::config g = cfg;
  g.planner_threads =
      static_cast<worker_id_t>(cfg.planner_threads * cfg.nodes);
  g.executor_threads =
      static_cast<worker_id_t>(cfg.executor_threads * cfg.nodes);
  return g;
}

}  // namespace

dist_quecc_engine::dist_quecc_engine(storage::database& db,
                                     const common::config& cfg)
    : db_(db),
      cfg_(globalize(cfg)),
      pl_{cfg.nodes, cfg.executor_threads, cfg.planner_threads},
      net_(cfg.nodes, cfg.net_latency_micros),
      spec_(db),
      sync_(static_cast<std::ptrdiff_t>(cfg_.planner_threads) +
            cfg_.executor_threads + 1) {
  cfg_.validate();
  if (cfg_.iso == common::isolation::read_committed) {
    committed_ = std::make_unique<storage::dual_version_store>(db_);
  }
  pipe_.build(cfg_, db_, committed_.get());

  const worker_id_t planners = cfg_.planner_threads;
  const worker_id_t execs = cfg_.executor_threads;
  threads_.reserve(static_cast<std::size_t>(planners) + execs);
  for (worker_id_t p = 0; p < planners; ++p) {
    threads_.emplace_back([this, p] { planner_main(p); });
  }
  for (worker_id_t e = 0; e < execs; ++e) {
    threads_.emplace_back([this, e] { executor_main(e); });
  }
}

dist_quecc_engine::~dist_quecc_engine() {
  stop_.store(true, std::memory_order_release);
  sync_.arrive_and_wait();
  for (auto& t : threads_) t.join();
}

void dist_quecc_engine::planner_main(worker_id_t p) {
  common::name_self("dq-n" + std::to_string(pl_.node_of_planner(p)) +
                    "-plan-" + std::to_string(p));
  if (cfg_.pin_threads) common::pin_self_to(p);
  while (true) {
    sync_.arrive_and_wait();  // (1) batch start
    if (stop_.load(std::memory_order_acquire)) return;
    pipe_.planners[p].plan(*current_, pipe_.plan_outs[p]);
    sync_.arrive_and_wait();  // (2) planning complete
    sync_.arrive_and_wait();  // (3) remote bundles delivered (idle)
    sync_.arrive_and_wait();  // (4) execution complete (idle)
  }
}

void dist_quecc_engine::executor_main(worker_id_t e) {
  common::name_self("dq-n" + std::to_string(pl_.node_of_executor(e)) +
                    "-exec-" + std::to_string(e));
  if (cfg_.pin_threads) common::pin_self_to(cfg_.planner_threads + e);
  core::executor& ex = *pipe_.executors[e];
  while (true) {
    sync_.arrive_and_wait();  // (1) batch start
    if (stop_.load(std::memory_order_acquire)) return;
    sync_.arrive_and_wait();  // (2) planning done
    sync_.arrive_and_wait();  // (3) remote bundles delivered
    ex.begin_batch(batch_start_nanos_);
    ex.run_conflict_queues(pipe_.exec_queues[e]);
    if (!pipe_.read_queues.empty()) {
      ex.run_read_queues(pipe_.read_queues, read_cursor_);
    }
    sync_.arrive_and_wait();  // (4) execution complete
  }
}

void dist_quecc_engine::drain_expected(net::node_id_t node,
                                       net::msg_type type,
                                       std::size_t expected) {
  common::backoff bo;
  std::size_t got = 0;
  net::message msg;
  while (got < expected) {
    if (net_.poll(node, msg)) {
      if (msg.type == type) ++got;
      continue;
    }
    bo.spin();
  }
}

void dist_quecc_engine::ship_plan_bundles(std::uint32_t batch_id) {
  // Every planner ships one bundle (its E queues for that node's
  // executors) to every remote node. The sends overlap, so all nodes
  // resume after a single one-way latency.
  for (worker_id_t p = 0; p < cfg_.planner_threads; ++p) {
    const net::node_id_t from = pl_.node_of_planner(p);
    for (net::node_id_t n = 0; n < pl_.nodes; ++n) {
      if (n == from) continue;
      net_.send({from, n, net::msg_type::plan_queues, p, batch_id, {}});
    }
  }
  const std::size_t remote_planners =
      static_cast<std::size_t>(cfg_.planner_threads) - pl_.planners_per_node;
  for (net::node_id_t n = 0; n < pl_.nodes; ++n) {
    drain_expected(n, net::msg_type::plan_queues, remote_planners);
  }
}

void dist_quecc_engine::done_round(std::uint32_t batch_id) {
  for (net::node_id_t n = 1; n < pl_.nodes; ++n) {
    net_.send({n, 0, net::msg_type::batch_done, batch_id, 0, {}});
  }
  drain_expected(0, net::msg_type::batch_done,
                 static_cast<std::size_t>(pl_.nodes) - 1);
}

void dist_quecc_engine::commit_round(std::uint32_t batch_id) {
  net_.broadcast({0, 0, net::msg_type::batch_commit, batch_id, 0, {}});
  for (net::node_id_t n = 1; n < pl_.nodes; ++n) {
    drain_expected(n, net::msg_type::batch_commit, 1);
  }
}

void dist_quecc_engine::run_batch(txn::batch& b, common::run_metrics& m) {
  common::stopwatch sw;
  current_ = &b;
  batch_start_nanos_ = common::now_nanos();
  read_cursor_.store(0, std::memory_order_relaxed);
  net_.reset_counters();

  sync_.arrive_and_wait();  // (1) release planners
  sync_.arrive_and_wait();  // (2) planning done
  if (pl_.nodes > 1) ship_plan_bundles(b.id());
  sync_.arrive_and_wait();  // (3) bundles delivered, release executors
  sync_.arrive_and_wait();  // (4) execution done

  if (pl_.nodes > 1) done_round(b.id());
  // The nodes share one deterministic view of the batch, so the commit
  // epilogue (speculative recovery + status marking) runs once globally —
  // the paradigm's "no 2PC" commit.
  core::batch_epilogue(db_, cfg_, b, pipe_.executors, spec_,
                       committed_.get(), m);
  if (pl_.nodes > 1) commit_round(b.id());

  m.messages += net_.messages_sent();
  m.batches += 1;
  m.elapsed_seconds += sw.seconds();
}

}  // namespace quecc::dist
