// Cluster placement: which node (and which executor on that node) owns a
// storage partition.
//
// The mapping mirrors the centralized planner's queue routing (see
// core/planner.cpp route()): partitions are striped round-robin across the
// cluster's global executor slots, and a node owns the contiguous group of
// executor slots [node * executors_per_node, (node+1) * executors_per_node).
// Keeping the two mappings identical is what lets the distributed
// queue-oriented engine reuse the centralized planning phase verbatim: a
// fragment's queue is "remote" exactly when its home partition's node
// differs from the planner's node.
#pragma once

#include <cstdint>

#include "common/types.hpp"
#include "net/message.hpp"

namespace quecc::dist {

/// Static cluster shape: N nodes, each running the same number of planner
/// and executor threads. Aggregate initialization order is
/// {nodes, executors_per_node, planners_per_node}.
struct placement {
  net::node_id_t nodes = 1;
  worker_id_t executors_per_node = 1;
  worker_id_t planners_per_node = 1;

  worker_id_t total_executors() const noexcept {
    return static_cast<worker_id_t>(nodes * executors_per_node);
  }
  worker_id_t total_planners() const noexcept {
    return static_cast<worker_id_t>(nodes * planners_per_node);
  }

  /// Global executor slot that anchors partition `p`'s queues. Partitions
  /// wrap round-robin over the executor slots, so clusters with fewer
  /// executors than partitions (or partition counts not divisible by the
  /// node count) still place every partition.
  worker_id_t global_executor_of_part(part_id_t p) const noexcept {
    return static_cast<worker_id_t>(p % total_executors());
  }

  /// Node that owns partition `p`'s records.
  net::node_id_t node_of_part(part_id_t p) const noexcept {
    return static_cast<net::node_id_t>(global_executor_of_part(p) /
                                       executors_per_node);
  }

  /// Node that runs global executor slot `e`.
  net::node_id_t node_of_executor(worker_id_t e) const noexcept {
    return static_cast<net::node_id_t>(e / executors_per_node);
  }

  /// Node that runs global planner slot `p`.
  net::node_id_t node_of_planner(worker_id_t p) const noexcept {
    return static_cast<net::node_id_t>(p / planners_per_node);
  }

  /// Executor index within its node of global executor slot `e`.
  worker_id_t local_executor(worker_id_t e) const noexcept {
    return static_cast<worker_id_t>(e % executors_per_node);
  }

  // --- storage arenas ------------------------------------------------------
  // storage::table materializes one row arena (slab + meta + index shard)
  // per partition, addressed by the high bits of every row id
  // (storage::rid_shard). Placement therefore maps partitions to *arenas*,
  // not just to queues: NUMA-aware placement pins arena_of_part(p)'s
  // memory on the socket running node_of_part(p)'s executors.

  /// Arena backing partition `p` in every partition-sharded table —
  /// identity, because tables create one arena per partition
  /// (table::home_shard collapses single-shard/replicated tables to 0).
  part_id_t arena_of_part(part_id_t p) const noexcept { return p; }

  /// True when node `n` hosts partition `p`'s arena: the predicate a NUMA
  /// pinning pass uses to decide which arenas to bind to `n`'s socket.
  bool node_hosts_arena(net::node_id_t n, part_id_t p) const noexcept {
    return node_of_part(p) == n;
  }
};

}  // namespace quecc::dist
