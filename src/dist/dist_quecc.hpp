// Distributed queue-oriented engine over the simulated cluster (paper
// Section 2.2 / the scale-out design of "Highly Available Queue-oriented
// Speculative Transaction Processing").
//
// Every node runs its own planners and executors; planning produces, per
// planner, one fragment-queue bundle per node. Bundles destined for remote
// nodes are shipped over net::network (payloads stay in shared memory —
// DESIGN.md 2.5 — the network models delivery latency and message counts),
// and a node's executors start draining only after every remote bundle
// addressed to the node has been delivered. Commitment needs no 2PC: the
// two deterministic phases make the commit decision implicit, so the batch
// ends with a single done/commit round through the coordinator —
// messages per batch are constant:
//
//     planners * (nodes - 1)  plan bundles
//   + (nodes - 1)             batch_done   (participant -> coordinator)
//   + (nodes - 1)             batch_commit (coordinator broadcast)
//
// independent of how many transactions are distributed — the structural
// contrast with per-transaction commit protocols that dist_calvin (and the
// test DistBehaviour.QueccCommitCostIsPerBatchNotPerTxn) measures.
//
// Like the centralized engine, batches pipeline over a ring of
// config::pipeline_depth slots: planners move on to batch i+1 (and the
// last planner ships its bundles) while batch i still executes, and the
// done/commit rounds split around the publication point the same way the
// centralized epilogue does — the done round and the global deterministic
// epilogue run at the quiescent point (pre-publish), while the commit
// broadcast and the batch accounting run on the epilogue worker after
// executors were released into batch i+1 (the broadcast mutates no
// database state, so overlapping it is safe). Execution and the epilogue
// stay sequential by batch id. All network rounds run under one mutex so
// a bundle shipment for batch i+1 never steals the done/commit messages
// of batch i.
#pragma once

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/mutex.hpp"
#include "common/phase_annotations.hpp"
#include "common/thread_annotations.hpp"
#include "core/engine.hpp"
#include "core/executor.hpp"
#include "core/planner.hpp"
#include "core/spec_manager.hpp"
#include "dist/partitioner.hpp"
#include "net/network.hpp"
#include "protocols/iface.hpp"
#include "storage/dual_version.hpp"

namespace quecc::dist {

class dist_quecc_engine final : public proto::engine {
 public:
  /// `cfg` thread counts are per node: a cluster of cfg.nodes nodes runs
  /// cfg.planner_threads planners and cfg.executor_threads executors each.
  dist_quecc_engine(storage::database& db, const common::config& cfg);
  ~dist_quecc_engine() override;

  dist_quecc_engine(const dist_quecc_engine&) = delete;
  dist_quecc_engine& operator=(const dist_quecc_engine&) = delete;

  const char* name() const noexcept override { return "dist-quecc"; }
  void run_batch(txn::batch& b, common::run_metrics& m) override;
  void submit_batch(txn::batch& b, common::run_metrics& m) override;
  bool drain_batch() override;
  std::uint32_t pipeline_depth() const noexcept override {
    return cfg_.pipeline_depth;
  }

  const placement& cluster() const noexcept { return pl_; }

 private:
  PLAN_PHASE void planner_main(worker_id_t p);
  EXEC_PHASE void executor_main(worker_id_t e);
  EPILOGUE_PHASE void epilogue_main();
  /// Retire batch n: done round + global epilogue at the quiescent point,
  /// advance published_, commit broadcast + accounting, advance
  /// epilogue_done_. Runs on the epilogue worker (async mode) or the
  /// drain caller (inline mode) — exactly one of the two per engine.
  EPILOGUE_PHASE void run_epilogue(std::uint64_t n);

  /// Ship every planner's remote queue bundles and block until each node
  /// received all bundles addressed to it (one one-way latency, since the
  /// sends overlap). Runs on the last planner to finish a slot.
  PLAN_PHASE void ship_plan_bundles(std::uint32_t batch_id) REQUIRES(net_mu_);

  /// Participants report batch_done to the coordinator; after the global
  /// deterministic epilogue the coordinator broadcasts batch_commit. Both
  /// run on the drain thread.
  EPILOGUE_PHASE void done_round(std::uint32_t batch_id) REQUIRES(net_mu_);
  EPILOGUE_PHASE void commit_round(std::uint32_t batch_id) REQUIRES(net_mu_);

  void drain_expected(net::node_id_t node, net::msg_type type,
                      std::size_t expected);

  storage::database& db_;
  common::config cfg_;        ///< global view: thread counts * nodes
  placement pl_;
  net::network net_;
  std::unique_ptr<storage::dual_version_store> committed_;  // RC only
  core::spec_manager spec_;

  core::pipeline pipe_;  ///< shared planner/executor fabric (global view)

  // Stage synchronization — same scheme as core::quecc_engine: monotonic
  // batch counters guarded by mu_, a batch's slot is counter % depth.
  common::mutex mu_;
  common::cond_var cv_;
  std::uint64_t submitted_ GUARDED_BY(mu_) = 0;
  std::uint64_t ready_ GUARDED_BY(mu_) = 0;  ///< planned AND bundles landed
  std::uint64_t exec_done_ GUARDED_BY(mu_) = 0;
  /// State-mutating epilogue half done; releases executors (see
  /// core/engine.hpp — same three-stage counter scheme).
  std::uint64_t published_ GUARDED_BY(mu_) = 0;
  std::uint64_t epilogue_done_ GUARDED_BY(mu_) = 0;
  std::uint64_t drained_ GUARDED_BY(mu_) = 0;
  bool stop_ GUARDED_BY(mu_) = false;

  /// Third-stage switch, fixed at construction (see core::quecc_engine).
  bool use_async_epilogue_ = false;
  /// Topology-aware thread->cpu assignment (pin_threads/numa_bind).
  common::placement_plan plan_;

  /// Serializes every use of net_: the plan-bundle round (planner thread)
  /// and the done/commit rounds (drain thread) each consume exactly the
  /// messages they produced before releasing it, so rounds of overlapping
  /// batches cannot steal each other's messages. Never nested with mu_.
  common::mutex net_mu_;

  // Epilogue-owner state: touched only by run_epilogue, which runs on
  // exactly one thread for the engine's lifetime.
  std::uint64_t last_drain_nanos_ = 0;
  std::uint64_t last_messages_ = 0;  ///< net counter snapshot at last drain

  std::vector<std::thread> threads_;
};

}  // namespace quecc::dist
