#include "dist/dist_calvin.hpp"

#include <chrono>
#include <tuple>

#include "common/thread_util.hpp"
#include "protocols/local_host.hpp"

namespace quecc::dist {


dist_calvin_engine::dist_calvin_engine(storage::database& db,
                                       const common::config& cfg)
    : db_(db),
      cfg_(cfg),
      pl_{cfg.nodes, cfg.executor_threads, cfg.planner_threads},
      net_(cfg.nodes, cfg.net_latency_micros),
      locks_(cfg.nodes),
      ready_(cfg.nodes),
      mailbox_(cfg.nodes) {
  cfg_.validate();
}

std::uint64_t dist_calvin_engine::rec_of(table_id_t table,
                                         key_t key) noexcept {
  return record_hash(table, key);
}

void dist_calvin_engine::lock_set(
    const txn::txn_desc& t,
    std::vector<std::tuple<net::node_id_t, std::uint64_t, bool>>& out) const {
  out.clear();
  for (const auto& f : t.frags) {
    const std::uint64_t rec = rec_of(f.table, f.key);
    const net::node_id_t node = pl_.node_of_part(f.part);
    const bool exclusive = f.updates_database();
    bool found = false;
    for (auto& [n, r, x] : out) {
      if (r == rec) {
        x = x || exclusive;  // strongest required mode
        found = true;
        break;
      }
    }
    if (!found) out.emplace_back(node, rec, exclusive);
  }
}

void dist_calvin_engine::ensure_pool() {
  if (pool_) return;
  const unsigned workers =
      static_cast<unsigned>(cfg_.nodes) * cfg_.worker_threads;
  worker_metrics_.resize(workers);
  pool_ = std::make_unique<common::batch_pool>(
      workers, [this](unsigned w) { worker_job(w); }, "dcalvin",
      cfg_.pin_threads);
}

void dist_calvin_engine::push_ready(net::node_id_t node, seq_t s) {
  node_ready& r = ready_[node];
  common::spin_guard guard(r.latch);
  r.q.push_back(s);  // capacity reserved per batch: no reallocation
  r.count.fetch_add(1, std::memory_order_release);
}

bool dist_calvin_engine::pop_ready(net::node_id_t node, seq_t& s) {
  node_ready& r = ready_[node];
  common::backoff bo;
  while (true) {
    // relaxed: head is only advanced by the CAS below (acq_rel); the
    // acquire load of count is what pairs with the producer's release.
    const std::size_t h = r.head.load(std::memory_order_relaxed);
    const std::size_t c = r.count.load(std::memory_order_acquire);
    if (h < c) {
      std::size_t expect = h;
      if (r.head.compare_exchange_weak(expect, h + 1,
                                       std::memory_order_acq_rel)) {
        s = r.q[h];
        return true;
      }
      continue;
    }
    if (remaining_.load(std::memory_order_acquire) == 0) return false;
    bo.spin();
  }
}

void dist_calvin_engine::sequence(txn::batch& b) {
  if (pl_.nodes <= 1) return;
  // Drain node 0's stale txn_release notifications from the previous
  // batch here; the wait loop below does the same for every other node as
  // a side effect (stale messages were delivered before this batch's
  // seq_slice), so no inbox grows across batches.
  net::message stale;
  while (net_.poll(0, stale)) {
  }
  // Epoch replication: the sequencer (node 0) ships the ordered batch
  // input to every scheduler; payloads stay in shared memory (DESIGN.md
  // 2.5), the broadcast pays the message count and one one-way latency.
  net_.broadcast({0, 0, net::msg_type::seq_slice, b.id(), 0, {}});
  for (net::node_id_t n = 1; n < pl_.nodes; ++n) {
    common::backoff bo;
    net::message msg;
    bool got = false;
    while (!got) {
      if (net_.poll(n, msg)) {
        got = msg.type == net::msg_type::seq_slice;  // drop stale releases
        continue;
      }
      bo.spin();
    }
  }
}

void dist_calvin_engine::run_batch(txn::batch& b, common::run_metrics& m) {
  ensure_pool();
  common::stopwatch sw;
  current_ = &b;
  batch_start_nanos_ = common::now_nanos();
  net_.reset_counters();
  sequence(b);

  for (auto& nl : locks_) {
    // Workers are quiescent between batches, but clear under the latch
    // anyway: the guarded-access contract stays unconditional.
    for (auto& s : nl.stripes) {
      common::spin_guard guard(s.latch);
      s.locks.clear();
    }
  }
  for (auto& wm : worker_metrics_) wm = common::run_metrics{};

  // Pre-pass: home node, participant set, ungranted-lock and remote-read
  // counters for every transaction — before workers can touch them.
  // Atomic vectors cannot resize (atomics are immovable); reallocate only
  // when the batch outgrows them and zero in place otherwise.
  if (pending_locks_.size() < b.size()) {
    pending_locks_ = std::vector<std::atomic<std::uint32_t>>(b.size());
    reads_arrived_ = std::vector<std::atomic<std::uint32_t>>(b.size());
  }
  // relaxed: pre-pass runs before begin_round() releases the workers.
  for (std::size_t i = 0; i < b.size(); ++i) {
    reads_arrived_[i].store(0, std::memory_order_relaxed);
  }
  home_.assign(b.size(), 0);
  participants_.resize(b.size());
  lock_sets_.resize(b.size());
  for (std::size_t i = 0; i < b.size(); ++i) {
    const txn::txn_desc& t = b.at(i);
    auto& parts = participants_[i];
    parts.clear();
    for (const auto& f : t.frags) {
      const net::node_id_t n = pl_.node_of_part(f.part);
      bool found = false;
      for (const net::node_id_t p : parts) found = found || p == n;
      if (!found) parts.push_back(n);
    }
    home_[i] = t.frags.empty() ? net::node_id_t{0}
                               : pl_.node_of_part(t.frags.front().part);
    lock_set(t, lock_sets_[i]);
    // relaxed: pre-pass, before workers start (see above).
    pending_locks_[i].store(static_cast<std::uint32_t>(lock_sets_[i].size()),
                            std::memory_order_relaxed);
  }
  for (auto& r : ready_) {
    r.q.clear();
    r.q.reserve(b.size());
    // relaxed: pre-pass, before workers start (see above).
    r.head.store(0, std::memory_order_relaxed);
    r.count.store(0, std::memory_order_relaxed);
  }
  remaining_.store(static_cast<std::uint32_t>(b.size()),
                   std::memory_order_release);

  pool_->begin_round();
  schedule(b);  // the folded per-node deterministic lock schedulers
  pool_->end_round();

  for (auto& wm : worker_metrics_) m.merge(wm);
  m.messages += net_.messages_sent();
  m.batches += 1;
  m.elapsed_seconds += sw.seconds();
}

void dist_calvin_engine::schedule(txn::batch& b) {
  for (std::size_t i = 0; i < b.size(); ++i) {
    const auto seq = static_cast<seq_t>(i);
    const auto& set = lock_sets_[i];
    if (set.empty()) {
      push_ready(home_[seq], seq);
      continue;
    }
    for (const auto& [node, rec, exclusive] : set) {
      stripe& st = stripe_of(node, rec);
      bool granted = false;
      {
        common::spin_guard guard(st.latch);
        lock_entry& e = st.locks[rec];
        if (e.waiters.empty() &&
            (e.holders == 0 || (!exclusive && !e.held_exclusive))) {
          e.held_exclusive = e.holders == 0 ? exclusive : e.held_exclusive;
          e.holders += 1;
          granted = true;
        } else {
          e.waiters.push_back({seq, exclusive});
        }
      }
      if (granted &&
          pending_locks_[seq].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        push_ready(home_[seq], seq);
      }
    }
  }
}

void dist_calvin_engine::release_locks(seq_t seq) {
  std::vector<seq_t> newly_ready;
  for (const auto& [node, rec, exclusive] : lock_sets_[seq]) {
    (void)exclusive;
    stripe& st = stripe_of(node, rec);
    std::vector<seq_t> granted;
    {
      common::spin_guard guard(st.latch);
      lock_entry& e = st.locks[rec];
      e.holders -= 1;
      if (e.holders == 0) e.held_exclusive = false;
      // FIFO grant: head waiter, then consecutive shared waiters.
      while (!e.waiters.empty()) {
        const lock_request& w = e.waiters.front();
        const bool can_grant =
            e.holders == 0 || (!w.exclusive && !e.held_exclusive);
        if (!can_grant) break;
        e.held_exclusive = e.holders == 0 ? w.exclusive : e.held_exclusive;
        e.holders += 1;
        granted.push_back(w.seq);
        e.waiters.erase(e.waiters.begin());
        if (e.held_exclusive) break;
      }
    }
    for (const seq_t s : granted) {
      if (pending_locks_[s].fetch_sub(1, std::memory_order_acq_rel) == 1) {
        newly_ready.push_back(s);
      }
    }
  }
  for (const seq_t s : newly_ready) push_ready(home_[s], s);
}

void dist_calvin_engine::collect_remote_reads(net::node_id_t home,
                                              seq_t seq) {
  const auto& parts = participants_[seq];
  if (parts.size() <= 1) return;
  // Each remote participant forwards its local reads to the home node;
  // the home worker stalls until every forward is delivered. Concurrent
  // waiters on the same node share one inbox, so polling is serialized and
  // every drained forward is credited to its own transaction.
  for (const net::node_id_t n : parts) {
    if (n == home) continue;
    net_.send({n, home, net::msg_type::remote_reads, seq, 0, {}});
  }
  const auto need = static_cast<std::uint32_t>(parts.size() - 1);
  common::backoff bo;
  while (reads_arrived_[seq].load(std::memory_order_acquire) < need) {
    net::message msg;
    bool got = false;
    {
      common::spin_guard guard(mailbox_[home].latch);
      got = net_.poll(home, msg);
    }
    if (got) {
      if (msg.type == net::msg_type::remote_reads) {
        reads_arrived_[msg.a].fetch_add(1, std::memory_order_acq_rel);
      }
      continue;  // txn_release notifications are latch-free here: dropped
    }
    bo.spin();
  }
}

void dist_calvin_engine::worker_job(unsigned worker) {
  txn::batch& b = *current_;
  common::run_metrics& wm = worker_metrics_[worker];
  const auto node = static_cast<net::node_id_t>(worker / cfg_.worker_threads);
  proto::inplace_host host(db_);

  seq_t s;
  while (pop_ready(node, s)) {
    txn::txn_desc& t = b.at(s);
    collect_remote_reads(node, s);
    if (proto::run_txn_serially(t, host)) {
      wm.committed += 1;
    } else {
      wm.aborted += 1;
    }
    wm.txn_latency.record_nanos(common::now_nanos() - batch_start_nanos_);
    // Home tells remote participants the txn is done: release local locks.
    for (const net::node_id_t n : participants_[s]) {
      if (n != node) {
        net_.send({node, n, net::msg_type::txn_release, s, 0, {}});
      }
    }
    release_locks(s);
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace quecc::dist
