#include "obs/metrics.hpp"

#include <array>
#include <atomic>
#include <map>
#include <memory>
#include <ostream>
#include <stdexcept>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/json.hpp"

namespace quecc::obs {

namespace {

/// Global runtime kill switch. relaxed: a stale read only means one more
/// (or one fewer) recorded sample around the toggle; no engine state
/// orders against it.
std::atomic<bool> g_enabled{true};

#if !defined(QUECC_OBS_COMPILED_OUT)

enum class metric_kind : std::uint8_t { counter, gauge, histogram };

/// Histogram shard cell: the latency_histogram bucket layout with atomic
/// counters so the scraper may read while the owner thread records.
struct hist_cells {
  std::array<std::atomic<std::uint64_t>,
             common::latency_histogram::kBuckets>
      buckets{};
  std::atomic<std::uint64_t> count{0};
  std::atomic<std::uint64_t> sum{0};
};

/// One thread's private slice of every sharded metric. Owned by the
/// registry; leased to exactly one thread at a time. Writes are relaxed
/// single-writer increments; the scraper reads concurrently with relaxed
/// loads (a scrape is a statistical snapshot, not a linearization point).
struct thread_shard {
  std::array<std::atomic<std::uint64_t>, kMaxCounters> counters{};
  std::array<hist_cells, kMaxHistograms> hists{};
};

class registry {
 public:
  /// Leaky singleton: thread-exit hooks (shard retirement) may run during
  /// static destruction, so the registry must outlive every thread.
  static registry& instance() {
    static registry* r = new registry;
    return *r;
  }

  std::uint32_t register_metric(std::string_view name, metric_kind kind) {
    common::mutex_lock lk(mu_);
    auto it = names_.find(name);
    if (it != names_.end()) {
      if (it->second.kind != kind) {
        throw std::logic_error("obs: metric '" + std::string(name) +
                               "' re-registered with a different kind");
      }
      return it->second.id;
    }
    const std::size_t cap = kind == metric_kind::counter   ? kMaxCounters
                            : kind == metric_kind::gauge   ? kMaxGauges
                                                           : kMaxHistograms;
    std::uint32_t& next = kind == metric_kind::counter   ? next_counter_
                          : kind == metric_kind::gauge   ? next_gauge_
                                                         : next_hist_;
    if (next >= cap) {
      throw std::length_error("obs: metric capacity exhausted for '" +
                              std::string(name) + "'");
    }
    const std::uint32_t id = next++;
    names_.emplace(std::string(name), entry{kind, id});
    return id;
  }

  /// The calling thread's shard, leased on first use and retired (values
  /// folded into retired_, shard recycled) when the thread exits.
  thread_shard& local_shard() {
    thread_local lease l;
    if (l.shard == nullptr) l.shard = acquire_shard();
    return *l.shard;
  }

  std::atomic<std::int64_t>& gauge_cell(std::uint32_t id) noexcept {
    return gauges_[id];
  }

  metrics_snapshot snapshot() {
    metrics_snapshot out;
    common::mutex_lock lk(mu_);
    for (const auto& [name, e] : names_) {  // std::map: name-sorted
      switch (e.kind) {
        case metric_kind::counter: {
          // relaxed (all loads in this function): scrape of monotonic
          // stat cells; the snapshot is a statistical view, nothing
          // orders against it.
          std::uint64_t v =
              retired_.counters[e.id].load(std::memory_order_relaxed);
          for (const auto& s : shards_) {
            v += s->counters[e.id].load(std::memory_order_relaxed);
          }
          out.counters.emplace_back(name, v);
          break;
        }
        case metric_kind::gauge:
          // relaxed: same statistical-scrape contract as the counters.
          out.gauges.emplace_back(
              name, gauges_[e.id].load(std::memory_order_relaxed));
          break;
        case metric_kind::histogram: {
          common::latency_histogram h;
          auto fold = [&h](const hist_cells& c) {
            std::array<std::uint64_t, common::latency_histogram::kBuckets>
                b{};
            for (std::size_t i = 0; i < b.size(); ++i) {
              // relaxed: statistical scrape of single-writer hist cells.
              b[i] = c.buckets[i].load(std::memory_order_relaxed);
            }
            // relaxed: same scrape contract; count/sum may be a step
            // ahead of the buckets, which a statistical view tolerates.
            h.merge_bucket_counts(b.data(),
                                  c.count.load(std::memory_order_relaxed),
                                  c.sum.load(std::memory_order_relaxed));
          };
          fold(retired_.hists[e.id]);
          for (const auto& s : shards_) fold(s->hists[e.id]);
          out.histograms.emplace_back(name, h);
          break;
        }
      }
    }
    return out;
  }

  void reset() {
    common::mutex_lock lk(mu_);
    auto zero = [](thread_shard& s) {
      // relaxed (all stores below): test/bench-boundary reset; callers
      // quiesce recording threads first (see header contract).
      for (auto& c : s.counters) c.store(0, std::memory_order_relaxed);
      for (auto& h : s.hists) {
        for (auto& b : h.buckets) b.store(0, std::memory_order_relaxed);
        h.count.store(0, std::memory_order_relaxed);
        h.sum.store(0, std::memory_order_relaxed);
      }
    };
    zero(retired_);
    for (const auto& s : shards_) zero(*s);
    // relaxed: same reset contract as above.
    for (auto& g : gauges_) g.store(0, std::memory_order_relaxed);
  }

 private:
  struct entry {
    metric_kind kind;
    std::uint32_t id;
  };

  /// thread_local RAII wrapper: folds the shard back on thread exit.
  struct lease {
    thread_shard* shard = nullptr;
    ~lease() {
      if (shard != nullptr) registry::instance().retire_shard(shard);
    }
  };

  thread_shard* acquire_shard() {
    common::mutex_lock lk(mu_);
    if (!free_.empty()) {
      thread_shard* s = free_.back();
      free_.pop_back();
      return s;
    }
    shards_.push_back(std::make_unique<thread_shard>());
    return shards_.back().get();
  }

  void retire_shard(thread_shard* s) {
    common::mutex_lock lk(mu_);
    // relaxed (all atomics below): single-writer shard being folded by
    // its (exiting) owner; the retired accumulator is scraped with the
    // same statistical-snapshot contract as live shards.
    for (std::size_t i = 0; i < kMaxCounters; ++i) {
      const auto v = s->counters[i].load(std::memory_order_relaxed);
      if (v != 0) {
        retired_.counters[i].fetch_add(v, std::memory_order_relaxed);
        s->counters[i].store(0, std::memory_order_relaxed);
      }
    }
    for (std::size_t i = 0; i < kMaxHistograms; ++i) {
      hist_cells& from = s->hists[i];
      hist_cells& to = retired_.hists[i];
      for (std::size_t b = 0; b < from.buckets.size(); ++b) {
        // relaxed: owner-thread fold of its own single-writer cells into
        // the retired accumulator; mu_ orders this against recycling.
        const auto v = from.buckets[b].load(std::memory_order_relaxed);
        if (v != 0) {
          to.buckets[b].fetch_add(v, std::memory_order_relaxed);
          from.buckets[b].store(0, std::memory_order_relaxed);
        }
      }
      // relaxed: same owner-fold contract as the bucket loop above.
      to.count.fetch_add(from.count.load(std::memory_order_relaxed),
                         std::memory_order_relaxed);
      from.count.store(0, std::memory_order_relaxed);
      // relaxed: same owner-fold contract as the bucket loop above.
      to.sum.fetch_add(from.sum.load(std::memory_order_relaxed),
                       std::memory_order_relaxed);
      from.sum.store(0, std::memory_order_relaxed);
    }
    free_.push_back(s);
  }

  mutable common::mutex mu_;
  std::map<std::string, entry, std::less<>> names_ GUARDED_BY(mu_);
  std::uint32_t next_counter_ GUARDED_BY(mu_) = 0;
  std::uint32_t next_gauge_ GUARDED_BY(mu_) = 0;
  std::uint32_t next_hist_ GUARDED_BY(mu_) = 0;
  /// Every shard ever created (stable addresses); free_ holds the subset
  /// currently unleased. Shard *cells* are atomics read outside mu_; the
  /// containers themselves are only touched under it.
  std::vector<std::unique_ptr<thread_shard>> shards_ GUARDED_BY(mu_);
  std::vector<thread_shard*> free_ GUARDED_BY(mu_);
  /// Fold target for exited threads' shards (cells atomic, see above).
  thread_shard retired_;
  std::array<std::atomic<std::int64_t>, kMaxGauges> gauges_{};
};

#endif  // !QUECC_OBS_COMPILED_OUT

}  // namespace

void set_metrics_enabled(bool on) noexcept {
  // relaxed: see g_enabled.
  g_enabled.store(on, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  // relaxed: see g_enabled.
  return g_enabled.load(std::memory_order_relaxed);
}

#if !defined(QUECC_OBS_COMPILED_OUT)

counter::counter(std::string_view name)
    : id_(registry::instance().register_metric(name, metric_kind::counter)) {}

void counter::inc(std::uint64_t n) const noexcept {
  if (id_ == kInvalidMetric || !metrics_enabled()) return;
  // relaxed: monotonic stat cell on the caller's own shard; aggregated by
  // snapshot() with no ordering requirement.
  registry::instance().local_shard().counters[id_].fetch_add(
      n, std::memory_order_relaxed);
}

gauge::gauge(std::string_view name)
    : id_(registry::instance().register_metric(name, metric_kind::gauge)) {}

void gauge::set(std::int64_t v) const noexcept {
  if (id_ == kInvalidMetric || !metrics_enabled()) return;
  // relaxed: instantaneous stat value; scrapes want a recent value, not
  // an ordered one.
  registry::instance().gauge_cell(id_).store(v, std::memory_order_relaxed);
}

void gauge::add(std::int64_t delta) const noexcept {
  if (id_ == kInvalidMetric || !metrics_enabled()) return;
  // relaxed: see set().
  registry::instance().gauge_cell(id_).fetch_add(delta,
                                                 std::memory_order_relaxed);
}

histogram::histogram(std::string_view name)
    : id_(registry::instance().register_metric(name,
                                               metric_kind::histogram)) {}

void histogram::record_nanos(std::uint64_t ns) const noexcept {
  if (id_ == kInvalidMetric || !metrics_enabled()) return;
  std::uint64_t b = 0;
  for (std::uint64_t v = ns; v > 1; v >>= 1) ++b;  // floor(log2), 0 for 0/1
  if (b >= common::latency_histogram::kBuckets) {
    b = common::latency_histogram::kBuckets - 1;
  }
  hist_cells& c = registry::instance().local_shard().hists[id_];
  // relaxed (all three): stat cells on the caller's own shard, merged by
  // snapshot() without ordering requirements.
  c.buckets[b].fetch_add(1, std::memory_order_relaxed);
  c.count.fetch_add(1, std::memory_order_relaxed);
  c.sum.fetch_add(ns, std::memory_order_relaxed);
}

metrics_snapshot snapshot_metrics() { return registry::instance().snapshot(); }

void reset_metrics() { registry::instance().reset(); }

#else  // QUECC_OBS_COMPILED_OUT: handles are inert, snapshots empty.

counter::counter(std::string_view) {}
void counter::inc(std::uint64_t) const noexcept {}
gauge::gauge(std::string_view) {}
void gauge::set(std::int64_t) const noexcept {}
void gauge::add(std::int64_t) const noexcept {}
histogram::histogram(std::string_view) {}
void histogram::record_nanos(std::uint64_t) const noexcept {}

metrics_snapshot snapshot_metrics() { return {}; }
void reset_metrics() {}

#endif  // QUECC_OBS_COMPILED_OUT

void write_histogram_json(json_writer& w, const common::latency_histogram& h) {
  w.begin_object();
  w.kv("count", h.count());
  w.kv("sum_nanos", h.sum_nanos());
  w.kv("mean_nanos", h.mean_nanos());
  w.kv("p50_nanos", h.percentile_nanos(50));
  w.kv("p95_nanos", h.percentile_nanos(95));
  w.kv("p99_nanos", h.percentile_nanos(99));
  w.key("buckets");
  w.begin_array();
  for (std::size_t b = 0; b < common::latency_histogram::kBuckets; ++b) {
    const std::uint64_t n = h.bucket_count(b);
    if (n == 0) continue;
    w.begin_array();
    w.value(common::latency_histogram::bucket_lower_nanos(b));
    w.value(n);
    w.end_array();
  }
  w.end_array();
  w.end_object();
}

void write_metrics_sections(json_writer& w) {
  const metrics_snapshot snap = snapshot_metrics();
  w.key("counters");
  w.begin_object();
  for (const auto& [name, v] : snap.counters) w.kv(name, v);
  w.end_object();
  w.key("gauges");
  w.begin_object();
  for (const auto& [name, v] : snap.gauges) w.kv(name, v);
  w.end_object();
  w.key("histograms");
  w.begin_object();
  for (const auto& [name, h] : snap.histograms) {
    w.key(name);
    write_histogram_json(w, h);
  }
  w.end_object();
}

void write_metrics_json(std::ostream& os) {
  json_writer w(os);
  w.begin_object();
  w.kv("quecc_metrics_schema", 1);
  write_metrics_sections(w);
  w.end_object();
  os << '\n';
}

}  // namespace quecc::obs
