// Engine-wide metrics registry: named counters, gauges, and log-bucketed
// histograms, sharded per thread.
//
// Design goals, in order:
//   1. Hot paths pay one relaxed increment on a thread-local shard —
//      no lock, no cache-line ping-pong between workers (each thread
//      owns its shard exclusively; only the scraper ever reads it).
//   2. Scraping never blocks recording: snapshot() takes only the
//      registration mutex (contended exclusively by thread birth/death
//      and first-use metric registration, never by increments) and
//      aggregates the shards with relaxed loads.
//   3. Observability must never perturb execution: nothing in here reads
//      a clock or branches engine behavior, and the whole layer can be
//      compiled out (-DQUECC_OBS_COMPILED_OUT) — a regression test pins
//      state-hash equality between enabled and disabled runs.
//
// Metric model:
//   * counter   — monotonic u64, summed across thread shards. A thread
//                 that exits folds its shard into a retired accumulator,
//                 so totals survive engine teardown.
//   * gauge     — instantaneous i64 (set/add), registry-global: gauges
//                 describe shared structures (queue depth), not
//                 per-thread work, so sharding them would mis-model.
//   * histogram — the common::latency_histogram log-bucket layout with
//                 atomic cells, sharded like counters and merged into a
//                 plain latency_histogram on scrape.
//
// Naming convention: dot-separated "<subsystem>.<what>_<unit>" with a
// "_total" suffix for counters ("log.fsyncs_total", "admission.queue_depth").
// The README "Observability" section tables every name the tree emits.
//
// Handles are cheap value types (a u32 id); construct them once
// (function-static or member) and call inc()/set()/record_nanos() on the
// hot path. Registration is idempotent by name; registering the same name
// with a different kind throws.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "common/stats.hpp"

namespace quecc::obs {

class json_writer;

inline constexpr std::uint32_t kInvalidMetric = 0xFFFFFFFFu;

/// Capacity limits of a thread shard. Registration beyond them throws
/// std::length_error — metrics are a curated set, not user data.
inline constexpr std::size_t kMaxCounters = 192;
inline constexpr std::size_t kMaxGauges = 48;
inline constexpr std::size_t kMaxHistograms = 24;

class counter {
 public:
  counter() = default;  ///< unbound handle; every operation is a no-op
  /// Registers (or re-finds) the named counter.
  explicit counter(std::string_view name);
  void inc(std::uint64_t n = 1) const noexcept;

 private:
  std::uint32_t id_ = kInvalidMetric;
};

class gauge {
 public:
  gauge() = default;
  explicit gauge(std::string_view name);
  void set(std::int64_t v) const noexcept;
  void add(std::int64_t delta) const noexcept;

 private:
  std::uint32_t id_ = kInvalidMetric;
};

class histogram {
 public:
  histogram() = default;
  explicit histogram(std::string_view name);
  void record_nanos(std::uint64_t ns) const noexcept;

 private:
  std::uint32_t id_ = kInvalidMetric;
};

/// One aggregated scrape of the registry, name-sorted (deterministic
/// serialization order — the exporters are determinism-analyzer sinks).
struct metrics_snapshot {
  std::vector<std::pair<std::string, std::uint64_t>> counters;
  std::vector<std::pair<std::string, std::int64_t>> gauges;
  std::vector<std::pair<std::string, common::latency_histogram>> histograms;
};

/// Runtime kill switch (default on). Disabling makes every handle
/// operation a no-op; existing values are retained until reset().
void set_metrics_enabled(bool on) noexcept;
bool metrics_enabled() noexcept;

/// Aggregate every thread shard (live and retired) plus the gauges.
/// Never blocks recording; see the file header for the exact guarantee.
metrics_snapshot snapshot_metrics();

/// Zero every recorded value (names/ids stay registered). Callers must
/// quiesce recording threads first — this is a test/bench-boundary hook,
/// not a concurrent operation.
void reset_metrics();

/// Serialize a snapshot as {"counters":{...},"gauges":{...},
/// "histograms":{...}} into an existing writer (the caller owns the
/// enclosing object) — lets `queccctl --metrics-json` and the harness
/// compose run metadata with the registry scrape in one document.
void write_metrics_sections(json_writer& w);

/// Standalone JSON document: one object holding the three sections.
void write_metrics_json(std::ostream& os);

/// Shared histogram serialization: {"count":..,"sum_nanos":..,
/// "mean_nanos":..,"p50_nanos":..,"p95_nanos":..,"p99_nanos":..,
/// "buckets":[[lower_bound_nanos,count],...]} (non-empty buckets only).
void write_histogram_json(json_writer& w, const common::latency_histogram& h);

}  // namespace quecc::obs
