// Minimal streaming JSON writer for the observability exporters.
//
// Every machine-readable artifact the system emits — `queccctl
// --metrics-json`, Chrome trace files, the bench `BENCH_<name>.json`
// reports — goes through this one writer so escaping and number
// formatting have a single definition. It is a forward-only emitter:
// the caller drives begin/end + key/value in document order and the
// writer inserts separators; there is no DOM and no buffering beyond
// the target stream.
//
// Output hygiene: values print deterministically (no locale, no
// uninitialized padding) and non-finite doubles are mapped to 0, so the
// emitted document is always valid JSON. The determinism analyzer
// (tools/quecc-analyze) treats key()/value() as serialization sinks:
// code feeding them must not iterate unordered containers.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cmath>
#include <ostream>
#include <string_view>
#include <utility>
#include <vector>

namespace quecc::obs {

class json_writer {
 public:
  explicit json_writer(std::ostream& os) : os_(os) {}

  json_writer(const json_writer&) = delete;
  json_writer& operator=(const json_writer&) = delete;

  void begin_object() {
    separate();
    os_ << '{';
    first_.push_back(true);
  }
  void end_object() {
    first_.pop_back();
    os_ << '}';
  }
  void begin_array() {
    separate();
    os_ << '[';
    first_.push_back(true);
  }
  void end_array() {
    first_.pop_back();
    os_ << ']';
  }

  /// Object member name; must be followed by exactly one value or
  /// container. Escapes like a string value.
  void key(std::string_view k) {
    separate();
    write_string(k);
    os_ << ':';
    after_key_ = true;
  }

  void value(std::string_view v) {
    separate();
    write_string(v);
  }
  void value(const char* v) { value(std::string_view(v)); }
  void value(bool v) {
    separate();
    os_ << (v ? "true" : "false");
  }
  void value(double v) {
    separate();
    if (!std::isfinite(v)) v = 0.0;  // JSON has no inf/nan
    char buf[40];
    std::snprintf(buf, sizeof buf, "%.12g", v);
    os_ << buf;
  }
  void value(std::uint64_t v) {
    separate();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%llu",
                  static_cast<unsigned long long>(v));
    os_ << buf;
  }
  void value(std::int64_t v) {
    separate();
    char buf[24];
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(v));
    os_ << buf;
  }
  void value(int v) { value(static_cast<std::int64_t>(v)); }
  void value(unsigned v) { value(static_cast<std::uint64_t>(v)); }

  /// key + value in one call.
  template <typename T>
  void kv(std::string_view k, T&& v) {
    key(k);
    value(std::forward<T>(v));
  }

 private:
  /// Emit the separator owed before the next token: nothing right after a
  /// key or as a container's first element, ',' otherwise.
  void separate() {
    if (after_key_) {
      after_key_ = false;
      return;
    }
    if (first_.empty()) return;  // document root
    if (!first_.back()) {
      os_ << ',';
    } else {
      first_.back() = false;
    }
  }

  void write_string(std::string_view s) {
    os_ << '"';
    for (const char c : s) {
      switch (c) {
        case '"': os_ << "\\\""; break;
        case '\\': os_ << "\\\\"; break;
        case '\n': os_ << "\\n"; break;
        case '\r': os_ << "\\r"; break;
        case '\t': os_ << "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof buf, "\\u%04x",
                          static_cast<unsigned>(c) & 0xff);
            os_ << buf;
          } else {
            os_ << c;
          }
      }
    }
    os_ << '"';
  }

  std::ostream& os_;
  std::vector<bool> first_;   // per nesting level: no element emitted yet
  bool after_key_ = false;
};

}  // namespace quecc::obs
