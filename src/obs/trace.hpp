// Per-batch trace recorder: span events for every pipeline stage, keyed
// by batch id and slot, written into per-thread ring buffers and exported
// as Chrome trace-event JSON (chrome://tracing, https://ui.perfetto.dev).
//
// Recording model:
//   * Each recording thread leases a ring (a fixed-capacity event array +
//     a head counter). The ring is single-writer; recording a span is two
//     clock reads plus one array store — no locks, no allocation.
//   * Rings are never deallocated (leaky, like the metrics registry), so
//     a thread's cached lease can never dangle. enable()/clear() bump a
//     generation counter instead; a lease from an older generation
//     re-acquires a fresh ring on its next record, and the stale ring
//     simply stops appearing in snapshots.
//   * Export (snapshot / write_chrome_trace) is a quiescent-point
//     operation: call it after the traced threads have been joined (the
//     harness and queccctl do). Ring event payloads are plain structs;
//     only the control fields (head, generation) are atomic.
//
// Determinism contract: spans read common::now_nanos() — a QUECC_NONDET
// leaf — and the recording API is itself QUECC_NONDET-annotated, so
// tools/quecc-analyze keeps observability clock reads at audited
// boundaries. Trace output never feeds back into execution.
//
// Chrome trace format: one complete event ("ph":"X") per span with
// microsecond "ts"/"dur", "pid" 0, "tid" = ring ordinal, and the batch
// id + slot in "args". Stage names become event names; the category is
// always "quecc".
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string_view>
#include <vector>

#include "common/phase_annotations.hpp"
#include "common/stats.hpp"

namespace quecc::obs {

/// Pipeline stages a span can describe, in pipeline order.
enum class trace_stage : std::uint8_t {
  admission,   ///< batch formation / admission-queue wait
  plan,        ///< planner turns a batch slice into fragment queues
  exec,        ///< executor drains its fragment queues
  epilogue,    ///< commit epilogue (spec resolution, per-batch accounting)
  log_append,  ///< log writer appending a batch's records
  fsync,       ///< group-commit fsync covering one or more batches
  checkpoint,  ///< checkpointer writing a snapshot
  replay,      ///< recovery replaying a logged batch
  kStageCount
};

/// Human-readable stage name (also the Chrome trace event name).
std::string_view trace_stage_name(trace_stage s) noexcept;

/// One recorded span. `batch`/`slot` use kNoBatch/kNoSlot when the span
/// is not tied to a specific batch (e.g. a checkpoint).
struct span_event {
  std::uint64_t start_nanos = 0;
  std::uint64_t dur_nanos = 0;
  std::uint64_t batch = kNoBatch;
  std::uint32_t slot = kNoSlot;
  std::uint32_t tid = 0;  ///< ring ordinal, filled in by snapshot
  trace_stage stage = trace_stage::admission;

  static constexpr std::uint64_t kNoBatch = ~std::uint64_t{0};
  static constexpr std::uint32_t kNoSlot = ~std::uint32_t{0};
};

/// Events each ring retains before wrapping (oldest overwritten first).
inline constexpr std::size_t kTraceRingCapacity = 1 << 14;

/// Turn span recording on/off. Off by default — tracing costs two clock
/// reads per span, so only `--trace-out` style runs enable it. Enabling
/// starts a fresh generation: previously recorded events are dropped.
void set_tracing_enabled(bool on) noexcept;
bool tracing_enabled() noexcept;

/// Drop all recorded events (bumps the generation; rings stay allocated).
void clear_trace() noexcept;

/// Record one completed span [start_nanos, start_nanos + dur_nanos).
/// No-op while tracing is disabled.
QUECC_NONDET(
    "trace span timestamps come from the monotonic stats clock; events are "
    "export-only and never feed back into planning or execution")
void record_span(trace_stage stage, std::uint64_t start_nanos,
                 std::uint64_t dur_nanos,
                 std::uint64_t batch = span_event::kNoBatch,
                 std::uint32_t slot = span_event::kNoSlot) noexcept;

/// RAII span: stamps the start on construction, records on destruction.
/// Construct cheaply even when tracing is disabled (one relaxed load +
/// one clock read when enabled; just the load when disabled).
class trace_span {
 public:
  QUECC_NONDET("reads the monotonic stats clock for a trace span start")
  explicit trace_span(trace_stage stage,
                      std::uint64_t batch = span_event::kNoBatch,
                      std::uint32_t slot = span_event::kNoSlot) noexcept
      : batch_(batch), slot_(slot), stage_(stage) {
    if (tracing_enabled()) start_ = common::now_nanos();
  }

  QUECC_NONDET("reads the monotonic stats clock for a trace span end")
  ~trace_span() {
    if (start_ != 0) {
      const std::uint64_t end = common::now_nanos();
      record_span(stage_, start_, end - start_, batch_, slot_);
    }
  }

  trace_span(const trace_span&) = delete;
  trace_span& operator=(const trace_span&) = delete;

 private:
  std::uint64_t start_ = 0;  ///< 0 = tracing was off at construction
  std::uint64_t batch_;
  std::uint32_t slot_;
  trace_stage stage_;
};

/// All events of the current generation, sorted by (tid, start_nanos) —
/// a deterministic order for a fixed set of recorded events. Quiescent-
/// point operation; see the file header.
std::vector<span_event> snapshot_trace();

/// Chrome trace-event JSON ({"traceEvents":[...]}) for the current
/// generation. Loadable by chrome://tracing and Perfetto. Quiescent-point
/// operation; see the file header.
void write_chrome_trace(std::ostream& os);

}  // namespace quecc::obs
