#include "obs/trace.hpp"

#include <algorithm>
#include <atomic>
#include <memory>
#include <ostream>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "obs/json.hpp"

namespace quecc::obs {

std::string_view trace_stage_name(trace_stage s) noexcept {
  switch (s) {
    case trace_stage::admission: return "admission";
    case trace_stage::plan: return "plan";
    case trace_stage::exec: return "exec";
    case trace_stage::epilogue: return "epilogue";
    case trace_stage::log_append: return "log_append";
    case trace_stage::fsync: return "fsync";
    case trace_stage::checkpoint: return "checkpoint";
    case trace_stage::replay: return "replay";
    case trace_stage::kStageCount: break;
  }
  return "unknown";
}

namespace {

/// Tracing kill switch. relaxed: a span racing the toggle is either
/// recorded whole or dropped whole; nothing orders against it.
std::atomic<bool> g_tracing{false};

#if !defined(QUECC_OBS_COMPILED_OUT)

/// Single-writer event ring. Event payloads are plain structs — readers
/// only look at them at quiescent points (after the writer joined); the
/// head is atomic so a racy snapshot tears at an event boundary, not
/// inside one.
struct trace_ring {
  std::vector<span_event> events{kTraceRingCapacity};
  std::atomic<std::uint64_t> head{0};  ///< total events ever pushed
  std::uint64_t generation = 0;        ///< set once at lease time, under mu_
};

class trace_store {
 public:
  /// Leaky singleton: thread_local leases may outlive engine objects and
  /// must always find the store alive.
  static trace_store& instance() {
    static trace_store* t = new trace_store;
    return *t;
  }

  void push(const span_event& ev) noexcept {
    thread_local lease l;
    // relaxed: generation is a lease-freshness token; the ring swap it
    // guards happens under mu_ inside acquire().
    const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
    if (l.ring == nullptr || l.gen != gen) acquire(l, gen);
    trace_ring& r = *l.ring;
    // relaxed (both): single-writer head on this thread's own ring;
    // snapshots read it at quiescent points only.
    const std::uint64_t h = r.head.load(std::memory_order_relaxed);
    r.events[h % kTraceRingCapacity] = ev;
    r.head.store(h + 1, std::memory_order_relaxed);
  }

  void bump_generation() noexcept {
    common::mutex_lock lk(mu_);
    // relaxed: published under mu_ for ring bookkeeping; recording
    // threads only compare it for lease freshness.
    generation_.fetch_add(1, std::memory_order_relaxed);
  }

  std::vector<span_event> snapshot() {
    std::vector<span_event> out;
    common::mutex_lock lk(mu_);
    // relaxed: paired with the relaxed publication in bump_generation.
    const std::uint64_t gen = generation_.load(std::memory_order_relaxed);
    for (std::size_t tid = 0; tid < rings_.size(); ++tid) {
      const trace_ring& r = *rings_[tid];
      if (r.generation != gen) continue;  // stale ring from before clear()
      // relaxed: quiescent-point read of a single-writer counter.
      const std::uint64_t head = r.head.load(std::memory_order_relaxed);
      const std::uint64_t n = std::min<std::uint64_t>(head, kTraceRingCapacity);
      for (std::uint64_t i = head - n; i < head; ++i) {
        span_event ev = r.events[i % kTraceRingCapacity];
        ev.tid = static_cast<std::uint32_t>(tid);
        out.push_back(ev);
      }
    }
    std::sort(out.begin(), out.end(),
              [](const span_event& a, const span_event& b) {
                if (a.tid != b.tid) return a.tid < b.tid;
                if (a.start_nanos != b.start_nanos) {
                  return a.start_nanos < b.start_nanos;
                }
                return a.dur_nanos < b.dur_nanos;
              });
    return out;
  }

 private:
  struct lease {
    trace_ring* ring = nullptr;
    std::uint64_t gen = 0;
  };

  void acquire(lease& l, std::uint64_t gen) noexcept {
    common::mutex_lock lk(mu_);
    // Reuse a ring this thread already owns only if it matches the
    // current generation; otherwise lease a fresh (or recycled-stale)
    // ring. Stale rings of older generations are reset and handed out
    // again — they no longer contribute to snapshots anyway.
    for (const auto& r : rings_) {
      if (r->generation != gen) {
        // relaxed: resetting a ring no live thread writes (its owner
        // abandoned it at the generation bump).
        r->head.store(0, std::memory_order_relaxed);
        r->generation = gen;
        l.ring = r.get();
        l.gen = gen;
        return;
      }
    }
    rings_.push_back(std::make_unique<trace_ring>());
    rings_.back()->generation = gen;
    l.ring = rings_.back().get();
    l.gen = gen;
  }

  mutable common::mutex mu_;
  /// Every ring ever created; stable addresses, never freed. Ring *cells*
  /// are written outside mu_ by their single owner; the container and
  /// each ring's generation field are only touched under it.
  std::vector<std::unique_ptr<trace_ring>> rings_ GUARDED_BY(mu_);
  std::atomic<std::uint64_t> generation_{1};
};

#endif  // !QUECC_OBS_COMPILED_OUT

}  // namespace

#if !defined(QUECC_OBS_COMPILED_OUT)

void set_tracing_enabled(bool on) noexcept {
  const bool was = tracing_enabled();
  if (on && !was) trace_store::instance().bump_generation();
  // relaxed: see g_tracing.
  g_tracing.store(on, std::memory_order_relaxed);
}

void clear_trace() noexcept { trace_store::instance().bump_generation(); }

void record_span(trace_stage stage, std::uint64_t start_nanos,
                 std::uint64_t dur_nanos, std::uint64_t batch,
                 std::uint32_t slot) noexcept {
  if (!tracing_enabled()) return;
  span_event ev;
  ev.start_nanos = start_nanos;
  ev.dur_nanos = dur_nanos;
  ev.batch = batch;
  ev.slot = slot;
  ev.stage = stage;
  trace_store::instance().push(ev);
}

std::vector<span_event> snapshot_trace() {
  return trace_store::instance().snapshot();
}

#else  // QUECC_OBS_COMPILED_OUT: recording is inert, snapshots empty.

void set_tracing_enabled(bool) noexcept {}
void clear_trace() noexcept {}
void record_span(trace_stage, std::uint64_t, std::uint64_t, std::uint64_t,
                 std::uint32_t) noexcept {}
std::vector<span_event> snapshot_trace() { return {}; }

#endif  // QUECC_OBS_COMPILED_OUT

bool tracing_enabled() noexcept {
  // relaxed: see g_tracing.
  return g_tracing.load(std::memory_order_relaxed);
}

void write_chrome_trace(std::ostream& os) {
  const std::vector<span_event> events = snapshot_trace();
  json_writer w(os);
  w.begin_object();
  w.key("traceEvents");
  w.begin_array();
  for (const span_event& ev : events) {
    w.begin_object();
    w.kv("name", trace_stage_name(ev.stage));
    w.kv("cat", "quecc");
    w.kv("ph", "X");
    w.kv("ts", static_cast<double>(ev.start_nanos) / 1e3);   // microseconds
    w.kv("dur", static_cast<double>(ev.dur_nanos) / 1e3);
    w.kv("pid", 0);
    w.kv("tid", ev.tid);
    w.key("args");
    w.begin_object();
    if (ev.batch != span_event::kNoBatch) w.kv("batch", ev.batch);
    if (ev.slot != span_event::kNoSlot) w.kv("slot", ev.slot);
    w.end_object();
    w.end_object();
  }
  w.end_array();
  w.kv("displayTimeUnit", "ms");
  w.end_object();
  os << '\n';
}

}  // namespace quecc::obs
