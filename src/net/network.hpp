// Simulated cluster network with per-message latency injection.
//
// Each node owns an inbox; send() stamps the message with a delivery time
// (now + one-way latency) and poll() only surfaces messages that are due.
// This models communication cost without sockets: the experiments care
// about *relative* protocol overheads — how many rounds each commit needs —
// which depend on message counts and latency, not on wire encoding.
#pragma once

#include <atomic>
#include <deque>
#include <vector>

#include "common/spinlock.hpp"
#include "common/thread_annotations.hpp"
#include "net/message.hpp"

namespace quecc::net {

class network {
 public:
  network(node_id_t nodes, std::uint32_t one_way_latency_micros);

  node_id_t nodes() const noexcept { return static_cast<node_id_t>(inboxes_.size()); }

  /// Enqueue for delivery after the simulated one-way latency. Self-sends
  /// are delivered immediately (loopback).
  void send(message m);

  /// Non-blocking: pop the oldest due message for `node`. Returns false
  /// when nothing is deliverable yet.
  bool poll(node_id_t node, message& out);

  /// Broadcast to every node except `from`.
  void broadcast(message m);

  std::uint64_t messages_sent() const noexcept {
    // relaxed: stat counter; readers want a count, not ordering.
    return sent_.load(std::memory_order_relaxed);
  }
  void reset_counters() noexcept {
    // relaxed: stat counter reset between measurement windows.
    sent_.store(0, std::memory_order_relaxed);
  }

 private:
  struct inbox {
    common::spinlock latch;
    std::deque<message> q GUARDED_BY(latch);
  };

  std::vector<inbox> inboxes_;
  std::chrono::microseconds latency_;
  std::atomic<std::uint64_t> sent_{0};
};

}  // namespace quecc::net
