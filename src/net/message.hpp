// Messages exchanged between simulated nodes.
//
// The cluster is simulated in-process (DESIGN.md 2.5): payloads that would
// be serialized in a real deployment (fragment queues, read results) stay
// in shared memory, while the *cost* of communication — per-message latency
// and message counts — is modeled by the network. Messages therefore carry
// only small scalar operands identifying what became available.
#pragma once

#include <chrono>
#include <cstdint>

namespace quecc::net {

using node_id_t = std::uint16_t;
using sim_clock = std::chrono::steady_clock;

/// Message kinds across both distributed engines. One enum keeps tracing
/// simple; engines ignore kinds they never send.
enum class msg_type : std::uint16_t {
  // distributed queue-oriented engine
  plan_queues,   ///< planner bundle for a remote node is ready
  batch_done,    ///< node finished executing its queues
  batch_commit,  ///< coordinator: batch committed, proceed

  // distributed Calvin
  seq_slice,     ///< sequencer input slice broadcast (epoch replication)
  remote_reads,  ///< participant's local reads forwarded to the home node
  txn_release,   ///< home node: transaction done, release local locks
};

struct message {
  node_id_t from = 0;
  node_id_t to = 0;
  msg_type type = msg_type::plan_queues;
  std::uint64_t a = 0;  ///< operand (txn seq, planner id, batch id, ...)
  std::uint64_t b = 0;
  sim_clock::time_point deliver_at{};
};

}  // namespace quecc::net
