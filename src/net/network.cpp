#include "net/network.hpp"

#include "obs/metrics.hpp"

namespace quecc::net {

network::network(node_id_t nodes, std::uint32_t one_way_latency_micros)
    : inboxes_(nodes), latency_(one_way_latency_micros) {}

void network::send(message m) {
  m.deliver_at = sim_clock::now();
  if (m.from != m.to) {
    m.deliver_at += latency_;
    // relaxed: stat counter only.
    sent_.fetch_add(1, std::memory_order_relaxed);
    // The simulated wire cost: fixed-size scalar messages (message.hpp).
    static const obs::counter msgs("net.messages_total");
    static const obs::counter bytes("net.bytes_total");
    msgs.inc();
    bytes.inc(sizeof(message));
  }
  auto& box = inboxes_[m.to];
  common::spin_guard guard(box.latch);
  box.q.push_back(m);
}

bool network::poll(node_id_t node, message& out) {
  auto& box = inboxes_[node];
  common::spin_guard guard(box.latch);
  if (box.q.empty()) return false;
  // Constant latency keeps the deque ordered by delivery time up to
  // sender interleaving jitter; checking the front is sufficient.
  if (box.q.front().deliver_at > sim_clock::now()) return false;
  out = box.q.front();
  box.q.pop_front();
  return true;
}

void network::broadcast(message m) {
  for (node_id_t n = 0; n < nodes(); ++n) {
    if (n == m.from) continue;
    m.to = n;
    send(m);
  }
}

}  // namespace quecc::net
