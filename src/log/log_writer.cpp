#include "log/log_writer.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <stdexcept>

#include "common/mutex.hpp"
#include "common/stats.hpp"
#include "common/thread_util.hpp"
#include "log/plan_codec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace quecc::log {

namespace {
// Fsync accounting shared by the three fsync sites (group-commit flusher,
// size rotation, checkpoint rotation).
const obs::counter& fsyncs_total() {
  static const obs::counter c("log.fsyncs_total");
  return c;
}
}  // namespace

namespace fs = std::filesystem;

namespace {

constexpr std::uint32_t kSegmentMagic = 0x474F4C51u;  // "QLOG" little-endian
constexpr std::uint32_t kSegmentVersion = 1;
constexpr std::size_t kFrameHeader = 4 + 4 + 1;  // len + crc + type

void put_u32_le(std::byte* p, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) p[i] = static_cast<std::byte>(v >> (8 * i));
}

std::uint32_t get_u32_le(const std::byte* p) {
  std::uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(p[i]) << (8 * i);
  return v;
}

void write_all(int fd, const std::byte* data, std::size_t n) {
  while (n > 0) {
    const ssize_t w = ::write(fd, data, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      throw std::runtime_error(std::string("log_writer: write failed: ") +
                               std::strerror(errno));
    }
    data += w;
    n -= static_cast<std::size_t>(w);
  }
}

}  // namespace

std::string segment_name(std::uint32_t n) {
  return "segment-" + std::to_string(n) + ".qlog";
}

std::vector<std::uint32_t> list_segments(const std::string& dir,
                                         std::uint32_t base) {
  std::vector<std::uint32_t> out;
  if (!fs::exists(dir)) return out;
  for (const auto& e : fs::directory_iterator(dir)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("segment-", 0) != 0) continue;
    const auto dot = name.find(".qlog");
    if (dot == std::string::npos) continue;
    const std::uint32_t n = static_cast<std::uint32_t>(
        std::strtoul(name.c_str() + 8, nullptr, 10));
    if (n >= base) out.push_back(n);
  }
  std::sort(out.begin(), out.end());
  return out;
}

log_writer::log_writer(std::string dir, writer_options opts)
    : dir_(std::move(dir)), opts_(opts) {
  fs::create_directories(dir_);
  const auto existing = list_segments(dir_, 0);
  std::uint32_t first = 0;
  if (!existing.empty()) {
    if (!opts_.resume) {
      throw std::runtime_error(
          "log_writer: '" + dir_ +
          "' already holds log segments — recover or clear it first");
    }
    // Resume after recovery: keep every existing segment (their committed
    // batches are the recovered history), drop the newest one's torn tail
    // so the segment chain scans cleanly, and continue in a new segment.
    truncate_torn_tail(dir_ + "/" + segment_name(existing.back()));
    first = existing.back() + 1;
  }
  {
    // No concurrency yet (the flusher starts below), but open_segment
    // REQUIRES(mu_), and taking it here keeps the contract unconditional.
    common::mutex_lock lk(mu_);
    open_segment(first);
  }
  flusher_ = std::thread([this] { flusher_main(); });
}

log_writer::~log_writer() {
  {
    common::mutex_lock lk(mu_);
    stop_ = true;
  }
  flush_cv_.notify_all();
  flusher_.join();
  common::mutex_lock lk(mu_);
  if (fd_ >= 0) {
    ::fsync(fd_);
    ::close(fd_);
    fd_ = -1;
  }
}

void log_writer::open_segment(std::uint32_t index) {
  const std::string path = dir_ + "/" + segment_name(index);
  const int fd = ::open(path.c_str(), O_CREAT | O_WRONLY | O_APPEND, 0644);
  if (fd < 0) {
    throw std::runtime_error("log_writer: cannot open '" + path +
                             "': " + std::strerror(errno));
  }
  std::byte header[8];
  put_u32_le(header, kSegmentMagic);
  put_u32_le(header + 4, kSegmentVersion);
  write_all(fd, header, sizeof header);
  fd_ = fd;
  segment_ = index;
  segment_bytes_written_ = sizeof header;
}

log_writer::lsn_t log_writer::append(record_type type,
                                     std::span<const std::byte> payload) {
  std::vector<std::byte> frame(kFrameHeader + payload.size());
  put_u32_le(frame.data(), static_cast<std::uint32_t>(payload.size()));
  put_u32_le(frame.data() + 4, crc32(payload));
  frame[8] = static_cast<std::byte>(type);
  std::memcpy(frame.data() + kFrameHeader, payload.data(), payload.size());

  static const obs::counter appends("log.appends_total");
  static const obs::counter bytes("log.appended_bytes_total");
  appends.inc();
  bytes.inc(frame.size());

  common::mutex_lock lk(mu_);
  if (segment_bytes_written_ >= opts_.segment_bytes) {
    // Size rotation: the old segment's bytes become durable here, so the
    // flusher only ever needs to fsync the current fd.
    ::fsync(fd_);
    ++fsyncs_;
    fsyncs_total().inc();
    static const obs::counter rotations("log.segment_rotations_total");
    rotations.inc();
    ::close(fd_);
    open_segment(segment_ + 1);
  }
  write_all(fd_, frame.data(), frame.size());
  segment_bytes_written_ += frame.size();
  appended_ += frame.size();
  return appended_;
}

void log_writer::request_flush() {
  {
    common::mutex_lock lk(mu_);
    flush_requested_ = true;
  }
  flush_cv_.notify_one();
}

void log_writer::wait_durable(lsn_t lsn) {
  common::mutex_lock lk(mu_);
  if (durable_ >= lsn) return;
  flush_requested_ = true;
  flush_cv_.notify_one();
  while (durable_ < lsn) durable_cv_.wait(lk);
}

log_writer::lsn_t log_writer::appended_lsn() const {
  common::mutex_lock lk(mu_);
  return appended_;
}

log_writer::lsn_t log_writer::durable_lsn() const {
  common::mutex_lock lk(mu_);
  return durable_;
}

std::uint32_t log_writer::segment_index() const {
  common::mutex_lock lk(mu_);
  return segment_;
}

std::uint64_t log_writer::fsyncs() const {
  common::mutex_lock lk(mu_);
  return fsyncs_;
}

std::uint32_t log_writer::rotate_and_truncate() {
  common::mutex_lock lk(mu_);
  ::fsync(fd_);
  ++fsyncs_;
  fsyncs_total().inc();
  ::close(fd_);
  const std::uint32_t old = segment_;
  open_segment(old + 1);
  durable_ = appended_;  // everything written so far was just fsynced
  lk.unlock();
  durable_cv_.notify_all();
  for (std::uint32_t n : list_segments(dir_, 0)) {
    if (n <= old) fs::remove(dir_ + "/" + segment_name(n));
  }
  return old + 1;
}

void log_writer::flusher_main() {
  common::name_self("quecc-wal-sync");
  common::mutex_lock lk(mu_);
  for (;;) {
    // Group commit: park for at most one window, or until someone asks.
    // Every record appended while we slept shares the next fsync.
    const auto deadline =
        std::chrono::steady_clock::now() +
        std::chrono::microseconds(opts_.group_commit_micros);
    while (!(stop_ || flush_requested_)) {
      if (flush_cv_.wait_until(lk, deadline) == std::cv_status::timeout) break;
    }
    flush_requested_ = false;
    if (durable_ < appended_) {
      const lsn_t target = appended_;
      // Snapshot fd_ and fsync it unlocked. If a size rotation swaps the
      // segment meanwhile, the stale fd still names the *old* segment —
      // which the rotation itself fsyncs before closing — so advancing
      // durable_ to `target` below stays correct (benign stale-fd race).
      const int fd = fd_;
      const lsn_t durable_before = durable_;
      lk.unlock();
      const std::uint64_t t0 = common::now_nanos();
      ::fsync(fd);
      const std::uint64_t t1 = common::now_nanos();
      static const obs::histogram fsync_hist("log.fsync_nanos");
      fsync_hist.record_nanos(t1 - t0);
      // Group-commit coalescing: every byte between the last durable LSN
      // and the flush target shares this one fsync.
      static const obs::counter synced("log.fsynced_bytes_total");
      synced.inc(target - durable_before);
      obs::record_span(obs::trace_stage::fsync, t0, t1 - t0);
      lk.lock();
      ++fsyncs_;
      fsyncs_total().inc();
      // A rotation may have advanced durable_ past target meanwhile.
      if (durable_ < target) durable_ = target;
      lk.unlock();
      durable_cv_.notify_all();
      lk.lock();
    }
    if (stop_ && durable_ >= appended_) return;
  }
}

bool truncate_torn_tail(const std::string& path) {
  std::vector<scanned_record> records;
  if (scan_segment(path, records)) return false;  // clean end, keep as is
  std::error_code ec;
  const auto size = fs::file_size(path, ec);
  if (ec || size < 8) {
    // Even the 8-byte header is torn: the segment never held a durable
    // record, so the file itself is the tail.
    fs::remove(path);
    return true;
  }
  std::uintmax_t keep = 8;
  for (const auto& r : records) keep += kFrameHeader + r.payload.size();
  fs::resize_file(path, keep);
  return true;
}

bool scan_segment(const std::string& path, std::vector<scanned_record>& out) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("log: cannot open '" + path + "'");
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  // A crash inside open_segment can leave the newest segment with a
  // partial header (the 8 header bytes are one write, so any partial
  // prefix is a prefix of the correct header). That is a torn tail, not
  // corruption — report it recoverable. A full header with the wrong
  // magic, by contrast, cannot come from a crash: the caller pointed at
  // something that is not a quecc log.
  if (bytes.size() < 8) return false;
  if (get_u32_le(bytes.data()) != kSegmentMagic ||
      get_u32_le(bytes.data() + 4) != kSegmentVersion) {
    throw std::runtime_error("log: '" + path + "' is not a quecc log segment");
  }
  std::size_t pos = 8;
  while (pos < bytes.size()) {
    if (bytes.size() - pos < kFrameHeader) return false;  // torn header
    const std::uint32_t len = get_u32_le(bytes.data() + pos);
    const std::uint32_t crc = get_u32_le(bytes.data() + pos + 4);
    const auto type = static_cast<record_type>(bytes[pos + 8]);
    if (bytes.size() - pos - kFrameHeader < len) return false;  // torn body
    std::span<const std::byte> payload(bytes.data() + pos + kFrameHeader, len);
    if (crc32(payload) != crc) return false;  // corrupt frame
    if (type != record_type::batch && type != record_type::commit) {
      return false;  // unknown type: treat like corruption, drop the tail
    }
    out.push_back({type, {payload.begin(), payload.end()}});
    pos += kFrameHeader + len;
  }
  return true;
}

}  // namespace quecc::log
