#include "log/recovery.hpp"

#include <cinttypes>
#include <map>
#include <stdexcept>

#include "common/stats.hpp"
#include "log/log_writer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace quecc::log {

recovery_result recover(const std::string& dir, storage::database& db,
                        proto::engine& eng, const proc_resolver& procs) {
  const std::uint64_t rec0 = common::now_nanos();
  recovery_result res;

  std::uint32_t base = 0;
  const auto manifest = read_manifest(dir);
  if (manifest && manifest->batch_id != kNoCheckpoint) {
    const auto meta = restore_checkpoint(dir + "/" + manifest->file, db);
    res.checkpoint_loaded = true;
    res.checkpoint_batch = meta.batch_id;
    res.txns_applied = meta.stream_pos;
    res.next_batch_id = meta.batch_id + 1;
    base = manifest->segment_base;
  }

  // Collect intact records across the live segments, in append order; the
  // first torn/corrupt frame ends the scan (everything after a torn write
  // is unacknowledged tail by construction — single appender).
  std::vector<scanned_record> records;
  for (std::uint32_t n : list_segments(dir, base)) {
    if (!scan_segment(dir + "/" + segment_name(n), records)) {
      res.torn_tail = true;
      break;
    }
  }

  std::map<std::uint32_t, std::vector<std::byte>> plans;  // batch id -> plan
  std::map<std::uint32_t, commit_info> commits;
  for (auto& rec : records) {
    if (rec.type == record_type::commit) {
      const commit_info c = decode_commit(rec.payload);
      commits[c.batch_id] = c;
    } else {
      // Peek the batch id (bytes 4..8 of the payload, after the version)
      // without a full decode: uncommitted plans are skipped unparsed.
      if (rec.payload.size() < 12) throw codec_error("recovery: short plan");
      std::uint32_t id = 0;
      for (int i = 0; i < 4; ++i) {
        id |= static_cast<std::uint32_t>(rec.payload[4 + i]) << (8 * i);
      }
      // Last record wins: a resumed log (log_writer resume mode) re-plans
      // the batch id that crashed before its commit record, so the newest
      // append — the one whose commit record exists — is authoritative.
      plans[id] = std::move(rec.payload);
    }
  }

  for (auto& [id, payload] : plans) {
    if (res.checkpoint_loaded && id <= res.checkpoint_batch) {
      continue;  // already inside the checkpoint image
    }
    const auto cit = commits.find(id);
    if (cit == commits.end()) {
      ++res.batches_skipped;  // no commit record: never acknowledged
      continue;
    }
    txn::batch b = decode_batch(payload, procs);
    const std::uint64_t t0 = common::now_nanos();
    eng.run_batch(b, res.replay_metrics);
    obs::record_span(obs::trace_stage::replay, t0, common::now_nanos() - t0,
                     id);
    ++res.batches_replayed;
    res.txns_applied = cit->second.stream_pos;
    res.next_batch_id = id + 1;
    if (cit->second.state_hash != 0) {
      const std::uint64_t got = db.state_hash();
      if (got != cit->second.state_hash) {
        char buf[96];
        std::snprintf(buf, sizeof buf,
                      "recovery: state hash mismatch after batch %u: "
                      "%016" PRIx64 " != %016" PRIx64,
                      id, got, cit->second.state_hash);
        throw std::runtime_error(buf);
      }
    }
  }

  res.state_hash = db.state_hash();
  static const obs::counter runs("recovery.runs_total");
  static const obs::counter replayed("recovery.batches_replayed_total");
  static const obs::counter skipped("recovery.batches_skipped_total");
  static const obs::counter ckpt_loaded("recovery.checkpoints_loaded_total");
  static const obs::histogram dur("recovery.duration_nanos");
  runs.inc();
  replayed.inc(res.batches_replayed);
  skipped.inc(res.batches_skipped);
  if (res.checkpoint_loaded) ckpt_loaded.inc();
  dur.record_nanos(common::now_nanos() - rec0);
  return res;
}

proc_resolver resolver_for(wl::workload& w) {
  return [&w](const std::string& name) { return w.find_procedure(name); };
}

}  // namespace quecc::log
