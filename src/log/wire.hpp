// Little-endian wire primitives shared by the durability codecs: plan /
// commit records (plan_codec.cpp) and checkpoint files (checkpoint.cpp).
// Internal to src/log/ — the on-disk formats are documented at their
// call sites.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "log/plan_codec.hpp"  // codec_error

namespace quecc::log::wire {

inline void put_u8(std::vector<std::byte>& out, std::uint8_t v) {
  out.push_back(static_cast<std::byte>(v));
}

inline void put_u16(std::vector<std::byte>& out, std::uint16_t v) {
  put_u8(out, static_cast<std::uint8_t>(v));
  put_u8(out, static_cast<std::uint8_t>(v >> 8));
}

inline void put_u32(std::vector<std::byte>& out, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

inline void put_u64(std::vector<std::byte>& out, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) {
    put_u8(out, static_cast<std::uint8_t>(v >> (8 * i)));
  }
}

/// Bounds-checked sequential reader; every decoder shares it so truncated
/// input is always a codec_error, never UB. `what` prefixes error messages
/// ("plan_codec", "checkpoint", ...).
class reader {
 public:
  reader(std::span<const std::byte> in, const char* what)
      : in_(in), what_(what) {}

  std::uint8_t u8() {
    need(1);
    return static_cast<std::uint8_t>(in_[pos_++]);
  }
  std::uint16_t u16() {
    const auto lo = u8();
    return static_cast<std::uint16_t>(
        lo | (static_cast<std::uint16_t>(u8()) << 8));
  }
  std::uint32_t u32() {
    std::uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      v |= static_cast<std::uint32_t>(u8()) << (8 * i);
    }
    return v;
  }
  std::uint64_t u64() {
    std::uint64_t v = 0;
    for (int i = 0; i < 8; ++i) {
      v |= static_cast<std::uint64_t>(u8()) << (8 * i);
    }
    return v;
  }
  std::string str(std::size_t n) {
    need(n);
    std::string s(reinterpret_cast<const char*>(in_.data() + pos_), n);
    pos_ += n;
    return s;
  }
  std::span<const std::byte> bytes(std::size_t n) {
    need(n);
    auto s = in_.subspan(pos_, n);
    pos_ += n;
    return s;
  }
  bool exhausted() const noexcept { return pos_ == in_.size(); }

 private:
  void need(std::size_t n) {
    if (in_.size() - pos_ < n) {
      throw codec_error(std::string(what_) + ": truncated input");
    }
  }
  std::span<const std::byte> in_;
  const char* what_;
  std::size_t pos_ = 0;
};

}  // namespace quecc::log::wire
