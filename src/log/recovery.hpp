// Crash recovery: checkpoint restore + committed-batch replay.
//
// Because the engine is deterministic, recovery is just "run the log":
//   1. load the latest checkpoint named by MANIFEST (if any),
//   2. scan the live segments for batch records and commit records,
//      dropping a torn tail,
//   3. re-execute, in batch-id order, every logged batch that has a commit
//      record and is newer than the checkpoint — through the engine's
//      normal two-phase run_batch, exactly like the first time,
//   4. verify database::state_hash against the hashes recorded at commit
//      time (when the writer recorded them).
// A batch record without a commit record means the crash hit between the
// planning-time append and the post-commit-barrier append: the batch was
// never acknowledged, so replay skips it (it is counted, not applied).
//
// The caller owns setup: load the workload into `db` first (recovery
// assumes the initial population, like the engine did), and pass a
// *non-durable* engine — replaying through a durable engine would append
// the log to itself (and log_writer refuses a non-empty directory anyway).
#pragma once

#include <string>

#include "common/phase_annotations.hpp"
#include "log/checkpoint.hpp"
#include "log/plan_codec.hpp"
#include "protocols/iface.hpp"
#include "workload/workload.hpp"

namespace quecc::log {

struct recovery_result {
  bool checkpoint_loaded = false;
  std::uint32_t checkpoint_batch = kNoCheckpoint;
  std::uint32_t batches_replayed = 0;
  /// Batch records with no commit record (crash before the commit barrier
  /// became durable) — skipped, never applied.
  std::uint32_t batches_skipped = 0;
  bool torn_tail = false;  ///< a truncated/corrupt trailing frame was dropped
  /// Position in the transaction stream after recovery: cumulative
  /// transactions across the checkpoint and every replayed batch. A
  /// deterministic workload can be resumed from here (skip this many
  /// generated transactions and continue).
  std::uint64_t txns_applied = 0;
  /// One past the newest applied batch id (0 when nothing was applied).
  std::uint32_t next_batch_id = 0;
  std::uint64_t state_hash = 0;  ///< database::state_hash after recovery
  common::run_metrics replay_metrics;
};

/// Recover `dir` into `db` by replaying through `eng`. Throws
/// std::runtime_error / codec_error on corruption that cannot be treated
/// as a torn tail (bad checkpoint CRC, recorded-hash mismatch, unknown
/// procedure names).
REPLAY_ENTRY recovery_result recover(const std::string& dir,
                                     storage::database& db, proto::engine& eng,
                                     const proc_resolver& procs);

/// Resolver over a workload's own procedures (workload::find_procedure).
proc_resolver resolver_for(wl::workload& w);

}  // namespace quecc::log
