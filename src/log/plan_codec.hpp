// Plan codec: versioned binary (de)serialization of planned batches.
//
// The durability corollary of the paradigm (DESIGN.md / paper Section 3.2):
// execution is a deterministic function of the planned batch, so logging
// the *plan* — procedure, arguments, fragments, sequence order — is a
// complete command log. No per-row redo/undo images are ever written;
// recovery simply re-runs the planned batch through the engine's two
// deterministic phases. This realizes Gray's "Queues Are Databases"
// observation: the durable plan queue is the system of record.
//
// Serialized plans reference procedures by *name* (txn::procedure::name),
// because function pointers do not survive a process. Decoding rebinds the
// names through a proc_resolver, normally built from the workload that
// owns the procedures (see log/recovery.hpp::resolver_for).
//
// Fragment `rid` fields are deliberately not serialized: the planning
// phase re-resolves row ids by index lookup on every run, so a decoded
// plan replays on any database with the right logical contents.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <span>
#include <stdexcept>
#include <string>
#include <vector>

#include "txn/batch.hpp"

namespace quecc::log {

/// Bump when the wire format changes; decoders reject other versions.
/// v2: fragments carry the scan upper bound `key_hi` and admit
/// op_kind::scan.
inline constexpr std::uint32_t kCodecVersion = 2;

/// Thrown by every decoder on malformed, truncated, or unresolvable input.
class codec_error : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Rebinds a serialized procedure name to the live procedure instance.
/// Returning nullptr makes the decoder throw codec_error.
using proc_resolver =
    std::function<const txn::procedure*(const std::string&)>;

/// Append the encoded form of `b` (every txn's procedure name, args, and
/// fragments, in sequence order) to `out`.
void encode_batch(const txn::batch& b, std::vector<std::byte>& out);

/// Decode a batch previously produced by encode_batch. The returned batch
/// carries the original batch id and sequence numbers and has passed
/// txn::validate_plan for every transaction.
txn::batch decode_batch(std::span<const std::byte> in,
                        const proc_resolver& procs);

/// Payload of a commit record: what the engine knew at the commit barrier.
struct commit_info {
  std::uint32_t batch_id = 0;
  std::uint32_t txn_count = 0;   ///< transactions in the batch
  std::uint32_t committed = 0;   ///< committed at the barrier
  std::uint32_t aborted = 0;     ///< deterministic logic aborts
  /// Cumulative transactions through this batch since the engine started —
  /// the position in the client stream, which recovery reports so a caller
  /// can resume the remainder of a deterministic workload.
  std::uint64_t stream_pos = 0;
  /// database::state_hash after the batch, or 0 when hash recording is off
  /// (config::log_verify_hash). Recovery verifies nonzero hashes.
  std::uint64_t state_hash = 0;
};

void encode_commit(const commit_info& c, std::vector<std::byte>& out);
commit_info decode_commit(std::span<const std::byte> in);

/// CRC-32 (IEEE, reflected) over `data` — frames every log record and
/// checkpoint file so torn or corrupt tails are detected, never replayed.
std::uint32_t crc32(std::span<const std::byte> data) noexcept;

}  // namespace quecc::log
