// Segmented append-only command log with group commit.
//
// Layout inside the log directory:
//
//   segment-<N>.qlog    append-only record segments, N monotonically
//                       increasing; rotated on size and at checkpoints
//   checkpoint-<B>.qck  consistent snapshots (see log/checkpoint.hpp)
//   MANIFEST            latest checkpoint + first live segment index
//
// Segment format: an 8-byte header (magic "QLOG", format version) followed
// by length-prefixed, CRC-framed records:
//
//   u32 payload_len | u32 crc32(payload) | u8 record_type | payload bytes
//
// A torn tail (partial frame or CRC mismatch after a crash) is detected by
// the scanner and dropped — exactly the "truncated last record" semantics
// command logging needs, since an incomplete batch record was never
// acknowledged to anyone.
//
// Group commit: append() only write()s (buffered, returns an LSN — the
// running byte offset across all segments); a background flusher fsyncs at
// most once per `group_commit_micros`, covering every record appended
// since the previous sync with one fsync. wait_durable(lsn) blocks the
// caller until the sync covering `lsn` completed — the durable-ack point
// proto::session exposes to clients.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"

namespace quecc::log {

enum class record_type : std::uint8_t {
  batch = 1,   ///< payload: plan_codec::encode_batch
  commit = 2,  ///< payload: plan_codec::encode_commit
};

struct writer_options {
  std::uint32_t group_commit_micros = 200;  ///< fsync coalescing window
  std::uint64_t segment_bytes = 64ull << 20;  ///< size-based rotation
  /// Reopen a directory that already holds segments (post-recovery
  /// resume): the newest segment's torn tail — unacknowledged by
  /// construction — is truncated away so later scans see a clean segment
  /// chain, and appending continues in a fresh segment numbered after the
  /// newest existing one. Without this flag an existing log is refused.
  bool resume = false;
};

class log_writer {
 public:
  /// Running byte offset across every segment ever written; durability is
  /// a watermark over it.
  using lsn_t = std::uint64_t;

  /// Creates `dir` when missing and opens the first segment. Throws
  /// std::runtime_error when the directory already holds segments and
  /// opts.resume is off: an old log must be recovered (log/recovery.hpp),
  /// resumed, or cleared — never silently overwritten.
  log_writer(std::string dir, writer_options opts);

  /// Final flush, then joins the flusher thread.
  ~log_writer();

  log_writer(const log_writer&) = delete;
  log_writer& operator=(const log_writer&) = delete;

  /// Append one framed record (buffered write, no fsync). Returns the LSN
  /// just past the record — pass it to wait_durable for a durable ack.
  /// Thread-safe: mu_ serializes whole frames, so the engine's submit
  /// thread (batch records) and its epilogue worker (commit records,
  /// checkpoint re-appends) may append concurrently — frames interleave
  /// but never tear, and each caller's own records keep their order.
  lsn_t append(record_type type, std::span<const std::byte> payload);

  /// Nudge the flusher without blocking (fire-and-forget durability).
  void request_flush();

  /// Block until every byte below `lsn` is fsynced. Triggers a flush
  /// rather than waiting out the group-commit timer, so a lone committer
  /// is not taxed the full window; concurrent appends since the last sync
  /// still share the one fsync.
  void wait_durable(lsn_t lsn);

  lsn_t appended_lsn() const;
  lsn_t durable_lsn() const;
  std::uint32_t segment_index() const;
  std::uint64_t fsyncs() const;  ///< total fsync calls (group-commit tests)

  /// Checkpoint support: fsync + close the current segment, open segment
  /// `segment_index()+1`, and delete every older segment file — their
  /// batches are covered by the checkpoint the caller just wrote. Returns
  /// the new segment index.
  std::uint32_t rotate_and_truncate();

  const std::string& dir() const noexcept { return dir_; }

 private:
  void open_segment(std::uint32_t index) REQUIRES(mu_);
  void flusher_main();

  const std::string dir_;
  const writer_options opts_;

  // Lock hierarchy: mu_ alone guards all writer state; durable_cv_ carries
  // the durable-LSN watermark to waiters, flush_cv_ wakes the flusher. The
  // flusher drops mu_ around the fsync itself (the one slow syscall) and
  // re-acquires it to publish durable_.
  mutable common::mutex mu_;
  common::cond_var flush_cv_;    // flusher waits here
  common::cond_var durable_cv_;  // wait_durable waits here
  int fd_ GUARDED_BY(mu_) = -1;
  std::uint32_t segment_ GUARDED_BY(mu_) = 0;
  std::uint64_t segment_bytes_written_ GUARDED_BY(mu_) = 0;
  lsn_t appended_ GUARDED_BY(mu_) = 0;
  lsn_t durable_ GUARDED_BY(mu_) = 0;
  std::uint64_t fsyncs_ GUARDED_BY(mu_) = 0;
  bool flush_requested_ GUARDED_BY(mu_) = false;
  bool stop_ GUARDED_BY(mu_) = false;
  std::thread flusher_;
};

/// One record as read back from a segment.
struct scanned_record {
  record_type type;
  std::vector<std::byte> payload;
};

/// Read every intact record of one segment into `out` (appending).
/// Returns false when the segment ends in a torn/corrupt frame (the intact
/// prefix is still appended); true on a clean end. Throws
/// std::runtime_error when the file cannot be opened or the header is not
/// a quecc log segment.
bool scan_segment(const std::string& path, std::vector<scanned_record>& out);

/// Drop a segment's torn tail in place: truncate the file to its intact
/// frame prefix, or remove it entirely when even the header is torn.
/// Returns true when the file was modified. The resume path runs this on
/// the newest segment so a later scan never stops early at a pre-crash
/// tear and silently ignores segments appended after it.
bool truncate_torn_tail(const std::string& path);

/// Segment file name for index `n` ("segment-<n>.qlog").
std::string segment_name(std::uint32_t n);

/// Existing segment indexes >= `base` in `dir`, sorted ascending.
std::vector<std::uint32_t> list_segments(const std::string& dir,
                                         std::uint32_t base);

}  // namespace quecc::log
