#include "log/checkpoint.hpp"

#include <fcntl.h>
#include <unistd.h>

#include <cinttypes>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <vector>

#include "common/stats.hpp"
#include "log/plan_codec.hpp"
#include "log/wire.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace quecc::log {

namespace fs = std::filesystem;

using wire::put_u16;
using wire::put_u32;
using wire::put_u64;

namespace {

constexpr std::uint32_t kCkptMagic = 0x504B4351u;  // "QCKP" little-endian
// v2: rows are recorded per table *shard* (one section per per-partition
// arena, see storage/table.hpp) so restore rebuilds each arena's rows —
// and therefore its allocation counts and rid assignment — exactly.
// v3: each table records its index backend kind; restore rejects a
// mismatch (an ordered arena restored into a hash table would silently
// lose its scan capability, and the recorded row order — the backend's
// visit contract — would no longer describe the rebuilt index). Ordered
// arenas serialize in ascending key order, and since skip-list structure
// is a pure function of the key set (storage/ordered_index.hpp), restore
// rebuilds the index bit-identically.
constexpr std::uint32_t kCkptVersion = 3;

/// Write `bytes` to `path` atomically: tmp file, fsync, rename, fsync dir.
void atomic_write(const std::string& dir, const std::string& name,
                  std::span<const std::byte> bytes) {
  const std::string tmp = dir + "/" + name + ".tmp";
  const std::string final_path = dir + "/" + name;
  const int fd = ::open(tmp.c_str(), O_CREAT | O_WRONLY | O_TRUNC, 0644);
  if (fd < 0) {
    throw std::runtime_error("checkpoint: cannot open '" + tmp +
                             "': " + std::strerror(errno));
  }
  const std::byte* p = bytes.data();
  std::size_t n = bytes.size();
  while (n > 0) {
    const ssize_t w = ::write(fd, p, n);
    if (w < 0) {
      if (errno == EINTR) continue;
      ::close(fd);
      throw std::runtime_error("checkpoint: write failed");
    }
    p += w;
    n -= static_cast<std::size_t>(w);
  }
  ::fsync(fd);
  ::close(fd);
  fs::rename(tmp, final_path);
  const int dfd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  if (dfd >= 0) {
    ::fsync(dfd);
    ::close(dfd);
  }
}

}  // namespace

checkpoint_meta checkpointer::take(const storage::database& db,
                                   std::uint32_t batch_id,
                                   std::uint64_t stream_pos,
                                   std::uint32_t segment_base) {
  const std::uint64_t t0 = common::now_nanos();
  checkpoint_meta meta;
  meta.batch_id = batch_id;
  meta.stream_pos = stream_pos;
  meta.state_hash = db.state_hash();
  meta.file = "checkpoint-" + std::to_string(batch_id) + ".qck";
  meta.segment_base = segment_base;

  std::vector<std::byte> out;
  put_u32(out, kCkptMagic);
  put_u32(out, kCkptVersion);
  put_u32(out, batch_id);
  put_u64(out, stream_pos);
  put_u64(out, meta.state_hash);
  put_u32(out, static_cast<std::uint32_t>(db.table_count()));
  for (table_id_t id = 0; id < db.table_count(); ++id) {
    const storage::table& t = db.at(id);
    put_u16(out, static_cast<std::uint16_t>(t.name().size()));
    for (char c : t.name()) out.push_back(static_cast<std::byte>(c));
    const std::size_t row_size = t.layout().row_size();
    put_u32(out, static_cast<std::uint32_t>(row_size));
    out.push_back(static_cast<std::byte>(t.index()));  // v3: index backend
    put_u16(out, t.shard_count());
    for (part_id_t s = 0; s < t.shard_count(); ++s) {
      put_u64(out, t.live_rows_in(s));
      t.for_each_live_in(s, [&](key_t key, storage::row_id_t rid) {
        put_u64(out, key);
        const auto row = t.row(rid);
        out.insert(out.end(), row.begin(), row.end());
      });
    }
  }
  put_u32(out, crc32(out));

  atomic_write(dir_, meta.file, out);
  write_manifest(dir_, meta);
  // The manifest now points at the new checkpoint; older snapshots (and
  // any stale .tmp from a crashed attempt) are dead weight.
  for (const auto& e : fs::directory_iterator(dir_)) {
    const std::string name = e.path().filename().string();
    if (name.rfind("checkpoint-", 0) == 0 && name != meta.file) {
      fs::remove(e.path());
    }
  }

  std::uint64_t rows = 0;
  for (table_id_t id = 0; id < db.table_count(); ++id) {
    const storage::table& t = db.at(id);
    for (part_id_t s = 0; s < t.shard_count(); ++s) rows += t.live_rows_in(s);
  }
  const std::uint64_t t1 = common::now_nanos();
  static const obs::counter taken("checkpoint.taken_total");
  static const obs::counter rows_ctr("checkpoint.rows_total");
  static const obs::counter bytes_ctr("checkpoint.bytes_total");
  static const obs::histogram dur("checkpoint.duration_nanos");
  taken.inc();
  rows_ctr.inc(rows);
  bytes_ctr.inc(out.size());
  dur.record_nanos(t1 - t0);
  obs::record_span(obs::trace_stage::checkpoint, t0, t1 - t0, batch_id);
  return meta;
}

std::optional<checkpoint_meta> read_manifest(const std::string& dir) {
  std::ifstream in(dir + "/MANIFEST");
  if (!in) return std::nullopt;
  std::string header;
  std::getline(in, header);
  if (header != "quecc-manifest v1") {
    throw std::runtime_error("log: malformed MANIFEST header");
  }
  checkpoint_meta m;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream ls(line);
    std::string key;
    ls >> key;
    if (key == "checkpoint") {
      ls >> m.file >> m.batch_id >> m.stream_pos >> std::hex >> m.state_hash;
      if (!ls) throw std::runtime_error("log: malformed MANIFEST checkpoint");
    } else if (key == "segment_base") {
      ls >> m.segment_base;
      if (!ls) throw std::runtime_error("log: malformed MANIFEST segment_base");
    }
  }
  return m;
}

void write_manifest(const std::string& dir, const checkpoint_meta& m) {
  std::ostringstream os;
  os << "quecc-manifest v1\n";
  os << "checkpoint " << m.file << ' ' << m.batch_id << ' ' << m.stream_pos
     << ' ' << std::hex << m.state_hash << std::dec << '\n';
  os << "segment_base " << m.segment_base << '\n';
  const std::string s = os.str();
  atomic_write(dir, "MANIFEST",
               {reinterpret_cast<const std::byte*>(s.data()), s.size()});
}

checkpoint_meta restore_checkpoint(const std::string& path,
                                   storage::database& db) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("checkpoint: cannot open '" + path + "'");
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(size));
  if (bytes.size() < 4 + 4 + 4) {
    throw std::runtime_error("checkpoint: truncated file");
  }
  const std::span<const std::byte> body(bytes.data(), bytes.size() - 4);
  wire::reader tail(std::span<const std::byte>(bytes).subspan(bytes.size() - 4),
                    "checkpoint");
  if (crc32(body) != tail.u32()) {
    throw std::runtime_error("checkpoint: CRC mismatch in '" + path + "'");
  }

  wire::reader r(body, "checkpoint");
  if (r.u32() != kCkptMagic || r.u32() != kCkptVersion) {
    throw std::runtime_error("checkpoint: bad magic/version in '" + path + "'");
  }
  checkpoint_meta meta;
  meta.batch_id = r.u32();
  meta.stream_pos = r.u64();
  meta.state_hash = r.u64();
  meta.file = fs::path(path).filename().string();

  const std::uint32_t tables = r.u32();
  for (std::uint32_t i = 0; i < tables; ++i) {
    const std::string name = r.str(r.u16());
    const std::uint32_t row_size = r.u32();
    const auto index = static_cast<storage::index_kind>(r.u8());
    storage::table& t = db.by_name(name);
    if (t.layout().row_size() != row_size) {
      throw std::runtime_error("checkpoint: row size mismatch for table '" +
                               name + "'");
    }
    if (t.index() != index) {
      throw std::runtime_error(
          "checkpoint: index backend mismatch for table '" + name + "': " +
          storage::index_kind_name(index) + " recorded, " +
          storage::index_kind_name(t.index()) +
          " loaded (index configuration changed?)");
    }
    const std::uint16_t shards = r.u16();
    if (shards != t.shard_count()) {
      throw std::runtime_error(
          "checkpoint: shard count mismatch for table '" + name + "': " +
          std::to_string(shards) + " recorded, " +
          std::to_string(t.shard_count()) +
          " loaded (partition configuration changed?)");
    }
    // Drive each arena to exactly the snapshot contents: overwrite or
    // insert every snapshot row into its recorded shard, erase live keys
    // the snapshot lacks. Shard indexes double as the partition hint
    // (home_shard(s) == s), so rows land in the arena they came from.
    for (part_id_t s = 0; s < shards; ++s) {
      const std::uint64_t rows = r.u64();
      // Apply the overwrite/insert pass in *recorded file order*, never in
      // hash order: inserts allocate slab slots, so the application order
      // decides rid assignment and therefore the slab order the *next*
      // checkpoint of this arena serializes. The file order is itself the
      // slab order at take() time, which also makes restore rebuild the
      // original rid assignment. The map exists only for the erase-pass
      // membership test, where iteration order never leaks.
      std::vector<std::pair<key_t, std::span<const std::byte>>> snap_rows;
      snap_rows.reserve(rows);
      std::unordered_map<key_t, std::size_t> snap;
      snap.reserve(rows);
      for (std::uint64_t k = 0; k < rows; ++k) {
        const key_t key = r.u64();
        snap_rows.emplace_back(key, r.bytes(row_size));
        snap.emplace(key, k);
      }
      std::vector<key_t> to_erase;
      t.for_each_live_in(s, [&](key_t key, storage::row_id_t) {
        if (snap.find(key) == snap.end()) to_erase.push_back(key);
      });
      for (key_t key : to_erase) t.erase(key, s);
      for (const auto& [key, payload] : snap_rows) {
        const storage::row_id_t rid = t.lookup(key, s);
        if (rid != storage::kNoRow) {
          std::memcpy(t.row(rid).data(), payload.data(), row_size);
        } else if (t.insert(key, payload, s) == storage::kNoRow) {
          throw std::runtime_error("checkpoint: insert failed for table '" +
                                   name + "'");
        }
      }
    }
  }

  const std::uint64_t got = db.state_hash();
  if (got != meta.state_hash) {
    char buf[64];
    std::snprintf(buf, sizeof buf, "%016" PRIx64 " != %016" PRIx64, got,
                  meta.state_hash);
    throw std::runtime_error(std::string("checkpoint: state hash mismatch "
                                         "after restore: ") + buf);
  }
  return meta;
}

}  // namespace quecc::log
