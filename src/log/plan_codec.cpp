#include "log/plan_codec.hpp"

#include <array>

#include "log/wire.hpp"
#include "txn/procedure.hpp"

namespace quecc::log {

using wire::put_u16;
using wire::put_u32;
using wire::put_u64;
using wire::put_u8;

void encode_batch(const txn::batch& b, std::vector<std::byte>& out) {
  put_u32(out, kCodecVersion);
  put_u32(out, b.id());
  put_u32(out, static_cast<std::uint32_t>(b.size()));
  for (const auto& tp : b) {
    const txn::txn_desc& t = *tp;
    const std::string& name = t.proc->name();
    put_u16(out, static_cast<std::uint16_t>(name.size()));
    for (char c : name) put_u8(out, static_cast<std::uint8_t>(c));
    put_u32(out, static_cast<std::uint32_t>(t.args.size()));
    for (std::uint64_t a : t.args) put_u64(out, a);
    put_u32(out, static_cast<std::uint32_t>(t.frags.size()));
    for (const txn::fragment& f : t.frags) {
      put_u16(out, f.table);
      put_u16(out, f.part);
      put_u64(out, f.key);
      put_u64(out, f.key_hi);  // v2: scan upper bound (0 for point kinds)
      put_u8(out, static_cast<std::uint8_t>(f.kind));
      put_u8(out, f.abortable ? 1 : 0);
      put_u16(out, f.idx);
      put_u16(out, f.logic);
      put_u16(out, f.output_slot);
      put_u64(out, f.input_mask);
      put_u64(out, f.aux);
    }
  }
}

txn::batch decode_batch(std::span<const std::byte> in,
                        const proc_resolver& procs) {
  wire::reader r(in, "plan_codec");
  if (r.u32() != kCodecVersion) {
    throw codec_error("plan_codec: unsupported version");
  }
  const std::uint32_t batch_id = r.u32();
  const std::uint32_t txn_count = r.u32();
  txn::batch b(batch_id);
  for (std::uint32_t i = 0; i < txn_count; ++i) {
    auto t = std::make_unique<txn::txn_desc>();
    const std::string name = r.str(r.u16());
    t->proc = procs ? procs(name) : nullptr;
    if (t->proc == nullptr) {
      throw codec_error("plan_codec: unknown procedure '" + name + "'");
    }
    const std::uint32_t args = r.u32();
    t->args.reserve(args);
    for (std::uint32_t a = 0; a < args; ++a) t->args.push_back(r.u64());
    const std::uint32_t frags = r.u32();
    if (frags > 1u << 20) throw codec_error("plan_codec: fragment count");
    t->frags.reserve(frags);
    for (std::uint32_t fi = 0; fi < frags; ++fi) {
      txn::fragment f;
      f.table = r.u16();
      f.part = r.u16();
      f.key = r.u64();
      f.key_hi = r.u64();
      const std::uint8_t kind = r.u8();
      if (kind > static_cast<std::uint8_t>(txn::op_kind::scan)) {
        throw codec_error("plan_codec: bad op_kind");
      }
      f.kind = static_cast<txn::op_kind>(kind);
      f.abortable = r.u8() != 0;
      f.idx = r.u16();
      f.logic = r.u16();
      f.output_slot = r.u16();
      f.input_mask = r.u64();
      f.aux = r.u64();
      t->frags.push_back(f);
    }
    b.add(std::move(t));
  }
  if (!r.exhausted()) throw codec_error("plan_codec: trailing bytes");
  try {
    b.validate();
  } catch (const std::logic_error& e) {
    throw codec_error(std::string("plan_codec: invalid plan: ") + e.what());
  }
  return b;
}

void encode_commit(const commit_info& c, std::vector<std::byte>& out) {
  put_u32(out, kCodecVersion);
  put_u32(out, c.batch_id);
  put_u32(out, c.txn_count);
  put_u32(out, c.committed);
  put_u32(out, c.aborted);
  put_u64(out, c.stream_pos);
  put_u64(out, c.state_hash);
}

commit_info decode_commit(std::span<const std::byte> in) {
  wire::reader r(in, "plan_codec");
  if (r.u32() != kCodecVersion) {
    throw codec_error("plan_codec: unsupported commit version");
  }
  commit_info c;
  c.batch_id = r.u32();
  c.txn_count = r.u32();
  c.committed = r.u32();
  c.aborted = r.u32();
  c.stream_pos = r.u64();
  c.state_hash = r.u64();
  if (!r.exhausted()) throw codec_error("plan_codec: trailing commit bytes");
  return c;
}

std::uint32_t crc32(std::span<const std::byte> data) noexcept {
  // Table-driven CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320).
  static const std::array<std::uint32_t, 256> table = [] {
    std::array<std::uint32_t, 256> t{};
    for (std::uint32_t i = 0; i < 256; ++i) {
      std::uint32_t c = i;
      for (int k = 0; k < 8; ++k) {
        c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
      }
      t[i] = c;
    }
    return t;
  }();
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::byte b : data) {
    c = table[(c ^ static_cast<std::uint8_t>(b)) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace quecc::log
