// Batch-boundary checkpoints + the recovery manifest.
//
// The paradigm hands us consistency for free: between run_batch calls no
// transaction is in flight, so a snapshot taken at a batch boundary is a
// transaction-consistent image — no fuzzy-checkpoint machinery, no
// copy-on-write, just a walk of every table's live rows
// (table::for_each_live). A checkpoint bounds recovery work and lets the
// command log be truncated: batches at or below the checkpoint are covered
// by the snapshot and their segments can be deleted.
//
// Crash safety is by ordering + atomic rename:
//   1. write checkpoint-<B>.qck.tmp, fsync, rename to checkpoint-<B>.qck
//   2. write MANIFEST.tmp (new checkpoint, segment_base = next segment),
//      fsync, rename to MANIFEST
//   3. rotate the log and delete older segments / older checkpoints
// A crash in any window leaves either the old manifest with its segments
// intact, or the new manifest whose checkpoint file is already durable —
// recovery never sees a half-written state it would trust (a torn .tmp is
// simply ignored; a torn renamed file fails its CRC).
//
// Checkpoint file format v3 (little-endian):
//   u32 magic "QCKP" | u32 version | u32 batch_id | u64 stream_pos
//   | u64 state_hash | u32 table_count
//   per table: u16 name_len | name | u32 row_size | u8 index_kind
//     | u16 shard_count
//     per shard: u64 row_count
//                | row_count * (u64 key | row_size payload bytes)
//   trailing u32 crc32 over everything before it
// Rows are recorded per per-partition arena (storage/table.hpp) so restore
// rebuilds every arena's contents — and per-shard allocation counts —
// exactly; a shard-count mismatch (partition config changed between run
// and recovery) fails loudly, as does an index-backend mismatch (v3):
// restoring an ordered table's snapshot into a hash table would silently
// turn its range scans into empty results. Ordered arenas serialize in
// ascending key order and the skip list's shape is a pure function of
// the key set, so a restored arena is bit-identical to the original.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "common/phase_annotations.hpp"
#include "storage/database.hpp"

namespace quecc::log {

/// Sentinel batch id meaning "no checkpoint taken yet".
inline constexpr std::uint32_t kNoCheckpoint = 0xFFFFFFFFu;

/// What the MANIFEST records about the latest checkpoint.
struct checkpoint_meta {
  std::uint32_t batch_id = kNoCheckpoint;
  std::uint64_t stream_pos = 0;   ///< txns through the checkpointed batch
  std::uint64_t state_hash = 0;   ///< database::state_hash at the boundary
  std::string file;               ///< checkpoint file name within the dir
  std::uint32_t segment_base = 0; ///< first log segment to replay from
};

class checkpointer {
 public:
  explicit checkpointer(std::string dir) : dir_(std::move(dir)) {}

  /// Snapshot `db` as of the boundary after `batch_id` and publish it via
  /// the manifest with `segment_base` as the first live segment (the
  /// caller rotates the log to that index right after). Requires the
  /// inter-batch quiescent point: no concurrent writers. Old checkpoint
  /// files are pruned once the manifest points at the new one.
  EPILOGUE_PHASE checkpoint_meta take(const storage::database& db,
                                      std::uint32_t batch_id,
                                      std::uint64_t stream_pos,
                                      std::uint32_t segment_base);

  const std::string& dir() const noexcept { return dir_; }

 private:
  std::string dir_;
};

/// Parse MANIFEST; nullopt when absent (fresh log, no checkpoint). Throws
/// std::runtime_error on a malformed manifest.
std::optional<checkpoint_meta> read_manifest(const std::string& dir);

/// Atomically (tmp + rename) write MANIFEST.
void write_manifest(const std::string& dir, const checkpoint_meta& m);

/// Restore `path` into `db`, which must already hold the checkpoint's
/// tables (create them by loading the workload first). Every table is
/// driven to exactly the snapshot's logical contents: missing keys are
/// inserted, extra keys erased, payloads overwritten. Verifies the file
/// CRC and the recorded state hash; throws std::runtime_error on mismatch.
/// Returns the checkpoint's metadata as read from the file.
checkpoint_meta restore_checkpoint(const std::string& path,
                                   storage::database& db);

}  // namespace quecc::log
