#include "storage/schema.hpp"

#include <cstring>
#include <stdexcept>

namespace quecc::storage {

namespace {
std::size_t type_size(const column& c) {
  switch (c.type) {
    case col_type::u64:
    case col_type::i64:
    case col_type::f64:
      return 8;
    case col_type::bytes:
      return c.size;
  }
  return c.size;
}
}  // namespace

schema::schema(std::vector<column> cols) : cols_(std::move(cols)) {
  offsets_.reserve(cols_.size());
  for (auto& c : cols_) {
    c.size = type_size(c);
    offsets_.push_back(row_size_);
    row_size_ += c.size;
  }
  if (row_size_ == 0) throw std::invalid_argument("schema with zero columns");
}

std::size_t schema::index_of(const std::string& name) const {
  for (std::size_t i = 0; i < cols_.size(); ++i) {
    if (cols_[i].name == name) return i;
  }
  throw std::out_of_range("no such column: " + name);
}

std::uint64_t read_u64(std::span<const std::byte> row, std::size_t offset) {
  std::uint64_t v;
  std::memcpy(&v, row.data() + offset, sizeof v);
  return v;
}

std::int64_t read_i64(std::span<const std::byte> row, std::size_t offset) {
  std::int64_t v;
  std::memcpy(&v, row.data() + offset, sizeof v);
  return v;
}

double read_f64(std::span<const std::byte> row, std::size_t offset) {
  double v;
  std::memcpy(&v, row.data() + offset, sizeof v);
  return v;
}

void write_u64(std::span<std::byte> row, std::size_t offset, std::uint64_t v) {
  std::memcpy(row.data() + offset, &v, sizeof v);
}

void write_i64(std::span<std::byte> row, std::size_t offset, std::int64_t v) {
  std::memcpy(row.data() + offset, &v, sizeof v);
}

void write_f64(std::span<std::byte> row, std::size_t offset, double v) {
  std::memcpy(row.data() + offset, &v, sizeof v);
}

void write_bytes(std::span<std::byte> row, std::size_t offset,
                 std::span<const std::byte> src) {
  std::memcpy(row.data() + offset, src.data(), src.size());
}

}  // namespace quecc::storage
