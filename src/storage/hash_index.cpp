#include "storage/hash_index.hpp"

#include <bit>
#include <mutex>

namespace quecc::storage {

namespace {
std::size_t round_pow2(std::size_t n) {
  return std::bit_ceil(n < 16 ? std::size_t{16} : n);
}
}  // namespace

hash_index::hash_index(std::size_t expected)
    : buckets_(round_pow2(expected * 2)),
      locks_(std::min<std::size_t>(round_pow2(expected / 64 + 1), 4096)) {
  mask_ = buckets_.size() - 1;
  lock_mask_ = locks_.size() - 1;
}

std::uint64_t hash_index::mix(key_t key) noexcept {
  // Fibonacci/murmur-style finalizer; cheap and well distributed.
  std::uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

const hash_index::bucket& hash_index::bucket_for(key_t key) const noexcept {
  return buckets_[mix(key) & mask_];
}

hash_index::bucket& hash_index::bucket_for(key_t key) noexcept {
  return buckets_[mix(key) & mask_];
}

common::spinlock& hash_index::lock_for(key_t key) const noexcept {
  return locks_[mix(key) & lock_mask_];
}

row_id_t hash_index::lookup(key_t key) const noexcept {
  std::scoped_lock guard(lock_for(key));
  for (const auto& e : bucket_for(key).entries) {
    if (e.key == key) return e.row;
  }
  return kNoRow;
}

bool hash_index::insert(key_t key, row_id_t row) {
  std::scoped_lock guard(lock_for(key));
  auto& b = bucket_for(key);
  for (const auto& e : b.entries) {
    if (e.key == key) return false;
  }
  b.entries.push_back({key, row});
  return true;
}

bool hash_index::erase(key_t key) {
  std::scoped_lock guard(lock_for(key));
  auto& entries = bucket_for(key).entries;
  for (std::size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].key == key) {
      entries[i] = entries.back();
      entries.pop_back();
      return true;
    }
  }
  return false;
}

std::size_t hash_index::size() const noexcept {
  std::size_t n = 0;
  for (const auto& b : buckets_) n += b.entries.size();
  return n;
}

}  // namespace quecc::storage
