#include "storage/hash_index.hpp"

#include <bit>

namespace quecc::storage {

namespace {
std::size_t round_pow2(std::size_t n) {
  return std::bit_ceil(n < 16 ? std::size_t{16} : n);
}
}  // namespace

hash_index::hash_index(std::size_t expected)
    : buckets_(round_pow2(expected)),
      locks_(std::min<std::size_t>(round_pow2(expected / 64 + 1), 4096)) {
  mask_ = buckets_.size() - 1;
  lock_mask_ = locks_.size() - 1;
}

hash_index::~hash_index() {
  // relaxed: destructor runs single-threaded (no concurrent publishers).
  for (auto& b : buckets_) {
    node* n = b.head.next.load(std::memory_order_relaxed);
    while (n != nullptr) {
      node* next = n->next.load(std::memory_order_relaxed);
      delete n;
      n = next;
    }
  }
}

std::uint64_t hash_index::mix(key_t key) noexcept {
  // Fibonacci/murmur-style finalizer; cheap and well distributed.
  std::uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}

const hash_index::bucket& hash_index::bucket_for(key_t key) const noexcept {
  return buckets_[mix(key) & mask_];
}

hash_index::bucket& hash_index::bucket_for(key_t key) noexcept {
  return buckets_[mix(key) & mask_];
}

common::spinlock& hash_index::lock_for(key_t key) const noexcept {
  return locks_[mix(key) & lock_mask_];
}

row_id_t hash_index::find(key_t key) const noexcept {
  for (const node* n = &bucket_for(key).head; n != nullptr;
       n = n->next.load(std::memory_order_acquire)) {
    const std::uint32_t c = n->count.load(std::memory_order_acquire);
    for (std::uint32_t i = 0; i < c; ++i) {
      if (n->slots[i].key == key) {
        return n->slots[i].row.load(std::memory_order_acquire);
      }
    }
  }
  return kNoRow;
}

row_id_t hash_index::lookup(key_t key) const noexcept {
  common::spin_guard guard(lock_for(key));
  return find(key);
}

row_id_t hash_index::lookup_unlocked(key_t key) const noexcept {
  return find(key);
}

bool hash_index::insert(key_t key, row_id_t row) {
  common::spin_guard guard(lock_for(key));
  node* last = &bucket_for(key).head;
  // relaxed: chain traversal under the stripe lock — writers are mutually
  // excluded, so no publication edge is needed on this path's loads.
  for (node* n = last; n != nullptr;
       n = n->next.load(std::memory_order_relaxed)) {
    const std::uint32_t c = n->count.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < c; ++i) {
      if (n->slots[i].key == key) {
        // relaxed: row flips only under this stripe lock.
        if (n->slots[i].row.load(std::memory_order_relaxed) != kNoRow) {
          return false;  // live duplicate
        }
        // Tombstone reclaim: lock-free readers observe the flip atomically.
        n->slots[i].row.store(row, std::memory_order_release);
        live_.fetch_add(1, std::memory_order_acq_rel);
        return true;
      }
    }
    last = n;
  }
  // relaxed: count only advances under this stripe lock.
  const std::uint32_t c = last->count.load(std::memory_order_relaxed);
  if (c < kNodeEntries) {
    // Write the slot fully, then publish it via the count: a concurrent
    // lock-free reader acquiring the count sees a complete entry.
    last->slots[c].key = key;
    // relaxed: the release store of count below publishes the whole slot.
    last->slots[c].row.store(row, std::memory_order_relaxed);
    last->count.store(c + 1, std::memory_order_release);
  } else {
    node* fresh = new node;
    fresh->slots[0].key = key;
    // relaxed: the release store of next below publishes the whole node.
    fresh->slots[0].row.store(row, std::memory_order_relaxed);
    fresh->count.store(1, std::memory_order_relaxed);
    last->next.store(fresh, std::memory_order_release);  // publish the node
  }
  live_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool hash_index::erase(key_t key) {
  common::spin_guard guard(lock_for(key));
  // relaxed: chain traversal under the stripe lock (see insert).
  for (node* n = &bucket_for(key).head; n != nullptr;
       n = n->next.load(std::memory_order_relaxed)) {
    const std::uint32_t c = n->count.load(std::memory_order_relaxed);
    for (std::uint32_t i = 0; i < c; ++i) {
      if (n->slots[i].key == key) {
        // relaxed: row flips only under this stripe lock.
        if (n->slots[i].row.load(std::memory_order_relaxed) == kNoRow) {
          return false;  // already tombstoned
        }
        n->slots[i].row.store(kNoRow, std::memory_order_release);
        live_.fetch_sub(1, std::memory_order_acq_rel);
        return true;
      }
    }
  }
  return false;
}

}  // namespace quecc::storage
