#include "storage/table.hpp"

#include <cstring>
#include <stdexcept>

#include "common/topology.hpp"

namespace quecc::storage {

namespace {
std::vector<std::size_t> even_split(std::size_t capacity, part_id_t shards) {
  if (shards == 0) {
    throw std::invalid_argument("table: shard count must be >= 1");
  }
  const std::size_t per = (capacity + shards - 1) / shards;
  return std::vector<std::size_t>(shards, per);
}
}  // namespace

table::table(table_id_t id, std::string name, schema s, std::size_t capacity,
             part_id_t shards)
    : table(id, std::move(name), std::move(s), even_split(capacity, shards)) {}

table::table(table_id_t id, std::string name, schema s,
             std::vector<std::size_t> shard_capacities)
    : id_(id),
      name_(std::move(name)),
      schema_(std::move(s)),
      row_size_(schema_.row_size()),
      capacity_(0) {
  if (shard_capacities.empty()) {
    throw std::invalid_argument("table '" + name_ + "': no shards");
  }
  shards_.reserve(shard_capacities.size());
  for (std::size_t cap : shard_capacities) {
    capacity_ += cap;
    shards_.push_back(std::make_unique<shard>(cap, row_size_, schema_.index()));
  }
}

std::size_t table::allocated_rows() const noexcept {
  std::size_t n = 0;
  for (part_id_t s = 0; s < shard_count(); ++s) n += allocated_rows_in(s);
  return n;
}

std::size_t table::live_rows() const noexcept {
  std::size_t n = 0;
  for (const auto& sh : shards_) n += sh->index->size();
  return n;
}

row_id_t table::allocate_row(part_id_t part) {
  const part_id_t s = home_shard(part);
  shard& sh = *shards_[s];
  if (sh.free_count.load(std::memory_order_acquire) != 0) {
    common::spin_guard guard(sh.free_lock);
    if (!sh.free_slots.empty()) {
      const std::uint64_t slot = sh.free_slots.back();
      sh.free_slots.pop_back();
      sh.free_count.fetch_sub(1, std::memory_order_acq_rel);
      return make_rid(s, slot);
    }
  }
  const std::uint64_t slot = sh.next_row.fetch_add(1, std::memory_order_acq_rel);
  if (slot >= sh.capacity) {
    throw std::length_error("table '" + name_ + "' shard " +
                            std::to_string(s) + " exceeded capacity " +
                            std::to_string(sh.capacity));
  }
  return make_rid(s, slot);
}

void table::retire_unindexed(row_id_t rid) {
  shard& sh = *shards_[rid_shard(rid)];
  // The slot was never indexed, so no other thread references it; reset
  // the protocol metadata a previous occupant may have left behind.
  row_meta& m = sh.meta[rid_slot(rid)];
  // relaxed: unreferenced slot (never indexed); publication to the next
  // owner happens through the free_lock + free_count release below.
  m.word1.store(0, std::memory_order_relaxed);
  m.word2.store(0, std::memory_order_relaxed);
  common::spin_guard guard(sh.free_lock);
  sh.free_slots.push_back(rid_slot(rid));
  sh.free_count.fetch_add(1, std::memory_order_release);
}

row_id_t table::insert(key_t key, std::span<const std::byte> payload,
                       part_id_t part) {
  if (payload.size() > row_size_) {
    throw std::invalid_argument(
        "table '" + name_ + "': payload of " + std::to_string(payload.size()) +
        " bytes exceeds row size " + std::to_string(row_size_) +
        " (schema mismatch)");
  }
  const row_id_t rid = allocate_row(part);
  auto dst = row(rid);
  std::memset(dst.data(), 0, dst.size());
  std::memcpy(dst.data(), payload.data(), payload.size());
  if (!index_row(key, rid)) {
    retire_unindexed(rid);  // duplicate key: recycle, don't leak headroom
    return kNoRow;
  }
  return rid;
}

std::uint64_t table::state_hash() const {
  // FNV-1a per row over key + payload, combined with addition so that the
  // result is independent of index iteration order and shard layout.
  std::uint64_t acc = 0;
  for_each_live([&](key_t k, row_id_t rid) {
    std::uint64_t h = 1469598103934665603ull;
    auto absorb = [&h](const std::byte* p, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<std::uint64_t>(p[i]);
        h *= 1099511628211ull;
      }
    };
    absorb(reinterpret_cast<const std::byte*>(&k), sizeof k);
    const auto r = row(rid);
    absorb(r.data(), r.size());
    acc += h;
  });
  return acc;
}

bool table::bind_shard_to_node(part_id_t s, unsigned node) {
  shard& sh = *shards_[s];
  const bool slab_ok = common::bind_memory_to_node(
      sh.slots.get(), sh.capacity * row_size_, node);
  // Meta rides along (baseline protocols hammer it from the same
  // executor); its failure does not demote the slab's binding.
  if (!sh.meta.empty()) {
    common::bind_memory_to_node(sh.meta.data(),
                                sh.meta.size() * sizeof(row_meta), node);
  }
  const int actual = common::node_of_address(sh.slots.get());
  sh.numa_node = actual >= 0 ? actual : (slab_ok ? static_cast<int>(node) : -1);
  return slab_ok;
}

}  // namespace quecc::storage
