#include "storage/table.hpp"

#include <cstring>
#include <stdexcept>

namespace quecc::storage {

table::table(table_id_t id, std::string name, schema s, std::size_t capacity)
    : id_(id),
      name_(std::move(name)),
      schema_(std::move(s)),
      row_size_(schema_.row_size()),
      capacity_(capacity),
      slots_(std::make_unique<std::byte[]>(row_size_ * capacity)),
      meta_(capacity),
      index_(capacity) {}

row_id_t table::allocate_row() {
  const row_id_t rid = next_row_.fetch_add(1, std::memory_order_acq_rel);
  if (rid >= capacity_) {
    throw std::length_error("table '" + name_ + "' exceeded capacity " +
                            std::to_string(capacity_));
  }
  return rid;
}

row_id_t table::insert(key_t key, std::span<const std::byte> payload) {
  const row_id_t rid = allocate_row();
  auto dst = row(rid);
  std::memset(dst.data(), 0, dst.size());
  std::memcpy(dst.data(), payload.data(),
              std::min(payload.size(), dst.size()));
  if (!index_.insert(key, rid)) return kNoRow;
  return rid;
}

std::uint64_t table::state_hash() const {
  // FNV-1a per row over key + payload, combined with addition so that the
  // result is independent of index iteration order.
  std::uint64_t acc = 0;
  index_.for_each([&](key_t k, row_id_t rid) {
    std::uint64_t h = 1469598103934665603ull;
    auto absorb = [&h](const std::byte* p, std::size_t n) {
      for (std::size_t i = 0; i < n; ++i) {
        h ^= static_cast<std::uint64_t>(p[i]);
        h *= 1099511628211ull;
      }
    };
    absorb(reinterpret_cast<const std::byte*>(&k), sizeof k);
    const auto r = row(rid);
    absorb(r.data(), r.size());
    acc += h;
  });
  return acc;
}

}  // namespace quecc::storage
