// In-memory table: per-partition row arenas + primary-key index shards
// (pluggable backend, see storage/index_backend.hpp) + per-row protocol
// metadata.
//
// A table is split into `shard_count()` arenas, one per storage partition:
// each shard owns its own row slab, row-meta array, and index shard,
// so executors that the planner confined to disjoint partitions touch
// disjoint cache lines and disjoint index memory — the storage-level
// counterpart of the paradigm's "planning already decided who touches
// what". A future NUMA-aware placement pins shard s of every table on the
// node that `dist::placement::node_of_part(s)` names.
//
// Row ids carry their shard in the high 16 bits (`rid_shard`/`rid_slot`),
// so `row()`/`meta()` signatures, span lifetimes, and kNoRow sentinels are
// unchanged for callers. Capacity is preallocated per shard at
// construction so row spans stay valid for the table's lifetime —
// executors across threads hold spans concurrently and a reallocating
// slab would invalidate them. Loaders size shards from their per-partition
// key share (with headroom for benchmark inserts, e.g. TPC-C
// orders/order-lines).
//
// Locking: key operations take a `part` hint naming the home partition.
// `lookup_local` routes to the home shard and takes no index lock at all
// (see hash_index.hpp for why lock-free reads are safe); `lookup` keeps
// the stripe-locked path for cross-partition baselines (2PL/Silo/TicToc)
// and anything without partition affinity. Writers (insert/erase) always
// serialize through the home shard's stripes.
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <type_traits>
#include <vector>

#include "common/spinlock.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "storage/index_backend.hpp"
#include "storage/schema.hpp"

namespace quecc::storage {

/// Per-row metadata words used by the *baseline* protocols; the
/// queue-oriented engine never touches them (its whole point is to need no
/// per-record concurrency control). Interpretation is protocol-specific:
///   2PL-NoWait : word1 = lock state (high bit exclusive, low bits shared)
///   Silo       : word1 = TID word (lock bit 63, epoch/counter below)
///   TicToc     : word1 = wts, word2 = rts
struct row_meta {
  std::atomic<std::uint64_t> word1{0};
  std::atomic<std::uint64_t> word2{0};
};

// --- row-id codec ----------------------------------------------------------
// High 16 bits: shard (home partition's arena). Low 48 bits: slot within
// the shard's slab. kNoRow (all ones) never collides: shard counts are
// bounded by part_id_t and slots by per-shard capacity, both far below the
// sentinel. Callers must keep checking `rid == kNoRow` before decoding.
inline constexpr unsigned kRidShardShift = 48;
inline constexpr row_id_t kRidSlotMask = (row_id_t{1} << kRidShardShift) - 1;

constexpr row_id_t make_rid(part_id_t shard, std::uint64_t slot) noexcept {
  return (static_cast<row_id_t>(shard) << kRidShardShift) | slot;
}
constexpr part_id_t rid_shard(row_id_t rid) noexcept {
  return static_cast<part_id_t>(rid >> kRidShardShift);
}
constexpr std::uint64_t rid_slot(row_id_t rid) noexcept {
  return rid & kRidSlotMask;
}

class table {
 public:
  /// `capacity` rows are preallocated, split evenly (rounded up) across
  /// `shards` arenas; exceeding a shard's share throws std::length_error
  /// from insert/allocate (tables are sized by the loader, growth would
  /// invalidate concurrently-held row spans).
  table(table_id_t id, std::string name, schema s, std::size_t capacity,
        part_id_t shards = 1);

  /// Explicit per-shard capacities, for loaders whose key share is uneven
  /// across partitions (e.g. TPC-C with warehouses % partitions != 0).
  table(table_id_t id, std::string name, schema s,
        std::vector<std::size_t> shard_capacities);

  table_id_t id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  const schema& layout() const noexcept { return schema_; }

  // --- shard geometry -----------------------------------------------------
  part_id_t shard_count() const noexcept {
    return static_cast<part_id_t>(shards_.size());
  }
  /// Arena backing home partition `part`. Single-shard tables (including
  /// replicated ones, loaded once and read-only after) collapse every
  /// partition onto shard 0; otherwise partitions stripe over shards.
  part_id_t home_shard(part_id_t part) const noexcept {
    return shards_.size() == 1
               ? 0
               : static_cast<part_id_t>(part % shards_.size());
  }
  std::size_t capacity() const noexcept { return capacity_; }
  std::size_t shard_capacity(part_id_t s) const {
    return shards_[s]->capacity;
  }
  /// Entire slab of shard `s` (all capacity rows); snapshot substrate for
  /// the dual-version store.
  std::span<const std::byte> shard_slab(part_id_t s) const {
    const shard& sh = *shards_[s];
    return {sh.slots.get(), sh.capacity * row_size_};
  }

  /// Read-only tables replicated at every partition (TPC-C's ITEM):
  /// partitioned engines treat reads of them as partition-local, exactly
  /// like H-Store's replicated dimension tables. Such tables are loaded
  /// with a single shard that every partition's lookups route to.
  void set_replicated(bool r) noexcept { replicated_ = r; }
  bool replicated() const noexcept { return replicated_; }

  /// Slots currently in use (live + erase-retired); recycled slots
  /// (duplicate-key insert failures) are not counted, so this tracks
  /// live_rows() instead of drifting away from it under duplicate storms.
  std::size_t allocated_rows() const noexcept;
  std::size_t allocated_rows_in(part_id_t s) const noexcept {
    const shard& sh = *shards_[s];
    // Load free_count first: every counted free slot corresponds to an
    // earlier allocation, so this order keeps the difference non-negative
    // even while writers churn (the reverse order could transiently
    // observe more frees than allocations and wrap).
    const std::uint64_t freed =
        sh.free_count.load(std::memory_order_acquire);
    return sh.next_row.load(std::memory_order_acquire) - freed;
  }
  /// Slots ever handed out in shard `s` (allocation high-water mark); the
  /// bound a snapshot of the slab must cover.
  std::size_t high_water_in(part_id_t s) const noexcept {
    return shards_[s]->next_row.load(std::memory_order_acquire);
  }

  // --- row access ---------------------------------------------------------
  std::span<std::byte> row(row_id_t rid) noexcept {
    shard& sh = *shards_[rid_shard(rid)];
    return {sh.slots.get() + rid_slot(rid) * row_size_, row_size_};
  }
  std::span<const std::byte> row(row_id_t rid) const noexcept {
    const shard& sh = *shards_[rid_shard(rid)];
    return {sh.slots.get() + rid_slot(rid) * row_size_, row_size_};
  }
  row_meta& meta(row_id_t rid) noexcept {
    return shards_[rid_shard(rid)]->meta[rid_slot(rid)];
  }

  // --- key operations -----------------------------------------------------
  // The `part` hint names the key's home partition; it defaults to 0 so
  // single-shard tables (ad-hoc tests, replicated tables) keep the old
  // one-argument calls. CAUTION: on a multi-shard table the default is
  // NOT "search everywhere" — a one-argument lookup/erase only sees shard
  // 0 and silently misses keys homed elsewhere. Callers touching sharded
  // tables must pass the fragment's `part` (or `rid_shard(rid)` on
  // rollback paths).

  /// Backend implementing the primary-key index of every shard (recorded
  /// in the schema; see storage/index_backend.hpp).
  index_kind index() const noexcept { return schema_.index(); }

  /// Stripe-locked lookup in `part`'s home shard. The baseline /
  /// no-affinity path.
  row_id_t lookup(key_t key, part_id_t part = 0) const noexcept {
    return shards_[home_shard(part)]->index->lookup(key);
  }

  /// Partition-local lookup: routes straight to the home shard and takes
  /// no index lock at all (safe against concurrent writers, see
  /// index_backend.hpp). The planner-resolve / executor hot path.
  row_id_t lookup_local(key_t key, part_id_t part) const noexcept {
    return shards_[home_shard(part)]->index->lookup_unlocked(key);
  }

  /// Allocate a fresh slot in `part`'s home shard (concurrent-safe)
  /// without indexing it yet.
  row_id_t allocate_row(part_id_t part = 0);

  /// Return an allocated-but-never-indexed slot (duplicate-key insert
  /// failure) to its shard's free list and reset its protocol metadata.
  /// Only valid for slots no other thread can reference.
  void retire_unindexed(row_id_t rid);

  /// Allocate + copy payload + index into `part`'s home shard. Returns
  /// kNoRow on duplicate key (the slot is recycled, not leaked). Throws
  /// std::invalid_argument when the payload is wider than a row — a schema
  /// mismatch must fail loudly, not silently truncate into a corrupt row.
  row_id_t insert(key_t key, std::span<const std::byte> payload,
                  part_id_t part = 0);

  /// Index a previously allocated row under `key` (shard taken from the
  /// rid, which allocate_row encoded).
  bool index_row(key_t key, row_id_t rid) {
    return shards_[rid_shard(rid)]->index->insert(key, rid);
  }

  /// Unlink a key from `part`'s home shard (slot is retired, not reused).
  /// Returns false if absent. Rollback paths without a partition at hand
  /// pass `rid_shard(rid)` of the row they are unlinking.
  bool erase(key_t key, part_id_t part = 0) {
    return shards_[home_shard(part)]->index->erase(key);
  }

  std::size_t live_rows() const noexcept;
  std::size_t live_rows_in(part_id_t s) const noexcept {
    return shards_[s]->index->size();
  }

  /// Visit all live (key, row id) pairs, shard-major. Not safe
  /// concurrently with writes. Within a shard the order is the backend's
  /// visit contract (see for_each_live_in).
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    for (part_id_t s = 0; s < shard_count(); ++s) {
      for_each_live_in(s, fn);
    }
  }

  /// Visit shard `s`'s live pairs only (checkpointing, clone).
  ///
  /// ITERATION ORDER IS A CONTRACT — checkpoint writers serialize rows in
  /// this order and restore replays the file order, so rid assignment
  /// after recovery depends on it (PR 7 pinned the restore side; the take
  /// side is pinned by tests/test_scan.cpp):
  ///  * hash backend    — bucket-chain publication order: identical for
  ///    two indexes with the same insertion history, unrelated to keys;
  ///  * ordered backend — ascending key order, always.
  template <typename Fn>
  void for_each_live_in(part_id_t s, Fn&& fn) const {
    using fn_t = std::remove_reference_t<Fn>;
    shards_[s]->index->visit_live(
        [](void* ctx, key_t k, row_id_t rid) {
          (*static_cast<fn_t*>(ctx))(k, rid);
          return true;
        },
        &fn);
  }

  /// Range scan over `part`'s home shard: visit live pairs with
  /// lo <= key < hi in ascending key order, lock-free against concurrent
  /// writers. Returns false when the table's index backend has no ordered
  /// iteration (hash) — scan fragments then see an empty result; workloads
  /// that plan scans must create their tables with index_kind::ordered.
  bool visit_range_in(part_id_t part, key_t lo, key_t hi,
                      index_backend::visit_fn fn, void* ctx) const {
    return shards_[home_shard(part)]->index->visit_range(lo, hi, fn, ctx);
  }

  /// Order-independent hash over live (key, payload) pairs; equal table
  /// contents hash equal regardless of insertion order *and* of shard
  /// count (rids and shard layout never enter the hash). Tests use this to
  /// compare engines and recovery paths.
  std::uint64_t state_hash() const;

  // --- NUMA placement -----------------------------------------------------
  /// Best-effort bind of shard `s`'s row slab + meta pages to NUMA `node`
  /// (raw mbind with page migration — slabs are zero-filled at allocation,
  /// so their pages already faulted on the loader's node; see
  /// common/topology.hpp). Records the node actually backing the slab
  /// afterwards, queryable via shard_numa_node(). Returns true when the
  /// kernel accepted the move; false (and no behavior change) on
  /// single-node machines or unsupported platforms.
  bool bind_shard_to_node(part_id_t s, unsigned node);

  /// NUMA node backing shard `s`'s slab as recorded by the last
  /// bind_shard_to_node call (-1 = never bound / unknown).
  int shard_numa_node(part_id_t s) const noexcept {
    return shards_[s]->numa_node;
  }

 private:
  /// One partition's arena: row slab + meta + index shard + allocator.
  struct shard {
    shard(std::size_t cap, std::size_t row_size, index_kind k)
        : slots(std::make_unique<std::byte[]>(row_size * cap)),
          meta(cap),
          index(make_index(k, cap)),
          capacity(cap) {}
    std::unique_ptr<std::byte[]> slots;
    std::vector<row_meta> meta;
    std::unique_ptr<index_backend> index;
    std::atomic<std::uint64_t> next_row{0};
    common::spinlock free_lock;
    /// Recycled slot numbers. free_count is the lock-free "is it worth
    /// taking free_lock" hint: writers release-increment it after pushing
    /// under the lock, allocate_row acquire-loads it before locking.
    std::vector<std::uint64_t> free_slots GUARDED_BY(free_lock);
    std::atomic<std::uint32_t> free_count{0};
    std::size_t capacity;
    /// NUMA node backing the slab (-1 until bind_shard_to_node ran).
    /// Written once at placement time, before workers start.
    int numa_node = -1;
  };

  table_id_t id_;
  std::string name_;
  schema schema_;
  std::size_t row_size_;
  std::size_t capacity_;
  bool replicated_ = false;
  std::vector<std::unique_ptr<shard>> shards_;
};

}  // namespace quecc::storage
