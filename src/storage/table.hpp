// In-memory table: fixed-width rows + primary-key hash index + per-row
// protocol metadata.
//
// Capacity is preallocated at construction so row spans stay valid for the
// table's lifetime — executors across threads hold spans concurrently and a
// reallocating vector would invalidate them. Loaders size tables with
// headroom for benchmark inserts (TPC-C orders/order-lines).
#pragma once

#include <atomic>
#include <cstddef>
#include <memory>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "storage/hash_index.hpp"
#include "storage/schema.hpp"

namespace quecc::storage {

/// Per-row metadata words used by the *baseline* protocols; the
/// queue-oriented engine never touches them (its whole point is to need no
/// per-record concurrency control). Interpretation is protocol-specific:
///   2PL-NoWait : word1 = lock state (high bit exclusive, low bits shared)
///   Silo       : word1 = TID word (lock bit 63, epoch/counter below)
///   TicToc     : word1 = wts, word2 = rts
struct row_meta {
  std::atomic<std::uint64_t> word1{0};
  std::atomic<std::uint64_t> word2{0};
};

class table {
 public:
  /// `capacity` rows are preallocated; exceeding it throws std::length_error
  /// from insert/allocate (tables are sized by the loader, growth would
  /// invalidate concurrently-held row spans).
  table(table_id_t id, std::string name, schema s, std::size_t capacity);

  table_id_t id() const noexcept { return id_; }
  const std::string& name() const noexcept { return name_; }
  const schema& layout() const noexcept { return schema_; }
  std::size_t capacity() const noexcept { return capacity_; }

  /// Read-only tables replicated at every partition (TPC-C's ITEM):
  /// partitioned engines treat reads of them as partition-local, exactly
  /// like H-Store's replicated dimension tables.
  void set_replicated(bool r) noexcept { replicated_ = r; }
  bool replicated() const noexcept { return replicated_; }
  std::size_t allocated_rows() const noexcept {
    return next_row_.load(std::memory_order_acquire);
  }

  // --- row access ---------------------------------------------------------
  std::span<std::byte> row(row_id_t rid) noexcept {
    return {slots_.get() + rid * row_size_, row_size_};
  }
  std::span<const std::byte> row(row_id_t rid) const noexcept {
    return {slots_.get() + rid * row_size_, row_size_};
  }
  row_meta& meta(row_id_t rid) noexcept { return meta_[rid]; }

  // --- key operations -----------------------------------------------------
  row_id_t lookup(key_t key) const noexcept { return index_.lookup(key); }

  /// Allocate a fresh slot (concurrent-safe) without indexing it yet.
  row_id_t allocate_row();

  /// Allocate + copy payload + index. Returns kNoRow on duplicate key.
  row_id_t insert(key_t key, std::span<const std::byte> payload);

  /// Index a previously allocated row under `key`.
  bool index_row(key_t key, row_id_t rid) { return index_.insert(key, rid); }

  /// Unlink a key (slot is retired, not reused). Returns false if absent.
  bool erase(key_t key) { return index_.erase(key); }

  std::size_t live_rows() const noexcept { return index_.size(); }

  /// Visit all live (key, row id) pairs. Not safe concurrently with writes.
  template <typename Fn>
  void for_each_live(Fn&& fn) const {
    index_.for_each([&](key_t k, row_id_t rid) { fn(k, rid); });
  }

  /// Order-independent hash over live (key, payload) pairs; equal table
  /// contents hash equal regardless of insertion order. Tests use this to
  /// compare engines.
  std::uint64_t state_hash() const;

 private:
  table_id_t id_;
  std::string name_;
  schema schema_;
  std::size_t row_size_;
  std::size_t capacity_;
  bool replicated_ = false;
  std::unique_ptr<std::byte[]> slots_;
  std::vector<row_meta> meta_;
  hash_index index_;
  std::atomic<std::uint64_t> next_row_{0};
};

}  // namespace quecc::storage
