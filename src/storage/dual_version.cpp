#include "storage/dual_version.hpp"

#include <cstring>

namespace quecc::storage {

dual_version_store::dual_version_store(const database& db) {
  shadows_.resize(db.table_count());
  for (table_id_t t = 0; t < db.table_count(); ++t) {
    const auto& tab = db.at(t);
    auto& s = shadows_[t];
    s.row_size = tab.layout().row_size();
    s.shards.resize(tab.shard_count());
    for (part_id_t sh = 0; sh < tab.shard_count(); ++sh) {
      auto& ss = s.shards[sh];
      ss.capacity = tab.shard_capacity(sh);
      ss.bytes = std::make_unique<std::byte[]>(s.row_size * ss.capacity);
      // Snapshot every slot touched so far; unallocated slots stay zeroed
      // and are published when first inserted.
      std::memcpy(ss.bytes.get(), tab.shard_slab(sh).data(),
                  s.row_size * tab.high_water_in(sh));
    }
  }
}

void dual_version_store::publish(const database& db, table_id_t table,
                                 row_id_t rid) noexcept {
  auto& s = shadows_[table];
  const auto src = db.at(table).row(rid);
  std::memcpy(s.shards[rid_shard(rid)].bytes.get() + rid_slot(rid) * s.row_size,
              src.data(), s.row_size);
}

void dual_version_store::publish_all_dirty(
    const database& db,
    const std::vector<std::pair<table_id_t, row_id_t>>& dirty) noexcept {
  for (const auto& [t, rid] : dirty) publish(db, t, rid);
}

}  // namespace quecc::storage
