// Primary-key hash index: key -> row id.
//
// Bucket-chained with striped spinlocks. Lookups and inserts are short
// critical sections (CP.43); stripes keep cross-partition traffic apart.
// Deterministic engines do all lookups in the planning phase, so the
// execution phase never touches the index except for inserts/deletes that
// are themselves routed to a single home partition.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/spinlock.hpp"
#include "common/types.hpp"

namespace quecc::storage {

using row_id_t = std::uint64_t;
inline constexpr row_id_t kNoRow = ~0ull;

class hash_index {
 public:
  /// `expected` sizes the bucket array (rounded up to a power of two).
  explicit hash_index(std::size_t expected);

  /// Returns kNoRow when absent (including tombstoned keys).
  row_id_t lookup(key_t key) const noexcept;

  /// Insert; returns false when the key already exists.
  bool insert(key_t key, row_id_t row);

  /// Remove; returns false when the key was absent.
  bool erase(key_t key);

  std::size_t size() const noexcept;

  /// Visit every (key, row) pair; not concurrent with writers. Used by
  /// state hashing and loaders only.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& b : buckets_) {
      for (const auto& e : b.entries) fn(e.key, e.row);
    }
  }

 private:
  struct entry {
    key_t key;
    row_id_t row;
  };
  struct bucket {
    std::vector<entry> entries;
  };

  static std::uint64_t mix(key_t key) noexcept;
  const bucket& bucket_for(key_t key) const noexcept;
  bucket& bucket_for(key_t key) noexcept;
  common::spinlock& lock_for(key_t key) const noexcept;

  std::vector<bucket> buckets_;
  mutable std::vector<common::spinlock> locks_;
  std::uint64_t mask_ = 0;
  std::uint64_t lock_mask_ = 0;
};

}  // namespace quecc::storage
