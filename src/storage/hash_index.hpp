// Primary-key hash index: key -> row id.
//
// Buckets are chains of fixed-slot nodes published with release/acquire
// atomics, which splits the synchronization story in two:
//
//  * Writers (insert/erase) serialize through striped spinlocks — short
//    critical sections (CP.43); stripes keep unrelated keys apart. This is
//    the path concurrent loaders and the cross-partition baselines
//    (2PL/Silo/TicToc/MVTO) use.
//  * Readers never need a lock. `lookup_unlocked` walks the node chain
//    with acquire loads; writers publish a new entry by storing the slot
//    first and release-incrementing the node's entry count (or
//    release-linking a fresh node), so a reader either sees a fully
//    written entry or none at all. Entries are never moved or deleted —
//    erase tombstones the row id in place (slot retired, reclaimed only by
//    a re-insert of the same key) — so a lock-free walk can never observe
//    a torn or recycled slot. The deterministic engines rely on this:
//    partition-local lookups (planner resolve, executor resolve fallback)
//    take no index lock at all, the paper's "no per-record concurrency
//    control on the execution path" made literal. `lookup` (stripe-locked)
//    remains for callers without partition affinity.
//
// Size guarantee: `size()` reads a single atomic counter maintained by
// insert/erase, so it is O(1), exact at quiescent points, and safe (a
// momentarily stale but torn-free value) while writers run — it never
// walks buckets concurrently mutated by insert, which the old
// implementation did.
#pragma once

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/spinlock.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "storage/index_backend.hpp"

namespace quecc::storage {

class hash_index final : public index_backend {
 public:
  /// `expected` sizes the bucket array (rounded up to a power of two).
  explicit hash_index(std::size_t expected);
  ~hash_index() override;

  index_kind kind() const noexcept override { return index_kind::hash; }

  /// Stripe-locked lookup; returns kNoRow when absent (including
  /// tombstoned keys). For callers without partition affinity.
  row_id_t lookup(key_t key) const noexcept override;

  /// Lock-free lookup (see header comment): safe concurrently with
  /// writers, takes no lock of any kind. The partition-local hot path.
  /// EXCLUDES is deliberately absent: holding a stripe is *allowed* (the
  /// locked lookup is just this plus a stripe), it is simply unnecessary.
  row_id_t lookup_unlocked(key_t key) const noexcept override;

  /// Insert; returns false when the key already exists (live). Re-inserting
  /// a tombstoned key reclaims its slot.
  bool insert(key_t key, row_id_t row) override;

  /// Remove; returns false when the key was absent. Tombstones in place.
  bool erase(key_t key) override;

  /// Live entries, O(1) from an atomic counter (see header comment).
  std::size_t size() const noexcept override {
    return live_.load(std::memory_order_acquire);
  }

  /// Virtual visit (index_backend): publication order per bucket chain —
  /// deterministic across indexes with the same insertion history, but
  /// NOT key order.
  void visit_live(visit_fn fn, void* ctx) const override {
    for (const auto& b : buckets_) {
      for (const node* n = &b.head; n != nullptr;
           n = n->next.load(std::memory_order_acquire)) {
        const std::uint32_t c = n->count.load(std::memory_order_acquire);
        for (std::uint32_t i = 0; i < c; ++i) {
          const row_id_t r = n->slots[i].row.load(std::memory_order_acquire);
          if (r != kNoRow && !fn(ctx, n->slots[i].key, r)) return;
        }
      }
    }
  }

  /// No ordered iteration in a hash table: reports unsupported.
  bool visit_range(key_t /*lo*/, key_t /*hi*/, visit_fn /*fn*/,
                   void* /*ctx*/) const override {
    return false;
  }

  /// Visit every live (key, row) pair; not concurrent with writers. Used
  /// by state hashing, checkpoints, and loaders only.
  template <typename Fn>
  void for_each(Fn&& fn) const {
    for (const auto& b : buckets_) {
      for (const node* n = &b.head; n != nullptr;
           n = n->next.load(std::memory_order_acquire)) {
        const std::uint32_t c = n->count.load(std::memory_order_acquire);
        for (std::uint32_t i = 0; i < c; ++i) {
          const row_id_t r = n->slots[i].row.load(std::memory_order_acquire);
          if (r != kNoRow) fn(n->slots[i].key, r);
        }
      }
    }
  }

 private:
  /// Slots per chain node. The inline head node covers the common case
  /// (bucket array is sized to ~1 key per bucket); overflow nodes are
  /// allocated under the stripe lock and freed in the destructor.
  static constexpr std::uint32_t kNodeEntries = 4;

  struct entry {
    key_t key = 0;
    std::atomic<row_id_t> row{kNoRow};
  };
  struct node {
    std::atomic<std::uint32_t> count{0};
    std::atomic<node*> next{nullptr};
    entry slots[kNodeEntries];
  };
  struct bucket {
    node head;
  };

  static std::uint64_t mix(key_t key) noexcept;
  const bucket& bucket_for(key_t key) const noexcept;
  bucket& bucket_for(key_t key) noexcept;
  common::spinlock& lock_for(key_t key) const noexcept;

  /// Chain walk shared by both lookup flavors; memory order of the loads
  /// is acquire so the lock-free caller is safe (harmless overkill under
  /// the stripe lock).
  row_id_t find(key_t key) const noexcept;

  // The stripe array is indexed dynamically (lock_for(key)), which Clang
  // TSA cannot track as a capability expression; the discipline — writers
  // hold the key's stripe, readers need none (node chains publish via
  // release/acquire, entries are tombstoned in place, never freed) — is
  // enforced by TSAN and documented in the header comment instead.
  std::vector<bucket> buckets_;
  mutable std::vector<common::spinlock> locks_;
  std::atomic<std::size_t> live_{0};
  std::uint64_t mask_ = 0;
  std::uint64_t lock_mask_ = 0;
};

}  // namespace quecc::storage
