#include "storage/ordered_index.hpp"

#include "storage/hash_index.hpp"

namespace quecc::storage {

namespace {
/// Same murmur-style finalizer as hash_index::mix; heights must not
/// correlate with raw key order (dense sequential keys would otherwise
/// degenerate the tower distribution).
std::uint64_t mix(key_t key) noexcept {
  std::uint64_t h = key;
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 33;
  h *= 0xc4ceb9fe1a85ec53ull;
  h ^= h >> 33;
  return h;
}
}  // namespace

ordered_index::ordered_index(std::size_t /*expected*/)
    : head_(0, kNoRow, kMaxHeight) {}

ordered_index::~ordered_index() {
  // relaxed: destructor runs single-threaded (no concurrent publishers).
  node* n = head_.next[0].load(std::memory_order_relaxed);
  while (n != nullptr) {
    node* next = n->next[0].load(std::memory_order_relaxed);
    delete n;
    n = next;
  }
}

int ordered_index::height_for(key_t key) noexcept {
  // Geometric distribution with branching factor 4, read off the mixed
  // key's bit pairs: height h with probability 4^-(h-1) * 3/4. Purely a
  // function of the key — see the determinism note in the header.
  std::uint64_t h = mix(key);
  int height = 1;
  while (height < kMaxHeight && (h & 3) == 0) {
    ++height;
    h >>= 2;
  }
  return height;
}

const ordered_index::node* ordered_index::find_ge(key_t key) const noexcept {
  const node* x = &head_;
  for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
    for (const node* nxt = x->next[lvl].load(std::memory_order_acquire);
         nxt != nullptr && nxt->key < key;
         nxt = x->next[lvl].load(std::memory_order_acquire)) {
      x = nxt;
    }
  }
  return x->next[0].load(std::memory_order_acquire);
}

ordered_index::node* ordered_index::find_ge_with_preds(
    key_t key, node* preds[kMaxHeight]) noexcept {
  node* x = &head_;
  for (int lvl = kMaxHeight - 1; lvl >= 0; --lvl) {
    // relaxed: traversal under write_lock_ — writers are mutually
    // excluded, and every pointer read here was written either before the
    // lock was acquired or by this thread.
    for (node* nxt = x->next[lvl].load(std::memory_order_relaxed);
         nxt != nullptr && nxt->key < key;
         nxt = x->next[lvl].load(std::memory_order_relaxed)) {
      x = nxt;
    }
    preds[lvl] = x;
  }
  // relaxed: same write_lock_-holder-only traversal as the loop above.
  return x->next[0].load(std::memory_order_relaxed);
}

row_id_t ordered_index::lookup_unlocked(key_t key) const noexcept {
  const node* n = find_ge(key);
  if (n == nullptr || n->key != key) return kNoRow;
  return n->row.load(std::memory_order_acquire);
}

row_id_t ordered_index::lookup(key_t key) const noexcept {
  // Reads are lock-free by construction; the "locked" flavor exists only
  // for interface parity with the hash backend.
  return lookup_unlocked(key);
}

bool ordered_index::insert(key_t key, row_id_t row) {
  common::spin_guard guard(write_lock_);
  node* preds[kMaxHeight];
  node* n = find_ge_with_preds(key, preds);
  if (n != nullptr && n->key == key) {
    // relaxed: row flips only under write_lock_.
    if (n->row.load(std::memory_order_relaxed) != kNoRow) {
      return false;  // live duplicate
    }
    // Tombstone reclaim: lock-free readers observe the flip atomically.
    n->row.store(row, std::memory_order_release);
    live_.fetch_add(1, std::memory_order_acq_rel);
    return true;
  }
  node* fresh = new node(key, row, height_for(key));
  for (int lvl = 0; lvl < fresh->height; ++lvl) {
    // relaxed: the release stores linking `fresh` below publish the whole
    // node, forward pointers included.
    fresh->next[lvl].store(preds[lvl]->next[lvl].load(std::memory_order_relaxed),
                           std::memory_order_relaxed);
  }
  for (int lvl = 0; lvl < fresh->height; ++lvl) {
    preds[lvl]->next[lvl].store(fresh, std::memory_order_release);
  }
  live_.fetch_add(1, std::memory_order_acq_rel);
  return true;
}

bool ordered_index::erase(key_t key) {
  common::spin_guard guard(write_lock_);
  node* preds[kMaxHeight];
  node* n = find_ge_with_preds(key, preds);
  if (n == nullptr || n->key != key) return false;
  // relaxed: row flips only under write_lock_.
  if (n->row.load(std::memory_order_relaxed) == kNoRow) {
    return false;  // already tombstoned
  }
  n->row.store(kNoRow, std::memory_order_release);
  live_.fetch_sub(1, std::memory_order_acq_rel);
  return true;
}

void ordered_index::visit_live(visit_fn fn, void* ctx) const {
  for (const node* n = head_.next[0].load(std::memory_order_acquire);
       n != nullptr; n = n->next[0].load(std::memory_order_acquire)) {
    const row_id_t r = n->row.load(std::memory_order_acquire);
    if (r != kNoRow && !fn(ctx, n->key, r)) return;
  }
}

bool ordered_index::visit_range(key_t lo, key_t hi, visit_fn fn,
                                void* ctx) const {
  for (const node* n = find_ge(lo);
       n != nullptr && n->key < hi;
       n = n->next[0].load(std::memory_order_acquire)) {
    const row_id_t r = n->row.load(std::memory_order_acquire);
    if (r != kNoRow && !fn(ctx, n->key, r)) break;
  }
  return true;
}

std::unique_ptr<index_backend> make_index(index_kind k, std::size_t expected) {
  if (k == index_kind::ordered) {
    return std::make_unique<ordered_index>(expected);
  }
  return std::make_unique<hash_index>(expected);
}

}  // namespace quecc::storage
