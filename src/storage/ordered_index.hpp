// Ordered primary-key index: a deterministic, partitioned-by-construction
// skip list (one instance per table shard, like hash_index).
//
// Why a skip list and not a B-tree: nodes are immortal (erase tombstones
// the row id in place, nodes are freed only by the destructor) and links
// are single atomic pointers, so the lock-free reader story is the same
// release/acquire publication protocol the hash index already proved out —
// no node splits/merges to make safe against concurrent readers.
//
//  * Writers (insert/erase) serialize through one spinlock per index
//    instance — i.e. per table shard. The deterministic engines already
//    confine a key's writers to its home partition's executor, so this
//    lock is uncontended on their hot path; it exists for concurrent
//    loaders and the cross-partition baselines.
//  * Readers never need a lock. Lookups and range visits walk `next`
//    pointers with acquire loads; writers fully initialize a node's key,
//    row and forward pointers before release-linking it, and tombstone in
//    place, so a reader sees a fully published node or none at all.
//
// Determinism: tower heights derive from a bit-mixed hash of the key
// (geometric with branching factor 4), NOT from an RNG — two indexes
// holding the same key set have bit-identical structure regardless of
// insertion order. Level-0 is a sorted linked list, so every visit
// (`visit_live`, `visit_range`) yields ascending key order by
// construction: scan results, checkpoint images and state pinning can
// never observe hash order from this backend.
#pragma once

#include <atomic>
#include <cstdint>

#include "common/spinlock.hpp"
#include "common/thread_annotations.hpp"
#include "common/types.hpp"
#include "storage/index_backend.hpp"

namespace quecc::storage {

class ordered_index final : public index_backend {
 public:
  /// `expected` is accepted for interface symmetry with hash_index; a skip
  /// list needs no pre-sizing.
  explicit ordered_index(std::size_t expected);
  ~ordered_index() override;

  index_kind kind() const noexcept override { return index_kind::ordered; }

  row_id_t lookup(key_t key) const noexcept override;
  row_id_t lookup_unlocked(key_t key) const noexcept override;
  bool insert(key_t key, row_id_t row) override;
  bool erase(key_t key) override;

  std::size_t size() const noexcept override {
    return live_.load(std::memory_order_acquire);
  }

  void visit_live(visit_fn fn, void* ctx) const override;
  bool visit_range(key_t lo, key_t hi, visit_fn fn,
                   void* ctx) const override;

 private:
  /// Tallest tower; 16 levels at branching 4 cover ~4^16 keys, far beyond
  /// any shard's capacity.
  static constexpr int kMaxHeight = 16;

  struct node {
    explicit node(key_t k, row_id_t r, int h) : key(k), row(r), height(h) {
      // relaxed: the node is not yet reachable — it is published later by
      // the inserter's release store into a predecessor's next pointer.
      for (auto& n : next) n.store(nullptr, std::memory_order_relaxed);
    }
    const key_t key;
    std::atomic<row_id_t> row;
    const int height;
    std::atomic<node*> next[kMaxHeight];
  };

  /// Deterministic tower height for `key` (see header comment).
  static int height_for(key_t key) noexcept;

  /// First level-0 node with node->key >= key (nullptr past the end);
  /// acquire walk, safe without any lock.
  const node* find_ge(key_t key) const noexcept;

  /// Writer-path search: like find_ge but records the predecessor at every
  /// level for relinking.
  node* find_ge_with_preds(key_t key, node* preds[kMaxHeight]) noexcept
      REQUIRES(write_lock_);

  // Structural mutation (linking new nodes) is serialized by write_lock_;
  // the linked pointers themselves are atomics that lock-free readers walk
  // concurrently, so Clang TSA cannot express the split — the protocol
  // (writers hold the lock, readers need nothing, nodes are never freed
  // while live) is enforced by TSAN and documented above instead.
  mutable common::spinlock write_lock_;
  node head_;
  std::atomic<std::size_t> live_{0};
};

}  // namespace quecc::storage
