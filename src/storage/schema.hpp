// Table schemas: typed, fixed-width columns over flat byte rows.
//
// Every table stores rows as contiguous fixed-size byte arrays; a schema
// maps column names to offsets. Fixed-width rows keep the execution phase
// free of allocation and make before-image capture (undo) a memcpy.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "storage/index_backend.hpp"

namespace quecc::storage {

/// Supported column types. `bytes` is a fixed-length opaque field (TPC-C
/// strings); numeric types are stored little-endian in the row buffer.
enum class col_type : std::uint8_t { u64, i64, f64, bytes };

struct column {
  std::string name;
  col_type type = col_type::u64;
  std::size_t size = 8;  ///< bytes; fixed 8 for numeric types
};

/// Immutable column layout. Build once via the constructor, then share.
class schema {
 public:
  schema() = default;
  explicit schema(std::vector<column> cols);

  std::size_t row_size() const noexcept { return row_size_; }
  std::size_t column_count() const noexcept { return cols_.size(); }

  const column& col(std::size_t idx) const { return cols_.at(idx); }
  std::size_t offset(std::size_t idx) const { return offsets_.at(idx); }

  /// Index of a column by name; throws std::out_of_range when missing.
  std::size_t index_of(const std::string& name) const;

  /// Primary-key index backend for tables created with this schema (hash
  /// by default). The choice rides in the schema so `database::clone` and
  /// the catalog carry it without widening any create_table signature.
  schema& with_index(index_kind k) noexcept {
    index_ = k;
    return *this;
  }
  index_kind index() const noexcept { return index_; }

 private:
  std::vector<column> cols_;
  std::vector<std::size_t> offsets_;
  std::size_t row_size_ = 0;
  index_kind index_ = index_kind::hash;
};

/// Typed accessors over a raw row buffer. These are free functions instead
/// of a row class so tables can hand out spans without wrapper objects.
std::uint64_t read_u64(std::span<const std::byte> row, std::size_t offset);
std::int64_t read_i64(std::span<const std::byte> row, std::size_t offset);
double read_f64(std::span<const std::byte> row, std::size_t offset);
void write_u64(std::span<std::byte> row, std::size_t offset, std::uint64_t v);
void write_i64(std::span<std::byte> row, std::size_t offset, std::int64_t v);
void write_f64(std::span<std::byte> row, std::size_t offset, double v);
void write_bytes(std::span<std::byte> row, std::size_t offset,
                 std::span<const std::byte> src);

}  // namespace quecc::storage
