#include "storage/catalog.hpp"

#include <stdexcept>

namespace quecc::storage {

table_id_t catalog::register_table(const std::string& name) {
  if (ids_.contains(name)) {
    throw std::invalid_argument("duplicate table: " + name);
  }
  const auto id = static_cast<table_id_t>(names_.size());
  ids_.emplace(name, id);
  names_.push_back(name);
  return id;
}

table_id_t catalog::id_of(const std::string& name) const {
  auto it = ids_.find(name);
  if (it == ids_.end()) throw std::out_of_range("unknown table: " + name);
  return it->second;
}

}  // namespace quecc::storage
