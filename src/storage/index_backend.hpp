// Primary-key index backend seam: key -> row id, pluggable per table.
//
// `storage::table` owns one index instance per shard (arena) and talks to
// it only through this interface, so the access path is swappable without
// touching any caller above the storage layer — the LeanStore-style
// Adapter/Scanner idea applied to our per-arena layout. Two backends ship:
//
//  * `hash_index`    — the original chained hash (point lookups only);
//  * `ordered_index` — a deterministic skip list that additionally supports
//    in-order range visits (`visit_range`), unlocking scan fragments.
//
// Both obey the same concurrency contract the deterministic engines rely
// on: `lookup_unlocked` and the visit functions are lock-free and safe
// against concurrent writers (entries are published with release/acquire
// and tombstoned in place, never unlinked or freed while the index lives),
// while insert/erase serialize writers internally. The backend is chosen
// per table via `schema::with_index` and recorded in the catalog.
#pragma once

#include <cstddef>
#include <cstdint>
#include <memory>

#include "common/types.hpp"

namespace quecc::storage {

using row_id_t = std::uint64_t;
inline constexpr row_id_t kNoRow = ~0ull;

/// Which index implementation backs a table's shards.
enum class index_kind : std::uint8_t { hash = 0, ordered = 1 };

constexpr const char* index_kind_name(index_kind k) noexcept {
  return k == index_kind::ordered ? "ordered" : "hash";
}

class index_backend {
 public:
  /// Visitor over live (key, row id) pairs; return false to stop early.
  /// A plain function pointer + context (not std::function) keeps the
  /// virtual seam allocation-free on the execution hot path.
  using visit_fn = bool (*)(void* ctx, key_t key, row_id_t row);

  virtual ~index_backend() = default;
  index_backend() = default;
  index_backend(const index_backend&) = delete;
  index_backend& operator=(const index_backend&) = delete;

  virtual index_kind kind() const noexcept = 0;

  /// Point lookup; returns kNoRow when absent (including tombstoned keys).
  /// Safe for callers without partition affinity.
  virtual row_id_t lookup(key_t key) const noexcept = 0;

  /// Lock-free point lookup: safe concurrently with writers, takes no lock
  /// of any kind. The partition-local hot path.
  virtual row_id_t lookup_unlocked(key_t key) const noexcept = 0;

  /// Insert; returns false when the key already exists (live). Re-inserting
  /// a tombstoned key reclaims its slot.
  virtual bool insert(key_t key, row_id_t row) = 0;

  /// Remove; returns false when the key was absent. Tombstones in place.
  virtual bool erase(key_t key) = 0;

  /// Live entries, O(1) from an atomic counter.
  virtual std::size_t size() const noexcept = 0;

  /// Visit every live (key, row) pair. Iteration order is a backend
  /// contract (checkpoint writers and state pinning depend on it):
  /// hash — publication order per bucket chain, identical across two
  /// indexes with the same insertion history; ordered — ascending key
  /// order, always.
  virtual void visit_live(visit_fn fn, void* ctx) const = 0;

  /// Visit live pairs with lo <= key < hi in ascending key order, lock-free
  /// against concurrent writers. Returns false when the backend has no
  /// ordered iteration (hash) — the caller decides whether that is an
  /// empty result or a configuration error.
  virtual bool visit_range(key_t lo, key_t hi, visit_fn fn,
                           void* ctx) const = 0;
};

/// Backend factory; `expected` sizes internal structures for ~that many
/// live keys.
std::unique_ptr<index_backend> make_index(index_kind k, std::size_t expected);

}  // namespace quecc::storage
