// Committed-version store backing read-committed isolation.
//
// Paper Section 3.2 ("Isolation Levels"): supporting read-committed with
// speculative execution "requires maintaining a speculative version and a
// committed version of records". In this engine the table's own rows are
// the speculative (working) versions; this sidecar keeps a committed copy
// per row. The commit epilogue publishes the batch's dirty rows, flipping
// them visible to the read-committed read queues of the *next* batch.
//
// Shadows mirror the tables' shard layout (one slab per per-partition
// arena, see table.hpp): row ids carry their shard in the high bits, so
// the committed image of a row lives at the same (shard, slot) as the
// working copy — publishing stays a single memcpy and executors on
// disjoint partitions touch disjoint shadow slabs too.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <vector>

#include "storage/database.hpp"

namespace quecc::storage {

class dual_version_store {
 public:
  /// Snapshots the committed image of every table in `db`. Call after load.
  explicit dual_version_store(const database& db);

  /// Committed bytes of a row (stable until the next publish of that row).
  std::span<const std::byte> committed_row(table_id_t table,
                                           row_id_t rid) const noexcept {
    const auto& t = shadows_[table];
    return {t.shards[rid_shard(rid)].bytes.get() + rid_slot(rid) * t.row_size,
            t.row_size};
  }

  /// Copy a row's current (working) bytes into the committed image.
  void publish(const database& db, table_id_t table, row_id_t rid) noexcept;

  /// Publish a freshly inserted row (extends coverage to new slots).
  void publish_all_dirty(const database& db,
                         const std::vector<std::pair<table_id_t, row_id_t>>&
                             dirty) noexcept;

 private:
  struct shard_shadow {
    std::unique_ptr<std::byte[]> bytes;
    std::size_t capacity = 0;
  };
  struct shadow {
    std::vector<shard_shadow> shards;
    std::size_t row_size = 0;
  };
  std::vector<shadow> shadows_;
};

}  // namespace quecc::storage
