// Catalog: name -> table id resolution.
//
// Built once by a workload's loader, immutable afterwards; engines resolve
// ids at load time and use integer ids on hot paths.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"

namespace quecc::storage {

class catalog {
 public:
  /// Registers a table name, returning its id. Throws on duplicates.
  table_id_t register_table(const std::string& name);

  /// Throws std::out_of_range when the name is unknown.
  table_id_t id_of(const std::string& name) const;

  const std::string& name_of(table_id_t id) const { return names_.at(id); }
  std::size_t table_count() const noexcept { return names_.size(); }

 private:
  std::unordered_map<std::string, table_id_t> ids_;
  std::vector<std::string> names_;
};

}  // namespace quecc::storage
