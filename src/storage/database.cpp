#include "storage/database.hpp"

namespace quecc::storage {

table& database::create_table(const std::string& name, schema s,
                              std::size_t capacity, part_id_t shards) {
  const table_id_t id = cat_.register_table(name);
  tables_.push_back(
      std::make_unique<table>(id, name, std::move(s), capacity, shards));
  return *tables_.back();
}

table& database::create_table(const std::string& name, schema s,
                              std::vector<std::size_t> shard_capacities) {
  const table_id_t id = cat_.register_table(name);
  tables_.push_back(std::make_unique<table>(id, name, std::move(s),
                                            std::move(shard_capacities)));
  return *tables_.back();
}

std::uint64_t database::state_hash() const {
  std::uint64_t h = 0;
  for (const auto& t : tables_) {
    // Rotate per table so that moving a row between tables changes the hash.
    h = (h << 1) ^ (h >> 63) ^ t->state_hash();
  }
  return h;
}

std::unique_ptr<database> database::clone() const {
  auto copy = std::make_unique<database>();
  for (const auto& t : tables_) {
    std::vector<std::size_t> caps(t->shard_count());
    for (part_id_t s = 0; s < t->shard_count(); ++s) {
      caps[s] = t->shard_capacity(s);
    }
    auto& nt = copy->create_table(t->name(), t->layout(), std::move(caps));
    nt.set_replicated(t->replicated());
    // Shard-by-shard so every row lands in the arena it came from (shard
    // indexes double as the partition hint: home_shard(s) == s).
    for (part_id_t s = 0; s < t->shard_count(); ++s) {
      t->for_each_live_in(s, [&](key_t key, row_id_t rid) {
        nt.insert(key, t->row(rid), s);
      });
    }
  }
  return copy;
}

}  // namespace quecc::storage
