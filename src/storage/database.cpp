#include "storage/database.hpp"

namespace quecc::storage {

table& database::create_table(const std::string& name, schema s,
                              std::size_t capacity) {
  const table_id_t id = cat_.register_table(name);
  tables_.push_back(std::make_unique<table>(id, name, std::move(s), capacity));
  return *tables_.back();
}

std::uint64_t database::state_hash() const {
  std::uint64_t h = 0;
  for (const auto& t : tables_) {
    // Rotate per table so that moving a row between tables changes the hash.
    h = (h << 1) ^ (h >> 63) ^ t->state_hash();
  }
  return h;
}

std::unique_ptr<database> database::clone() const {
  auto copy = std::make_unique<database>();
  for (const auto& t : tables_) {
    auto& nt = copy->create_table(t->name(), t->layout(), t->capacity());
    nt.set_replicated(t->replicated());
    t->for_each_live(
        [&](key_t key, row_id_t rid) { nt.insert(key, t->row(rid)); });
  }
  return copy;
}

}  // namespace quecc::storage
