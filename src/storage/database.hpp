// Database: the collection of tables an engine operates on.
//
// This plays the role the ExpoDB test-bed storage layer plays in the paper's
// evaluation (Section 4): one storage engine shared by the queue-oriented
// engine and every ported baseline, so comparisons are apples-to-apples.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "storage/catalog.hpp"
#include "storage/table.hpp"

namespace quecc::storage {

class database {
 public:
  /// Create a table and return a reference valid for the database lifetime.
  /// `shards` arenas split the capacity evenly; loaders pass their
  /// partition count so executors touch per-partition arenas (see
  /// table.hpp). Default 1 keeps ad-hoc tables unsharded.
  table& create_table(const std::string& name, schema s, std::size_t capacity,
                      part_id_t shards = 1);

  /// Create a table with explicit per-shard capacities (uneven partition
  /// key shares, e.g. TPC-C warehouses % partitions != 0).
  table& create_table(const std::string& name, schema s,
                      std::vector<std::size_t> shard_capacities);

  table& at(table_id_t id) { return *tables_.at(id); }
  const table& at(table_id_t id) const { return *tables_.at(id); }
  table& by_name(const std::string& name) { return at(cat_.id_of(name)); }
  const table& by_name(const std::string& name) const {
    return at(cat_.id_of(name));
  }

  const catalog& cat() const noexcept { return cat_; }
  std::size_t table_count() const noexcept { return tables_.size(); }

  /// Hash of the database's logical state: each table's contribution is
  /// order-independent over its live (key, payload) pairs, but the
  /// per-table hashes are combined order-*sensitively* (rotated by table
  /// position), so moving a row between tables changes the hash even
  /// though the multiset of rows is unchanged. Two databases with
  /// identical per-table logical state hash equal — the backbone of the
  /// determinism, protocol-equivalence, and crash-recovery test suites.
  std::uint64_t state_hash() const;

  /// Deep logical copy: fresh tables with the same schemas/capacities and
  /// the same live (key, payload) contents. Per-row protocol metadata is
  /// reset (it is transient protocol state, not database state).
  std::unique_ptr<database> clone() const;

 private:
  catalog cat_;
  std::vector<std::unique_ptr<table>> tables_;
};

}  // namespace quecc::storage
