#include "txn/txn_context.hpp"

#include <stdexcept>

#include "txn/procedure.hpp"

namespace quecc::txn {

void txn_desc::reset_runtime() {
  // relaxed (all stores below): reset runs before the batch is handed to
  // workers; the release fence at the end + the engine's stage hand-off
  // publish the whole reset at once.
  status.store(txn_status::active, std::memory_order_relaxed);
  std::uint32_t abortables = 0;
  for (const auto& f : frags) {
    if (f.abortable) {
      if (f.updates_database()) {
        // DESIGN.md 2.2: abortable fragments must be read-only so that the
        // conservative executor's commit-dependency wait cannot deadlock.
        throw std::logic_error(
            "abortable fragments must not update the database");
      }
      ++abortables;
    }
  }
  // relaxed: see above.
  pending_abortables.store(abortables, std::memory_order_relaxed);
  remaining_frags.store(static_cast<std::uint32_t>(frags.size()),
                        std::memory_order_relaxed);  // relaxed: see above
  for (auto& s : slots_) {
    s.value.store(0, std::memory_order_relaxed);  // relaxed: see above
    s.ready.store(0, std::memory_order_relaxed);
    // Disarm split-producer slots: serial re-execution (spec recovery,
    // baselines) produces whole values, not per-partition partials.
    s.parts.store(0, std::memory_order_relaxed);  // relaxed: see above
  }
  std::atomic_thread_fence(std::memory_order_release);
}

void txn_desc::resize_slots(std::size_t n) {
  if (n > kMaxSlots) throw std::length_error("txn uses more than 64 slots");
  // value_slot holds atomics (non-movable); size once before execution.
  if (slots_.size() < n) {
    std::vector<value_slot> bigger(n);
    slots_.swap(bigger);
  }
}

bool txn_desc::inputs_ready(std::uint64_t mask) const noexcept {
  while (mask != 0) {
    const auto slot = static_cast<std::size_t>(__builtin_ctzll(mask));
    if (!slots_[slot].ready.load(std::memory_order_acquire)) return false;
    mask &= mask - 1;
  }
  return true;
}

std::vector<std::uint64_t> txn_desc::result_fingerprint() const {
  std::vector<std::uint64_t> fp;
  const auto st = status.load(std::memory_order_acquire);
  fp.push_back(static_cast<std::uint64_t>(st));
  // Aborted transactions return no results to the client: whatever slots
  // were produced before the abort landed are timing-dependent partial
  // reads, not part of the deterministic outcome.
  if (st == txn_status::aborted) return fp;
  fp.reserve(slots_.size() + 1);
  for (const auto& s : slots_) {
    fp.push_back(s.value.load(std::memory_order_acquire));
  }
  return fp;
}

}  // namespace quecc::txn
