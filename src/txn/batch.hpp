// Batches: the unit of deterministic processing.
//
// Paper Section 3.2: "the essence of this paradigm is to process batches of
// transactions in two deterministic phases". A batch owns its transaction
// descriptors (stable addresses — runtime contexts contain atomics) and
// assigns the sequence numbers that define the serial-equivalent order.
#pragma once

#include <memory>
#include <vector>

#include "common/types.hpp"
#include "txn/txn_context.hpp"

namespace quecc::txn {

class batch {
 public:
  explicit batch(std::uint32_t id = 0) : id_(id) {}

  std::uint32_t id() const noexcept { return id_; }
  void set_id(std::uint32_t id) noexcept { id_ = id; }

  /// Append a transaction; assigns seq and txn id, returns the descriptor.
  txn_desc& add(std::unique_ptr<txn_desc> t);

  std::size_t size() const noexcept { return txns_.size(); }
  txn_desc& at(std::size_t i) { return *txns_[i]; }
  const txn_desc& at(std::size_t i) const { return *txns_[i]; }

  auto begin() { return txns_.begin(); }
  auto end() { return txns_.end(); }
  auto begin() const { return txns_.begin(); }
  auto end() const { return txns_.end(); }

  /// Reset every transaction's runtime context (for re-running the same
  /// batch, e.g. in determinism tests or repeated bench iterations).
  void reset_runtime();

  /// Validate every transaction's plan; throws std::logic_error describing
  /// the first violation. See validate_plan() below.
  void validate() const;

 private:
  std::uint32_t id_;
  std::vector<std::unique_ptr<txn_desc>> txns_;
};

/// Structural invariants a planned transaction must satisfy:
///  * every input slot is produced by a fragment with a smaller idx
///    (data dependencies point backwards — the planner's deadlock-freedom
///    argument in DESIGN.md 2.2 depends on it),
///  * output slots are within the procedure's slot count and unique,
///  * abortable fragments are read-only (commit-dependency wait safety),
///  * fragment idx values are 0..n-1 in order.
/// Throws std::logic_error on violation.
void validate_plan(const txn_desc& t);

}  // namespace quecc::txn
