// Transaction descriptor: the static plan (fragments, args) plus the shared
// runtime context threads coordinate through.
//
// The runtime part is the paper's "shared lock-free and thread-safe
// distributed data structure" for dependency information (Section 3.2):
// value slots with atomic ready flags resolve data dependencies, and the
// pending-abortables counter resolves commit dependencies — no locks, no
// condition variables, just atomics that executor threads poll with
// backoff.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "txn/fragment.hpp"

namespace quecc::txn {

class procedure;  // see txn/procedure.hpp

enum class txn_status : std::uint8_t {
  active,
  committed,
  aborted,  ///< deterministic logic abort
};

/// One data-dependency value slot. Producers store the value then set
/// ready with release ordering; consumers acquire-load ready before the
/// value, so the value read is always the produced one.
///
/// `parts` supports split producers (a cross-partition scan fragment the
/// planner fanned out into one entry per partition): the planner arms the
/// slot with the split count, each entry's logic contributes a partial via
/// produce_partial, and the last contribution publishes ready. Unarmed
/// slots (parts == 0, the overwhelmingly common case) behave exactly as
/// before.
struct value_slot {
  std::atomic<std::uint64_t> value{0};
  std::atomic<std::uint8_t> ready{0};
  std::atomic<std::uint16_t> parts{0};  ///< outstanding split contributions
};

class txn_desc {
 public:
  txn_desc() = default;
  txn_desc(const txn_desc&) = delete;
  txn_desc& operator=(const txn_desc&) = delete;

  // --- static plan (filled by the workload generator) ---------------------
  txn_id_t id = 0;
  seq_t seq = 0;                   ///< batch position = serial order
  const procedure* proc = nullptr;
  std::vector<fragment> frags;
  std::vector<std::uint64_t> args;  ///< procedure parameters

  // --- runtime context -----------------------------------------------------
  std::atomic<txn_status> status{txn_status::active};
  std::atomic<std::uint32_t> pending_abortables{0};
  std::atomic<std::uint32_t> remaining_frags{0};
  std::uint64_t start_nanos = 0;  ///< set when batch execution starts

  /// Prepare runtime state for (re-)execution of the same plan. Counts
  /// abortable fragments and resets slots/status.
  void reset_runtime();

  bool aborted() const noexcept {
    return status.load(std::memory_order_acquire) == txn_status::aborted;
  }

  /// Deterministic logic abort: first caller wins; idempotent.
  void mark_aborted() noexcept {
    status.store(txn_status::aborted, std::memory_order_release);
  }

  // --- value slots (data dependencies) ------------------------------------
  std::size_t slot_count() const noexcept { return slots_.size(); }
  void resize_slots(std::size_t n);

  /// Producer side: publish `v` into `slot`.
  void produce(std::uint16_t slot, std::uint64_t v) noexcept {
    // relaxed: the release store of ready below publishes the value.
    slots_[slot].value.store(v, std::memory_order_relaxed);
    slots_[slot].ready.store(1, std::memory_order_release);
  }

  /// Planner side: declare `slot` a split producer with `parts` partial
  /// contributions (cross-partition scan fan-out). Runs before the batch's
  /// execution phase starts; the stage hand-off publishes it.
  void arm_slot(std::uint16_t slot, std::uint16_t parts) noexcept {
    // relaxed: pre-execution, published by the plan->exec hand-off.
    slots_[slot].parts.store(parts, std::memory_order_relaxed);
  }

  /// Producer side for possibly-split slots. Unarmed: plain produce (the
  /// value may be any 64-bit pattern, e.g. a bit-cast double). Armed with
  /// P parts: the P contributions are summed as u64 — split producers must
  /// emit integer-summable partials — and the last one publishes ready.
  void produce_partial(std::uint16_t slot, std::uint64_t v) noexcept {
    auto& s = slots_[slot];
    // acquire: pairs with the planner's hand-off publish; each of the P
    // split entries decrements exactly once, so a nonzero load here can
    // never be a stale zero race (unarmed slots are never decremented).
    if (s.parts.load(std::memory_order_acquire) == 0) {
      produce(slot, v);
      return;
    }
    // relaxed: the final contributor's release store of ready publishes
    // the accumulated value (the fetch_sub chain orders the additions).
    s.value.fetch_add(v, std::memory_order_relaxed);
    if (s.parts.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      s.ready.store(1, std::memory_order_release);
    }
  }

  /// Consumer side: true when every slot in `mask` is ready.
  bool inputs_ready(std::uint64_t mask) const noexcept;

  /// Consumer side: read a slot's value (caller checked readiness).
  std::uint64_t slot_value(std::uint16_t slot) const noexcept {
    return slots_[slot].value.load(std::memory_order_acquire);
  }

  /// Snapshot of slot values + status for result-determinism comparisons.
  std::vector<std::uint64_t> result_fingerprint() const;

 private:
  std::vector<value_slot> slots_;
};

}  // namespace quecc::txn
