// Transaction descriptor: the static plan (fragments, args) plus the shared
// runtime context threads coordinate through.
//
// The runtime part is the paper's "shared lock-free and thread-safe
// distributed data structure" for dependency information (Section 3.2):
// value slots with atomic ready flags resolve data dependencies, and the
// pending-abortables counter resolves commit dependencies — no locks, no
// condition variables, just atomics that executor threads poll with
// backoff.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/types.hpp"
#include "txn/fragment.hpp"

namespace quecc::txn {

class procedure;  // see txn/procedure.hpp

enum class txn_status : std::uint8_t {
  active,
  committed,
  aborted,  ///< deterministic logic abort
};

/// One data-dependency value slot. Producers store the value then set
/// ready with release ordering; consumers acquire-load ready before the
/// value, so the value read is always the produced one.
struct value_slot {
  std::atomic<std::uint64_t> value{0};
  std::atomic<std::uint8_t> ready{0};
};

class txn_desc {
 public:
  txn_desc() = default;
  txn_desc(const txn_desc&) = delete;
  txn_desc& operator=(const txn_desc&) = delete;

  // --- static plan (filled by the workload generator) ---------------------
  txn_id_t id = 0;
  seq_t seq = 0;                   ///< batch position = serial order
  const procedure* proc = nullptr;
  std::vector<fragment> frags;
  std::vector<std::uint64_t> args;  ///< procedure parameters

  // --- runtime context -----------------------------------------------------
  std::atomic<txn_status> status{txn_status::active};
  std::atomic<std::uint32_t> pending_abortables{0};
  std::atomic<std::uint32_t> remaining_frags{0};
  std::uint64_t start_nanos = 0;  ///< set when batch execution starts

  /// Prepare runtime state for (re-)execution of the same plan. Counts
  /// abortable fragments and resets slots/status.
  void reset_runtime();

  bool aborted() const noexcept {
    return status.load(std::memory_order_acquire) == txn_status::aborted;
  }

  /// Deterministic logic abort: first caller wins; idempotent.
  void mark_aborted() noexcept {
    status.store(txn_status::aborted, std::memory_order_release);
  }

  // --- value slots (data dependencies) ------------------------------------
  std::size_t slot_count() const noexcept { return slots_.size(); }
  void resize_slots(std::size_t n);

  /// Producer side: publish `v` into `slot`.
  void produce(std::uint16_t slot, std::uint64_t v) noexcept {
    // relaxed: the release store of ready below publishes the value.
    slots_[slot].value.store(v, std::memory_order_relaxed);
    slots_[slot].ready.store(1, std::memory_order_release);
  }

  /// Consumer side: true when every slot in `mask` is ready.
  bool inputs_ready(std::uint64_t mask) const noexcept;

  /// Consumer side: read a slot's value (caller checked readiness).
  std::uint64_t slot_value(std::uint16_t slot) const noexcept {
    return slots_[slot].value.load(std::memory_order_acquire);
  }

  /// Snapshot of slot values + status for result-determinism comparisons.
  std::vector<std::uint64_t> result_fingerprint() const;

 private:
  std::vector<value_slot> slots_;
};

}  // namespace quecc::txn
