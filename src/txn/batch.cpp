#include "txn/batch.hpp"

#include <stdexcept>
#include <string>

#include "txn/procedure.hpp"

namespace quecc::txn {

txn_desc& batch::add(std::unique_ptr<txn_desc> t) {
  t->seq = static_cast<seq_t>(txns_.size());
  t->id = make_txn_id(id_, t->seq);
  if (t->proc != nullptr) t->resize_slots(t->proc->slot_count());
  t->reset_runtime();
  txns_.push_back(std::move(t));
  return *txns_.back();
}

void batch::reset_runtime() {
  for (auto& t : txns_) t->reset_runtime();
}

void batch::validate() const {
  for (const auto& t : txns_) validate_plan(*t);
}

void validate_plan(const txn_desc& t) {
  const auto fail = [&](const std::string& why) {
    throw std::logic_error("txn seq " + std::to_string(t.seq) + ": " + why);
  };
  if (t.proc == nullptr) fail("no procedure");
  std::uint64_t produced = 0;
  bool saw_update = false;
  for (std::size_t i = 0; i < t.frags.size(); ++i) {
    const fragment& f = t.frags[i];
    if (f.idx != i) fail("fragment idx out of order");
    if (f.abortable && f.updates_database()) {
      fail("abortable fragment updates the database");
    }
    if (f.kind == op_kind::scan) {
      // A cross-partition scan is fanned out into one queue entry per
      // partition; an abortable scan would then decrement
      // pending_abortables once per entry, breaking the commit-dependency
      // counter, so scans must decide nothing.
      if (f.abortable) fail("scan fragments must not be abortable");
      if (f.key_hi <= f.key) fail("scan range [key, key_hi) is empty");
    } else if (f.part == kAllParts) {
      fail("kAllParts is reserved for scan fragments");
    }
    // Conservative execution's commit-dependency wait is deadlock-free only
    // when every abort decision precedes every database update in fragment
    // order (DESIGN.md 2.2 / 2.3): "know your fate before you write".
    if (f.updates_database()) saw_update = true;
    if (f.abortable && saw_update) {
      fail("abortable fragment ordered after a database update");
    }
    if ((f.input_mask & ~produced) != 0) {
      fail("data dependency on a slot not produced by an earlier fragment");
    }
    if (f.output_slot != kNoSlot) {
      if (f.output_slot >= t.slot_count()) fail("output slot out of range");
      const std::uint64_t bit = 1ull << f.output_slot;
      if ((produced & bit) != 0) fail("output slot produced twice");
      produced |= bit;
    }
  }
}

}  // namespace quecc::txn
