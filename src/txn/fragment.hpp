// Transaction fragments — the unit of planning and execution.
//
// Paper Section 3.1: a transaction is broken into fragments containing the
// relevant transaction logic and aborting conditions; a fragment can
// perform multiple operations (read/modify/write) on the *same* record.
//
// Dependencies (paper Table 1) map onto this struct as follows:
//  * data dependency     — `input_mask` names value slots of the owning
//    transaction that must be ready before this fragment runs;
//    `output_slot` is the slot this fragment produces.
//  * conflict dependency — not represented here at all: both fragments are
//    routed to the same execution queue and FIFO order resolves it.
//  * commit dependency   — `kind != read` fragments must not apply before
//    the transaction's abortable fragments resolve (enforced by the
//    conservative executor; tracked via txn_context::pending_abortables).
//  * speculation dependency — arises at run time under speculative
//    execution; tracked by the speculation manager's read/undo logs.
#pragma once

#include <cstdint>
#include <limits>

#include "common/types.hpp"
#include "storage/hash_index.hpp"

namespace quecc::txn {

/// What a fragment does to its record.
enum class op_kind : std::uint8_t {
  read,    ///< read-only access
  update,  ///< read-modify-write in place
  insert,  ///< create the record (key known at plan time, see DESIGN.md)
  erase,   ///< unlink the record
  scan,    ///< ordered range read over [key, key_hi) — see below
};

/// Home-partition sentinel for scan fragments whose key range spans every
/// partition: the planner splits such a fragment into one per-partition
/// queue entry (core/frag_queue.hpp), and its producing slot accumulates
/// partials (txn_context::produce_partial). Point fragments never use it.
inline constexpr part_id_t kAllParts = std::numeric_limits<part_id_t>::max();

inline constexpr std::uint16_t kNoSlot = 0xffff;

/// Maximum value slots per transaction; data-dependency wait masks are one
/// 64-bit word wide.
inline constexpr std::size_t kMaxSlots = 64;

/// Result of running one fragment's logic.
enum class frag_status : std::uint8_t {
  ok,
  abort,  ///< deterministic logic abort (abortable fragments only)
};

/// A planned fragment. Immutable during the execution phase except for
/// `rid`, which the planner resolves (index lookup) before queues are
/// released — part of the paradigm's "planning does the lookups" design.
struct fragment {
  table_id_t table = 0;
  part_id_t part = 0;  ///< home partition: routing target for queues
  key_t key = kInvalidKey;
  storage::row_id_t rid = storage::kNoRow;  ///< resolved in planning phase

  op_kind kind = op_kind::read;
  bool abortable = false;  ///< may deterministically abort the transaction
  std::uint16_t idx = 0;   ///< position within the transaction (total order)
  std::uint16_t logic = 0; ///< procedure-specific logic selector
  std::uint16_t output_slot = kNoSlot;
  std::uint64_t input_mask = 0;  ///< slots that must be ready before running
  std::uint64_t aux = 0;         ///< immediate operand (value, qty, item#...)
  key_t key_hi = 0;  ///< scan only: exclusive upper bound of [key, key_hi)

  /// Kinds whose execution mutates table state. Scans are reads over a
  /// range: they must NOT wait on commit dependencies, NOT count as
  /// updates in plan validation, and NOT publish into the read-committed
  /// store — everything keyed on this predicate.
  bool updates_database() const noexcept {
    return kind != op_kind::read && kind != op_kind::scan;
  }
};

}  // namespace quecc::txn
