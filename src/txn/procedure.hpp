// Stored procedures and the fragment-host interface.
//
// A procedure supplies the logic for every fragment kind a workload emits.
// The same procedure object drives *every* engine in the repository: the
// queue-oriented engine runs fragments from queues (thread-to-queue), the
// baselines run a transaction's fragments in idx order inside one worker
// (thread-to-transaction). Engines differ only in the `frag_host` they
// pass in, which decides how rows are located, latched, versioned, and
// undo-logged.
#pragma once

#include <cstdint>
#include <span>
#include <string>

#include "txn/fragment.hpp"
#include "txn/txn_context.hpp"

namespace quecc::txn {

/// Engine-side effect interface handed to fragment logic.
///
/// Spans returned by update/insert are writable row images; whether they
/// point into the table (in-place speculative execution), into a private
/// write buffer (OCC baselines), or into a versioned copy (MVTO) is the
/// engine's business. Empty spans signal "record not found" — abortable
/// fragments translate that into frag_status::abort.
class frag_host {
 public:
  virtual ~frag_host() = default;

  /// Read access to the fragment's record. Empty span when missing.
  virtual std::span<const std::byte> read_row(const fragment& f,
                                              txn_desc& t) = 0;

  /// Read-modify-write access. Empty span when missing.
  virtual std::span<std::byte> update_row(const fragment& f, txn_desc& t) = 0;

  /// Create the fragment's record; returns the writable (zeroed) image.
  /// Empty span on duplicate key or capacity pressure.
  virtual std::span<std::byte> insert_row(const fragment& f, txn_desc& t) = 0;

  /// Unlink the fragment's record; false when absent.
  virtual bool erase_row(const fragment& f, txn_desc& t) = 0;

  /// Row visitor for scan fragments; return false to stop the scan early.
  /// A function pointer + context keeps the scan path allocation-free.
  using scan_row_fn = bool (*)(void* ctx, key_t key,
                               std::span<const std::byte> row);

  /// Ordered range read for scan fragments: visit the live rows of
  /// [f.key, f.key_hi) in ascending key order. Which partitions are
  /// visited is the host's business: the queue-oriented executor visits
  /// the queue entry's (single) partition — a cross-partition scan was
  /// already fanned out by the planner, its logic runs once per partition
  /// and accumulates through txn_desc::produce_partial — while serial
  /// hosts visit every partition of a kAllParts scan in one call. Returns
  /// false when the fragment's table has no ordered index (the scan saw
  /// nothing); scan-planning workloads must create such tables with
  /// storage::index_kind::ordered.
  ///
  /// The default keeps hosts that never see scan fragments (contended
  /// baselines) compiling; workloads only plan scans at engines whose
  /// hosts override it.
  virtual bool scan_rows(const fragment& f, txn_desc& t, scan_row_fn fn,
                         void* ctx) {
    (void)f;
    (void)t;
    (void)fn;
    (void)ctx;
    return false;
  }
};

/// Fragment logic: executes fragment `f` of transaction `t` against `h`.
/// Must be deterministic: outputs may depend only on `f`, `t.args`, ready
/// slot values, and row contents obtained from `h`.
using frag_fn = frag_status (*)(const fragment& f, txn_desc& t, frag_host& h);

/// A workload-defined transaction program.
class procedure {
 public:
  procedure(std::string name, frag_fn fn, std::uint16_t slot_count)
      : name_(std::move(name)), fn_(fn), slot_count_(slot_count) {}

  const std::string& name() const noexcept { return name_; }
  std::uint16_t slot_count() const noexcept { return slot_count_; }

  frag_status run_fragment(const fragment& f, txn_desc& t,
                           frag_host& h) const {
    return fn_(f, t, h);
  }

 private:
  std::string name_;
  frag_fn fn_;
  std::uint16_t slot_count_;
};

}  // namespace quecc::txn
