#include "core/admission.hpp"

#include <chrono>
#include <utility>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace quecc::core {

namespace {
// Admission metric handles, shared by both submit paths and the former.
const obs::counter& admitted_total() {
  static const obs::counter c("admission.admitted_total");
  return c;
}
const obs::gauge& queue_depth_gauge() {
  static const obs::gauge g("admission.queue_depth");
  return g;
}
}  // namespace

admission_queue::admission_queue(std::size_t capacity,
                                 std::uint32_t session_cap)
    : capacity_(capacity == 0 ? 1 : capacity), session_cap_(session_cap) {}

bool admission_queue::has_room(const admitted_txn& t) const {
  if (q_.size() >= capacity_) return false;
  if (session_cap_ == 0) return true;
  const auto it = per_session_.find(t.client);
  return it == per_session_.end() || it->second < session_cap_;
}

bool admission_queue::submit(admitted_txn t) {
  if (t.submit_nanos == 0) t.submit_nanos = common::now_nanos();
  common::mutex_lock lk(mu_);
  while (!has_room(t) && !closed_) not_full_.wait(lk);
  if (closed_) {
    static const obs::counter rejected("admission.rejected_closed_total");
    rejected.inc();
    return false;
  }
  if (session_cap_ != 0) ++per_session_[t.client];
  q_.push_back(std::move(t));
  ++admitted_;
  queue_depth_gauge().set(static_cast<std::int64_t>(q_.size()));
  lk.unlock();
  admitted_total().inc();
  not_empty_.notify_one();
  return true;
}

bool admission_queue::try_submit(admitted_txn& t) {
  {
    common::mutex_lock lk(mu_);
    if (closed_ || !has_room(t)) {
      static const obs::counter rejected("admission.rejected_full_total");
      rejected.inc();
      return false;
    }
    if (t.submit_nanos == 0) t.submit_nanos = common::now_nanos();
    if (session_cap_ != 0) ++per_session_[t.client];
    q_.push_back(std::move(t));
    ++admitted_;
    queue_depth_gauge().set(static_cast<std::int64_t>(q_.size()));
  }
  admitted_total().inc();
  not_empty_.notify_one();
  return true;
}

std::vector<admitted_txn> admission_queue::pop_batch(
    std::uint32_t max, std::uint32_t deadline_micros) {
  std::vector<admitted_txn> out;
  if (max == 0) return out;
  out.reserve(max);

  common::mutex_lock lk(mu_);
  while (q_.empty() && !closed_) not_empty_.wait(lk);
  if (q_.empty()) return out;  // closed and drained

  // The deadline is anchored at the moment the batch's first transaction
  // is observed, so a partial batch closes at most `deadline_micros` after
  // forming began regardless of later arrivals.
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(deadline_micros);
  for (;;) {
    const bool drained = !q_.empty() && out.size() < max;
    while (!q_.empty() && out.size() < max) {
      if (session_cap_ != 0) {
        const auto it = per_session_.find(q_.front().client);
        if (it != per_session_.end() && --it->second == 0) {
          per_session_.erase(it);
        }
      }
      out.push_back(std::move(q_.front()));
      q_.pop_front();
    }
    // Wake producers blocked on a full queue *before* parking on the
    // deadline wait: the capacity just freed lets them refill the batch
    // now, not a whole deadline later.
    if (drained) not_full_.notify_all();
    queue_depth_gauge().set(static_cast<std::int64_t>(q_.size()));
    if (out.size() >= max || closed_) break;
    bool have = false;
    while (!(have = !q_.empty() || closed_)) {
      if (not_empty_.wait_until(lk, deadline) == std::cv_status::timeout) {
        have = !q_.empty() || closed_;  // final check, like the std overload
        break;
      }
    }
    if (have) continue;  // new arrivals (or close): collect them
    // Deadline fired: close the partial batch (the trickle-latency bound
    // the file header describes doing real work).
    static const obs::counter deadline_closed(
        "admission.deadline_closed_batches_total");
    deadline_closed.inc();
    break;
  }
  return out;
}

void admission_queue::close() {
  {
    common::mutex_lock lk(mu_);
    closed_ = true;
  }
  not_full_.notify_all();
  not_empty_.notify_all();
}

bool admission_queue::closed() const {
  common::mutex_lock lk(mu_);
  return closed_;
}

std::size_t admission_queue::depth() const {
  common::mutex_lock lk(mu_);
  return q_.size();
}

std::uint32_t admission_queue::in_queue(std::uint32_t client) const {
  common::mutex_lock lk(mu_);
  const auto it = per_session_.find(client);
  return it == per_session_.end() ? 0 : it->second;
}

std::uint64_t admission_queue::admitted() const {
  common::mutex_lock lk(mu_);
  return admitted_;
}

batch_former::formed batch_former::next() {
  const std::uint64_t t0 = common::now_nanos();
  auto entries = q_.pop_batch(batch_size_, deadline_micros_);
  formed f;
  if (entries.empty()) return f;  // queue closed and drained

  f.valid = true;
  static const obs::counter formed_total("admission.batches_formed_total");
  formed_total.inc();
  // relaxed: single consumer allocates ids; nothing is published through it.
  f.batch.set_id(next_id_.fetch_add(1, std::memory_order_relaxed));
  f.tickets.reserve(entries.size());
  f.submit_nanos.reserve(entries.size());
  for (auto& e : entries) {
    // Plans are validated at admission (proto::session::prepare), not
    // here: re-validating every transaction on the single consumer thread
    // would sit on the pump's critical path, and a throw from this thread
    // would terminate the process rather than fail one submission.
    f.batch.add(std::move(e.txn));
    f.tickets.push_back(std::move(e.ticket));
    f.submit_nanos.push_back(e.submit_nanos);
  }
  obs::record_span(obs::trace_stage::admission, t0, common::now_nanos() - t0,
                   f.batch.id());
  return f;
}

}  // namespace quecc::core
