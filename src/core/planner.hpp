// Planning phase: deterministic construction of priority-tagged fragment
// queues (paper Section 3.2, first phase).
//
// Planner `p` owns the batch slice { txns | seq % P == p } and walks it in
// sequence order, routing every fragment to the execution queue of its home
// partition's executor. Because each planner visits its transactions in seq
// order and executors drain planner queues in planner-priority order, the
// global replay order (planner, seq, frag idx) is consistent with sequence
// order — the serial-equivalent order of the batch.
//
// Planning also performs the primary-index lookups (resolving fragment ->
// row id) so the execution phase touches indexes only for inserts/erases;
// this is the paradigm's "planning does the work that needs coordination"
// principle.
#pragma once

#include <vector>

#include "common/config.hpp"
#include "common/phase_annotations.hpp"
#include "core/frag_queue.hpp"
#include "storage/database.hpp"
#include "txn/batch.hpp"

namespace quecc::core {

/// Output of one planner for one batch: E conflict queues (one per
/// executor) and, under read-committed isolation, E read queues.
struct plan_output {
  std::vector<frag_queue> conflict;  ///< size E, FIFO per executor
  std::vector<frag_queue> reads;     ///< size E under RC, else empty
  std::uint64_t planned_frags = 0;

  void resize(worker_id_t executors, bool with_read_queues);
  void clear();
};

class planner {
 public:
  planner(worker_id_t id, const common::config& cfg, storage::database& db)
      : id_(id), cfg_(cfg), db_(db) {}

  worker_id_t id() const noexcept { return id_; }

  /// Plan this planner's slice of `b` into `out`. Deterministic: depends
  /// only on (batch contents, planner id, P, E, isolation).
  PLAN_PHASE void plan(txn::batch& b, plan_output& out);

 private:
  /// Pure read fragments are eligible for the RC read queues; everything
  /// else keeps conflict-queue FIFO ordering. `writer_needed` is the mask
  /// of slots transitively consumed by conflict-queue fragments of the same
  /// transaction: a read producing such a slot must stay in the conflict
  /// queues, otherwise an executor draining conflict queues could wait on a
  /// slot whose producer sits in a not-yet-claimed read queue (deadlock).
  PLAN_PHASE bool goes_to_read_queue(const txn::fragment& f,
                                     std::uint64_t writer_needed) const noexcept;

  /// Backward pass computing the writer-needed slot mask for one txn.
  PLAN_PHASE static std::uint64_t writer_needed_slots(
      const txn::txn_desc& t) noexcept;

  /// Queue routing: node by home partition, executor within the node by a
  /// per-record hash (intra-partition parallelism) — except for tables on
  /// an ordered index, which route by partition so scans and the point
  /// writes inside their key range share one FIFO. `part` is the entry's
  /// effective partition (== f.part except fanned-out kAllParts scans).
  PLAN_PHASE worker_id_t route(const txn::fragment& f,
                               part_id_t part) const noexcept;

  worker_id_t id_;
  const common::config& cfg_;
  storage::database& db_;
};

}  // namespace quecc::core
