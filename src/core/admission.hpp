// Client admission: the seam between asynchronously arriving transactions
// and the deterministic batch pipeline.
//
// The paper's paradigm consumes *batches*, but real clients submit a
// stream. This layer turns the stream back into batches: a bounded MPSC
// admission queue absorbs submissions (blocking when full — backpressure,
// not unbounded memory), and a batch former closes a batch when either
// `config::batch_size` transactions have arrived or the
// `config::batch_deadline_micros` timer fires, whichever comes first. The
// deadline bounds the residence time of a trickle of transactions: a
// partial batch commits promptly instead of waiting forever for the batch
// to fill. Admission order *is* the batch sequence order, so the
// serial-equivalent order of the whole system is simply arrival order.
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/mutex.hpp"
#include "common/thread_annotations.hpp"
#include "common/stats.hpp"
#include "txn/batch.hpp"

namespace quecc::core {

/// Completion record shared between a client and the batch pump. The pump
/// fills it when the transaction's batch commits; clients block in wait().
///
/// Lock-free by design (one producer, the pump; readers gated on `done`):
/// the plain fields are written before the release store of `done`, and
/// clients acquire-load `done` before reading them — a classic
/// publish/subscribe edge, so no GUARDED_BY applies.
struct ticket_state {
  std::atomic<std::uint32_t> done{0};
  txn::txn_status status = txn::txn_status::active;
  std::uint64_t queue_nanos = 0;  ///< submit -> batch execution start
  std::uint64_t e2e_nanos = 0;    ///< submit -> batch commit
  /// Value-slot snapshot taken at batch commit — the transaction's results
  /// outlive the batch (which the pump recycles immediately).
  std::vector<std::uint64_t> slots;

  /// Pump side: publish the outcome and wake every waiter. The plain
  /// fields above must be written before this is called.
  void complete(txn::txn_status s, std::uint64_t queue_ns,
                std::uint64_t e2e_ns) noexcept {
    status = s;
    queue_nanos = queue_ns;
    e2e_nanos = e2e_ns;
    done.store(1, std::memory_order_release);
    done.notify_all();
  }

  /// Client side: block until complete() ran.
  void wait() const noexcept { done.wait(0, std::memory_order_acquire); }

  bool is_done() const noexcept {
    return done.load(std::memory_order_acquire) != 0;
  }
};

/// One admitted transaction: the plan plus submission bookkeeping.
struct admitted_txn {
  std::unique_ptr<txn::txn_desc> txn;
  std::shared_ptr<ticket_state> ticket;  ///< may be null (fire-and-forget)
  std::uint64_t submit_nanos = 0;        ///< 0 = stamp at admission time
  /// Logical client session the submission belongs to; the per-session
  /// admission cap (config::admission_session_cap) is keyed on it.
  std::uint32_t client = 0;
};

/// Bounded multi-producer / single-consumer admission queue.
///
/// Producers (any number of client threads) submit; one consumer — the
/// batch former — drains. Blocking submit provides backpressure: when the
/// queue holds `capacity` transactions the caller waits until the pump
/// catches up, which is the knob that keeps an overloaded open-loop run
/// from buffering the whole offered load in memory.
class admission_queue {
 public:
  /// `session_cap` (0 = unlimited) additionally bounds how many queued
  /// transactions any one client session (admitted_txn::client) may hold:
  /// a greedy session blocks on its own cap while the shared capacity
  /// still has room for everyone else — the fairness knob
  /// config::admission_session_cap plumbs through here.
  explicit admission_queue(std::size_t capacity,
                           std::uint32_t session_cap = 0);

  /// Enqueue, blocking while the queue is full or the submitter's session
  /// cap is reached. Stamps `t.submit_nanos = now` when the caller left it
  /// 0. Returns false (and drops `t`) when the queue was closed.
  bool submit(admitted_txn t);

  /// Non-blocking enqueue; returns false, leaving `t` intact, when the
  /// queue is full or closed.
  bool try_submit(admitted_txn& t);

  /// Consumer side: block until at least one transaction is available (or
  /// the queue is closed and drained, returning an empty vector), then
  /// collect up to `max` transactions, waiting at most `deadline_micros`
  /// after the first one was observed. This is the batch former's
  /// size-or-deadline race.
  std::vector<admitted_txn> pop_batch(std::uint32_t max,
                                      std::uint32_t deadline_micros);

  /// Stop accepting submissions; pop_batch drains what remains and then
  /// returns empty. Idempotent.
  void close();

  bool closed() const;
  std::size_t depth() const;
  std::size_t capacity() const noexcept { return capacity_; }
  std::uint32_t session_cap() const noexcept { return session_cap_; }
  /// Queued transactions currently held by `client` (tests).
  std::uint32_t in_queue(std::uint32_t client) const;
  /// Total transactions ever admitted (monotonic; for stats/tests).
  std::uint64_t admitted() const;

 private:
  bool has_room(const admitted_txn& t) const REQUIRES(mu_);

  const std::size_t capacity_;
  const std::uint32_t session_cap_;
  mutable common::mutex mu_;
  common::cond_var not_full_;   // producers wait here
  common::cond_var not_empty_;  // the former waits here
  std::deque<admitted_txn> q_ GUARDED_BY(mu_);
  std::unordered_map<std::uint32_t, std::uint32_t> per_session_
      GUARDED_BY(mu_);
  std::uint64_t admitted_ GUARDED_BY(mu_) = 0;
  bool closed_ GUARDED_BY(mu_) = false;
};

/// Drains an admission queue into sequenced, validated batches. Single
/// consumer — exactly one thread may call next().
class batch_former {
 public:
  /// `q` must outlive the former; `cfg` supplies batch_size and
  /// batch_deadline_micros (copied, so the caller's config may die).
  batch_former(admission_queue& q, const common::config& cfg)
      : q_(q),
        batch_size_(cfg.batch_size),
        deadline_micros_(cfg.batch_deadline_micros) {}

  /// A formed batch plus per-transaction bookkeeping, parallel to the
  /// batch's sequence order.
  struct formed {
    txn::batch batch;
    std::vector<std::shared_ptr<ticket_state>> tickets;
    std::vector<std::uint64_t> submit_nanos;
    bool valid = false;  ///< false: the queue closed and fully drained
  };

  /// Block until a batch closes (by size or deadline) or the queue is
  /// closed and drained (`valid == false`). Batch ids increase by one per
  /// formed batch. Every admitted plan must already satisfy
  /// txn::validate_plan — proto::session enforces this at submit; callers
  /// admitting transactions directly must validate them themselves.
  formed next();

  /// Safe to read from any thread (e.g. while the pump is running).
  std::uint32_t batches_formed() const noexcept {
    // relaxed: monotonic stat counter, no ordering with batch contents.
    return next_id_.load(std::memory_order_relaxed);
  }

 private:
  admission_queue& q_;
  const std::uint32_t batch_size_;
  const std::uint32_t deadline_micros_;
  std::atomic<std::uint32_t> next_id_{0};
};

}  // namespace quecc::core
