#include "core/spec_manager.hpp"

#include <algorithm>
#include <cstring>
#include <tuple>
#include <unordered_map>
#include <utility>

#include "protocols/local_host.hpp"
#include "txn/procedure.hpp"

namespace quecc::core {

namespace {

/// Record identity for recovery bookkeeping. A 64-bit mixed fingerprint of
/// (table, key); a collision would merely over-taint (re-execute an
/// unaffected transaction with unchanged inputs — a harmless no-op) and is
/// deterministic across runs, so exactness is not required.
std::uint64_t rec_id(table_id_t table, key_t key) noexcept {
  std::uint64_t h = key + 0x9e3779b97f4a7c15ull * (table + 1);
  h ^= h >> 33;
  h *= 0xff51afd7ed558ccdull;
  h ^= h >> 29;
  return h;
}

}  // namespace

recovery_stats spec_manager::recover(txn::batch& b,
                                     std::span<exec_logs* const> logs) {
  recovery_stats stats;
  extra_dirty_.clear();

  // --- 0. collect logic aborts -------------------------------------------
  std::vector<std::uint8_t> affected(b.size(), 0);
  std::vector<seq_t> worklist;
  for (std::size_t i = 0; i < b.size(); ++i) {
    if (b.at(i).aborted()) {
      affected[i] = 1;
      worklist.push_back(static_cast<seq_t>(i));
      ++stats.logic_aborts;
    }
  }
  if (worklist.empty()) return stats;

  // --- 1. taint fixpoint over speculation dependencies --------------------
  // accessors[record] = sorted txn seqs that touched the record (reads and
  // writes); writers[record] = sorted txn seqs that actually wrote it
  // (undo-log evidence); written[seq] = records the txn actually wrote.
  //
  // Two edge kinds close the affected set:
  //  (a) forward:  anyone who accessed a record an affected txn actually
  //      wrote, later in sequence order, read (or built on) dirty data;
  //  (b) backward: anyone who actually wrote a record an affected txn
  //      touches, later in sequence order, must be undone and replayed
  //      *after* it — otherwise the affected txn's serial re-execution
  //      would observe values from its own future.
  // Ranges get their own bookkeeping with REAL keys (a fingerprint cannot
  // answer containment): executed scans logged one read entry covering
  // [lo, hi), and the undo log names every key actually written. Phantom
  // safety falls out: a writer inserting/erasing a key a scan did not see
  // still lands inside the scan's logged interval.
  struct range_read {
    seq_t seq;
    table_id_t table;
    key_t lo;
    key_t hi;
  };
  std::vector<range_read> range_reads;
  bool batch_has_scans = false;
  for (const auto& tp : b) {
    for (const auto& f : tp->frags) {
      if (f.kind == txn::op_kind::scan) {
        batch_has_scans = true;
        break;
      }
    }
    if (batch_has_scans) break;
  }

  std::unordered_map<std::uint64_t, std::vector<seq_t>> accessors;
  std::unordered_map<std::uint64_t, std::vector<seq_t>> writers;
  std::unordered_map<seq_t, std::vector<std::uint64_t>> written;
  // Edge (a) over ranges needs the affected txn's written keys verbatim;
  // edge (b) over ranges needs all written (table, key, seq) sorted for
  // interval queries. Only materialized when the batch planned scans.
  std::unordered_map<seq_t, std::vector<std::pair<table_id_t, key_t>>>
      written_keys;
  std::vector<std::tuple<table_id_t, key_t, seq_t>> write_keys_sorted;
  for (const exec_logs* log : logs) {
    for (const auto& r : log->reads) {
      if (r.hi != 0) {
        range_reads.push_back({r.seq, r.table, r.key, r.hi});
      } else {
        accessors[rec_id(r.table, r.key)].push_back(r.seq);
      }
    }
    for (const auto& u : log->undo) {
      const auto rec = rec_id(u.table, u.key);
      accessors[rec].push_back(u.seq);
      writers[rec].push_back(u.seq);
      written[u.seq].push_back(rec);
      if (batch_has_scans) {
        written_keys[u.seq].emplace_back(u.table, u.key);
        write_keys_sorted.emplace_back(u.table, u.key, u.seq);
      }
    }
  }
  std::sort(write_keys_sorted.begin(), write_keys_sorted.end());
  // In-place per-key sort: each visit mutates only its own value vector and
  // nothing is emitted, so map iteration order cannot reach any output.
  // quecc-ok(unordered): independent per-key mutation, no output
  for (auto& [_, seqs] : accessors) std::sort(seqs.begin(), seqs.end());
  // quecc-ok(unordered): independent per-key mutation, no output
  for (auto& [_, seqs] : writers) std::sort(seqs.begin(), seqs.end());

  const auto taint_after =
      [&](const std::unordered_map<std::uint64_t, std::vector<seq_t>>& index,
          std::uint64_t rec, seq_t t) {
        auto it = index.find(rec);
        if (it == index.end()) return;
        auto lo = std::upper_bound(it->second.begin(), it->second.end(), t);
        for (; lo != it->second.end(); ++lo) {
          if (!affected[*lo]) {
            affected[*lo] = 1;
            ++stats.cascades;
            worklist.push_back(*lo);
          }
        }
      };

  const auto taint_seq = [&](seq_t s) {
    if (!affected[s]) {
      affected[s] = 1;
      ++stats.cascades;
      worklist.push_back(s);
    }
  };

  while (!worklist.empty()) {
    const seq_t t = worklist.back();
    worklist.pop_back();
    if (auto wit = written.find(t); wit != written.end()) {
      for (const std::uint64_t rec : wit->second) {
        taint_after(accessors, rec, t);  // edge (a)
      }
    }
    // Edge (a) over ranges: a scan later in order whose interval covers a
    // key this affected txn actually wrote read dirty data.
    if (!range_reads.empty()) {
      if (auto wk = written_keys.find(t); wk != written_keys.end()) {
        for (const auto& [tb, k] : wk->second) {
          for (const auto& rr : range_reads) {
            if (rr.seq > t && rr.table == tb && rr.lo <= k && k < rr.hi) {
              taint_seq(rr.seq);
            }
          }
        }
      }
    }
    for (const auto& f : b.at(t).frags) {
      if (f.kind == txn::op_kind::scan) {
        // Edge (b) over ranges: a later writer of ANY key inside this
        // txn's scan interval must be undone and replayed after it —
        // including phantom inserts/erases the original scan never saw.
        auto lo = std::lower_bound(
            write_keys_sorted.begin(), write_keys_sorted.end(),
            std::tuple<table_id_t, key_t, seq_t>{f.table, f.key, 0});
        for (; lo != write_keys_sorted.end() &&
               std::get<0>(*lo) == f.table && std::get<1>(*lo) < f.key_hi;
             ++lo) {
          if (std::get<2>(*lo) > t) taint_seq(std::get<2>(*lo));
        }
      } else {
        taint_after(writers, rec_id(f.table, f.key), t);  // edge (b)
      }
    }
  }

  // --- 2. rollback affected writes, reverse order per record --------------
  // All fragments of one record flow through one executor's queues, so a
  // record's undo entries live in a single log, in execution (= sequence)
  // order; undoing each per-record group back-to-front restores the value
  // produced by the last unaffected writer.
  struct undo_ref {
    const exec_logs* log;
    std::size_t pos;
  };
  std::unordered_map<std::uint64_t, std::vector<undo_ref>> per_record;
  for (const exec_logs* log : logs) {
    for (std::size_t i = 0; i < log->undo.size(); ++i) {
      const auto& u = log->undo[i];
      if (affected[u.seq]) {
        per_record[rec_id(u.table, u.key)].push_back({log, i});
      }
    }
  }
  // Group application order is free: groups are disjoint record sets (a
  // rec_id collision *merges* records into one group, never splits one),
  // so rollbacks of different groups touch disjoint rows and commute.
  // Within a group the refs keep log order, which is what matters.
  // quecc-ok(unordered): disjoint per-record groups, rollback commutes
  for (auto& [_, refs] : per_record) {
    for (auto it = refs.rbegin(); it != refs.rend(); ++it) {
      const auto& u = it->log->undo[it->pos];
      auto& tab = db_.at(u.table);
      switch (u.op) {
        case txn::op_kind::update:
          std::memcpy(tab.row(u.rid).data(),
                      it->log->arena.data() + u.arena_offset, u.len);
          break;
        case txn::op_kind::insert:
          tab.erase(u.key, storage::rid_shard(u.rid));
          break;
        case txn::op_kind::erase:
          tab.index_row(u.key, u.rid);
          break;
        case txn::op_kind::read:
        case txn::op_kind::scan:
          break;
      }
    }
  }

  // --- 3. deterministic serial re-execution in sequence order -------------
  // Re-runs that logic-abort again roll themselves back inside
  // run_txn_serially; dirty-read victims now commit with clean values.
  // Every mutation is journaled so the pass can be unwound if escalation
  // becomes necessary.
  std::vector<proto::inplace_host::journal_entry> journal;
  bool abort_flipped = false;
  {
    proto::inplace_host host(db_, &extra_dirty_);
    host.set_journal(&journal);
    for (std::size_t i = 0; i < b.size(); ++i) {
      if (!affected[i]) continue;
      txn::txn_desc& t = b.at(i);
      const bool was_aborted = t.aborted();
      t.reset_runtime();
      const bool committed = proto::run_txn_serially(t, host);
      if (was_aborted && committed) abort_flipped = true;
      ++stats.reexecuted;
    }
  }
  if (!abort_flipped) return stats;

  // --- 4. escalation: whole-batch deterministic re-execution ---------------
  // An abort flipped into a commit: the transaction may now produce writes
  // whose original readers were never tainted. Unwind this pass, restore
  // the batch-start state from the complete undo logs (idempotent with the
  // partial rollback of step 2), and replay everything serially.
  stats.full_redo = true;
  proto::unwind_journal(db_, journal);

  std::unordered_map<std::uint64_t, std::vector<undo_ref>> all_records;
  for (const exec_logs* log : logs) {
    for (std::size_t i = 0; i < log->undo.size(); ++i) {
      all_records[rec_id(log->undo[i].table, log->undo[i].key)].push_back(
          {log, i});
    }
  }
  // Same argument as the per_record pass: disjoint groups, order-free.
  // quecc-ok(unordered): disjoint per-record groups, rollback commutes
  for (auto& [_, refs] : all_records) {
    for (auto it = refs.rbegin(); it != refs.rend(); ++it) {
      const auto& u = it->log->undo[it->pos];
      auto& tab = db_.at(u.table);
      switch (u.op) {
        case txn::op_kind::update:
          std::memcpy(tab.row(u.rid).data(),
                      it->log->arena.data() + u.arena_offset, u.len);
          break;
        case txn::op_kind::insert:
          tab.erase(u.key, storage::rid_shard(u.rid));
          break;
        case txn::op_kind::erase:
          tab.index_row(u.key, u.rid);
          break;
        case txn::op_kind::read:
        case txn::op_kind::scan:
          break;
      }
    }
  }

  extra_dirty_.clear();
  proto::inplace_host host(db_, &extra_dirty_);
  for (auto& tp : b) {
    tp->reset_runtime();
    proto::run_txn_serially(*tp, host);
  }
  stats.reexecuted = static_cast<std::uint32_t>(b.size());
  return stats;
}

}  // namespace quecc::core
