// Per-executor execution logs: undo records and read tracking.
//
// These logs exist for two reasons:
//  * speculative execution (paper Section 3.2) applies writes in place, so
//    deterministic logic aborts need before-images to roll back, and
//    speculation dependencies (Table 1) are discovered from "who accessed
//    this record after the aborted writer" — answered with the read log;
//  * read-committed isolation needs the set of dirtied rows to publish
//    into the committed-version store at batch commit.
//
// Each executor owns one `exec_logs`; nothing here is shared during the
// execution phase.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "storage/hash_index.hpp"
#include "txn/fragment.hpp"

namespace quecc::core {

struct undo_entry {
  seq_t seq = 0;
  table_id_t table = 0;
  key_t key = kInvalidKey;
  storage::row_id_t rid = storage::kNoRow;
  txn::op_kind op = txn::op_kind::update;
  std::uint32_t arena_offset = 0;  ///< before-image start (update only)
  std::uint32_t len = 0;           ///< before-image length (0: none kept)
};

struct read_entry {
  seq_t seq = 0;
  table_id_t table = 0;
  key_t key = kInvalidKey;
  /// Scan fragments log one entry for the whole range [key, hi); point
  /// reads leave hi == 0 (ranges are never empty, so hi > key disambiguates).
  key_t hi = 0;
};

struct exec_logs {
  std::vector<undo_entry> undo;
  std::vector<std::byte> arena;  ///< before-image bytes, append-only
  std::vector<read_entry> reads;

  void clear() noexcept {
    undo.clear();
    arena.clear();
    reads.clear();
  }
};

}  // namespace quecc::core
