// Speculation manager: deterministic recovery from logic aborts under
// speculative execution.
//
// Paper Section 3.2: "When using speculative execution, additional
// speculation dependencies occur. Resolving them may cause cascading
// aborts." This component resolves them at batch commit time:
//
//  1. Taint fixpoint — starting from the logic-aborted transactions, any
//     transaction that accessed a record an affected transaction *actually
//     wrote* (undo-log evidence) with a larger sequence number is tainted
//     (speculation dependency, Table 1), transitively. Actual writes — not
//     declared write sets — keep cascades proportional to real dirty data:
//     an abort that lands before the transaction's updates executed taints
//     nobody.
//  2. Rollback — every affected transaction's writes are undone in reverse
//     order per record (before-images for updates, unlink for inserts,
//     re-link for erases).
//  3. Deterministic re-execution — affected transactions re-run serially in
//     sequence order against the repaired state; deterministic logic aborts
//     repeat and stay aborted, dirty-read victims now commit with clean
//     values.
//  4. Escalation (rare) — if a re-run flips an abort into a commit, the
//     transaction may now write records it never wrote originally, whose
//     later readers were not tainted. The pass's effects are unwound via
//     its journal, the whole batch is restored to its start state (every
//     undo entry, idempotent with step 2), and the batch is re-executed
//     serially end-to-end — the unconditionally correct fallback.
//
// The outcome equals a serial execution of the batch in sequence order with
// aborted transactions producing no effects — the determinism contract.
#pragma once

#include <cstdint>
#include <span>
#include <utility>
#include <vector>

#include "common/phase_annotations.hpp"
#include "core/exec_log.hpp"
#include "storage/database.hpp"
#include "txn/batch.hpp"

namespace quecc::core {

struct recovery_stats {
  std::uint32_t logic_aborts = 0;  ///< transactions that aborted on logic
  std::uint32_t cascades = 0;      ///< extra txns tainted via speculation
  std::uint32_t reexecuted = 0;    ///< serial re-executions performed
  bool full_redo = false;          ///< escalated to whole-batch re-execution
};

class spec_manager {
 public:
  explicit spec_manager(storage::database& db) : db_(db) {}

  /// Run recovery over `b` given every executor's logs (indexed by
  /// executor id). Leaves aborted transactions with txn_status::aborted
  /// and re-committed ones with txn_status::active (the engine epilogue
  /// marks commits). Returns what happened for metrics.
  EPILOGUE_PHASE recovery_stats recover(txn::batch& b,
                                        std::span<exec_logs* const> logs);

  /// Rows dirtied by recovery re-execution; the engine merges these into
  /// the read-committed publish set.
  const std::vector<std::pair<table_id_t, storage::row_id_t>>& extra_dirty()
      const noexcept {
    return extra_dirty_;
  }

 private:
  storage::database& db_;
  std::vector<std::pair<table_id_t, storage::row_id_t>> extra_dirty_;
};

}  // namespace quecc::core
