// The queue-oriented transaction processing engine (paper Figure 1).
//
// Lifecycle: construction spawns P planner threads and E executor threads
// that live for the engine's lifetime (CP.41). Batches flow through the
// two deterministic phases:
//
//     client batch --> [planning phase: P planners build P*E
//                       priority-tagged fragment queues]
//                  --> [execution phase: E executors drain queues in
//                       priority order, FIFO within a queue]
//                  --> [commit epilogue: speculative-abort recovery,
//                       status marking, read-committed publish]
//
// The phases are independent *across* batches, so the engine runs them as
// a three-stage pipeline over a ring of config::pipeline_depth batch
// slots: planners start on batch i+1 the moment batch i's queues are
// handed to the executors (submit_batch fills a free slot, the plan-stage
// group fills its queues, the exec-stage group drains them), and a
// dedicated epilogue worker retires batch i while batch i+1 already
// executes. The epilogue splits at the publication point:
//
//   * the state-mutating half (speculative recovery, status marking,
//     read-committed publish, checkpoints, commit-record append) runs at
//     the per-slot quiescent point — executors of batch i+1 stay parked on
//     published_ until it finishes, which is what keeps results
//     bit-identical at every depth;
//   * the durable tail (group-commit fsync wait) and the batch accounting
//     run after published_ advances, overlapped with batch i+1's
//     execution — the fsync leaves the drain-to-drain critical path.
//
// Execution and the epilogue stay strictly sequential by batch id;
// drain_batch merely awaits epilogue_done_. pipeline_depth == 1 (or
// config::async_epilogue off) degenerates to the inline epilogue on the
// drain caller — the paper's lockstep at depth 1.
//
// Within one slot, stage hand-offs provide the only inter-thread
// happens-before edges the queues need — there is no concurrency control
// during execution, only the lock-free dependency slots in txn_context.
#pragma once

#include <atomic>
#include <deque>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "common/mutex.hpp"
#include "common/phase_annotations.hpp"
#include "common/thread_annotations.hpp"
#include "common/topology.hpp"
#include "core/executor.hpp"
#include "core/planner.hpp"
#include "core/spec_manager.hpp"
#include "protocols/iface.hpp"
#include "storage/dual_version.hpp"

namespace quecc::log {
class log_writer;
class checkpointer;
}  // namespace quecc::log

namespace quecc::core {

/// Shared commit epilogue: speculative recovery, status marking, metrics,
/// and read-committed publishing. Used by the centralized engine and the
/// distributed engine (whose nodes share one process, so the deterministic
/// epilogue runs once globally — matching the paradigm's "no 2PC" commit).
EPILOGUE_PHASE recovery_stats batch_epilogue(
    storage::database& db, const common::config& cfg, txn::batch& b,
    std::span<const std::unique_ptr<executor>> executors, spec_manager& spec,
    storage::dual_version_store* committed, common::run_metrics& m);

/// Bind every table's arenas to the NUMA nodes the placement plan assigns
/// (plan.node_of_arena — the socket of the executor owning the arena's
/// partition) and publish the result as storage.arena_node.<s> gauges.
/// Best-effort: single-node machines record node 0 and move nothing. Call
/// before workers start (the binding migrates loader-touched pages).
void bind_arena_memory(storage::database& db,
                       const common::placement_plan& plan);

/// Per-phase accounting of one batch (Figure 1 reproduction + pipeline
/// observability). Wall times are per-stage windows; busy times are summed
/// across the stage's threads, which is what stays meaningful when windows
/// of different batches overlap at pipeline_depth >= 2.
struct phase_stats {
  double plan_seconds = 0;      ///< wall: submit -> all planners done
  double exec_seconds = 0;      ///< wall: first executor in -> last out
  double epilogue_seconds = 0;  ///< wall: commit epilogue (+ log/ckpt)
  double plan_busy_seconds = 0;  ///< sum of per-planner plan() time
  double exec_busy_seconds = 0;  ///< sum of per-executor drain time
  /// Wall-clock intersection of this batch's planning window with earlier
  /// batches' execution windows (> 0 only when the pipeline overlapped).
  double overlap_seconds = 0;
  std::uint64_t planned_fragments = 0;
  std::uint64_t queues = 0;  ///< P*E conflict queues (+ read queues)
};

/// One batch in flight: the double-buffered planner->executor queue state
/// plus hand-off bookkeeping. The queue containers are pre-sized once so
/// their addresses stay stable for the engine lifetime — executors hold
/// raw pointers into them.
///
/// Synchronization: the batch/metrics/window fields are written under the
/// owning engine's stage mutex (or before the slot is published through
/// it); the atomics carry the intra-stage counting that must not serialize
/// workers.
struct batch_slot {
  std::vector<plan_output> plan_outs;                // one per planner
  std::vector<std::vector<const frag_queue*>> exec_queues;  // [e] -> P ptrs
  std::vector<const frag_queue*> read_queues;        // flattened P*E (RC)
  std::atomic<std::size_t> read_cursor{0};

  txn::batch* batch = nullptr;
  common::run_metrics* metrics = nullptr;
  std::uint64_t submit_nanos = 0;      ///< plan window start
  std::uint64_t ready_nanos = 0;       ///< plan window end
  std::uint64_t exec_start_nanos = 0;  ///< exec window start
  std::uint64_t exec_end_nanos = 0;    ///< exec window end
  std::atomic<std::uint64_t> plan_busy_nanos{0};
  std::atomic<std::uint64_t> exec_busy_nanos{0};
  std::atomic<std::uint32_t> plan_pending{0};  ///< planners yet to finish
  std::atomic<std::uint32_t> exec_pending{0};  ///< executors yet to finish

  /// Resolve the rids of this slot's read-committed read queues against
  /// `db`'s primary indexes. Conflict-queue fragments can defer resolution
  /// to execution time because same-key routing affinity makes any
  /// concurrent same-key index mutation impossible; read queues are
  /// claimed dynamically by *any* executor, so their lookups must happen
  /// at a quiescent point instead — the engine calls this under its stage
  /// mutex after batch n-1 drained and before any executor of batch n
  /// starts, which is exactly the image depth-1's planning-time
  /// resolution observed.
  EXEC_PHASE void resolve_read_queues(storage::database& db);
};

/// Planner/executor fabric shared by the centralized engine and the
/// distributed engine: P planners, E executors, and a ring of
/// cfg.pipeline_depth batch slots, each carrying its own planner outputs
/// and per-executor conflict-queue views (plus the flattened RC read
/// queues). build() pre-sizes every queue container so addresses stay
/// stable for the engine lifetime.
struct pipeline {
  std::vector<planner> planners;
  std::vector<std::unique_ptr<executor>> executors;  // stable addresses
  std::vector<std::unique_ptr<batch_slot>> slots;    // size pipeline_depth

  /// `cfg` and `db` must outlive the pipeline (planners and executors keep
  /// references); `committed` may be null (serializable isolation).
  void build(const common::config& cfg, storage::database& db,
             storage::dual_version_store* committed);
};

class quecc_engine final : public proto::engine {
 public:
  /// `db` must outlive the engine and be fully loaded: under read-committed
  /// isolation the committed-version store snapshots it here.
  quecc_engine(storage::database& db, const common::config& cfg);
  ~quecc_engine() override;

  quecc_engine(const quecc_engine&) = delete;
  quecc_engine& operator=(const quecc_engine&) = delete;

  const char* name() const noexcept override { return "quecc"; }
  void run_batch(txn::batch& b, common::run_metrics& m) override;

  /// Pipelined submission (see iface.hpp): hands `b` to the planning
  /// stage. If every slot is occupied, retires the oldest batch first
  /// (same thread, equivalent to the caller invoking drain_batch).
  void submit_batch(txn::batch& b, common::run_metrics& m) override;
  bool drain_batch() override;
  std::uint32_t pipeline_depth() const noexcept override {
    return cfg_.pipeline_depth;
  }

  /// Durable barrier: block until the commit record of the most recent
  /// *drained* batch is fsynced (no-op when cfg.durable is off). Call from
  /// the submit/drain thread. See iface.hpp.
  void sync_durable() override;

  /// The command log, when cfg.durable enabled one (tests/introspection).
  log::log_writer* wal() const noexcept { return wal_.get(); }

  /// Stats of the most recent drained batch's speculative recovery (tests).
  const recovery_stats& last_recovery() const noexcept { return last_rec_; }

  /// Per-phase timing of the most recent drained batch (Figure 1
  /// reproduction + pipeline observability). Stable between drains.
  const phase_stats& last_phases() const noexcept { return phases_; }

 private:
  PLAN_PHASE void planner_main(worker_id_t p);
  EXEC_PHASE void executor_main(worker_id_t e);
  EPILOGUE_PHASE void epilogue_main();
  /// Retire batch n: quiescent epilogue half, advance published_, durable
  /// tail + accounting, advance epilogue_done_. Runs on the epilogue
  /// worker (async mode) or on the drain caller (inline mode) — exactly
  /// one of the two for an engine's lifetime.
  EPILOGUE_PHASE void run_epilogue(std::uint64_t n);
  PLAN_PHASE void log_batch_record(const txn::batch& b);
  /// Append batch b's commit record (+ take a due checkpoint) and return
  /// the commit record's lsn. Quiescent-half only: the checkpoint scans
  /// the database and the commit record may carry its state hash.
  EPILOGUE_PHASE std::uint64_t log_commit_record(const txn::batch& b);

  storage::database& db_;
  common::config cfg_;
  std::unique_ptr<storage::dual_version_store> committed_;  // RC only
  spec_manager spec_;

  pipeline pipe_;

  /// Epilogue runs on the dedicated worker (third pipeline stage) instead
  /// of inline on the drain caller. Fixed at construction:
  /// cfg.async_epilogue && pipeline_depth >= 2 (depth 1 has nothing to
  /// overlap with, so it keeps the inline epilogue — today's lockstep).
  bool use_async_epilogue_ = false;

  /// Topology-aware thread->cpu / arena->node assignment, computed when
  /// pin_threads or numa_bind ask for it (empty plan otherwise).
  common::placement_plan plan_;

  // --- stage synchronization ---------------------------------------------
  // Monotonic batch counters: a batch's slot is counter % pipeline_depth.
  // Planners advance on submitted_, executors on ready_ (gated by
  // published_ so execution stays sequential across slots and never
  // overtakes the previous batch's state-mutating epilogue half), the
  // epilogue stage on exec_done_, the drain path on epilogue_done_. All
  // guarded by mu_; cv_ carries every hand-off. The batch_slot fields
  // themselves are published *through* these counters (written before the
  // counter advance under mu_, read after observing it), which is why they
  // carry no GUARDED_BY of their own.
  common::mutex mu_;
  common::cond_var cv_;
  std::uint64_t submitted_ GUARDED_BY(mu_) = 0;  ///< handed to plan stage
  std::uint64_t ready_ GUARDED_BY(mu_) = 0;      ///< batches fully planned
  std::uint64_t exec_done_ GUARDED_BY(mu_) = 0;  ///< batches fully executed
  /// Batches whose state-mutating epilogue half finished (spec recovery,
  /// RC publish, checkpoint, commit-record append): executors of the next
  /// batch are released by this counter.
  std::uint64_t published_ GUARDED_BY(mu_) = 0;
  /// Batches whose full epilogue (durable tail + accounting) finished;
  /// drain_batch waits here.
  std::uint64_t epilogue_done_ GUARDED_BY(mu_) = 0;
  std::uint64_t drained_ GUARDED_BY(mu_) = 0;  ///< retired (slot freed)
  bool stop_ GUARDED_BY(mu_) = false;

  // Epilogue-owner state: touched only by run_epilogue, which runs on
  // exactly one thread for the engine's lifetime (the epilogue worker in
  // async mode, the single drain caller in inline mode). Readers of
  // last_rec_/phases_ synchronize through drain_batch's epilogue_done_
  // wait under mu_.
  std::uint64_t last_drain_nanos_ = 0;
  std::deque<std::pair<std::uint64_t, std::uint64_t>> recent_exec_windows_;
  recovery_stats last_rec_;
  phase_stats phases_;

  std::vector<std::thread> threads_;

  // --- durability (cfg_.durable; see src/log/) ---------------------------
  std::unique_ptr<log::log_writer> wal_;
  std::unique_ptr<log::checkpointer> ckpt_;
  /// Lsn of the newest *retired* batch's commit record — the wait target
  /// for sync_durable(), which runs on the submit/drain thread while the
  /// epilogue worker keeps publishing new lsns.
  std::uint64_t last_commit_lsn_ GUARDED_BY(mu_) = 0;
  // Epilogue-owner state (see above).
  std::uint64_t durable_stream_pos_ = 0;  ///< cumulative txns logged
  std::uint32_t batches_since_ckpt_ = 0;
};

}  // namespace quecc::core
