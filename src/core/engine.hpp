// The queue-oriented transaction processing engine (paper Figure 1).
//
// Lifecycle: construction spawns P planner threads and E executor threads
// that live for the engine's lifetime (CP.41). Each run_batch() call walks
// one batch through the two deterministic phases:
//
//     client batch --> [planning phase: P planners build P*E
//                       priority-tagged fragment queues]
//                  --> [execution phase: E executors drain queues in
//                       priority order, FIFO within a queue]
//                  --> [commit epilogue: speculative-abort recovery,
//                       status marking, read-committed publish]
//
// Phases are separated by barriers, which provide the only inter-thread
// happens-before edges the queues need — there is no concurrency control
// during execution, only the lock-free dependency slots in txn_context.
#pragma once

#include <atomic>
#include <barrier>
#include <memory>
#include <span>
#include <thread>
#include <vector>

#include "common/config.hpp"
#include "core/executor.hpp"
#include "core/planner.hpp"
#include "core/spec_manager.hpp"
#include "protocols/iface.hpp"
#include "storage/dual_version.hpp"

namespace quecc::log {
class log_writer;
class checkpointer;
}  // namespace quecc::log

namespace quecc::core {

/// Shared commit epilogue: speculative recovery, status marking, metrics,
/// and read-committed publishing. Used by the centralized engine and the
/// distributed engine (whose nodes share one process, so the deterministic
/// epilogue runs once globally — matching the paradigm's "no 2PC" commit).
recovery_stats batch_epilogue(
    storage::database& db, const common::config& cfg, txn::batch& b,
    std::span<const std::unique_ptr<executor>> executors, spec_manager& spec,
    storage::dual_version_store* committed, common::run_metrics& m);

/// Planner/executor fabric shared by the centralized engine and the
/// distributed engine: P planners with their plan outputs, E executors,
/// and the per-executor conflict-queue views (plus the flattened RC read
/// queues). build() pre-sizes every queue container so addresses stay
/// stable for the engine lifetime — executors hold raw pointers into them.
struct pipeline {
  std::vector<planner> planners;
  std::vector<plan_output> plan_outs;                // one per planner
  std::vector<std::unique_ptr<executor>> executors;  // stable addresses
  std::vector<std::vector<const frag_queue*>> exec_queues;  // [e] -> P ptrs
  std::vector<const frag_queue*> read_queues;        // flattened P*E (RC)

  /// `cfg` and `db` must outlive the pipeline (planners and executors keep
  /// references); `committed` may be null (serializable isolation).
  void build(const common::config& cfg, storage::database& db,
             storage::dual_version_store* committed);
};

class quecc_engine final : public proto::engine {
 public:
  /// `db` must outlive the engine and be fully loaded: under read-committed
  /// isolation the committed-version store snapshots it here.
  quecc_engine(storage::database& db, const common::config& cfg);
  ~quecc_engine() override;

  quecc_engine(const quecc_engine&) = delete;
  quecc_engine& operator=(const quecc_engine&) = delete;

  const char* name() const noexcept override { return "quecc"; }
  void run_batch(txn::batch& b, common::run_metrics& m) override;

  /// Durable barrier: block until the commit record of the most recent
  /// batch is fsynced (no-op when cfg.durable is off). See iface.hpp.
  void sync_durable() override;

  /// The command log, when cfg.durable enabled one (tests/introspection).
  log::log_writer* wal() const noexcept { return wal_.get(); }

  /// Stats of the most recent batch's speculative recovery (tests).
  const recovery_stats& last_recovery() const noexcept { return last_rec_; }

  /// Per-phase timing of the most recent batch (Figure 1 reproduction).
  struct phase_stats {
    double plan_seconds = 0;
    double exec_seconds = 0;
    double epilogue_seconds = 0;
    std::uint64_t planned_fragments = 0;
    std::uint64_t queues = 0;  ///< P*E conflict queues (+ read queues)
  };
  const phase_stats& last_phases() const noexcept { return phases_; }

 private:
  void planner_main(worker_id_t p);
  void executor_main(worker_id_t e);
  void epilogue(txn::batch& b, common::run_metrics& m);
  void log_batch_record(const txn::batch& b);
  void log_commit_record(const txn::batch& b);

  storage::database& db_;
  common::config cfg_;
  std::unique_ptr<storage::dual_version_store> committed_;  // RC only
  spec_manager spec_;

  pipeline pipe_;
  std::atomic<std::size_t> read_cursor_{0};

  txn::batch* current_ = nullptr;
  std::uint64_t batch_start_nanos_ = 0;
  std::atomic<bool> stop_{false};
  std::barrier<> sync_;
  std::vector<std::thread> threads_;
  recovery_stats last_rec_;
  phase_stats phases_;

  // --- durability (cfg_.durable; see src/log/) ---------------------------
  std::unique_ptr<log::log_writer> wal_;
  std::unique_ptr<log::checkpointer> ckpt_;
  std::uint64_t last_commit_lsn_ = 0;   ///< wait target for sync_durable()
  std::uint64_t durable_stream_pos_ = 0;  ///< cumulative txns logged
  std::uint32_t batches_since_ckpt_ = 0;
};

}  // namespace quecc::core
