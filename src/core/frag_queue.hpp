// Execution queues: priority-tagged FIFO queues of planned fragments.
//
// Paper Section 3.2 / Figure 1: planners emit queues of fragments tagged
// with deterministic priorities; executors process assigned queues in
// priority order and "obey the FIFO property of queues when processing
// fragments with conflict dependencies".
//
// A queue is written by exactly one planner during the planning phase and
// read by exactly one executor during the execution phase; the engine's
// phase barrier provides the happens-before edge, so the container itself
// needs no synchronization (CP.3: minimize shared writable data).
#pragma once

#include <cstdint>
#include <vector>

#include "txn/fragment.hpp"
#include "txn/txn_context.hpp"

namespace quecc::core {

/// One planned unit of work: a fragment plus its owning transaction. The
/// fragment pointer is non-const because under pipelining the engine
/// resolves read-queue rids at the pre-execution quiescent point (see
/// batch_slot::resolve_read_queues); executors treat fragments as const.
///
/// `part` is the entry's *effective* partition. It equals f->part except
/// for cross-partition scan fragments (f->part == txn::kAllParts), which
/// the planner fans out into one entry per partition — the shared fragment
/// cannot carry the per-entry partition, so the queue entry does.
struct frag_entry {
  txn::txn_desc* t = nullptr;
  txn::fragment* f = nullptr;
  part_id_t part = 0;
};

/// Deterministic queue priority: (planner id, position). Executors drain
/// planner 0's queue fully before planner 1's, matching batch order.
struct queue_priority {
  worker_id_t planner = 0;

  friend bool operator<(const queue_priority& a,
                        const queue_priority& b) noexcept {
    return a.planner < b.planner;
  }
};

class frag_queue {
 public:
  void set_priority(queue_priority p) noexcept { prio_ = p; }
  queue_priority priority() const noexcept { return prio_; }

  void push(frag_entry e) { entries_.push_back(e); }
  void clear() noexcept { entries_.clear(); }

  std::size_t size() const noexcept { return entries_.size(); }
  bool empty() const noexcept { return entries_.empty(); }

  auto begin() const { return entries_.begin(); }
  auto end() const { return entries_.end(); }

 private:
  std::vector<frag_entry> entries_;
  queue_priority prio_;
};

}  // namespace quecc::core
