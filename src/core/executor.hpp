// Execution phase: one executor drains its assigned queues in priority
// order (paper Section 3.2, second phase).
//
// "Execution threads are not aware of the actual transactions. They are
// simply executing the logic associated with the fragments in the queues,
// and obey the FIFO property of queues when processing fragments with
// conflict dependencies." — the executor is exactly that: a queue drainer
// plus the frag_host that gives fragment logic in-place access to rows.
//
// Coordination is limited to the lock-free txn_context (data / commit
// dependencies, abort flags); there is no per-record locking or validation
// anywhere on this path.
#pragma once

#include <atomic>
#include <cstdint>
#include <span>
#include <vector>

#include "common/config.hpp"
#include "common/phase_annotations.hpp"
#include "common/stats.hpp"
#include "core/exec_log.hpp"
#include "core/frag_queue.hpp"
#include "storage/database.hpp"
#include "storage/dual_version.hpp"
#include "txn/procedure.hpp"

namespace quecc::core {

class executor final : public txn::frag_host {
 public:
  executor(worker_id_t id, const common::config& cfg, storage::database& db,
           storage::dual_version_store* committed)
      : id_(id), cfg_(cfg), db_(db), committed_(committed) {}

  worker_id_t id() const noexcept { return id_; }
  exec_logs& logs() noexcept { return logs_; }
  common::latency_histogram& latency() noexcept { return latency_; }

  /// Called by the engine at the start of each batch's execution phase.
  void begin_batch(std::uint64_t batch_start_nanos) noexcept {
    batch_start_nanos_ = batch_start_nanos;
    logs_.clear();
  }

  /// Drain conflict queues in the given (priority-sorted) order.
  EXEC_PHASE void run_conflict_queues(std::span<const frag_queue* const> queues);

  /// Claim and drain read-committed read queues from the shared pool.
  /// `cursor` is the engine-owned claim index over `queues`.
  EXEC_PHASE void run_read_queues(std::span<const frag_queue* const> queues,
                                  std::atomic<std::size_t>& cursor);

  // --- frag_host (in-place speculative / conservative execution) ---------
  EXEC_PHASE std::span<const std::byte> read_row(const txn::fragment& f,
                                                 txn::txn_desc& t) override;
  EXEC_PHASE std::span<std::byte> update_row(const txn::fragment& f,
                                             txn::txn_desc& t) override;
  EXEC_PHASE std::span<std::byte> insert_row(const txn::fragment& f,
                                             txn::txn_desc& t) override;
  EXEC_PHASE bool erase_row(const txn::fragment& f, txn::txn_desc& t) override;
  /// Ordered range read over the current queue entry's partition (a
  /// kAllParts scan reaches this executor once per fanned-out partition;
  /// its logic accumulates via txn_desc::produce_partial).
  EXEC_PHASE bool scan_rows(const txn::fragment& f, txn::txn_desc& t,
                            scan_row_fn fn, void* ctx) override;

 private:
  EXEC_PHASE void process(const frag_entry& e);
  EXEC_PHASE void skip(const frag_entry& e);
  EXEC_PHASE void finish(txn::txn_desc& t);

  /// Resolve a fragment's row id, falling back to an execution-time index
  /// lookup for records created earlier in this batch (FIFO on the home
  /// partition's queue makes the insert visible by now).
  storage::row_id_t resolve(const txn::fragment& f) const noexcept;

  void log_undo_update(const txn::fragment& f, txn::txn_desc& t,
                       storage::row_id_t rid);

  worker_id_t id_;
  const common::config& cfg_;
  storage::database& db_;
  storage::dual_version_store* committed_;  ///< null unless read-committed
  exec_logs logs_;
  common::latency_histogram latency_;
  std::uint64_t batch_start_nanos_ = 0;
  bool reading_committed_ = false;  ///< true while draining read queues
  /// Effective partition of the entry being processed; scan_rows scans it
  /// (the fragment itself may carry the kAllParts sentinel).
  part_id_t current_part_ = 0;
};

}  // namespace quecc::core
