#include "core/executor.hpp"

#include <chrono>
#include <cstring>
#include <utility>

#include "common/spinlock.hpp"

namespace quecc::core {


void executor::run_conflict_queues(
    std::span<const frag_queue* const> queues) {
  reading_committed_ = false;
  for (const frag_queue* q : queues) {
    for (const frag_entry& e : *q) process(e);
  }
}

void executor::run_read_queues(std::span<const frag_queue* const> queues,
                               std::atomic<std::size_t>& cursor) {
  reading_committed_ = true;
  while (true) {
    // relaxed: work-claiming cursor; queue contents were published by the
    // plan->exec stage hand-off, claiming needs atomicity only.
    const std::size_t i = cursor.fetch_add(1, std::memory_order_relaxed);
    if (i >= queues.size()) break;
    for (const frag_entry& e : *queues[i]) process(e);
  }
  reading_committed_ = false;
}

void executor::process(const frag_entry& e) {
  txn::txn_desc& t = *e.t;
  const txn::fragment& f = *e.f;
  current_part_ = e.part;

  if (t.aborted()) {
    skip(e);
    return;
  }

  // Data dependencies: wait for producer fragments (other executors) to
  // publish the slots this fragment consumes. Deadlock-free because
  // producers sort strictly earlier in the global replay order
  // (DESIGN.md 2.2) — unless the txn aborts, which breaks the wait.
  if (f.input_mask != 0) {
    common::backoff bo;
    while (!t.inputs_ready(f.input_mask)) {
      if (t.aborted()) {
        skip(e);
        return;
      }
      bo.spin();
    }
  }

  // Commit dependencies (conservative execution only): database-updating
  // fragments hold off until every abortable fragment of the transaction
  // has resolved, so uncommitted updates are never exposed (paper §3.2).
  if (cfg_.execution == common::exec_model::conservative &&
      f.updates_database()) {
    common::backoff bo;
    while (t.pending_abortables.load(std::memory_order_acquire) != 0) {
      if (t.aborted()) {
        skip(e);
        return;
      }
      bo.spin();
    }
    if (t.aborted()) {  // abort decided by the final abortable fragment
      skip(e);
      return;
    }
  }

  const txn::frag_status st = t.proc->run_fragment(f, t, *this);
  // Publish the abort decision BEFORE resolving the commit dependency:
  // conservative waiters observe pending_abortables with acquire ordering,
  // so the release sequence on the counter makes the status store visible
  // to them — decrementing first would open a window where a waiter sees
  // zero pending abortables but not the abort, and applies a doomed update.
  if (st == txn::frag_status::abort) t.mark_aborted();
  if (f.abortable) {
    t.pending_abortables.fetch_sub(1, std::memory_order_acq_rel);
  }
  finish(t);
}

void executor::skip(const frag_entry& e) {
  if (e.f->abortable) {
    e.t->pending_abortables.fetch_sub(1, std::memory_order_acq_rel);
  }
  finish(*e.t);
}

void executor::finish(txn::txn_desc& t) {
  const auto left =
      t.remaining_frags.fetch_sub(1, std::memory_order_acq_rel) - 1;
  if (left == 0) {
    latency_.record_nanos(common::now_nanos() - batch_start_nanos_);
  }
}

storage::row_id_t executor::resolve(const txn::fragment& f) const noexcept {
  if (f.rid != storage::kNoRow) return f.rid;
  // Partition-local path: route to the fragment's home arena, no index
  // lock (hash_index lock-free reader contract).
  return db_.at(f.table).lookup_local(f.key, f.part);
}

std::span<const std::byte> executor::read_row(const txn::fragment& f,
                                              txn::txn_desc& t) {
  const auto rid = resolve(f);
  if (rid == storage::kNoRow) return {};
  if (reading_committed_) {
    // Read-committed read queues observe the previous batch's committed
    // image; no read logging needed (immune to in-batch aborts).
    return committed_->committed_row(f.table, rid);
  }
  if (cfg_.execution == common::exec_model::speculative) {
    logs_.reads.push_back({t.seq, f.table, f.key});
  }
  return db_.at(f.table).row(rid);
}

void executor::log_undo_update(const txn::fragment& f, txn::txn_desc& t,
                               storage::row_id_t rid) {
  undo_entry u{t.seq, f.table, f.key, rid, txn::op_kind::update, 0, 0};
  if (cfg_.execution == common::exec_model::speculative) {
    const auto row = db_.at(f.table).row(rid);
    u.arena_offset = static_cast<std::uint32_t>(logs_.arena.size());
    u.len = static_cast<std::uint32_t>(row.size());
    logs_.arena.insert(logs_.arena.end(), row.begin(), row.end());
  }
  // Conservative mode keeps the entry without a before-image: aborted
  // transactions never reach update_row, so the entry only feeds the
  // read-committed publish list.
  logs_.undo.push_back(u);
}

std::span<std::byte> executor::update_row(const txn::fragment& f,
                                          txn::txn_desc& t) {
  const auto rid = resolve(f);
  if (rid == storage::kNoRow) return {};
  log_undo_update(f, t, rid);
  return db_.at(f.table).row(rid);
}

std::span<std::byte> executor::insert_row(const txn::fragment& f,
                                          txn::txn_desc& t) {
  auto& table = db_.at(f.table);
  const auto rid = table.allocate_row(f.part);
  auto row = table.row(rid);
  std::memset(row.data(), 0, row.size());
  if (!table.index_row(f.key, rid)) {
    table.retire_unindexed(rid);  // duplicate key: recycle the slot
    return {};
  }
  logs_.undo.push_back(
      {t.seq, f.table, f.key, rid, txn::op_kind::insert, 0, 0});
  return row;
}

bool executor::erase_row(const txn::fragment& f, txn::txn_desc& t) {
  const auto rid = resolve(f);
  if (rid == storage::kNoRow) return false;
  if (!db_.at(f.table).erase(f.key, f.part)) return false;
  logs_.undo.push_back(
      {t.seq, f.table, f.key, rid, txn::op_kind::erase, 0, 0});
  return true;
}

bool executor::scan_rows(const txn::fragment& f, txn::txn_desc& t,
                         scan_row_fn fn, void* ctx) {
  // One range read entry covers every row the scan saw — and every row it
  // did NOT see: speculation recovery taints this transaction when an
  // affected writer touched *any* key in [key, key_hi), which is exactly
  // the phantom protection a per-row read log could not give.
  if (!reading_committed_ &&
      cfg_.execution == common::exec_model::speculative) {
    logs_.reads.push_back({t.seq, f.table, f.key, f.key_hi});
  }
  struct tramp_ctx {
    storage::table* tab;
    scan_row_fn fn;
    void* ctx;
  } tc{&db_.at(f.table), fn, ctx};
  return tc.tab->visit_range_in(
      current_part_, f.key, f.key_hi,
      [](void* raw, key_t k, storage::row_id_t rid) {
        auto* c = static_cast<tramp_ctx*>(raw);
        return c->fn(c->ctx, k,
                     std::as_const(*c->tab).row(rid));
      },
      &tc);
}

}  // namespace quecc::core
