#include "core/engine.hpp"

#include <algorithm>
#include <chrono>
#include <unordered_set>

#include "common/thread_util.hpp"
#include "log/checkpoint.hpp"
#include "log/log_writer.hpp"
#include "log/plan_codec.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace quecc::core {


void pipeline::build(const common::config& cfg, storage::database& db,
                     storage::dual_version_store* committed) {
  const bool rc = cfg.iso == common::isolation::read_committed;
  const worker_id_t planner_n = cfg.planner_threads;
  const worker_id_t execs = cfg.executor_threads;

  planners.reserve(planner_n);
  for (worker_id_t p = 0; p < planner_n; ++p) {
    planners.emplace_back(p, cfg, db);
  }
  executors.reserve(execs);
  for (worker_id_t e = 0; e < execs; ++e) {
    executors.push_back(std::make_unique<executor>(e, cfg, db, committed));
  }

  // One slot per pipeline stage-in-flight. Pre-size every queue container
  // so addresses are stable for the engine lifetime; executors read
  // through the raw pointers wired up here.
  slots.reserve(cfg.pipeline_depth);
  for (std::uint32_t s = 0; s < cfg.pipeline_depth; ++s) {
    auto slot = std::make_unique<batch_slot>();
    slot->plan_outs.resize(planner_n);
    for (worker_id_t p = 0; p < planner_n; ++p) {
      slot->plan_outs[p].resize(execs, rc);
    }
    slot->exec_queues.resize(execs);
    for (worker_id_t e = 0; e < execs; ++e) {
      for (worker_id_t p = 0; p < planner_n; ++p) {
        slot->exec_queues[e].push_back(&slot->plan_outs[p].conflict[e]);
      }
    }
    if (rc) {
      for (worker_id_t p = 0; p < planner_n; ++p) {
        for (worker_id_t e = 0; e < execs; ++e) {
          slot->read_queues.push_back(&slot->plan_outs[p].reads[e]);
        }
      }
    }
    slots.push_back(std::move(slot));
  }
}

void batch_slot::resolve_read_queues(storage::database& db) {
  for (const frag_queue* q : read_queues) {
    for (const frag_entry& e : *q) {
      if (e.f->kind != txn::op_kind::insert) {
        // Pre-execution quiescent point: partition-local, lock-free.
        e.f->rid = db.at(e.f->table).lookup_local(e.f->key, e.f->part);
      }
    }
  }
}

quecc_engine::quecc_engine(storage::database& db, const common::config& cfg)
    : db_(db), cfg_(cfg), spec_(db) {
  cfg_.validate();
  use_async_epilogue_ = cfg_.async_epilogue && cfg_.pipeline_depth >= 2;
  if (cfg_.iso == common::isolation::read_committed) {
    committed_ = std::make_unique<storage::dual_version_store>(db_);
  }
  if (cfg_.durable) {
    wal_ = std::make_unique<log::log_writer>(
        cfg_.log_dir,
        log::writer_options{cfg_.group_commit_micros, cfg_.log_segment_bytes,
                            cfg_.log_resume});
    ckpt_ = std::make_unique<log::checkpointer>(cfg_.log_dir);
    durable_stream_pos_ = cfg_.log_resume_stream_pos;
  }
  pipe_.build(cfg_, db_, committed_.get());

  if (cfg_.pin_threads || cfg_.numa_bind) {
    plan_ = common::compute_placement(
        common::system_topology(),
        {cfg_.planner_threads, cfg_.executor_threads, cfg_.pin_mode});
  }
  // Bind arenas before workers start: the loader already faulted the slab
  // pages, so the move must finish while nothing reads them.
  if (cfg_.numa_bind) bind_arena_memory(db_, plan_);

  const worker_id_t planners = cfg_.planner_threads;
  const worker_id_t execs = cfg_.executor_threads;
  threads_.reserve(static_cast<std::size_t>(planners) + execs + 1);
  for (worker_id_t p = 0; p < planners; ++p) {
    threads_.emplace_back([this, p] { planner_main(p); });
  }
  for (worker_id_t e = 0; e < execs; ++e) {
    threads_.emplace_back([this, e] { executor_main(e); });
  }
  if (use_async_epilogue_) {
    threads_.emplace_back([this] { epilogue_main(); });
  }
}

quecc_engine::~quecc_engine() {
  // Retire anything the caller left in flight (the submit contract says
  // batches and metrics outlive their drain, so the pointers are valid).
  while (drain_batch()) {
  }
  {
    common::mutex_lock lk(mu_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& t : threads_) t.join();
}

void quecc_engine::planner_main(worker_id_t p) {
  common::name_self("quecc-plan-" + std::to_string(p));
  if (cfg_.pin_threads) common::pin_self_to(plan_.planner_cpu[p]);
  for (std::uint64_t n = 0;; ++n) {
    {
      common::mutex_lock lk(mu_);
      while (!(submitted_ > n || stop_)) cv_.wait(lk);
      if (stop_ && submitted_ <= n) return;
    }
    // Planners need no start barrier: each writes only its own plan_outs
    // entry, and a slot is only handed out again (submitted_) after its
    // previous batch drained. Planner p may be a batch ahead of planner q.
    batch_slot& s = *pipe_.slots[n % cfg_.pipeline_depth];
    const std::uint64_t t0 = common::now_nanos();
    pipe_.planners[p].plan(*s.batch, s.plan_outs[p]);
    const std::uint64_t t1 = common::now_nanos();
    static const obs::histogram plan_busy("engine.plan_busy_nanos");
    plan_busy.record_nanos(t1 - t0);
    obs::record_span(obs::trace_stage::plan, t0, t1 - t0, s.batch->id(),
                     static_cast<std::uint32_t>(n % cfg_.pipeline_depth));
    // relaxed: stat counter; read at the drain quiescent point, ordered by
    // the plan_pending acq_rel countdown below.
    s.plan_busy_nanos.fetch_add(t1 - t0, std::memory_order_relaxed);
    if (s.plan_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      common::mutex_lock lk(mu_);
      s.ready_nanos = common::now_nanos();
      ready_ = n + 1;  // planners retire batches in order (see above)
      cv_.notify_all();
    }
  }
}

void quecc_engine::executor_main(worker_id_t e) {
  common::name_self("quecc-exec-" + std::to_string(e));
  if (cfg_.pin_threads) {
    common::pin_self_to(plan_.executor_cpu[e]);
  }
  executor& ex = *pipe_.executors[e];
  for (std::uint64_t n = 0;; ++n) {
    batch_slot* sp;
    {
      common::mutex_lock lk(mu_);
      // Execution stays sequential across slots: batch n runs only after
      // batch n-1's state-mutating epilogue half (published_ == n) — the
      // per-slot inter-batch quiescent point that read-committed
      // publishing, speculation recovery, and checkpoints rely on. Only
      // the previous batch's durable tail (fsync wait) may still be in
      // flight on the epilogue worker.
      while (!((ready_ > n && published_ == n) || stop_)) cv_.wait(lk);
      if (stop_ && !(ready_ > n && published_ == n)) return;
      sp = pipe_.slots[n % cfg_.pipeline_depth].get();
      if (sp->exec_start_nanos == 0) {
        sp->exec_start_nanos = common::now_nanos();
        // First executor in, still under mu_ (batch n-1 published, nobody
        // else touching the database): resolve the RC read-queue rids at
        // the quiescent point — they are claimed by any executor, so
        // execution-time lookups would race with this batch's own
        // inserts/erases. At depth 1 the planners already resolved them.
        if (cfg_.pipeline_depth > 1) sp->resolve_read_queues(db_);
      }
    }
    batch_slot& s = *sp;
    const std::uint64_t t0 = common::now_nanos();
    ex.begin_batch(s.submit_nanos);
    ex.run_conflict_queues(s.exec_queues[e]);
    if (!s.read_queues.empty()) {
      ex.run_read_queues(s.read_queues, s.read_cursor);
    }
    const std::uint64_t t1 = common::now_nanos();
    static const obs::histogram exec_busy("engine.exec_busy_nanos");
    exec_busy.record_nanos(t1 - t0);
    obs::record_span(obs::trace_stage::exec, t0, t1 - t0, s.batch->id(),
                     static_cast<std::uint32_t>(n % cfg_.pipeline_depth));
    // relaxed: stat counter; read at the drain quiescent point, ordered by
    // the exec_pending acq_rel countdown below.
    s.exec_busy_nanos.fetch_add(t1 - t0, std::memory_order_relaxed);
    if (s.exec_pending.fetch_sub(1, std::memory_order_acq_rel) == 1) {
      common::mutex_lock lk(mu_);
      s.exec_end_nanos = common::now_nanos();
      exec_done_ = n + 1;
      cv_.notify_all();
    }
  }
}

void quecc_engine::submit_batch(txn::batch& b, common::run_metrics& m) {
  // Ring full: the caller fell behind; retire the oldest batch on its
  // behalf (same thread — equivalent to the caller invoking drain_batch).
  while (true) {
    {
      common::mutex_lock lk(mu_);
      if (submitted_ - drained_ < cfg_.pipeline_depth) break;
    }
    drain_batch();
  }
  {
    common::mutex_lock lk(mu_);
    batch_slot& s = *pipe_.slots[submitted_ % cfg_.pipeline_depth];
    s.batch = &b;
    s.metrics = &m;
    s.submit_nanos = common::now_nanos();
    s.ready_nanos = s.exec_start_nanos = s.exec_end_nanos = 0;
    // relaxed: slot resets are published to the workers by ++submitted_
    // under mu_ below, not by these stores themselves.
    s.read_cursor.store(0, std::memory_order_relaxed);
    s.plan_busy_nanos.store(0, std::memory_order_relaxed);
    s.exec_busy_nanos.store(0, std::memory_order_relaxed);
    s.plan_pending.store(cfg_.planner_threads, std::memory_order_relaxed);
    s.exec_pending.store(cfg_.executor_threads, std::memory_order_relaxed);
    ++submitted_;  // publishes the slot fields to the plan stage
    cv_.notify_all();
  }
  // Batch (command) record at plan time: the serialized plan is the whole
  // redo log — execution is a deterministic function of it. Encoding and
  // appending overlap the planning the workers just started (the codec
  // reads no field planners write).
  if (wal_) log_batch_record(b);
}

void quecc_engine::epilogue_main() {
  common::name_self("quecc-epilogue");
  if (cfg_.pin_threads) common::pin_self_to(plan_.epilogue_cpu);
  for (std::uint64_t n = 0;; ++n) {
    {
      common::mutex_lock lk(mu_);
      while (!(exec_done_ > n || stop_)) cv_.wait(lk);
      if (stop_ && exec_done_ <= n) return;
    }
    run_epilogue(n);
  }
}

void quecc_engine::run_epilogue(std::uint64_t n) {
  batch_slot& s = *pipe_.slots[n % cfg_.pipeline_depth];
  txn::batch& b = *s.batch;
  common::run_metrics& m = *s.metrics;

  // State-mutating half at the quiescent point: executors for batch n+1
  // wait on published_, so the executor logs read here are still batch
  // n's and nothing observes the database mid-recovery. Planners may
  // concurrently plan batches n+1.. — at depth >= 2 planning touches no
  // shared mutable state (see planner.cpp).
  const std::uint64_t epi0 = common::now_nanos();
  last_rec_ =
      batch_epilogue(db_, cfg_, b, pipe_.executors, spec_, committed_.get(), m);
  // Commit record after the commit epilogue (statuses are final, and with
  // log_verify_hash it snapshots the post-recovery state hash); the
  // group-commit flusher picks it up. Epilogue order == submission order,
  // so commit records retain batch order in the log even while later
  // batches' records interleave between them. A due checkpoint runs here
  // too — still pre-publish, because it scans the database.
  std::uint64_t commit_lsn = 0;
  if (wal_) commit_lsn = log_commit_record(b);

  {
    common::mutex_lock lk(mu_);
    published_ = n + 1;  // releases executors into batch n+1
    cv_.notify_all();
  }

  // Durable tail, overlapped with batch n+1's execution (async mode; the
  // inline epilogue keeps the legacy contract where sync_durable() or the
  // flusher timer absorbs the fsync).
  if (wal_ && use_async_epilogue_) {
    const std::uint64_t f0 = common::now_nanos();
    wal_->wait_durable(commit_lsn);
    obs::record_span(obs::trace_stage::fsync, f0, common::now_nanos() - f0,
                     b.id(), static_cast<std::uint32_t>(n % cfg_.pipeline_depth));
  }
  const std::uint64_t epi1 = common::now_nanos();
  static const obs::histogram epi_hist("engine.epilogue_nanos");
  epi_hist.record_nanos(epi1 - epi0);
  static const obs::counter drained_ctr("engine.batches_drained_total");
  drained_ctr.inc();
  obs::record_span(obs::trace_stage::epilogue, epi0, epi1 - epi0, b.id(),
                   static_cast<std::uint32_t>(n % cfg_.pipeline_depth));

  // Per-slot phase stats (epilogue-owner state: only ever written here, on
  // the one thread that retires batches).
  phase_stats ph;
  ph.plan_seconds = static_cast<double>(s.ready_nanos - s.submit_nanos) / 1e9;
  ph.exec_seconds =
      static_cast<double>(s.exec_end_nanos - s.exec_start_nanos) / 1e9;
  ph.epilogue_seconds = static_cast<double>(epi1 - epi0) / 1e9;
  // relaxed: quiescent point — every worker's countdown (acq_rel) landed
  // before exec_done_/ready_ advanced under mu_.
  ph.plan_busy_seconds =
      static_cast<double>(s.plan_busy_nanos.load(std::memory_order_relaxed)) /
      1e9;
  ph.exec_busy_seconds =
      static_cast<double>(s.exec_busy_nanos.load(std::memory_order_relaxed)) /
      1e9;
  for (const auto& po : s.plan_outs) ph.planned_fragments += po.planned_frags;
  ph.queues = static_cast<std::uint64_t>(cfg_.planner_threads) *
              (cfg_.executor_threads +
               (committed_ ? cfg_.executor_threads : 0));
  // Overlap: intersect this batch's planning window with the execution
  // windows of the batches it could have overlapped (the previous
  // pipeline_depth - 1 retired batches).
  for (const auto& [x0, x1] : recent_exec_windows_) {
    const std::uint64_t lo = std::max(s.submit_nanos, x0);
    const std::uint64_t hi = std::min(s.ready_nanos, x1);
    if (hi > lo) ph.overlap_seconds += static_cast<double>(hi - lo) / 1e9;
  }
  recent_exec_windows_.emplace_back(s.exec_start_nanos, s.exec_end_nanos);
  while (recent_exec_windows_.size() >= cfg_.pipeline_depth) {
    recent_exec_windows_.pop_front();
  }
  phases_ = ph;

  m.batches += 1;
  m.plan_busy_seconds += ph.plan_busy_seconds;
  m.exec_busy_seconds += ph.exec_busy_seconds;
  m.epilogue_busy_seconds += ph.epilogue_seconds;
  m.pipeline_overlap_seconds += ph.overlap_seconds;
  // Elapsed time without double counting across overlapping batches:
  // charge each retirement the wall time since the previous one, clipped
  // to this batch's own submission (so idle gaps between lockstep
  // run_batch calls are not charged — depth 1 matches the old stopwatch
  // exactly).
  const std::uint64_t drain_nanos = common::now_nanos();
  const std::uint64_t from = std::max(s.submit_nanos, last_drain_nanos_);
  m.elapsed_seconds += static_cast<double>(drain_nanos - from) / 1e9;
  last_drain_nanos_ = drain_nanos;

  {
    common::mutex_lock lk(mu_);
    if (wal_) last_commit_lsn_ = commit_lsn;
    epilogue_done_ = n + 1;
    cv_.notify_all();
  }
}

bool quecc_engine::drain_batch() {
  std::uint64_t n;
  batch_slot* sp;
  {
    common::mutex_lock lk(mu_);
    if (drained_ == submitted_) return false;  // nothing in flight
    n = drained_;
    if (use_async_epilogue_) {
      // Third stage owns the epilogue: just await its counter.
      while (epilogue_done_ <= n) cv_.wait(lk);
    } else {
      while (exec_done_ <= n) cv_.wait(lk);
    }
    sp = pipe_.slots[n % cfg_.pipeline_depth].get();
  }
  if (!use_async_epilogue_) run_epilogue(n);

  {
    common::mutex_lock lk(mu_);
    sp->batch = nullptr;
    sp->metrics = nullptr;
    drained_ = n + 1;  // frees the slot for submit_batch
    cv_.notify_all();
  }
  return true;
}

void quecc_engine::run_batch(txn::batch& b, common::run_metrics& m) {
  submit_batch(b, m);
  while (drain_batch()) {
  }
}

recovery_stats batch_epilogue(
    storage::database& db, const common::config& cfg, txn::batch& b,
    std::span<const std::unique_ptr<executor>> executors, spec_manager& spec,
    storage::dual_version_store* committed, common::run_metrics& m) {
  // Speculative recovery: resolve speculation dependencies (cascading
  // aborts + deterministic re-execution). Conservative execution cannot
  // expose dirty data, so aborted transactions already left no effects.
  recovery_stats rec{};
  if (cfg.execution == common::exec_model::speculative) {
    std::vector<exec_logs*> logs;
    logs.reserve(executors.size());
    for (auto& ex : executors) logs.push_back(&ex->logs());
    rec = spec.recover(b, logs);
    m.cc_aborts += rec.cascades;
    static const obs::counter recoveries("spec.recoveries_total");
    static const obs::counter cascades("spec.cascade_aborts_total");
    static const obs::counter reexec("spec.reexecutions_total");
    static const obs::counter redo("spec.full_redo_total");
    recoveries.inc();
    cascades.inc(rec.cascades);
    reexec.inc(rec.reexecuted);
    if (rec.full_redo) redo.inc();
  }

  for (auto& t : b) {
    if (t->aborted()) {
      m.aborted += 1;
    } else {
      t->status.store(txn::txn_status::committed, std::memory_order_release);
      m.committed += 1;
    }
  }

  // Read-committed: publish this batch's dirty rows into the committed
  // image so the next batch's read queues observe them.
  if (committed != nullptr) {
    // Dedup per table: rids use their high bits for the shard (see
    // table.hpp), so packing (table, rid) into one word would collide.
    std::vector<std::unordered_set<storage::row_id_t>> seen(db.table_count());
    auto publish = [&](table_id_t table, storage::row_id_t rid) {
      if (seen[table].insert(rid).second) committed->publish(db, table, rid);
    };
    for (auto& ex : executors) {
      for (const auto& u : ex->logs().undo) {
        if (u.op != txn::op_kind::erase) publish(u.table, u.rid);
      }
    }
    for (const auto& [table, rid] : spec.extra_dirty()) publish(table, rid);
  }

  for (auto& ex : executors) {
    m.txn_latency.merge(ex->latency());
    ex->latency().reset();
  }
  return rec;
}

void quecc_engine::log_batch_record(const txn::batch& b) {
  const std::uint64_t t0 = common::now_nanos();
  std::vector<std::byte> payload;
  log::encode_batch(b, payload);
  wal_->append(log::record_type::batch, payload);
  obs::record_span(obs::trace_stage::log_append, t0,
                   common::now_nanos() - t0, b.id());
}

std::uint64_t quecc_engine::log_commit_record(const txn::batch& b) {
  log::commit_info c;
  c.batch_id = b.id();
  c.txn_count = static_cast<std::uint32_t>(b.size());
  for (const auto& t : b) {
    if (t->aborted()) {
      ++c.aborted;
    } else {
      ++c.committed;
    }
  }
  durable_stream_pos_ += b.size();
  c.stream_pos = durable_stream_pos_;
  c.state_hash = cfg_.log_verify_hash ? db_.state_hash() : 0;

  std::vector<std::byte> payload;
  log::encode_commit(c, payload);
  const std::uint64_t lsn = wal_->append(log::record_type::commit, payload);
  wal_->request_flush();

  // Batch-boundary checkpoint: we sit at the inter-batch quiescent point
  // (executors for the next batch are parked on published_; planners touch
  // no database state at depth >= 2), so the snapshot is
  // transaction-consistent by construction. The new checkpoint covers
  // every logged batch; rotate and drop the old segments (checkpoint file
  // + manifest land before any deletion).
  if (cfg_.checkpoint_interval_batches > 0 &&
      ++batches_since_ckpt_ >= cfg_.checkpoint_interval_batches) {
    batches_since_ckpt_ = 0;
    ckpt_->take(db_, b.id(), durable_stream_pos_, wal_->segment_index() + 1);
    wal_->rotate_and_truncate();
    // Batches still in the pipeline appended their batch records at
    // submit time — into the segments just truncated. Re-append them so
    // recovery can replay past this checkpoint (their commit records land
    // later, in retirement order). Batch contents are frozen (planners
    // never write them at depth >= 2). In async mode the submit thread may
    // append the same batch record concurrently — log_writer::append
    // serializes the frames internally and replay is last-record-wins per
    // batch id, so the duplicate is benign in every interleaving (an
    // append that landed in a truncated segment is re-covered here; one
    // landing after the rotation sits in the fresh segment on its own).
    std::uint64_t first_inflight, end_inflight;
    {
      common::mutex_lock lk(mu_);
      first_inflight = published_ + 1;  // published_ == the batch retiring
      end_inflight = submitted_;
    }
    for (std::uint64_t k = first_inflight; k < end_inflight; ++k) {
      // quecc-ok(phase): epilogue re-appends at the quiescent point;
      // batch contents are frozen (planners never write them at depth >= 2)
      log_batch_record(*pipe_.slots[k % cfg_.pipeline_depth]->batch);
    }
  }
  return lsn;
}

void quecc_engine::sync_durable() {
  if (!wal_) return;
  std::uint64_t lsn;
  {
    common::mutex_lock lk(mu_);
    lsn = last_commit_lsn_;
  }
  wal_->wait_durable(lsn);
}

void bind_arena_memory(storage::database& db,
                       const common::placement_plan& plan) {
  for (table_id_t t = 0; t < db.table_count(); ++t) {
    storage::table& tb = db.at(t);
    for (part_id_t s = 0; s < tb.shard_count(); ++s) {
      tb.bind_shard_to_node(s, plan.node_of_arena(s));
      // One gauge per arena index (shared across tables — they stripe
      // identically), capped well below the registry's gauge budget.
      if (t == 0 && s < 32) {
        const obs::gauge g("storage.arena_node." + std::to_string(s));
        g.set(tb.shard_numa_node(s));
      }
    }
  }
}

}  // namespace quecc::core
