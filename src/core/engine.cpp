#include "core/engine.hpp"

#include <chrono>
#include <unordered_set>

#include "common/thread_util.hpp"
#include "log/checkpoint.hpp"
#include "log/log_writer.hpp"
#include "log/plan_codec.hpp"

namespace quecc::core {


void pipeline::build(const common::config& cfg, storage::database& db,
                     storage::dual_version_store* committed) {
  const bool rc = cfg.iso == common::isolation::read_committed;
  const worker_id_t planner_n = cfg.planner_threads;
  const worker_id_t execs = cfg.executor_threads;

  planners.reserve(planner_n);
  plan_outs.resize(planner_n);
  for (worker_id_t p = 0; p < planner_n; ++p) {
    planners.emplace_back(p, cfg, db);
    // Pre-size queue containers so their addresses are stable for the
    // engine lifetime; executors hold raw pointers into them.
    plan_outs[p].resize(execs, rc);
  }

  executors.reserve(execs);
  exec_queues.resize(execs);
  for (worker_id_t e = 0; e < execs; ++e) {
    executors.push_back(std::make_unique<executor>(e, cfg, db, committed));
    for (worker_id_t p = 0; p < planner_n; ++p) {
      exec_queues[e].push_back(&plan_outs[p].conflict[e]);
    }
  }
  if (rc) {
    for (worker_id_t p = 0; p < planner_n; ++p) {
      for (worker_id_t e = 0; e < execs; ++e) {
        read_queues.push_back(&plan_outs[p].reads[e]);
      }
    }
  }
}

quecc_engine::quecc_engine(storage::database& db, const common::config& cfg)
    : db_(db),
      cfg_(cfg),
      spec_(db),
      sync_(static_cast<std::ptrdiff_t>(cfg.planner_threads) +
            cfg.executor_threads + 1) {
  cfg_.validate();
  if (cfg_.iso == common::isolation::read_committed) {
    committed_ = std::make_unique<storage::dual_version_store>(db_);
  }
  if (cfg_.durable) {
    wal_ = std::make_unique<log::log_writer>(
        cfg_.log_dir, log::writer_options{cfg_.group_commit_micros,
                                          cfg_.log_segment_bytes});
    ckpt_ = std::make_unique<log::checkpointer>(cfg_.log_dir);
  }
  pipe_.build(cfg_, db_, committed_.get());

  const worker_id_t planners = cfg_.planner_threads;
  const worker_id_t execs = cfg_.executor_threads;
  threads_.reserve(static_cast<std::size_t>(planners) + execs);
  for (worker_id_t p = 0; p < planners; ++p) {
    threads_.emplace_back([this, p] { planner_main(p); });
  }
  for (worker_id_t e = 0; e < execs; ++e) {
    threads_.emplace_back([this, e] { executor_main(e); });
  }
}

quecc_engine::~quecc_engine() {
  stop_.store(true, std::memory_order_release);
  sync_.arrive_and_wait();  // release workers into the stop check
  for (auto& t : threads_) t.join();
}

void quecc_engine::planner_main(worker_id_t p) {
  common::name_self("quecc-plan-" + std::to_string(p));
  if (cfg_.pin_threads) common::pin_self_to(p);
  while (true) {
    sync_.arrive_and_wait();  // (1) batch start
    if (stop_.load(std::memory_order_acquire)) return;
    pipe_.planners[p].plan(*current_, pipe_.plan_outs[p]);
    sync_.arrive_and_wait();  // (2) planning complete
    sync_.arrive_and_wait();  // (3) execution complete (idle)
  }
}

void quecc_engine::executor_main(worker_id_t e) {
  common::name_self("quecc-exec-" + std::to_string(e));
  if (cfg_.pin_threads) {
    common::pin_self_to(cfg_.planner_threads + e);
  }
  executor& ex = *pipe_.executors[e];
  while (true) {
    sync_.arrive_and_wait();  // (1) batch start
    if (stop_.load(std::memory_order_acquire)) return;
    sync_.arrive_and_wait();  // (2) wait for planning
    ex.begin_batch(batch_start_nanos_);
    ex.run_conflict_queues(pipe_.exec_queues[e]);
    if (!pipe_.read_queues.empty()) {
      ex.run_read_queues(pipe_.read_queues, read_cursor_);
    }
    sync_.arrive_and_wait();  // (3) execution complete
  }
}

void quecc_engine::run_batch(txn::batch& b, common::run_metrics& m) {
  common::stopwatch sw;
  current_ = &b;
  batch_start_nanos_ = common::now_nanos();
  read_cursor_.store(0, std::memory_order_relaxed);

  sync_.arrive_and_wait();  // (1) release planners
  const double t0 = sw.seconds();
  // Batch (command) record at plan time: the serialized plan is the whole
  // redo log — execution is a deterministic function of it. Encoding and
  // appending overlap the planning phase; the main thread is otherwise
  // idle between barriers (1) and (2).
  if (wal_) log_batch_record(b);
  sync_.arrive_and_wait();  // (2) planning done, release executors
  const double t1 = sw.seconds();
  sync_.arrive_and_wait();  // (3) execution done
  const double t2 = sw.seconds();

  epilogue(b, m);
  // Commit record after the commit barrier (statuses are final); the
  // group-commit flusher picks it up, sync_durable() waits for it.
  if (wal_) log_commit_record(b);
  phases_.plan_seconds = t1 - t0;
  phases_.exec_seconds = t2 - t1;
  phases_.epilogue_seconds = sw.seconds() - t2;
  phases_.planned_fragments = 0;
  for (const auto& po : pipe_.plan_outs) {
    phases_.planned_fragments += po.planned_frags;
  }
  phases_.queues = static_cast<std::uint64_t>(pipe_.plan_outs.size()) *
                   (cfg_.executor_threads +
                    (committed_ ? cfg_.executor_threads : 0));
  m.batches += 1;
  m.elapsed_seconds += sw.seconds();
}

recovery_stats batch_epilogue(
    storage::database& db, const common::config& cfg, txn::batch& b,
    std::span<const std::unique_ptr<executor>> executors, spec_manager& spec,
    storage::dual_version_store* committed, common::run_metrics& m) {
  // Speculative recovery: resolve speculation dependencies (cascading
  // aborts + deterministic re-execution). Conservative execution cannot
  // expose dirty data, so aborted transactions already left no effects.
  recovery_stats rec{};
  if (cfg.execution == common::exec_model::speculative) {
    std::vector<exec_logs*> logs;
    logs.reserve(executors.size());
    for (auto& ex : executors) logs.push_back(&ex->logs());
    rec = spec.recover(b, logs);
    m.cc_aborts += rec.cascades;
  }

  for (auto& t : b) {
    if (t->aborted()) {
      m.aborted += 1;
    } else {
      t->status.store(txn::txn_status::committed, std::memory_order_release);
      m.committed += 1;
    }
  }

  // Read-committed: publish this batch's dirty rows into the committed
  // image so the next batch's read queues observe them.
  if (committed != nullptr) {
    std::unordered_set<std::uint64_t> seen;
    auto publish = [&](table_id_t table, storage::row_id_t rid) {
      const std::uint64_t k =
          (static_cast<std::uint64_t>(table) << 48) | rid;
      if (seen.insert(k).second) committed->publish(db, table, rid);
    };
    for (auto& ex : executors) {
      for (const auto& u : ex->logs().undo) {
        if (u.op != txn::op_kind::erase) publish(u.table, u.rid);
      }
    }
    for (const auto& [table, rid] : spec.extra_dirty()) publish(table, rid);
  }

  for (auto& ex : executors) {
    m.txn_latency.merge(ex->latency());
    ex->latency().reset();
  }
  return rec;
}

void quecc_engine::epilogue(txn::batch& b, common::run_metrics& m) {
  last_rec_ =
      batch_epilogue(db_, cfg_, b, pipe_.executors, spec_, committed_.get(), m);
}

void quecc_engine::log_batch_record(const txn::batch& b) {
  std::vector<std::byte> payload;
  log::encode_batch(b, payload);
  wal_->append(log::record_type::batch, payload);
}

void quecc_engine::log_commit_record(const txn::batch& b) {
  log::commit_info c;
  c.batch_id = b.id();
  c.txn_count = static_cast<std::uint32_t>(b.size());
  for (const auto& t : b) {
    if (t->aborted()) {
      ++c.aborted;
    } else {
      ++c.committed;
    }
  }
  durable_stream_pos_ += b.size();
  c.stream_pos = durable_stream_pos_;
  c.state_hash = cfg_.log_verify_hash ? db_.state_hash() : 0;

  std::vector<std::byte> payload;
  log::encode_commit(c, payload);
  last_commit_lsn_ = wal_->append(log::record_type::commit, payload);
  wal_->request_flush();

  // Batch-boundary checkpoint: we sit at the inter-batch quiescent point,
  // so the snapshot is transaction-consistent by construction. The new
  // checkpoint covers every logged batch; rotate and drop the old
  // segments (checkpoint file + manifest land before any deletion).
  if (cfg_.checkpoint_interval_batches > 0 &&
      ++batches_since_ckpt_ >= cfg_.checkpoint_interval_batches) {
    batches_since_ckpt_ = 0;
    ckpt_->take(db_, b.id(), durable_stream_pos_, wal_->segment_index() + 1);
    wal_->rotate_and_truncate();
  }
}

void quecc_engine::sync_durable() {
  if (wal_) wal_->wait_durable(last_commit_lsn_);
}

}  // namespace quecc::core
