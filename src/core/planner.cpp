#include "core/planner.hpp"

#include <algorithm>

namespace quecc::core {

void plan_output::resize(worker_id_t executors, bool with_read_queues) {
  conflict.resize(executors);
  reads.resize(with_read_queues ? executors : 0);
}

void plan_output::clear() {
  for (auto& q : conflict) q.clear();
  for (auto& q : reads) q.clear();
  planned_frags = 0;
}

bool planner::goes_to_read_queue(const txn::fragment& f,
                                 std::uint64_t writer_needed) const noexcept {
  // Under read-committed isolation, pure reads are planned into dedicated
  // read queues served from committed versions by any executor (paper
  // Section 3.2, "Isolation Levels"). Abortable reads stay in conflict
  // queues (the abort decision must see the serializable image), and so do
  // reads feeding conflict-queue fragments (liveness, see header).
  if (cfg_.iso != common::isolation::read_committed) return false;
  if (f.kind != txn::op_kind::read || f.abortable) return false;
  return f.output_slot == txn::kNoSlot ||
         ((writer_needed >> f.output_slot) & 1) == 0;
}

worker_id_t planner::route(const txn::fragment& f,
                           part_id_t part) const noexcept {
  // Node placement follows the record's home partition (data really lives
  // somewhere); *within* a node, queues are split by a per-record hash so
  // that even a single hot partition (1-warehouse TPC-C) spreads across
  // every executor — the intra-transaction parallelism the paper contrasts
  // with thread-to-transaction designs (Section 5). Same record => same
  // partition => same node, and same key hash => same executor: conflict
  // dependencies still collapse into one FIFO queue.
  //
  // Tables on an ordered index hash by (table, partition) instead: a range
  // conflicts with every key inside it, so a scan and the point writes it
  // could observe must collapse into the *same* FIFO — per-key spreading
  // would order them by executor timing, not queue position. Point-only
  // workloads on ordered tables keep identical results (all ops on a key
  // still share one queue); they just trade intra-partition spread for
  // range-conflict determinism.
  const auto executors = cfg_.executor_threads;
  const auto e_per_node = static_cast<worker_id_t>(executors / cfg_.nodes);
  const auto node =
      static_cast<worker_id_t>((part % executors) / e_per_node);
  const bool ordered =
      db_.at(f.table).index() == storage::index_kind::ordered;
  const std::uint64_t h =
      ordered ? record_hash(f.table, part) : record_hash(f.table, f.key);
  return static_cast<worker_id_t>(node * e_per_node + h % e_per_node);
}

std::uint64_t planner::writer_needed_slots(const txn::txn_desc& t) noexcept {
  std::uint64_t needed = 0;
  for (auto it = t.frags.rbegin(); it != t.frags.rend(); ++it) {
    // Scans never qualify for the read queues (goes_to_read_queue requires
    // kind == read), so like updates they pin their inputs to the conflict
    // queues — an executor draining conflict queues must never wait on a
    // slot produced from an unclaimed read queue.
    const bool pinned_to_conflict =
        it->updates_database() || it->kind == txn::op_kind::scan ||
        it->abortable ||
        (it->output_slot != txn::kNoSlot &&
         ((needed >> it->output_slot) & 1) != 0);
    if (pinned_to_conflict) needed |= it->input_mask;
  }
  return needed;
}

void planner::plan(txn::batch& b, plan_output& out) {
  out.resize(cfg_.executor_threads,
             cfg_.iso == common::isolation::read_committed);
  out.clear();
  const queue_priority prio{id_};
  for (auto& q : out.conflict) q.set_priority(prio);
  for (auto& q : out.reads) q.set_priority(prio);

  // Contiguous slicing keeps the global replay order (planner priority,
  // queue position) identical to batch sequence order, which is the
  // paradigm's serial-equivalent order. Round-robin slicing would still be
  // deterministic but would make the equivalent serial order a permutation
  // of seq order, needlessly complicating reasoning and tests.
  const auto planners = static_cast<std::size_t>(cfg_.planner_threads);
  const std::size_t chunk = (b.size() + planners - 1) / planners;
  const std::size_t begin = std::min<std::size_t>(id_ * chunk, b.size());
  const std::size_t end = std::min(begin + chunk, b.size());
  const bool rc = cfg_.iso == common::isolation::read_committed;
  // Planning-time index resolution is a lockstep-only optimization: at
  // pipeline_depth 1 planning sits at the inter-batch quiescent point, so
  // lookups are race-free and match what execution-time resolution would
  // produce. At depth >= 2 planning overlaps the previous batch's
  // execution — which mutates the primary index through inserts/erases —
  // so resolution defers to the executors' resolve() fallback. Execution
  // is serialized across batches, so the deferred lookups return exactly
  // the rids a lockstep run would have planned, and the planning stage
  // touches no shared mutable state at all.
  const bool resolve_index = cfg_.pipeline_depth <= 1;
  for (std::size_t i = begin; i < end; ++i) {
    txn::txn_desc& t = b.at(i);
    const std::uint64_t writer_needed = rc ? writer_needed_slots(t) : 0;
    for (auto& f : t.frags) {
      // Resolve the primary index here, in the planning phase. Fragments
      // whose record is created inside this batch stay unresolved and are
      // re-looked-up by the executor after the creating insert (same home
      // partition => same queue => FIFO guarantees visibility). The lookup
      // routes to the key's home arena and takes no index lock — planning
      // sits at the inter-batch quiescent point here (depth 1).
      // Cross-partition scans fan out into one conflict-queue entry per
      // partition (the fragment's partition is the kAllParts sentinel; the
      // entry carries the effective one). The txn's fragment count and the
      // producing slot grow accordingly — safe to mutate here even under
      // pipelining, because execution is serialized across batches: no
      // executor touches this batch until every planner finished it.
      if (f.kind == txn::op_kind::scan && f.part == txn::kAllParts) {
        const auto parts = static_cast<part_id_t>(cfg_.partitions);
        if (f.output_slot != txn::kNoSlot) t.arm_slot(f.output_slot, parts);
        // relaxed: pre-execution mutation, published by the stage hand-off.
        t.remaining_frags.fetch_add(parts - 1, std::memory_order_relaxed);
        for (part_id_t p = 0; p < parts; ++p) {
          out.conflict[route(f, p)].push({&t, &f, p});
          ++out.planned_frags;
        }
        continue;
      }
      if (resolve_index && f.kind != txn::op_kind::insert &&
          f.kind != txn::op_kind::scan) {
        f.rid = db_.at(f.table).lookup_local(f.key, f.part);
      }
      const auto e = route(f, f.part);
      if (goes_to_read_queue(f, writer_needed)) {
        out.reads[e].push({&t, &f, f.part});
      } else {
        out.conflict[e].push({&t, &f, f.part});
      }
      ++out.planned_frags;
    }
  }
}

}  // namespace quecc::core
