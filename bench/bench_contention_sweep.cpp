// Experiment A3 — the Section 2.1 argument, measured: as contention rises
// (zipf theta 0 -> 0.99), non-deterministic protocols abort and retry
// their way down while the queue-oriented engine is contention-oblivious
// (conflicts become queue order, not aborts).
#include <cstdio>

#include "bench_util.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace quecc;
  const harness::run_options s = benchutil::scaled(4, 2048);
  benchutil::json_report report("contention_sweep");

  std::printf(
      "== Contention sweep: YCSB zipf theta 0 -> 0.99 ==\n"
      "batches=%u batch=%u table=16K ops/txn=10 50%% reads\n\n",
      s.batches, s.batch_size);

  const char* engines[] = {"quecc", "silo", "tictoc", "mvto", "2pl-nowait"};

  harness::table_printer table({"theta", "quecc", "silo", "tictoc", "mvto",
                                "2pl-nowait", "quecc cc-aborts",
                                "best-nd cc-aborts"});

  for (const double theta : {0.0, 0.6, 0.8, 0.9, 0.99}) {
    auto make = [theta]() -> std::unique_ptr<wl::workload> {
      wl::ycsb_config w;
      w.table_size = 1 << 14;
      w.partitions = 4;
      w.zipf_theta = theta;
      w.read_ratio = 0.5;
      return std::make_unique<wl::ycsb>(w);
    };

    common::config cfg;
    cfg.planner_threads = 2;
    cfg.executor_threads = 2;
    cfg.worker_threads = 4;
    cfg.partitions = 4;

    std::vector<std::string> cells{std::to_string(theta)};
    std::uint64_t quecc_cc = 0, nd_cc = 0;
    for (const char* name : engines) {
      const auto m = benchutil::run_engine(name, cfg, make, s);
      report.add(name, {{"theta", theta}}, m);
      cells.push_back(harness::format_rate(m.throughput()));
      if (std::string(name) == "quecc") {
        quecc_cc = m.cc_aborts;
      } else {
        nd_cc = std::max(nd_cc, m.cc_aborts);
      }
    }
    cells.push_back(std::to_string(quecc_cc));
    cells.push_back(std::to_string(nd_cc));
    table.row(std::move(cells));
  }
  table.print();
  std::printf(
      "\nquecc's cc-abort column stays zero by construction; the classical\n"
      "protocols' retries climb with theta and drag their throughput down.\n");
  const std::string json = report.write();
  if (!json.empty()) std::printf("json report: %s\n", json.c_str());
  return 0;
}
