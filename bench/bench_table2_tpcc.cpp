// Experiment T2-R3 — Table 2, row 3 of the paper.
//
//   "Centralized (non-deterministic) baselines: Cicada, TicToc, FOEDUS,
//    ERMIA, Silo, 2PL-NoWait — QueCC achieves 3x on high-contention TPC-C
//    (1 warehouse)."
//
// One warehouse means every NewOrder serializes on 10 district rows and
// every Payment on the warehouse row: the abort-and-retry loops of the
// classical protocols burn throughput exactly where the queue-oriented
// engine's conflict queues keep executing. MVTO stands in for the
// multi-version baselines (Cicada/ERMIA/FOEDUS) per DESIGN.md 2.5.
#include <algorithm>
#include <cstdio>

#include "bench_util.hpp"
#include "workload/tpcc.hpp"

int main() {
  using namespace quecc;
  const harness::run_options s = benchutil::scaled(6, 1024);
  benchutil::json_report report("table2_tpcc");

  std::printf(
      "== Table 2 / row 3: QueCC vs non-deterministic protocols, TPC-C ==\n"
      "batches=%u batch=%u warehouses=1 (high contention)\n\n",
      s.batches, s.batch_size);

  auto make = [&]() -> std::unique_ptr<wl::workload> {
    wl::tpcc_config w;
    w.warehouses = 1;
    w.partitions = 4;
    w.initial_orders_per_district = 100;
    w.order_headroom_per_district =
        s.batches * s.batch_size / 10 + 2000;
    return std::make_unique<wl::tpcc>(w);
  };

  harness::table_printer table(
      {"protocol", "throughput", "user aborts", "cc aborts/retries",
       "p99 exec latency"});

  double best_nd = 0, best_quecc = 0;
  auto run_row = [&](const std::string& label, const char* engine,
                     const common::config& cfg) {
    const auto m = benchutil::run_engine(engine, cfg, make, s);
    report.add(label, {{"warehouses", 1}}, m);
    if (label.rfind("quecc", 0) == 0) {
      best_quecc = std::max(best_quecc, m.throughput());
    } else if (label != "serial") {
      best_nd = std::max(best_nd, m.throughput());
    }
    char p99[64];
    std::snprintf(p99, sizeof p99, "%.0fus",
                  m.txn_latency.percentile_nanos(99) / 1e3);
    table.row({label, harness::format_rate(m.throughput()),
               std::to_string(m.aborted), std::to_string(m.cc_aborts),
               p99});
  };

  // The queue-oriented engine under both execution mechanisms, and at the
  // geometry that fits this machine's core budget (cross-executor
  // dependency waits are busy-waits; they need real cores to overlap — see
  // EXPERIMENTS.md). TPC-C NewOrder carries abortable item checks, which
  // is conservative execution's home turf.
  common::config cfg;
  cfg.worker_threads = 4;
  cfg.partitions = 4;
  cfg.planner_threads = 1;
  cfg.executor_threads = 1;
  cfg.execution = common::exec_model::conservative;
  run_row("quecc (cons 1x1)", "quecc", cfg);
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  run_row("quecc (cons 2x2)", "quecc", cfg);
  cfg.execution = common::exec_model::speculative;
  run_row("quecc (spec 2x2)", "quecc", cfg);

  cfg.execution = common::exec_model::speculative;
  for (const char* name :
       {"silo", "tictoc", "mvto", "2pl-nowait", "2pl-waitdie", "serial"}) {
    run_row(name, name, cfg);
  }
  table.print();
  std::printf(
      "\nbest quecc vs best non-deterministic protocol: %s\n"
      "paper claim: ~3x over the best classical protocol at 1 warehouse\n"
      "(measured on 2x24-core hardware; this host's 2 cores compress the\n"
      "gap — the classical protocols see little physical concurrency, so\n"
      "their abort/retry machinery is rarely triggered).\n",
      harness::format_factor(best_quecc / std::max(1.0, best_nd)).c_str());
  const std::string json = report.write();
  if (!json.empty()) std::printf("json report: %s\n", json.c_str());
  return 0;
}
