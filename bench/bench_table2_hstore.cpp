// Experiment T2-R1 — Table 2, row 1 of the paper.
//
//   "Centralized (deterministic): QueCC vs H-Store, two orders of
//    magnitude throughput improvement, YCSB multi-partition workload."
//
// Both engines process identical YCSB batches over 8 partitions with a
// varying share of multi-partition transactions. H-Store is unbeatable at
// 0% (single-partition, serial per partition, no CC at all) and collapses
// as multi-partition transactions force partition-wide rendezvous + 2PC
// cost, while the queue-oriented engine is insensitive to the distinction
// — its queues never lock partitions.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace quecc;
  const harness::run_options s = benchutil::scaled(6, 2048);
  benchutil::json_report report("table2_hstore");

  std::printf(
      "== Table 2 / row 1: QueCC vs H-Store, YCSB multi-partition ==\n"
      "batches=%u batch=%u partitions=8 ops/txn=10 zipf=0\n\n",
      s.batches, s.batch_size);

  harness::table_printer table(
      {"mp-ratio", "quecc", "hstore", "quecc speedup"});

  for (const double mp : {0.0, 0.05, 0.2, 0.5, 1.0}) {
    auto make = [mp]() -> std::unique_ptr<wl::workload> {
      wl::ycsb_config w;
      w.table_size = 1 << 16;
      w.partitions = 8;
      w.multi_partition_ratio = mp;
      w.mp_parts = 4;
      w.zipf_theta = 0.0;
      w.read_ratio = 0.5;
      return std::make_unique<wl::ycsb>(w);
    };

    common::config qcfg;
    qcfg.planner_threads = 2;
    qcfg.executor_threads = 2;
    qcfg.partitions = 8;

    common::config hcfg = qcfg;  // hstore spawns one worker per partition

    const auto mq = benchutil::run_engine("quecc", qcfg, make, s);
    const auto mh = benchutil::run_engine("hstore", hcfg, make, s);
    report.add("quecc", {{"mp_ratio", mp}}, mq);
    report.add("hstore", {{"mp_ratio", mp}}, mh);

    table.row({std::to_string(mp), harness::format_rate(mq.throughput()),
               harness::format_rate(mh.throughput()),
               harness::format_factor(mq.throughput() /
                                      std::max(1.0, mh.throughput()))});
  }
  table.print();
  std::printf(
      "\npaper claim: two orders of magnitude on multi-partition YCSB;\n"
      "expect the speedup column to grow from ~1x at mp=0 toward >=100x\n"
      "as the multi-partition share rises.\n");
  const std::string json = report.write();
  if (!json.empty()) std::printf("json report: %s\n", json.c_str());
  return 0;
}
