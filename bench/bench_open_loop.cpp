// Experiment OL — latency vs offered load on the open-loop client path.
//
// The paper's experiments (like every closed-loop replay) measure pure
// execution latency: the clock starts when a pre-formed batch enters the
// pipeline. A server doesn't get that luxury — transactions arrive on
// their own schedule and wait in the admission queue for a batch to form.
// This bench drives the queue-oriented engine through proto::session with
// a Poisson arrival process at a sweep of offered loads (calibrated as
// fractions of the engine's measured closed-loop capacity) and reports
// the latency a *client* sees: queueing delay and end-to-end
// (submit -> commit), next to the execution-only number.
//
// Expect the classic open-loop shape: e2e latency sits near
// (batch-fill-or-deadline time + execution) at low load and climbs
// steeply as the offered load approaches capacity.
// --durable additionally sweeps the same offered loads against a durable
// engine (command log + per-batch group-commit fsync, scratch log dir):
// the spread between the plain and durable rows is the fsync cost, visible
// in the e2e latency split while the execution-only column stays put.
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstring>
#include <memory>

#include "bench_util.hpp"
#include "workload/ycsb.hpp"

int main(int argc, char** argv) {
  using namespace quecc;
  const bool durable_mode =
      argc > 1 && std::strcmp(argv[1], "--durable") == 0;
  const harness::run_options s = benchutil::scaled(8, 1024);
  benchutil::json_report report("open_loop");

  auto make = []() -> std::unique_ptr<wl::workload> {
    wl::ycsb_config w;
    w.table_size = 1 << 14;
    w.partitions = 4;
    w.zipf_theta = 0.6;
    w.read_ratio = 0.5;
    return std::make_unique<wl::ycsb>(w);
  };

  common::config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.partitions = 4;

  // Calibrate: closed-loop throughput is the engine's batch-replay
  // capacity on this machine; the sweep offers fractions of it.
  const auto cap = benchutil::run_engine("quecc", cfg, make, s);
  const double capacity = std::max(1.0, cap.throughput());

  std::printf(
      "== Open loop: latency vs offered load (quecc, ycsb) ==\n"
      "%" PRIu64 " txns per point, batch=%u deadline=%uus, "
      "closed-loop capacity ~%.0f txn/s\n\n",
      s.total_txns(), s.batch_size, s.batch_deadline_micros, capacity);

  harness::table_printer table({"mode", "offered", "achieved", "p50 queue",
                                "p99 queue", "p50 e2e", "p99 e2e",
                                "p50 exec"});

  auto us = [](double ns) {
    char buf[32];
    std::snprintf(buf, sizeof buf, "%.0fus", ns / 1e3);
    return std::string(buf);
  };
  auto sweep_point = [&](double frac, bool durable) {
    harness::run_options o = s;
    o.mode = harness::arrival_mode::open_loop;
    o.offered_load_tps = capacity * frac;
    o.durability = durable;
    common::config c = cfg;
    std::unique_ptr<benchutil::scratch_dir> log_dir;
    if (durable) {
      log_dir = std::make_unique<benchutil::scratch_dir>();
      c.durable = true;
      c.log_dir = log_dir->path;
    }
    const auto m = benchutil::run_engine("quecc", c, make, o);
    report.add(std::string(durable ? "durable" : "memory") + " load " +
                   std::to_string(frac),
               {{"offered_frac", frac}, {"durable", durable ? 1.0 : 0.0}}, m);
    table.row({durable ? "durable" : "memory",
               harness::format_rate(o.offered_load_tps),
               harness::format_rate(m.throughput()),
               us(m.queue_latency.percentile_nanos(50)),
               us(m.queue_latency.percentile_nanos(99)),
               us(m.e2e_latency.percentile_nanos(50)),
               us(m.e2e_latency.percentile_nanos(99)),
               us(m.txn_latency.percentile_nanos(50))});
  };

  for (const double frac : {0.25, 0.5, 0.75, 0.9}) {
    sweep_point(frac, false);
    if (durable_mode) sweep_point(frac, true);
  }
  table.print();
  std::printf(
      "\nqueueing delay is the gap between e2e and exec: invisible to the\n"
      "closed-loop benches, dominant as offered load approaches capacity.\n");
  if (durable_mode) {
    std::printf(
        "durable rows log every batch and fsync its commit record before\n"
        "acking (group commit): the e2e gap vs the memory rows is the\n"
        "price of durability; exec latency is untouched.\n");
  }
  const std::string json = report.write();
  if (!json.empty()) std::printf("json report: %s\n", json.c_str());
  return 0;
}
