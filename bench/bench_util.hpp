// Shared helpers for the experiment benches.
//
// Every bench binary reproduces one row/figure from the paper (see the
// experiment index in DESIGN.md) by running engines over identical
// transaction streams and printing a paper-style result table. Set
// QUECC_BENCH_QUICK=1 to shrink workloads for smoke runs.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <functional>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "protocols/iface.hpp"
#include "workload/workload.hpp"

namespace quecc::benchutil {

/// Scratch directory (e.g. a durable engine's log dir), removed on scope
/// exit — RAII so a throwing bench run cannot leak it.
struct scratch_dir {
  scratch_dir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "quecc-bench-XXXXXX")
                           .string();
    if (::mkdtemp(tmpl.data()) == nullptr) std::abort();
    path = tmpl;
  }
  ~scratch_dir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  scratch_dir(const scratch_dir&) = delete;
  scratch_dir& operator=(const scratch_dir&) = delete;
  std::string path;
};

/// Closed-loop run options at bench scale, shrunk under QUECC_BENCH_QUICK.
inline harness::run_options scaled(std::uint32_t batches,
                                   std::uint32_t batch_size) {
  harness::run_options o;
  if (std::getenv("QUECC_BENCH_QUICK") != nullptr) {
    o.batches = 2;
    o.batch_size = std::min<std::uint32_t>(batch_size, 256);
  } else {
    o.batches = batches;
    o.batch_size = batch_size;
  }
  return o;
}

/// Run `engine_name` over a fresh database + workload instance (so every
/// engine sees an identical, independent transaction stream) and return
/// aggregated metrics. Works for both arrival modes: set opts.mode /
/// opts.offered_load_tps for an open-loop run; opts.seed picks the
/// transaction stream (default 42, shared by every bench).
inline common::run_metrics run_engine(
    const std::string& engine_name, const common::config& cfg,
    const std::function<std::unique_ptr<wl::workload>()>& make_workload,
    const harness::run_options& opts) {
  auto w = make_workload();
  storage::database db;
  w->load(db);
  auto eng = proto::make_engine(engine_name, db, cfg);
  return harness::run_workload(*eng, *w, db, opts).metrics;
}

/// Machine-readable twin of every bench's printed table: collect one entry
/// per measured run, then write() emits `BENCH_<name>.json` —
///
///   { "schema": "quecc-bench-v1", "bench": "<name>", "quick": bool,
///     "results": [ { "label": ..., "params": {k: v, ...},
///                    "run": <harness::write_run_metrics_json shape> } ],
///     "counters"/"gauges"/"histograms": <obs registry scrape> }
///
/// The file lands in $QUECC_BENCH_JSON_DIR (default: the working
/// directory). CI validates at least one of these per run, and the
/// perf-trajectory tooling diffs them across commits.
class json_report {
 public:
  explicit json_report(std::string bench_name)
      : name_(std::move(bench_name)) {}

  /// One measured configuration. `params` are the sweep coordinates
  /// ("depth": 2, "theta": 0.9, ...) that locate the row in its figure.
  void add(std::string label,
           std::vector<std::pair<std::string, double>> params,
           const common::run_metrics& m) {
    entries_.push_back({std::move(label), std::move(params), m});
  }

  /// Write BENCH_<name>.json; returns the path (empty on I/O failure).
  std::string write() const {
    const char* dir = std::getenv("QUECC_BENCH_JSON_DIR");
    const std::filesystem::path out_path =
        std::filesystem::path(dir != nullptr ? dir : ".") /
        ("BENCH_" + name_ + ".json");
    std::ofstream os(out_path);
    if (!os) return {};
    obs::json_writer w(os);
    w.begin_object();
    w.kv("schema", "quecc-bench-v1");
    w.kv("bench", name_);
    w.kv("quick", std::getenv("QUECC_BENCH_QUICK") != nullptr);
    w.key("results");
    w.begin_array();
    for (const auto& e : entries_) {
      w.begin_object();
      w.kv("label", e.label);
      w.key("params");
      w.begin_object();
      for (const auto& [k, v] : e.params) w.kv(k, v);
      w.end_object();
      w.key("run");
      harness::write_run_metrics_json(w, e.metrics);
      w.end_object();
    }
    w.end_array();
    obs::write_metrics_sections(w);
    w.end_object();
    os << '\n';
    return out_path.string();
  }

 private:
  struct entry {
    std::string label;
    std::vector<std::pair<std::string, double>> params;
    common::run_metrics metrics;
  };
  std::string name_;
  std::vector<entry> entries_;
};

}  // namespace quecc::benchutil
