// Shared helpers for the experiment benches.
//
// Every bench binary reproduces one row/figure from the paper (see the
// experiment index in DESIGN.md) by running engines over identical
// transaction streams and printing a paper-style result table. Set
// QUECC_BENCH_QUICK=1 to shrink workloads for smoke runs.
#pragma once

#include <cstdlib>
#include <filesystem>
#include <functional>
#include <memory>
#include <string>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "protocols/iface.hpp"
#include "workload/workload.hpp"

namespace quecc::benchutil {

/// Scratch directory (e.g. a durable engine's log dir), removed on scope
/// exit — RAII so a throwing bench run cannot leak it.
struct scratch_dir {
  scratch_dir() {
    std::string tmpl = (std::filesystem::temp_directory_path() /
                        "quecc-bench-XXXXXX")
                           .string();
    if (::mkdtemp(tmpl.data()) == nullptr) std::abort();
    path = tmpl;
  }
  ~scratch_dir() {
    std::error_code ec;
    std::filesystem::remove_all(path, ec);
  }
  scratch_dir(const scratch_dir&) = delete;
  scratch_dir& operator=(const scratch_dir&) = delete;
  std::string path;
};

/// Closed-loop run options at bench scale, shrunk under QUECC_BENCH_QUICK.
inline harness::run_options scaled(std::uint32_t batches,
                                   std::uint32_t batch_size) {
  harness::run_options o;
  if (std::getenv("QUECC_BENCH_QUICK") != nullptr) {
    o.batches = 2;
    o.batch_size = std::min<std::uint32_t>(batch_size, 256);
  } else {
    o.batches = batches;
    o.batch_size = batch_size;
  }
  return o;
}

/// Run `engine_name` over a fresh database + workload instance (so every
/// engine sees an identical, independent transaction stream) and return
/// aggregated metrics. Works for both arrival modes: set opts.mode /
/// opts.offered_load_tps for an open-loop run; opts.seed picks the
/// transaction stream (default 42, shared by every bench).
inline common::run_metrics run_engine(
    const std::string& engine_name, const common::config& cfg,
    const std::function<std::unique_ptr<wl::workload>()>& make_workload,
    const harness::run_options& opts) {
  auto w = make_workload();
  storage::database db;
  w->load(db);
  auto eng = proto::make_engine(engine_name, db, cfg);
  return harness::run_workload(*eng, *w, db, opts).metrics;
}

}  // namespace quecc::benchutil
