// Shared helpers for the experiment benches.
//
// Every bench binary reproduces one row/figure from the paper (see the
// experiment index in DESIGN.md) by running engines over identical
// transaction streams and printing a paper-style result table. Set
// QUECC_BENCH_QUICK=1 to shrink workloads for smoke runs.
#pragma once

#include <cstdlib>
#include <functional>
#include <memory>
#include <string>

#include "common/rng.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "protocols/iface.hpp"
#include "workload/workload.hpp"

namespace quecc::benchutil {

struct scale {
  std::uint32_t batches;
  std::uint32_t batch_size;
};

inline scale scaled(std::uint32_t batches, std::uint32_t batch_size) {
  if (std::getenv("QUECC_BENCH_QUICK") != nullptr) {
    return {2, std::min<std::uint32_t>(batch_size, 256)};
  }
  return {batches, batch_size};
}

/// Run `engine_name` over a fresh database + workload instance (so every
/// engine sees an identical, independent transaction stream) and return
/// aggregated metrics.
inline common::run_metrics run_engine(
    const std::string& engine_name, const common::config& cfg,
    const std::function<std::unique_ptr<wl::workload>()>& make_workload,
    std::uint64_t seed, scale s) {
  auto w = make_workload();
  storage::database db;
  w->load(db);
  auto eng = proto::make_engine(engine_name, db, cfg);
  common::rng r(seed);
  return harness::run_workload(*eng, *w, db, r, s.batches, s.batch_size)
      .metrics;
}

}  // namespace quecc::benchutil
