// Experiment A2 — ablation of Section 3.2's "Isolation Levels":
// serializable vs read-committed under a read-heavy skewed workload.
//
// Read-committed plans pure reads into extra read queues that any executor
// may drain against the committed version store ("multiple threads can
// execute these read operations using committed data"), trading snapshot
// freshness for parallelism and extra storage. The knob matters most when
// reads dominate and skew would otherwise serialize them behind writes on
// the hot keys' conflict queues.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace quecc;
  const harness::run_options s = benchutil::scaled(5, 2048);
  benchutil::json_report report("ablation_isolation");

  std::printf(
      "== Ablation: serializable vs read-committed isolation ==\n"
      "batches=%u batch=%u ycsb zipf=0.9 (hot keys)\n\n",
      s.batches, s.batch_size);

  harness::table_printer table(
      {"read ratio", "serializable", "read-committed", "rc/serializable"});

  for (const double read_ratio : {0.5, 0.8, 0.9, 0.95}) {
    auto make = [read_ratio]() -> std::unique_ptr<wl::workload> {
      wl::ycsb_config w;
      w.table_size = 1 << 14;
      w.partitions = 4;
      w.zipf_theta = 0.9;
      w.read_ratio = read_ratio;
      return std::make_unique<wl::ycsb>(w);
    };

    common::config cfg;
    cfg.planner_threads = 2;
    cfg.executor_threads = 2;
    cfg.partitions = 4;

    cfg.iso = common::isolation::serializable;
    const auto mser = benchutil::run_engine("quecc", cfg, make, s);
    cfg.iso = common::isolation::read_committed;
    const auto mrc = benchutil::run_engine("quecc", cfg, make, s);
    report.add("serializable", {{"read_ratio", read_ratio}}, mser);
    report.add("read-committed", {{"read_ratio", read_ratio}}, mrc);

    table.row({std::to_string(read_ratio),
               harness::format_rate(mser.throughput()),
               harness::format_rate(mrc.throughput()),
               harness::format_factor(mrc.throughput() /
                                      std::max(1.0, mser.throughput()))});
  }
  table.print();
  std::printf(
      "\nread-committed shines as the read share grows: reads leave the\n"
      "hot conflict queues and spread across executors.\n");
  const std::string json = report.write();
  if (!json.empty()) std::printf("json report: %s\n", json.c_str());
  return 0;
}
