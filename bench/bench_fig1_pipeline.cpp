// Experiment F1 — Figure 1 of the paper (the two-phase architecture).
//
// Figure 1 is the paradigm's data-flow diagram: client batches enter the
// planning phase (P planner threads building P*E priority-tagged fragment
// queues) and the execution phase drains them. The figure carries no
// measurements, so this bench makes the pipeline observable instead:
// per-phase wall time, queue counts, and fragments planned, for several
// planner/executor geometries.
#include <cstdio>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace quecc;
  const harness::run_options s = benchutil::scaled(4, 4096);

  std::printf(
      "== Figure 1: planning/execution pipeline anatomy ==\n"
      "batches=%u batch=%u ycsb ops/txn=10 zipf=0.6\n\n",
      s.batches, s.batch_size);

  harness::table_printer table({"P x E", "queues", "fragments", "plan ms",
                                "exec ms", "epilogue ms", "throughput"});

  for (const auto& [p, e] : {std::pair<int, int>{1, 1},
                             {1, 2},
                             {2, 2},
                             {4, 2},
                             {2, 4}}) {
    wl::ycsb_config wcfg;
    wcfg.table_size = 1 << 16;
    wcfg.partitions = 8;
    wcfg.zipf_theta = 0.6;
    auto w = wl::ycsb(wcfg);
    storage::database db;
    w.load(db);

    common::config cfg;
    cfg.planner_threads = static_cast<worker_id_t>(p);
    cfg.executor_threads = static_cast<worker_id_t>(e);
    cfg.partitions = 8;
    core::quecc_engine eng(db, cfg);

    common::rng r(42);
    common::run_metrics m;
    double plan_ms = 0, exec_ms = 0, epi_ms = 0;
    std::uint64_t frags = 0, queues = 0;
    for (std::uint32_t i = 0; i < s.batches; ++i) {
      auto b = w.make_batch(r, s.batch_size, i);
      eng.run_batch(b, m);
      plan_ms += eng.last_phases().plan_seconds * 1e3;
      exec_ms += eng.last_phases().exec_seconds * 1e3;
      epi_ms += eng.last_phases().epilogue_seconds * 1e3;
      frags += eng.last_phases().planned_fragments;
      queues = eng.last_phases().queues;
    }

    char buf[64];
    std::snprintf(buf, sizeof buf, "%dx%d", p, e);
    char pm[32], em[32], zm[32];
    std::snprintf(pm, sizeof pm, "%.1f", plan_ms / s.batches);
    std::snprintf(em, sizeof em, "%.1f", exec_ms / s.batches);
    std::snprintf(zm, sizeof zm, "%.2f", epi_ms / s.batches);
    table.row({buf, std::to_string(queues), std::to_string(frags),
               pm, em, zm, harness::format_rate(m.throughput())});
  }
  table.print();
  std::printf(
      "\nreading guide: queues = P*E conflict queues per batch; plan and\n"
      "exec phases overlap-free by design (Figure 1's two stages); the\n"
      "epilogue is the deterministic commit (no 2PC, no validation).\n");
  return 0;
}
