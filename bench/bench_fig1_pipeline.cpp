// Experiment F1 — Figure 1 of the paper (the two-phase architecture).
//
// Figure 1 is the paradigm's data-flow diagram: client batches enter the
// planning phase (P planner threads building P*E priority-tagged fragment
// queues) and the execution phase drains them. The figure carries no
// measurements, so this bench makes the pipeline observable instead:
// per-phase wall time, queue counts, and fragments planned, for several
// planner/executor geometries — followed by the cross-batch pipelining
// sweep (config::pipeline_depth): measured plan/exec overlap and the
// throughput delta vs the lockstep baseline on a planner-bound config.
#include <cstdio>
#include <cstdlib>
#include <thread>

#include "bench_util.hpp"
#include "core/engine.hpp"
#include "harness/runner.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace quecc;
  const harness::run_options s = benchutil::scaled(4, 4096);
  benchutil::json_report report("fig1_pipeline");

  std::printf(
      "== Figure 1: planning/execution pipeline anatomy ==\n"
      "batches=%u batch=%u ycsb ops/txn=10 zipf=0.6\n\n",
      s.batches, s.batch_size);

  harness::table_printer table({"P x E", "queues", "fragments", "plan ms",
                                "exec ms", "epilogue ms", "throughput"});

  for (const auto& [p, e] : {std::pair<int, int>{1, 1},
                             {1, 2},
                             {2, 2},
                             {4, 2},
                             {2, 4}}) {
    wl::ycsb_config wcfg;
    wcfg.table_size = 1 << 16;
    wcfg.partitions = 8;
    wcfg.zipf_theta = 0.6;
    auto w = wl::ycsb(wcfg);
    storage::database db;
    w.load(db);

    common::config cfg;
    cfg.planner_threads = static_cast<worker_id_t>(p);
    cfg.executor_threads = static_cast<worker_id_t>(e);
    cfg.partitions = 8;
    cfg.pipeline_depth = 1;  // Figure 1 anatomy: the lockstep phases
    core::quecc_engine eng(db, cfg);

    common::rng r(42);
    common::run_metrics m;
    double plan_ms = 0, exec_ms = 0, epi_ms = 0;
    std::uint64_t frags = 0, queues = 0;
    for (std::uint32_t i = 0; i < s.batches; ++i) {
      auto b = w.make_batch(r, s.batch_size, i);
      eng.run_batch(b, m);
      plan_ms += eng.last_phases().plan_seconds * 1e3;
      exec_ms += eng.last_phases().exec_seconds * 1e3;
      epi_ms += eng.last_phases().epilogue_seconds * 1e3;
      frags += eng.last_phases().planned_fragments;
      queues = eng.last_phases().queues;
    }

    char buf[64];
    std::snprintf(buf, sizeof buf, "%dx%d", p, e);
    report.add(std::string("anatomy ") + buf,
               {{"planners", p}, {"executors", e}, {"depth", 1}}, m);
    char pm[32], em[32], zm[32];
    std::snprintf(pm, sizeof pm, "%.1f", plan_ms / s.batches);
    std::snprintf(em, sizeof em, "%.1f", exec_ms / s.batches);
    std::snprintf(zm, sizeof zm, "%.2f", epi_ms / s.batches);
    table.row({buf, std::to_string(queues), std::to_string(frags),
               pm, em, zm, harness::format_rate(m.throughput())});
  }
  table.print();
  std::printf(
      "\nreading guide: queues = P*E conflict queues per batch; plan and\n"
      "exec phases overlap-free by design (Figure 1's two stages); the\n"
      "epilogue is the deterministic commit (no 2PC, no validation).\n");

  // --- cross-batch pipelining sweep ---------------------------------------
  // The two stages are independent across batches: at pipeline_depth >= 2
  // planners work on batch i+1 while batch i executes. A planner-bound
  // config (many ops per txn, planning cost >= execution cost) shows the
  // win; depth 1 is the lockstep baseline above.
  const unsigned cores = std::thread::hardware_concurrency();
  std::printf(
      "\n== batch pipelining (pipeline_depth): plan i+1 overlaps exec i ==\n"
      "planner-bound ycsb: ops/txn=16 read-ratio=0.9 P=2 E=2 (%u cores —\n"
      "the speedup needs plan and exec stages on distinct cores; expect\n"
      "~1x or below on 1-2 core boxes, overlap stays measurable)\n\n",
      cores);
  harness::table_printer pt({"depth", "throughput", "speedup", "plan busy",
                             "exec busy", "overlap", "occupancy"});
  // The sweep needs enough batches in flight to reach pipeline steady
  // state, so it scales independently of the anatomy table above.
  const bool quick = std::getenv("QUECC_BENCH_QUICK") != nullptr;
  const std::uint32_t sweep_batches = quick ? 4 : 12;
  const std::uint32_t sweep_batch_size = quick ? 2048 : 8192;
  double base_tps = 0;
  for (const std::uint32_t depth : {1u, 2u, 4u}) {
    wl::ycsb_config wcfg;
    wcfg.table_size = 1 << 16;
    wcfg.partitions = 8;
    wcfg.zipf_theta = 0.6;
    wcfg.ops_per_txn = 16;
    wcfg.read_ratio = 0.9;
    auto w = wl::ycsb(wcfg);
    storage::database db;
    w.load(db);

    common::config cfg;
    cfg.planner_threads = 2;
    cfg.executor_threads = 2;
    cfg.partitions = 8;
    cfg.pipeline_depth = depth;
    core::quecc_engine eng(db, cfg);

    harness::run_options opts;
    opts.batches = sweep_batches;
    opts.batch_size = sweep_batch_size;
    const auto res = harness::run_workload(eng, w, db, opts);
    const auto& m = res.metrics;
    if (depth == 1) base_tps = m.throughput();
    report.add("pipeline depth " + std::to_string(depth),
               {{"depth", depth}, {"planners", 2}, {"executors", 2}}, m);

    char pb[32], eb[32], ov[32];
    std::snprintf(pb, sizeof pb, "%.1f ms", m.plan_busy_seconds * 1e3);
    std::snprintf(eb, sizeof eb, "%.1f ms", m.exec_busy_seconds * 1e3);
    std::snprintf(ov, sizeof ov, "%.1f ms", m.pipeline_overlap_seconds * 1e3);
    pt.row({std::to_string(depth), harness::format_rate(m.throughput()),
            harness::format_factor(base_tps > 0 ? m.throughput() / base_tps
                                                : 1.0),
            pb, eb, ov,
            harness::format_pipeline(m, cfg.planner_threads,
                                     cfg.executor_threads)});
  }
  pt.print();
  std::printf(
      "\noverlap = wall-clock time batch i+1's planning ran during batch\n"
      "i's execution window (0 at depth 1 by construction). Identical\n"
      "state hashes at every depth — the determinism tests assert it.\n");

  // --- third stage: async epilogue under durable logging ------------------
  // With stage3 off, every batch's group-commit fsync wait sits on the
  // critical path between exec(i) and exec(i+1); with stage3 on the
  // epilogue worker absorbs it, so the fsync of batch i overlaps batch
  // i+1's execution. Durable + read-committed gives the epilogue real
  // work (commit record, fsync wait, RC publish).
  std::printf(
      "\n== third stage (async epilogue): fsync of batch i overlaps "
      "exec of i+1 ==\ndurable ycsb rc, group-commit=200us, P=2 E=2\n\n");
  harness::table_printer st({"depth", "stage3", "throughput", "speedup",
                             "epilogue busy", "elapsed"});
  double s3_base_tps = 0;
  for (const std::uint32_t depth : {1u, 2u, 3u}) {
    for (const bool stage3 : {false, true}) {
      benchutil::scratch_dir log_dir;
      wl::ycsb_config wcfg;
      wcfg.table_size = 1 << 16;
      wcfg.partitions = 8;
      wcfg.zipf_theta = 0.6;
      wcfg.ops_per_txn = 10;
      auto w = wl::ycsb(wcfg);
      storage::database db;
      w.load(db);

      common::config cfg;
      cfg.planner_threads = 2;
      cfg.executor_threads = 2;
      cfg.partitions = 8;
      cfg.pipeline_depth = depth;
      cfg.async_epilogue = stage3;
      cfg.iso = common::isolation::read_committed;
      cfg.durable = true;
      cfg.log_dir = log_dir.path;
      core::quecc_engine eng(db, cfg);

      harness::run_options opts;
      opts.batches = sweep_batches;
      opts.batch_size = sweep_batch_size;
      opts.durability = true;
      const auto res = harness::run_workload(eng, w, db, opts);
      const auto& m = res.metrics;
      if (depth == 1 && !stage3) s3_base_tps = m.throughput();
      report.add(std::string("stage3 ") + (stage3 ? "on" : "off") +
                     " depth " + std::to_string(depth),
                 {{"depth", depth},
                  {"stage3", stage3 ? 1 : 0},
                  {"durable", 1}},
                 m);
      char eb[32], el[32];
      std::snprintf(eb, sizeof eb, "%.1f ms", m.epilogue_busy_seconds * 1e3);
      std::snprintf(el, sizeof el, "%.1f ms", m.elapsed_seconds * 1e3);
      st.row({std::to_string(depth), stage3 ? "on" : "off",
              harness::format_rate(m.throughput()),
              harness::format_factor(
                  s3_base_tps > 0 ? m.throughput() / s3_base_tps : 1.0),
              eb, el});
    }
  }
  st.print();
  std::printf(
      "\nstage3=off retires each batch on the drain caller (fsync on the\n"
      "critical path); stage3=on moves it to the epilogue worker. Same\n"
      "state hash either way; depth 1 degenerates to inline by design.\n");

  const std::string json = report.write();
  if (!json.empty()) std::printf("json report: %s\n", json.c_str());
  return 0;
}
