// Experiment A4 — pipeline scaling: batch size and planner/executor
// geometry. Batching is the paradigm's fundamental unit (Section 3.2);
// this bench shows the throughput/latency trade-off it buys and how the
// two phases scale with thread counts (within this machine's core budget —
// see EXPERIMENTS.md for the caveat).
#include <cstdio>

#include "bench_util.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace quecc;
  const bool quick = std::getenv("QUECC_BENCH_QUICK") != nullptr;
  benchutil::json_report report("scaling");

  std::printf("== Scaling: batch size and P/E geometry ==\n\n");

  auto make = []() -> std::unique_ptr<wl::workload> {
    wl::ycsb_config w;
    w.table_size = 1 << 16;
    w.partitions = 8;
    w.zipf_theta = 0.5;
    w.read_ratio = 0.5;
    return std::make_unique<wl::ycsb>(w);
  };

  {
    harness::table_printer table(
        {"batch size", "throughput", "p50 exec", "p99 exec"});
    for (const std::uint32_t bs : {256u, 1024u, 4096u, 16384u}) {
      common::config cfg;
      cfg.planner_threads = 2;
      cfg.executor_threads = 2;
      cfg.partitions = 8;
      const std::uint32_t batches = quick ? 2 : (1u << 16) / bs + 2;
      const auto m = benchutil::run_engine(
          "quecc", cfg, make, harness::run_options{batches, bs});
      report.add("batch size " + std::to_string(bs), {{"batch_size", bs}}, m);
      char p50[32], p99[32];
      std::snprintf(p50, sizeof p50, "%.1fms",
                    m.txn_latency.percentile_nanos(50) / 1e6);
      std::snprintf(p99, sizeof p99, "%.1fms",
                    m.txn_latency.percentile_nanos(99) / 1e6);
      table.row({std::to_string(bs), harness::format_rate(m.throughput()),
                 p50, p99});
    }
    std::printf("-- batch size (P=2, E=2): throughput vs latency --\n");
    table.print();
  }

  {
    harness::table_printer table({"P x E", "throughput"});
    for (const auto& [p, e] : {std::pair<int, int>{1, 1},
                               {1, 2},
                               {2, 1},
                               {2, 2},
                               {4, 4}}) {
      common::config cfg;
      cfg.planner_threads = static_cast<worker_id_t>(p);
      cfg.executor_threads = static_cast<worker_id_t>(e);
      cfg.partitions = 8;
      const auto m = benchutil::run_engine("quecc", cfg, make,
                                           benchutil::scaled(4, 4096));
      char label[32];
      std::snprintf(label, sizeof label, "%dx%d", p, e);
      report.add(std::string("geometry ") + label,
                 {{"planners", p}, {"executors", e}}, m);
      table.row({label, harness::format_rate(m.throughput())});
    }
    std::printf("\n-- planner/executor geometry (batch=4096) --\n");
    table.print();
  }

  std::printf(
      "\nbigger batches amortize the per-batch barriers (throughput up,\n"
      "latency up); thread scaling is bounded by this host's cores.\n");
  const std::string json = report.write();
  if (!json.empty()) std::printf("json report: %s\n", json.c_str());
  return 0;
}
