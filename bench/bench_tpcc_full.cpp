// Experiment TPCC-FULL — the complete 5-transaction TPC-C mix with the
// spec's scan-based read profiles.
//
// The point-profile benches (bench_table2_tpcc) run Order-Status and
// Stock-Level as per-key point reads, which caps Stock-Level at a token
// sample of its key range. With the ordered index backend both profiles
// run as genuine range scans: Order-Status covers the customer's order
// lines in one fragment, Stock-Level the last 20 orders' order-line range
// (~200-300 keys). This bench measures what that costs end to end:
//
//   * point profiles on the hash backend      — the pre-scan baseline;
//   * point profiles on the ordered backend   — the O(log n) lookup tax
//     the skip list charges point operations;
//   * scan profiles on the ordered backend    — the full mix, quecc and
//     serial, speculative and conservative.
//
// Rows land in BENCH_tpcc_full.json (schema quecc-bench-v1). Setting
// QUECC_TPCC_FULL_POINT_ONLY=1 restricts the run to the point-profile
// rows — the configuration reachable before scan support existed — which
// is how the trajectory `.before` capture is produced.
#include <cstdio>
#include <cstdlib>
#include <memory>

#include "bench_util.hpp"
#include "workload/tpcc.hpp"

int main() {
  using namespace quecc;
  const harness::run_options s = benchutil::scaled(6, 1024);
  const bool point_only =
      std::getenv("QUECC_TPCC_FULL_POINT_ONLY") != nullptr;
  benchutil::json_report report("tpcc_full");

  std::printf(
      "== Full 5-txn TPC-C: scan-based Order-Status / Stock-Level ==\n"
      "batches=%u batch=%u warehouses=2 (default mix: 45/43/4/4/4)\n\n",
      s.batches, s.batch_size);

  auto make = [&](bool scans,
                  storage::index_kind idx) -> std::unique_ptr<wl::tpcc> {
    wl::tpcc_config w;
    w.warehouses = 2;
    w.partitions = 4;
    w.initial_orders_per_district = 100;
    w.order_headroom_per_district = s.batches * s.batch_size / 20 + 2000;
    w.scan_profiles = scans;
    w.index = idx;
    return std::make_unique<wl::tpcc>(w);
  };

  harness::table_printer table(
      {"configuration", "throughput", "user aborts", "p99 exec latency"});

  auto run_row = [&](const std::string& label, const char* engine,
                     const common::config& cfg, bool scans,
                     storage::index_kind idx) {
    const auto m = benchutil::run_engine(
        engine, cfg, [&] { return make(scans, idx); }, s);
    report.add(label,
               {{"scan_profiles", scans ? 1.0 : 0.0},
                {"ordered_index", idx == storage::index_kind::ordered}},
               m);
    char p99[64];
    std::snprintf(p99, sizeof p99, "%.0fus",
                  m.txn_latency.percentile_nanos(99) / 1e3);
    table.row({label, harness::format_rate(m.throughput()),
               std::to_string(m.aborted), p99});
  };

  common::config cfg;
  cfg.partitions = 4;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.worker_threads = 4;

  // Baselines: the configuration every earlier PR could run (scan-free
  // point profiles), on both backends so the skip list's point-op tax is
  // visible in isolation.
  cfg.execution = common::exec_model::conservative;
  run_row("quecc point profiles (hash)", "quecc", cfg, false,
          storage::index_kind::hash);
  run_row("quecc point profiles (ordered)", "quecc", cfg, false,
          storage::index_kind::ordered);

  if (!point_only) {
    // The full mix: scan-based read profiles on the ordered backend.
    run_row("quecc full scans (cons)", "quecc", cfg, true,
            storage::index_kind::ordered);
    cfg.execution = common::exec_model::speculative;
    run_row("quecc full scans (spec)", "quecc", cfg, true,
            storage::index_kind::ordered);
    run_row("serial full scans", "serial", cfg, true,
            storage::index_kind::ordered);
  }

  table.print();
  std::printf(
      "\nStock-Level's scan covers ~%u-order ranges that the point profile\n"
      "never could; throughput deltas vs the hash baseline price in both\n"
      "the ordered backend's point-op cost and the larger read footprint.\n",
      20u);
  const std::string json = report.write();
  if (!json.empty()) std::printf("json report: %s\n", json.c_str());
  return 0;
}
