// Micro-benchmarks (google-benchmark) for the engine's building blocks:
// the hot-path costs that the experiment benches aggregate.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "common/rng.hpp"
#include "common/spinlock.hpp"
#include "common/topology.hpp"
#include "common/zipf.hpp"
#include "core/admission.hpp"
#include "core/planner.hpp"
#include "log/log_writer.hpp"
#include "log/plan_codec.hpp"
#include "storage/database.hpp"
#include "storage/ordered_index.hpp"
#include "txn/txn_context.hpp"
#include "workload/ycsb.hpp"

namespace {

using namespace quecc;

void BM_RngNext(benchmark::State& state) {
  common::rng r(1);
  for (auto _ : state) benchmark::DoNotOptimize(r.next());
}
BENCHMARK(BM_RngNext);

void BM_ZipfNext(benchmark::State& state) {
  common::rng r(1);
  common::zipf_generator z(1 << 20, state.range(0) / 100.0);
  for (auto _ : state) benchmark::DoNotOptimize(z.next(r));
}
BENCHMARK(BM_ZipfNext)->Arg(0)->Arg(60)->Arg(99);

void BM_SpinlockUncontended(benchmark::State& state) {
  common::spinlock lock;
  for (auto _ : state) {
    lock.lock();
    lock.unlock();
  }
}
BENCHMARK(BM_SpinlockUncontended);

void BM_HashIndexLookup(benchmark::State& state) {
  storage::hash_index idx(1 << 16);
  for (quecc::key_t k = 0; k < (1 << 16); ++k) idx.insert(k, k);
  common::rng r(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.lookup(r.next_below(1 << 16)));
  }
}
BENCHMARK(BM_HashIndexLookup);

// --- ordered index (deterministic skip list) --------------------------------
// Point lookups cost O(log n) vs the hash index's O(1) — the price of
// admitting range scans. The scan benches amortize the descent over the
// level-0 walk: per-visited-key cost drops with scan length, which is why
// TPC-C's Order-Status (15 keys) and Stock-Level (~300 keys) profiles run
// as single scan fragments instead of per-key reads.

storage::ordered_index& ordered_bench_index() {
  static storage::ordered_index* idx = [] {
    auto* i = new storage::ordered_index(1 << 16);
    for (quecc::key_t k = 0; k < (1 << 16); ++k) i->insert(k, k);
    return i;
  }();
  return *idx;
}

void BM_OrderedLookup(benchmark::State& state) {
  auto& idx = ordered_bench_index();
  common::rng r(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(idx.lookup_unlocked(r.next_below(1 << 16)));
  }
}
BENCHMARK(BM_OrderedLookup);

void BM_OrderedScan(benchmark::State& state) {
  auto& idx = ordered_bench_index();
  const auto len = static_cast<quecc::key_t>(state.range(0));
  common::rng r(1);
  for (auto _ : state) {
    const quecc::key_t lo = r.next_below((1 << 16) - len);
    std::uint64_t sum = 0;
    idx.visit_range(
        lo, lo + len,
        [](void* ctx, quecc::key_t k, storage::row_id_t) {
          *static_cast<std::uint64_t*>(ctx) += k;
          return true;
        },
        &sum);
    benchmark::DoNotOptimize(sum);
  }
  state.SetItemsProcessed(state.iterations() * len);
}
BENCHMARK(BM_OrderedScan)->Arg(64)->Arg(1024);

// --- sharded-storage lookup paths ------------------------------------------
// Same 8-arena table, two index paths: the stripe-locked lookup the
// cross-partition baselines use vs the lock-free partition-local lookup
// the planner/executors use. The delta is the per-lookup cost of the
// stripe lock the queue-oriented planning already made unnecessary.

storage::database& sharded_lookup_db() {
  static storage::database db = [] {
    storage::database d;
    auto& t = d.create_table(
        "t", storage::schema({{"A", storage::col_type::u64, 8}}), 1 << 16, 8);
    std::vector<std::byte> p(8);
    for (quecc::key_t k = 0; k < (1 << 16); ++k) {
      t.insert(k, p, static_cast<part_id_t>(k % 8));
    }
    return d;
  }();
  return db;
}

void BM_StripedLookup(benchmark::State& state) {
  auto& t = sharded_lookup_db().at(0);
  common::rng r(1);
  for (auto _ : state) {
    const auto k = r.next_below(1 << 16);
    benchmark::DoNotOptimize(t.lookup(k, static_cast<part_id_t>(k % 8)));
  }
}
BENCHMARK(BM_StripedLookup);

void BM_PartitionLocalLookup(benchmark::State& state) {
  auto& t = sharded_lookup_db().at(0);
  common::rng r(1);
  for (auto _ : state) {
    const auto k = r.next_below(1 << 16);
    benchmark::DoNotOptimize(
        t.lookup_local(k, static_cast<part_id_t>(k % 8)));
  }
}
BENCHMARK(BM_PartitionLocalLookup);

void BM_TableRowAccess(benchmark::State& state) {
  storage::database db;
  auto& t = db.create_table(
      "t", storage::schema({{"A", storage::col_type::u64, 8}}), 1 << 16);
  std::vector<std::byte> p(8);
  for (quecc::key_t k = 0; k < (1 << 16); ++k) t.insert(k, p);
  common::rng r(1);
  for (auto _ : state) {
    const auto rid = t.lookup(r.next_below(1 << 16));
    benchmark::DoNotOptimize(storage::read_u64(t.row(rid), 0));
  }
}
BENCHMARK(BM_TableRowAccess);

void BM_SlotProduceConsume(benchmark::State& state) {
  txn::txn_desc t;
  t.resize_slots(16);
  std::uint16_t s = 0;
  for (auto _ : state) {
    t.produce(s, 42);
    benchmark::DoNotOptimize(t.inputs_ready(1ull << s));
    s = (s + 1) % 16;
  }
}
BENCHMARK(BM_SlotProduceConsume);

void BM_PlanningPhase(benchmark::State& state) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1 << 16;
  wcfg.partitions = 8;
  auto w = wl::ycsb(wcfg);
  storage::database db;
  w.load(db);

  common::config cfg;
  cfg.planner_threads = 1;
  cfg.executor_threads = 4;
  cfg.partitions = 8;
  core::planner pl(0, cfg, db);
  core::plan_output out;

  common::rng r(1);
  auto b = w.make_batch(r, static_cast<std::uint32_t>(state.range(0)));
  for (auto _ : state) {
    pl.plan(b, out);
    benchmark::DoNotOptimize(out.planned_frags);
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PlanningPhase)->Arg(256)->Arg(2048);

void BM_AdmissionSubmitDrain(benchmark::State& state) {
  const auto n = static_cast<std::uint32_t>(state.range(0));
  core::admission_queue q(n);
  for (auto _ : state) {
    for (std::uint32_t i = 0; i < n; ++i) {
      core::admitted_txn a;
      a.txn = std::make_unique<txn::txn_desc>();
      q.submit(std::move(a));
    }
    auto batch = q.pop_batch(n, /*deadline_micros=*/0);
    benchmark::DoNotOptimize(batch.size());
  }
  state.SetItemsProcessed(state.iterations() * n);
}
BENCHMARK(BM_AdmissionSubmitDrain)->Arg(256)->Arg(2048);

/// Buffered append only: the cost a batch record adds to the planning
/// phase (group commit defers the fsync off this path).
void BM_LogAppend(benchmark::State& state) {
  benchutil::scratch_dir dir;
  log::log_writer w(dir.path, {});
  std::vector<std::byte> payload(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(w.append(log::record_type::batch, payload));
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_LogAppend)->Arg(256)->Arg(4096)->Arg(1 << 16);

/// Append + durable ack: what a synchronous commit pays per batch. The
/// gap to BM_LogAppend is the group-commit fsync; `batch` appends share
/// one wait, modelling `batch` commit records coalescing into one sync.
void BM_LogGroupCommit(benchmark::State& state) {
  benchutil::scratch_dir dir;
  log::writer_options opts;
  opts.group_commit_micros = 100;
  log::log_writer w(dir.path, opts);
  const auto batch = static_cast<std::uint32_t>(state.range(0));
  std::vector<std::byte> payload(512);
  for (auto _ : state) {
    log::log_writer::lsn_t last = 0;
    for (std::uint32_t i = 0; i < batch; ++i) {
      last = w.append(log::record_type::commit, payload);
    }
    w.wait_durable(last);
  }
  state.SetItemsProcessed(state.iterations() * batch);
}
BENCHMARK(BM_LogGroupCommit)->Arg(1)->Arg(8)->Arg(64);

void BM_PlanCodecEncode(benchmark::State& state) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1 << 16;
  auto w = wl::ycsb(wcfg);
  common::rng r(1);
  auto b = w.make_batch(r, static_cast<std::uint32_t>(state.range(0)));
  std::vector<std::byte> out;
  for (auto _ : state) {
    out.clear();
    log::encode_batch(b, out);
    benchmark::DoNotOptimize(out.size());
  }
  state.SetItemsProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_PlanCodecEncode)->Arg(256)->Arg(2048);

void BM_StateHash(benchmark::State& state) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1 << 14;
  auto w = wl::ycsb(wcfg);
  storage::database db;
  w.load(db);
  for (auto _ : state) benchmark::DoNotOptimize(db.state_hash());
}
BENCHMARK(BM_StateHash);

// --- topology / placement (common/topology.hpp) -----------------------------
// Placement is computed once per engine construction, but the topology
// helpers also sit on the pin path of every worker spawn — keep them cheap.

void BM_CpulistParse(benchmark::State& state) {
  // A dense 128-cpu two-socket list, the realistic worst case.
  const std::string list = "0-31,64-95,32-63,96-127";
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::parse_cpulist(list));
  }
}
BENCHMARK(BM_CpulistParse);

void BM_TopologyCpuLookup(benchmark::State& state) {
  common::topology topo;
  for (unsigned n = 0; n < 4; ++n) {
    common::numa_node nd;
    nd.id = n;
    for (unsigned c = 0; c < 32; ++c) nd.cpus.push_back(n * 32 + c);
    topo.nodes.push_back(std::move(nd));
  }
  common::rng r(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(topo.node_of_cpu(r.next_below(128)));
  }
}
BENCHMARK(BM_TopologyCpuLookup);

void BM_PlacementCompute(benchmark::State& state) {
  common::topology topo;
  for (unsigned n = 0; n < 4; ++n) {
    common::numa_node nd;
    nd.id = n;
    for (unsigned c = 0; c < 32; ++c) nd.cpus.push_back(n * 32 + c);
    topo.nodes.push_back(std::move(nd));
  }
  common::placement_spec spec;
  spec.planners = 16;
  spec.executors = 64;
  spec.policy = state.range(0) == 0 ? common::pin_policy::compact
                                    : common::pin_policy::spread;
  for (auto _ : state) {
    benchmark::DoNotOptimize(common::compute_placement(topo, spec));
  }
}
BENCHMARK(BM_PlacementCompute)->Arg(0)->Arg(1);

}  // namespace

// Hand-rolled BENCHMARK_MAIN: console output for humans plus a
// google-benchmark JSON report at BENCH_micro.json (next to the
// quecc-bench-v1 files the experiment benches emit, honoring
// $QUECC_BENCH_JSON_DIR). An explicit --benchmark_out on the command
// line wins over the injected default.
int main(int argc, char** argv) {
  const char* dir = std::getenv("QUECC_BENCH_JSON_DIR");
  const std::string path =
      std::string(dir && *dir ? dir : ".") + "/BENCH_micro.json";
  std::string out_flag = "--benchmark_out=" + path;
  std::string fmt_flag = "--benchmark_out_format=json";
  std::vector<char*> args(argv, argv + argc);
  bool user_out = false;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]).rfind("--benchmark_out", 0) == 0) {
      user_out = true;
    }
  }
  if (!user_out) {
    args.push_back(out_flag.data());
    args.push_back(fmt_flag.data());
  }
  int new_argc = static_cast<int>(args.size());
  benchmark::Initialize(&new_argc, args.data());
  if (benchmark::ReportUnrecognizedArguments(new_argc, args.data())) return 1;
  benchmark::RunSpecifiedBenchmarks();
  if (!user_out) std::printf("json report: %s\n", path.c_str());
  benchmark::Shutdown();
  return 0;
}
