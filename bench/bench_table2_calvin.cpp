// Experiment T2-R2 — Table 2, row 2 of the paper.
//
//   "Distributed (deterministic): QueCC-D vs Calvin, 22x throughput
//    improvement, YCSB low-contention workload (uniform access)."
//
// Four simulated nodes, uniform YCSB, a share of distributed transactions.
// Both engines are deterministic and 2PC-free; the difference is
// structural: Calvin pays a sequencing round plus two messages per
// distributed transaction and funnels everything through per-node lock
// schedulers, while the queue-oriented engine ships whole fragment-queue
// bundles (messages per *batch*, not per transaction) and executes without
// any locking.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace quecc;
  const harness::run_options s = benchutil::scaled(5, 2048);
  benchutil::json_report report("table2_calvin");

  std::printf(
      "== Table 2 / row 2: QueCC-D vs Calvin, distributed YCSB ==\n"
      "batches=%u batch=%u nodes=4 latency=50us zipf=0 (uniform)\n\n",
      s.batches, s.batch_size);

  harness::table_printer table({"dist-txn ratio", "dist-quecc",
                                "dist-calvin", "quecc msgs", "calvin msgs",
                                "quecc speedup"});

  for (const double dist_ratio : {0.0, 0.1, 0.2, 0.5}) {
    auto make = [dist_ratio]() -> std::unique_ptr<wl::workload> {
      wl::ycsb_config w;
      w.table_size = 1 << 16;
      w.partitions = 8;
      w.multi_partition_ratio = dist_ratio;
      w.mp_parts = 2;
      w.zipf_theta = 0.0;  // the paper's low-contention uniform access
      w.read_ratio = 0.5;
      return std::make_unique<wl::ycsb>(w);
    };

    common::config cfg;
    cfg.nodes = 4;
    cfg.partitions = 8;
    cfg.planner_threads = 1;   // per node
    cfg.executor_threads = 1;  // per node
    cfg.worker_threads = 2;    // per node (Calvin execution pool)
    cfg.net_latency_micros = 50;

    const auto mq = benchutil::run_engine("dist-quecc", cfg, make, s);
    const auto mc = benchutil::run_engine("dist-calvin", cfg, make, s);
    report.add("dist-quecc", {{"dist_ratio", dist_ratio}, {"nodes", 4}}, mq);
    report.add("dist-calvin", {{"dist_ratio", dist_ratio}, {"nodes", 4}}, mc);

    table.row({std::to_string(dist_ratio),
               harness::format_rate(mq.throughput()),
               harness::format_rate(mc.throughput()),
               std::to_string(mq.messages), std::to_string(mc.messages),
               harness::format_factor(mq.throughput() /
                                      std::max(1.0, mc.throughput()))});
  }
  table.print();
  std::printf(
      "\npaper claim: 22x on low-contention uniform YCSB; expect the\n"
      "speedup to grow with the distributed-transaction share as Calvin's\n"
      "per-transaction messaging dominates (compare the msgs columns).\n");
  const std::string json = report.write();
  if (!json.empty()) std::printf("json report: %s\n", json.c_str());
  return 0;
}
