// Experiment A1 — ablation of Section 3.2's "Queue Execution Mechanisms":
// speculative vs conservative execution as the deterministic abort rate
// rises.
//
// Speculative execution applies updates eagerly and pays for aborts with
// cascading rollback + re-execution; conservative execution stalls updates
// on the transaction's abortable fragments and never cascades. The paper
// presents the pair as the paradigm's configurable trade-off — this bench
// measures exactly that crossover.
#include <cstdio>

#include "bench_util.hpp"
#include "workload/ycsb.hpp"

int main() {
  using namespace quecc;
  const harness::run_options s = benchutil::scaled(5, 2048);
  benchutil::json_report report("ablation_exec_model");

  std::printf(
      "== Ablation: speculative vs conservative execution ==\n"
      "batches=%u batch=%u ycsb zipf=0.8 (hot), abortable check per txn\n\n",
      s.batches, s.batch_size);

  harness::table_printer table({"abort rate", "speculative", "conservative",
                                "spec cascades", "spec/cons"});

  for (const double abort_rate : {0.0, 0.01, 0.05, 0.1, 0.25}) {
    auto make = [abort_rate]() -> std::unique_ptr<wl::workload> {
      wl::ycsb_config w;
      w.table_size = 1 << 14;
      w.partitions = 4;
      w.zipf_theta = 0.8;
      w.read_ratio = 0.3;
      w.abort_ratio = abort_rate;
      return std::make_unique<wl::ycsb>(w);
    };

    common::config cfg;
    cfg.planner_threads = 2;
    cfg.executor_threads = 2;
    cfg.partitions = 4;

    cfg.execution = common::exec_model::speculative;
    const auto ms = benchutil::run_engine("quecc", cfg, make, s);
    cfg.execution = common::exec_model::conservative;
    const auto mc = benchutil::run_engine("quecc", cfg, make, s);
    report.add("speculative", {{"abort_rate", abort_rate}}, ms);
    report.add("conservative", {{"abort_rate", abort_rate}}, mc);

    table.row({std::to_string(abort_rate),
               harness::format_rate(ms.throughput()),
               harness::format_rate(mc.throughput()),
               std::to_string(ms.cc_aborts),
               harness::format_factor(ms.throughput() /
                                      std::max(1.0, mc.throughput()))});
  }
  table.print();
  std::printf(
      "\nexpect speculative to win at low abort rates (no commit-dependency\n"
      "stalls) and the gap to narrow as cascades eat the advantage.\n");
  const std::string json = report.write();
  if (!json.empty()) std::printf("json report: %s\n", json.c_str());
  return 0;
}
