// ycsb_tour: one workload, every knob — a guided tour of the paradigm's
// configuration space on YCSB (paper Section 3's "seamlessly admits
// various configurations"): execution model x isolation level x contention.
//
// Build & run:  ./build/examples/ycsb_tour
#include <cstdio>

#include "core/engine.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "workload/ycsb.hpp"

using namespace quecc;

int main() {
  std::printf(
      "YCSB tour: 64K rows, 10 ops/txn, 4 batches x 2048 txns each cell\n\n");

  harness::table_printer table({"contention", "exec model", "isolation",
                                "throughput", "cascades"});

  for (const double theta : {0.0, 0.9}) {
    for (const auto model :
         {common::exec_model::speculative, common::exec_model::conservative}) {
      for (const auto iso : {common::isolation::serializable,
                             common::isolation::read_committed}) {
        wl::ycsb_config wcfg;
        wcfg.table_size = 1 << 16;
        wcfg.partitions = 4;
        wcfg.zipf_theta = theta;
        wcfg.read_ratio = 0.7;
        wcfg.abort_ratio = 0.02;
        wl::ycsb workload(wcfg);

        storage::database db;
        workload.load(db);

        common::config cfg;
        cfg.planner_threads = 2;
        cfg.executor_threads = 2;
        cfg.execution = model;
        cfg.iso = iso;
        core::quecc_engine engine(db, cfg);

        harness::run_options opts;
        opts.batches = 4;
        opts.batch_size = 2048;
        opts.seed = 7;
        const auto m =
            harness::run_workload(engine, workload, db, opts).metrics;

        // cc_aborts counts speculation cascades — the engine's only
        // protocol-induced re-execution.
        table.row({theta == 0.0 ? "uniform" : "zipf 0.9",
                   common::to_string(model), common::to_string(iso),
                   harness::format_rate(m.throughput()),
                   std::to_string(m.cc_aborts)});
      }
    }
  }
  table.print();
  std::printf(
      "\nthings to notice: cascades appear only under speculative\n"
      "execution; read-committed helps most when contention is high and\n"
      "reads dominate; every cell is serializable-or-better and fully\n"
      "deterministic.\n");
  return 0;
}
