// bank_audit: money-transfer workload with real (insufficient-funds)
// aborts, demonstrating the two queue execution mechanisms of the paper:
//
//   * speculative  — updates apply eagerly; an abort triggers cascading
//     rollback + deterministic re-execution (watch the recovery stats),
//   * conservative — updates wait for the balance check; no cascades ever.
//
// Either way, the audit at the end must balance to the cent — the engine
// is serializable and deterministic under both mechanisms.
//
// Build & run:  ./build/examples/bank_audit
#include <cstdio>

#include "core/engine.hpp"
#include "harness/runner.hpp"
#include "workload/bank.hpp"

using namespace quecc;

namespace {

void run(common::exec_model model) {
  wl::bank_config wcfg;
  wcfg.accounts = 10000;
  wcfg.initial_balance = 1000;
  wcfg.max_transfer = 1400;  // often exceeds the balance => real aborts
  wl::bank workload(wcfg);

  storage::database db;
  workload.load(db);
  const auto total_before = workload.total_balance(db);

  common::config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.execution = model;
  core::quecc_engine engine(db, cfg);

  harness::run_options opts;
  opts.batches = 8;
  opts.batch_size = 4096;
  opts.seed = 2026;
  // The engine folds speculation cascades into cc_aborts (the paradigm's
  // only source of protocol-induced re-execution).
  const auto m = harness::run_workload(engine, workload, db, opts).metrics;

  const auto total_after = workload.total_balance(db);
  std::printf(
      "%-13s: %8.0f txn/s, committed=%llu, insufficient-funds aborts=%llu,\n"
      "               speculation cascades=%llu, audit: %llu -> %llu %s\n",
      common::to_string(model), m.throughput(),
      static_cast<unsigned long long>(m.committed),
      static_cast<unsigned long long>(m.aborted),
      static_cast<unsigned long long>(m.cc_aborts),
      static_cast<unsigned long long>(total_before),
      static_cast<unsigned long long>(total_after),
      total_before == total_after ? "(balanced ✓)" : "(MISMATCH ✗)");
}

}  // namespace

int main() {
  std::printf("bank audit: 10k accounts, 8 batches x 4096 transfers\n\n");
  run(common::exec_model::speculative);
  run(common::exec_model::conservative);
  std::printf(
      "\nspeculative pays for aborts with cascades + re-execution;\n"
      "conservative pays with commit-dependency stalls. Both balance.\n");
  return 0;
}
