// bank_audit: money-transfer workload with real (insufficient-funds)
// aborts, demonstrating the two queue execution mechanisms of the paper:
//
//   * speculative  — updates apply eagerly; an abort triggers cascading
//     rollback + deterministic re-execution (watch the recovery stats),
//   * conservative — updates wait for the balance check; no cascades ever.
//
// Either way, the audit at the end must balance to the cent — the engine
// is serializable and deterministic under both mechanisms.
//
// Build & run:  ./build/examples/bank_audit
#include <cstdio>

#include "core/engine.hpp"
#include "workload/bank.hpp"

using namespace quecc;

namespace {

void run(common::exec_model model) {
  wl::bank_config wcfg;
  wcfg.accounts = 10000;
  wcfg.initial_balance = 1000;
  wcfg.max_transfer = 1400;  // often exceeds the balance => real aborts
  wl::bank workload(wcfg);

  storage::database db;
  workload.load(db);
  const auto total_before = workload.total_balance(db);

  common::config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.execution = model;
  core::quecc_engine engine(db, cfg);

  common::rng r(2026);
  common::run_metrics m;
  std::uint32_t cascades = 0;
  for (std::uint32_t i = 0; i < 8; ++i) {
    auto b = workload.make_batch(r, 4096, i);
    engine.run_batch(b, m);
    cascades += engine.last_recovery().cascades;
  }

  const auto total_after = workload.total_balance(db);
  std::printf(
      "%-13s: %8.0f txn/s, committed=%llu, insufficient-funds aborts=%llu,\n"
      "               speculation cascades=%u, audit: %llu -> %llu %s\n",
      common::to_string(model), m.throughput(),
      static_cast<unsigned long long>(m.committed),
      static_cast<unsigned long long>(m.aborted), cascades,
      static_cast<unsigned long long>(total_before),
      static_cast<unsigned long long>(total_after),
      total_before == total_after ? "(balanced ✓)" : "(MISMATCH ✗)");
}

}  // namespace

int main() {
  std::printf("bank audit: 10k accounts, 8 batches x 4096 transfers\n\n");
  run(common::exec_model::speculative);
  run(common::exec_model::conservative);
  std::printf(
      "\nspeculative pays for aborts with cascades + re-execution;\n"
      "conservative pays with commit-dependency stalls. Both balance.\n");
  return 0;
}
