// queccctl: command-line driver for ad-hoc experiments.
//
//   queccctl [--engine NAME] [--workload ycsb|tpcc|bank] [--batches N]
//            [--batch-size N] [--planners N] [--executors N] [--workers N]
//            [--pipeline-depth N] [--partitions N] [--nodes N] [--theta F]
//            [--read-ratio F] [--mp-ratio F] [--warehouses N]
//            [--index hash|ordered] [--tpcc-full] [--scan-ratio F]
//            [--exec spec|cons] [--iso ser|rc] [--seed N] [--latency-us N]
//            [--arrival-rate TPS] [--batch-deadline-us N]
//            [--log-dir DIR] [--durable] [--recover]
//            [--checkpoint-every N] [--group-commit-us N] [--list]
//            [--metrics-json[=FILE]] [--trace-out=FILE]
//            [--stage3 on|off] [--pin-threads] [--pin-policy POLICY]
//            [--numa] [--verbose]
//
// Observability: --metrics-json dumps the run summary plus the full obs
// registry scrape (counters/gauges/histograms, src/obs/metrics.hpp) as one
// JSON document — to stdout, or to FILE with --metrics-json=FILE.
// --trace-out=FILE enables span tracing for the run and writes a Chrome
// trace-event file (load it in chrome://tracing or https://ui.perfetto.dev)
// with one lane per recording thread; at --pipeline-depth >= 2 the
// plan(i+1)/exec(i) overlap is directly visible as overlapping spans.
//
// --arrival-rate TPS switches from closed-loop batch replay to the
// open-loop client path: batches*batch-size transactions arrive as a
// Poisson process at TPS and flow through a proto::session (admission
// queue + batch former), so the summary reports queueing and end-to-end
// latency measured from submit time. --batch-deadline-us bounds how long
// a partial batch may wait before it closes (default 2000).
//
// --pipeline-depth N sets how many batches the queue-oriented engines keep
// in flight (1 = the paper's lockstep; default 2 overlaps batch i+1's
// planning with batch i's execution). Results are identical at any depth.
// --stage3 on|off toggles the third pipeline stage (async commit epilogue:
// the durable tail of batch i overlaps batch i+1's execution; on by
// default, effective at depth >= 2). Results are identical either way.
//
// Placement: --pin-threads pins planners/executors/epilogue to CPUs
// following --pin-policy (compact = a partition's executor shares the
// socket of its arena, spread = executors round-robin across NUMA nodes,
// none = legacy raw-index pinning). --numa additionally mbinds each
// storage arena's pages onto the socket of the executor owning it
// (best-effort; no-op on single-node machines). --verbose prints the
// machine topology, the resolved thread->cpu / arena->node map, and the
// storage catalog (per-table index backend and shard count).
//
// Storage: --index hash|ordered selects the index backend for every
// workload table (hash = point lookups only; ordered = per-arena skip
// list supporting range scans). --tpcc-full switches TPC-C to the full
// scan-based 5-txn mix (OrderStatus and StockLevel execute genuine
// ordered range scans; implies ordered ORDER-LINE). --scan-ratio F makes
// that fraction of YCSB transactions YCSB-E style range scans (implies
// an ordered usertable).
//
// Durability (quecc engine only): --durable --log-dir DIR command-logs
// every planned batch and fsyncs a commit record per batch (group commit,
// --group-commit-us window); --checkpoint-every N snapshots the database
// every N batches and truncates the log. After a crash (SIGKILL included),
// `queccctl --recover --log-dir DIR` with the *same* workload flags
// restores the checkpoint, replays committed batches, then resumes the
// remainder of the deterministic stream *durably in place*: the log is
// reopened at the replayed position and every resumed batch keeps being
// command-logged, so a later crash + --recover still works. The final
// state hash equals what an uninterrupted run would have printed.
//
// Examples:
//   queccctl --engine quecc --workload tpcc --warehouses 1
//   queccctl --engine dist-quecc --nodes 4 --mp-ratio 0.2
//   queccctl --engine quecc --arrival-rate 50000 --batch-deadline-us 500
//   queccctl --durable --log-dir /tmp/qlog --checkpoint-every 8
//   queccctl --recover --log-dir /tmp/qlog
//   queccctl --list
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>

#include "common/rng.hpp"
#include "common/topology.hpp"
#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "log/recovery.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "protocols/iface.hpp"
#include "workload/bank.hpp"
#include "workload/tpcc.hpp"
#include "workload/ycsb.hpp"

using namespace quecc;

namespace {

struct options {
  std::string engine = "quecc";
  std::string workload = "ycsb";
  std::uint32_t batches = 4;
  std::uint32_t batch_size = 2048;
  common::config cfg;
  double theta = 0.5;
  double read_ratio = 0.5;
  double mp_ratio = 0.0;
  std::uint32_t warehouses = 1;
  storage::index_kind index = storage::index_kind::hash;
  bool tpcc_full = false;   ///< full scan-based 5-txn TPC-C mix
  double scan_ratio = 0.0;  ///< YCSB-E style scan transaction fraction
  std::uint64_t seed = 42;
  double arrival_rate = 0.0;  ///< txn/s; > 0 selects the open-loop path
  bool recover = false;       ///< recover from cfg.log_dir, then resume
  bool verbose = false;       ///< print topology + placement map at start
  std::string metrics_json;   ///< "-" = stdout; empty = disabled
  std::string trace_out;      ///< Chrome trace file; empty = disabled
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine NAME] [--workload ycsb|tpcc|bank] ...\n"
               "run '%s --list' for engine names; see file header for all "
               "flags.\n",
               argv0, argv0);
  std::exit(2);
}

bool parse(options& o, int argc, char** argv) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list") {
      for (const auto& n : proto::engine_names()) std::printf("%s\n", n.c_str());
      return false;
    } else if (a == "--engine") {
      o.engine = need(i);
    } else if (a == "--workload") {
      o.workload = need(i);
    } else if (a == "--batches") {
      o.batches = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--batch-size") {
      o.batch_size = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--planners") {
      o.cfg.planner_threads = static_cast<worker_id_t>(std::atoi(need(i)));
    } else if (a == "--executors") {
      o.cfg.executor_threads = static_cast<worker_id_t>(std::atoi(need(i)));
    } else if (a == "--workers") {
      o.cfg.worker_threads = static_cast<worker_id_t>(std::atoi(need(i)));
    } else if (a == "--pipeline-depth") {
      o.cfg.pipeline_depth = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--stage3") {
      const std::string v = need(i);
      if (v != "on" && v != "off") usage(argv[0]);
      o.cfg.async_epilogue = v == "on";
    } else if (a == "--pin-threads") {
      o.cfg.pin_threads = true;
    } else if (a == "--pin-policy") {
      const std::string v = need(i);
      if (v == "none") {
        o.cfg.pin_mode = common::pin_policy::none;
      } else if (v == "compact") {
        o.cfg.pin_mode = common::pin_policy::compact;
      } else if (v == "spread") {
        o.cfg.pin_mode = common::pin_policy::spread;
      } else {
        usage(argv[0]);
      }
    } else if (a == "--numa") {
      o.cfg.numa_bind = true;
    } else if (a == "--verbose") {
      o.verbose = true;
    } else if (a == "--partitions") {
      o.cfg.partitions = static_cast<part_id_t>(std::atoi(need(i)));
    } else if (a == "--nodes") {
      o.cfg.nodes = static_cast<std::uint16_t>(std::atoi(need(i)));
    } else if (a == "--latency-us") {
      o.cfg.net_latency_micros =
          static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--arrival-rate") {
      o.arrival_rate = std::atof(need(i));
    } else if (a == "--batch-deadline-us") {
      o.cfg.batch_deadline_micros =
          static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--log-dir") {
      o.cfg.log_dir = need(i);
    } else if (a == "--durable") {
      o.cfg.durable = true;
    } else if (a == "--recover") {
      o.recover = true;
    } else if (a == "--checkpoint-every") {
      o.cfg.checkpoint_interval_batches =
          static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--group-commit-us") {
      o.cfg.group_commit_micros =
          static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--metrics-json") {
      o.metrics_json = "-";
    } else if (a.rfind("--metrics-json=", 0) == 0) {
      o.metrics_json = a.substr(std::strlen("--metrics-json="));
    } else if (a == "--trace-out") {
      o.trace_out = need(i);
    } else if (a.rfind("--trace-out=", 0) == 0) {
      o.trace_out = a.substr(std::strlen("--trace-out="));
    } else if (a == "--theta") {
      o.theta = std::atof(need(i));
    } else if (a == "--read-ratio") {
      o.read_ratio = std::atof(need(i));
    } else if (a == "--mp-ratio") {
      o.mp_ratio = std::atof(need(i));
    } else if (a == "--warehouses") {
      o.warehouses = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--index") {
      const std::string v = need(i);
      if (v == "hash") {
        o.index = storage::index_kind::hash;
      } else if (v == "ordered") {
        o.index = storage::index_kind::ordered;
      } else {
        usage(argv[0]);
      }
    } else if (a == "--tpcc-full") {
      o.tpcc_full = true;
    } else if (a == "--scan-ratio") {
      o.scan_ratio = std::atof(need(i));
    } else if (a == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--exec") {
      const std::string v = need(i);
      o.cfg.execution = v == "cons" ? common::exec_model::conservative
                                    : common::exec_model::speculative;
    } else if (a == "--iso") {
      const std::string v = need(i);
      o.cfg.iso = v == "rc" ? common::isolation::read_committed
                            : common::isolation::serializable;
    } else {
      usage(argv[0]);
    }
  }
  return true;
}

std::unique_ptr<wl::workload> make_workload(const options& o) {
  if (o.workload == "ycsb") {
    wl::ycsb_config w;
    w.table_size = 1 << 16;
    w.partitions = o.cfg.partitions;
    w.zipf_theta = o.theta;
    w.read_ratio = o.read_ratio;
    w.multi_partition_ratio = o.mp_ratio;
    w.scan_ratio = o.scan_ratio;
    w.index = o.index;
    return std::make_unique<wl::ycsb>(w);
  }
  if (o.workload == "tpcc") {
    wl::tpcc_config w;
    w.warehouses = o.warehouses;
    w.partitions = o.cfg.partitions;
    w.order_headroom_per_district =
        o.batches * o.batch_size / 10 + 2000;
    w.scan_profiles = o.tpcc_full;
    w.index = o.index;
    return std::make_unique<wl::tpcc>(w);
  }
  if (o.workload == "bank") {
    wl::bank_config w;
    w.partitions = o.cfg.partitions;
    return std::make_unique<wl::bank>(w);
  }
  std::fprintf(stderr, "unknown workload: %s\n", o.workload.c_str());
  std::exit(2);
}

// One JSON document: the run configuration, the run's metrics, and the
// full obs registry scrape (counters/gauges/histograms).
void write_metrics_doc(std::ostream& os, const options& o,
                       const common::run_metrics& m, std::uint64_t hash) {
  obs::json_writer w(os);
  w.begin_object();
  w.kv("schema", "quecc-metrics-v1");
  w.kv("engine", o.engine);
  w.kv("workload", o.workload);
  w.kv("batches", o.batches);
  w.kv("batch_size", o.batch_size);
  w.kv("pipeline_depth", o.cfg.pipeline_depth);
  char buf[20];
  std::snprintf(buf, sizeof buf, "%016llx",
                static_cast<unsigned long long>(hash));
  w.kv("state_hash", buf);
  w.key("run");
  harness::write_run_metrics_json(w, m);
  obs::write_metrics_sections(w);
  w.end_object();
  os << '\n';
}

// Human-readable report lines move to stderr when the metrics document
// owns stdout, so `--metrics-json | jq` style pipes see pure JSON.
FILE* report_stream(const options& o) {
  return o.metrics_json == "-" ? stderr : stdout;
}

// --verbose: machine topology plus the thread->cpu / arena->node map the
// engine will apply (computed here exactly as the engine computes it).
void print_placement(const options& o) {
  FILE* out = report_stream(o);
  const common::topology& topo = common::system_topology();
  std::fprintf(out, "topology: %zu node(s), %zu cpu(s)\n", topo.nodes.size(),
               topo.cpu_count());
  common::placement_spec spec;
  spec.planners = o.cfg.planner_threads;
  spec.executors = o.cfg.executor_threads;
  spec.policy = o.cfg.pin_mode;
  const common::placement_plan plan = common::compute_placement(topo, spec);
  std::fprintf(out, "%s", plan.describe(o.cfg.partitions).c_str());
  if (!o.cfg.pin_threads) {
    std::fprintf(out, "(placement shown but not applied: --pin-threads off)\n");
  }
}

// --verbose: per-table index backend as loaded — the catalog's view of the
// storage seam, so a run's scan capability is visible up front.
void print_catalog(const options& o, const storage::database& db) {
  FILE* out = report_stream(o);
  std::fprintf(out, "catalog: %zu table(s)\n",
               static_cast<std::size_t>(db.table_count()));
  for (table_id_t id = 0; id < db.table_count(); ++id) {
    const storage::table& t = db.at(id);
    std::uint64_t rows = 0;
    for (part_id_t s = 0; s < t.shard_count(); ++s) rows += t.live_rows_in(s);
    std::fprintf(out, "  %-12s index=%-8s shards=%-3u rows=%" PRIu64 "\n",
                 t.name().c_str(), storage::index_kind_name(t.index()),
                 t.shard_count(), rows);
  }
}

// --metrics-json / --trace-out emission after a run (normal or recovery).
int emit_observability(const options& o, const common::run_metrics& m,
                       std::uint64_t hash) {
  if (!o.metrics_json.empty()) {
    if (o.metrics_json == "-") {
      write_metrics_doc(std::cout, o, m, hash);
    } else {
      std::ofstream out(o.metrics_json);
      if (!out) {
        std::fprintf(stderr, "cannot write %s\n", o.metrics_json.c_str());
        return 1;
      }
      write_metrics_doc(out, o, m, hash);
    }
  }
  if (!o.trace_out.empty()) {
    std::ofstream out(o.trace_out);
    if (!out) {
      std::fprintf(stderr, "cannot write %s\n", o.trace_out.c_str());
      return 1;
    }
    obs::write_chrome_trace(out);
    std::fprintf(stderr, "trace written: %s (chrome://tracing, perfetto)\n",
                 o.trace_out.c_str());
  }
  return 0;
}

// Recover from o.cfg.log_dir, resume the remainder of the deterministic
// stream, and print the final state hash — identical to what an
// uninterrupted run with the same flags would have printed.
int run_recovery(options& o) {
  auto w = make_workload(o);
  storage::database db;
  w->load(db);
  if (o.verbose) print_catalog(o, db);

  // Replay must go through a non-durable engine: a durable one would
  // append the log to itself (and log_writer refuses a dirty directory).
  common::config replay_cfg = o.cfg;
  replay_cfg.durable = false;
  std::unique_ptr<proto::engine> eng;
  try {
    eng = proto::make_engine(o.engine, db, replay_cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  log::recovery_result rec;
  try {
    rec = log::recover(o.cfg.log_dir, db, *eng, log::resolver_for(*w));
  } catch (const std::exception& e) {
    std::fprintf(stderr, "recovery failed: %s\n", e.what());
    return 1;
  }
  std::fprintf(
      report_stream(o),
      "recovered: checkpoint=%s replayed=%u skipped=%u torn_tail=%s "
      "txns=%" PRIu64 "\n",
      rec.checkpoint_loaded ? "yes" : "no", rec.batches_replayed,
      rec.batches_skipped, rec.torn_tail ? "yes" : "no", rec.txns_applied);

  // The replay engine's threads are torn down before the resumed engine
  // reopens the log (log_writer is single-writer per directory).
  eng.reset();

  // Resume durably in place: reopen the log at the replayed position
  // (resume mode truncates the torn tail and appends into a fresh
  // segment) and keep command-logging the remainder of the deterministic
  // stream, so a later crash + --recover still works. Engines without a
  // durability layer ignore the knobs and resume in memory as before.
  common::config resume_cfg = o.cfg;
  resume_cfg.durable = true;
  resume_cfg.log_resume = true;
  resume_cfg.log_resume_stream_pos = rec.txns_applied;
  std::unique_ptr<proto::engine> resumed;
  try {
    resumed = proto::make_engine(o.engine, db, resume_cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  const std::uint64_t total =
      static_cast<std::uint64_t>(o.batches) * o.batch_size;
  common::rng r(o.seed);
  for (std::uint64_t i = 0; i < rec.txns_applied && i < total; ++i) {
    (void)w->make_txn(r);  // consume: generator state must advance
  }
  common::run_metrics m;
  std::uint32_t next_id = rec.next_batch_id;
  for (std::uint64_t done = rec.txns_applied; done < total;) {
    const auto n = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(o.batch_size, total - done));
    txn::batch b = w->make_batch(r, n, next_id++);
    resumed->run_batch(b, m);
    done += n;
  }
  resumed->sync_durable();
  if (total > rec.txns_applied) {
    std::fprintf(report_stream(o), "resumed durably: %" PRIu64 " remaining txns\n",
                 total - rec.txns_applied);
  }
  std::fprintf(report_stream(o), "state hash: %016llx\n",
               static_cast<unsigned long long>(db.state_hash()));
  return emit_observability(o, m, db.state_hash());
}

}  // namespace

int main(int argc, char** argv) {
  options o;
  if (!parse(o, argc, argv)) return 0;

  // Enable span recording before any engine thread spins up so the whole
  // run (recovery replay included) lands in the trace.
  if (!o.trace_out.empty()) obs::set_tracing_enabled(true);

  if (o.verbose) print_placement(o);

  if (o.recover) {
    if (o.cfg.log_dir.empty()) {
      std::fprintf(stderr, "--recover requires --log-dir\n");
      return 2;
    }
    return run_recovery(o);
  }

  auto w = make_workload(o);
  storage::database db;
  w->load(db);
  if (o.verbose) print_catalog(o, db);

  std::unique_ptr<proto::engine> eng;
  try {
    eng = proto::make_engine(o.engine, db, o.cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::fprintf(report_stream(o), "engine=%s workload=%s batches=%u batch=%u %s\n",
               o.engine.c_str(), o.workload.c_str(), o.batches, o.batch_size,
               o.cfg.describe().c_str());

  harness::run_options opts;
  opts.batches = o.batches;
  opts.batch_size = o.batch_size;
  opts.seed = o.seed;
  opts.batch_deadline_micros = o.cfg.batch_deadline_micros;
  opts.admission_capacity = o.cfg.admission_capacity;
  opts.durability = o.cfg.durable;
  if (o.arrival_rate > 0) {
    opts.mode = harness::arrival_mode::open_loop;
    opts.offered_load_tps = o.arrival_rate;
    std::fprintf(report_stream(o), "open loop: %" PRIu64 " txns offered at %.0f txn/s\n",
                 opts.total_txns(), o.arrival_rate);
  }
  const auto res = harness::run_workload(*eng, *w, db, opts);
  std::fprintf(report_stream(o), "%s\n", res.metrics.summary(o.engine).c_str());
  std::fprintf(report_stream(o), "state hash: %016llx\n",
               static_cast<unsigned long long>(res.final_state_hash));
  // Engine teardown first: exporters are quiescent-point operations, and
  // the trace should include the final batches' epilogue spans.
  eng.reset();
  return emit_observability(o, res.metrics, res.final_state_hash);
}
