// queccctl: command-line driver for ad-hoc experiments.
//
//   queccctl [--engine NAME] [--workload ycsb|tpcc|bank] [--batches N]
//            [--batch-size N] [--planners N] [--executors N] [--workers N]
//            [--partitions N] [--nodes N] [--theta F] [--read-ratio F]
//            [--mp-ratio F] [--warehouses N] [--exec spec|cons]
//            [--iso ser|rc] [--seed N] [--latency-us N]
//            [--arrival-rate TPS] [--batch-deadline-us N] [--list]
//
// --arrival-rate TPS switches from closed-loop batch replay to the
// open-loop client path: batches*batch-size transactions arrive as a
// Poisson process at TPS and flow through a proto::session (admission
// queue + batch former), so the summary reports queueing and end-to-end
// latency measured from submit time. --batch-deadline-us bounds how long
// a partial batch may wait before it closes (default 2000).
//
// Examples:
//   queccctl --engine quecc --workload tpcc --warehouses 1
//   queccctl --engine dist-quecc --nodes 4 --mp-ratio 0.2
//   queccctl --engine quecc --arrival-rate 50000 --batch-deadline-us 500
//   queccctl --list
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "harness/runner.hpp"
#include "protocols/iface.hpp"
#include "workload/bank.hpp"
#include "workload/tpcc.hpp"
#include "workload/ycsb.hpp"

using namespace quecc;

namespace {

struct options {
  std::string engine = "quecc";
  std::string workload = "ycsb";
  std::uint32_t batches = 4;
  std::uint32_t batch_size = 2048;
  common::config cfg;
  double theta = 0.5;
  double read_ratio = 0.5;
  double mp_ratio = 0.0;
  std::uint32_t warehouses = 1;
  std::uint64_t seed = 42;
  double arrival_rate = 0.0;  ///< txn/s; > 0 selects the open-loop path
};

[[noreturn]] void usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--engine NAME] [--workload ycsb|tpcc|bank] ...\n"
               "run '%s --list' for engine names; see file header for all "
               "flags.\n",
               argv0, argv0);
  std::exit(2);
}

bool parse(options& o, int argc, char** argv) {
  auto need = [&](int& i) -> const char* {
    if (i + 1 >= argc) usage(argv[0]);
    return argv[++i];
  };
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    if (a == "--list") {
      for (const auto& n : proto::engine_names()) std::printf("%s\n", n.c_str());
      return false;
    } else if (a == "--engine") {
      o.engine = need(i);
    } else if (a == "--workload") {
      o.workload = need(i);
    } else if (a == "--batches") {
      o.batches = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--batch-size") {
      o.batch_size = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--planners") {
      o.cfg.planner_threads = static_cast<worker_id_t>(std::atoi(need(i)));
    } else if (a == "--executors") {
      o.cfg.executor_threads = static_cast<worker_id_t>(std::atoi(need(i)));
    } else if (a == "--workers") {
      o.cfg.worker_threads = static_cast<worker_id_t>(std::atoi(need(i)));
    } else if (a == "--partitions") {
      o.cfg.partitions = static_cast<part_id_t>(std::atoi(need(i)));
    } else if (a == "--nodes") {
      o.cfg.nodes = static_cast<std::uint16_t>(std::atoi(need(i)));
    } else if (a == "--latency-us") {
      o.cfg.net_latency_micros =
          static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--arrival-rate") {
      o.arrival_rate = std::atof(need(i));
    } else if (a == "--batch-deadline-us") {
      o.cfg.batch_deadline_micros =
          static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--theta") {
      o.theta = std::atof(need(i));
    } else if (a == "--read-ratio") {
      o.read_ratio = std::atof(need(i));
    } else if (a == "--mp-ratio") {
      o.mp_ratio = std::atof(need(i));
    } else if (a == "--warehouses") {
      o.warehouses = static_cast<std::uint32_t>(std::atoi(need(i)));
    } else if (a == "--seed") {
      o.seed = static_cast<std::uint64_t>(std::atoll(need(i)));
    } else if (a == "--exec") {
      const std::string v = need(i);
      o.cfg.execution = v == "cons" ? common::exec_model::conservative
                                    : common::exec_model::speculative;
    } else if (a == "--iso") {
      const std::string v = need(i);
      o.cfg.iso = v == "rc" ? common::isolation::read_committed
                            : common::isolation::serializable;
    } else {
      usage(argv[0]);
    }
  }
  return true;
}

std::unique_ptr<wl::workload> make_workload(const options& o) {
  if (o.workload == "ycsb") {
    wl::ycsb_config w;
    w.table_size = 1 << 16;
    w.partitions = o.cfg.partitions;
    w.zipf_theta = o.theta;
    w.read_ratio = o.read_ratio;
    w.multi_partition_ratio = o.mp_ratio;
    return std::make_unique<wl::ycsb>(w);
  }
  if (o.workload == "tpcc") {
    wl::tpcc_config w;
    w.warehouses = o.warehouses;
    w.partitions = o.cfg.partitions;
    w.order_headroom_per_district =
        o.batches * o.batch_size / 10 + 2000;
    return std::make_unique<wl::tpcc>(w);
  }
  if (o.workload == "bank") {
    wl::bank_config w;
    w.partitions = o.cfg.partitions;
    return std::make_unique<wl::bank>(w);
  }
  std::fprintf(stderr, "unknown workload: %s\n", o.workload.c_str());
  std::exit(2);
}

}  // namespace

int main(int argc, char** argv) {
  options o;
  if (!parse(o, argc, argv)) return 0;

  auto w = make_workload(o);
  storage::database db;
  w->load(db);

  std::unique_ptr<proto::engine> eng;
  try {
    eng = proto::make_engine(o.engine, db, o.cfg);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 2;
  }

  std::printf("engine=%s workload=%s batches=%u batch=%u %s\n", o.engine.c_str(),
              o.workload.c_str(), o.batches, o.batch_size,
              o.cfg.describe().c_str());

  harness::run_options opts;
  opts.batches = o.batches;
  opts.batch_size = o.batch_size;
  opts.seed = o.seed;
  opts.batch_deadline_micros = o.cfg.batch_deadline_micros;
  opts.admission_capacity = o.cfg.admission_capacity;
  if (o.arrival_rate > 0) {
    opts.mode = harness::arrival_mode::open_loop;
    opts.offered_load_tps = o.arrival_rate;
    std::printf("open loop: %" PRIu64 " txns offered at %.0f txn/s\n",
                opts.total_txns(), o.arrival_rate);
  }
  const auto res = harness::run_workload(*eng, *w, db, opts);
  std::puts(res.metrics.summary(o.engine).c_str());
  std::printf("state hash: %016llx\n",
              static_cast<unsigned long long>(res.final_state_hash));
  return 0;
}
