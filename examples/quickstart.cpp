// Quickstart: build your own transactional application on the
// queue-oriented engine in ~100 lines.
//
// We model a tiny ticket-sales system: one SEATS table; a "reserve"
// transaction checks capacity (abortable fragment), decrements seats
// (update fragment), and records the sale price into a result slot the
// client can read back. Everything an application needs is shown here:
//   1. define a schema and load a table,
//   2. write fragment logic (one function, dispatched by fragment.logic),
//   3. compile transactions into fragments with dependencies,
//   4. submit them through a client session and wait on tickets — the
//      session's batch former turns the submissions into deterministic
//      batches (closing on size or deadline) behind your back.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>
#include <vector>

#include "core/engine.hpp"
#include "protocols/session.hpp"
#include "storage/database.hpp"
#include "txn/procedure.hpp"

using namespace quecc;

namespace {

// Fragment logic selectors for our procedure.
enum logic : std::uint16_t { check_capacity = 0, reserve_seats = 1 };

// One function implements every fragment of the procedure. It must be
// deterministic: outputs depend only on args, ready slots, and row data.
txn::frag_status run_fragment(const txn::fragment& f, txn::txn_desc& t,
                              txn::frag_host& h) {
  switch (f.logic) {
    case check_capacity: {  // abortable read: enough seats left?
      const auto row = h.read_row(f, t);
      if (row.empty()) return txn::frag_status::abort;  // unknown event
      const auto available = storage::read_u64(row, 0);
      return available < f.aux ? txn::frag_status::abort
                               : txn::frag_status::ok;
    }
    case reserve_seats: {  // update: take the seats, report the price
      auto row = h.update_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      const auto left = storage::read_u64(row, 0) - f.aux;
      storage::write_u64(row, 0, left);
      const auto price = storage::read_u64(row, 8);
      t.produce(0, price * f.aux);  // slot 0: total charged
      return txn::frag_status::ok;
    }
  }
  return txn::frag_status::ok;
}

// Compile a "reserve `count` seats for `event`" transaction into fragments.
std::unique_ptr<txn::txn_desc> make_reserve(const txn::procedure& proc,
                                            quecc::key_t event,
                                            std::uint64_t count) {
  auto t = std::make_unique<txn::txn_desc>();
  t->proc = &proc;

  txn::fragment check;
  check.table = 0;
  check.key = event;
  check.part = static_cast<part_id_t>(event % 4);
  check.kind = txn::op_kind::read;
  check.abortable = true;  // may deterministically abort the txn
  check.logic = check_capacity;
  check.aux = count;
  check.idx = 0;
  t->frags.push_back(check);

  txn::fragment reserve = check;
  reserve.kind = txn::op_kind::update;
  reserve.abortable = false;
  reserve.logic = reserve_seats;
  reserve.idx = 1;
  t->frags.push_back(reserve);
  return t;
}

}  // namespace

int main() {
  // 1. Storage: one SEATS table (available seats, unit price).
  storage::database db;
  auto& seats = db.create_table(
      "seats",
      storage::schema({{"AVAILABLE", storage::col_type::u64, 8},
                       {"PRICE", storage::col_type::u64, 8}}),
      /*capacity=*/64);
  std::vector<std::byte> row(16);
  for (quecc::key_t event = 0; event < 8; ++event) {
    std::span<std::byte> s(row);
    storage::write_u64(s, 0, 10);              // 10 seats per event
    storage::write_u64(s, 8, 25 + event * 5);  // price per seat
    seats.insert(event, row);
  }

  // 2. The stored procedure: fragment logic + number of value slots.
  txn::procedure reserve_proc("reserve", &run_fragment, /*slots=*/1);

  // 3. The engine: 2 planners, 2 executors, speculative execution,
  //    serializable isolation. batch_size is 1024 but we'll only submit
  //    20 transactions — the 1ms batch deadline closes the partial batch,
  //    so a trickle of traffic still commits promptly.
  common::config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  cfg.batch_deadline_micros = 1000;
  core::quecc_engine engine(db, cfg);

  // 4. Submit reservation requests through a client session (some will
  //    abort: only 10 seats per event). submit() is thread-safe and
  //    returns a ticket; wait() blocks until the transaction's batch
  //    committed and carries the final status, latency, and result slots.
  proto::session session(engine, cfg);
  std::vector<proto::session::ticket> tickets;
  for (int i = 0; i < 20; ++i) {
    tickets.push_back(session.submit(
        make_reserve(reserve_proc, /*event=*/i % 4, /*count=*/1 + i % 4)));
  }

  // 5. Inspect per-transaction outcomes from the tickets.
  for (std::size_t i = 0; i < tickets.size(); ++i) {
    const auto r = tickets[i].wait();
    if (r.status == txn::txn_status::aborted) {
      std::printf("txn %2zu: ABORTED (not enough seats)\n", i);
    } else {
      std::printf("txn %2zu: committed in %4.0fus (%3.0fus queued), "
                  "charged %llu\n",
                  i, r.e2e_nanos / 1e3, r.queue_nanos / 1e3,
                  static_cast<unsigned long long>(r.slots[0]));
    }
  }
  session.close();
  const auto& metrics = session.metrics();
  std::printf("\ncommitted=%llu aborted=%llu in %u batch(es)\n",
              static_cast<unsigned long long>(metrics.committed),
              static_cast<unsigned long long>(metrics.aborted),
              session.batches_formed());

  std::printf("\nremaining seats per event:\n");
  for (quecc::key_t event = 0; event < 8; ++event) {
    const auto rid = seats.lookup(event);
    std::printf("  event %llu: %llu\n",
                static_cast<unsigned long long>(event),
                static_cast<unsigned long long>(
                    storage::read_u64(seats.row(rid), 0)));
  }
  return 0;
}
