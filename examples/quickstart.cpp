// Quickstart: build your own transactional application on the
// queue-oriented engine in ~100 lines.
//
// We model a tiny ticket-sales system: one SEATS table; a "reserve"
// transaction checks capacity (abortable fragment), decrements seats
// (update fragment), and records the sale price into a result slot the
// client can read back. Everything a workload needs is shown here:
//   1. define a schema and load a table,
//   2. write fragment logic (one function, dispatched by fragment.logic),
//   3. compile transactions into fragments with dependencies,
//   4. run batches through the engine and inspect results.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/engine.hpp"
#include "storage/database.hpp"
#include "txn/procedure.hpp"

using namespace quecc;

namespace {

// Fragment logic selectors for our procedure.
enum logic : std::uint16_t { check_capacity = 0, reserve_seats = 1 };

// One function implements every fragment of the procedure. It must be
// deterministic: outputs depend only on args, ready slots, and row data.
txn::frag_status run_fragment(const txn::fragment& f, txn::txn_desc& t,
                              txn::frag_host& h) {
  switch (f.logic) {
    case check_capacity: {  // abortable read: enough seats left?
      const auto row = h.read_row(f, t);
      if (row.empty()) return txn::frag_status::abort;  // unknown event
      const auto available = storage::read_u64(row, 0);
      return available < f.aux ? txn::frag_status::abort
                               : txn::frag_status::ok;
    }
    case reserve_seats: {  // update: take the seats, report the price
      auto row = h.update_row(f, t);
      if (row.empty()) return txn::frag_status::ok;
      const auto left = storage::read_u64(row, 0) - f.aux;
      storage::write_u64(row, 0, left);
      const auto price = storage::read_u64(row, 8);
      t.produce(0, price * f.aux);  // slot 0: total charged
      return txn::frag_status::ok;
    }
  }
  return txn::frag_status::ok;
}

// Compile a "reserve `count` seats for `event`" transaction into fragments.
std::unique_ptr<txn::txn_desc> make_reserve(const txn::procedure& proc,
                                            quecc::key_t event,
                                            std::uint64_t count) {
  auto t = std::make_unique<txn::txn_desc>();
  t->proc = &proc;

  txn::fragment check;
  check.table = 0;
  check.key = event;
  check.part = static_cast<part_id_t>(event % 4);
  check.kind = txn::op_kind::read;
  check.abortable = true;  // may deterministically abort the txn
  check.logic = check_capacity;
  check.aux = count;
  check.idx = 0;
  t->frags.push_back(check);

  txn::fragment reserve = check;
  reserve.kind = txn::op_kind::update;
  reserve.abortable = false;
  reserve.logic = reserve_seats;
  reserve.idx = 1;
  t->frags.push_back(reserve);
  return t;
}

}  // namespace

int main() {
  // 1. Storage: one SEATS table (available seats, unit price).
  storage::database db;
  auto& seats = db.create_table(
      "seats",
      storage::schema({{"AVAILABLE", storage::col_type::u64, 8},
                       {"PRICE", storage::col_type::u64, 8}}),
      /*capacity=*/64);
  std::vector<std::byte> row(16);
  for (quecc::key_t event = 0; event < 8; ++event) {
    std::span<std::byte> s(row);
    storage::write_u64(s, 0, 10);              // 10 seats per event
    storage::write_u64(s, 8, 25 + event * 5);  // price per seat
    seats.insert(event, row);
  }

  // 2. The stored procedure: fragment logic + number of value slots.
  txn::procedure reserve_proc("reserve", &run_fragment, /*slots=*/1);

  // 3. A batch of reservation requests (some will abort: only 10 seats).
  txn::batch batch;
  for (int i = 0; i < 20; ++i) {
    batch.add(make_reserve(reserve_proc, /*event=*/i % 4,
                           /*count=*/1 + i % 4));
  }
  batch.validate();

  // 4. Run it through the queue-oriented engine: 2 planners, 2 executors,
  //    speculative execution, serializable isolation.
  common::config cfg;
  cfg.planner_threads = 2;
  cfg.executor_threads = 2;
  core::quecc_engine engine(db, cfg);

  common::run_metrics metrics;
  engine.run_batch(batch, metrics);

  // 5. Inspect per-transaction outcomes.
  std::printf("committed=%llu aborted=%llu (sold out)\n\n",
              static_cast<unsigned long long>(metrics.committed),
              static_cast<unsigned long long>(metrics.aborted));
  for (std::size_t i = 0; i < batch.size(); ++i) {
    const auto& t = batch.at(i);
    if (t.aborted()) {
      std::printf("txn %2zu: ABORTED (not enough seats)\n", i);
    } else {
      std::printf("txn %2zu: committed, charged %llu\n", i,
                  static_cast<unsigned long long>(t.slot_value(0)));
    }
  }

  std::printf("\nremaining seats per event:\n");
  for (quecc::key_t event = 0; event < 8; ++event) {
    const auto rid = seats.lookup(event);
    std::printf("  event %llu: %llu\n",
                static_cast<unsigned long long>(event),
                static_cast<unsigned long long>(
                    storage::read_u64(seats.row(rid), 0)));
  }
  return 0;
}
