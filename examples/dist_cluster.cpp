// dist_cluster: a four-node simulated cluster running distributed
// transactions under the two deterministic distributed engines, showing
// the paper's Section 2.2 point: commitment cost without 2PC.
//
//   dist-quecc  — ships fragment-queue bundles; messages per *batch*
//   dist-calvin — sequencer epochs + per-transaction read/release rounds
//
// Build & run:  ./build/examples/dist_cluster
#include <cstdio>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "protocols/iface.hpp"
#include "workload/ycsb.hpp"

using namespace quecc;

namespace {

void run_one(const char* label, harness::table_printer& table,
             std::uint32_t batches, std::uint32_t batch_size) {
  wl::ycsb_config wcfg;
  wcfg.table_size = 1 << 16;
  wcfg.partitions = 8;
  wcfg.multi_partition_ratio = 0.25;  // 25% distributed transactions
  wcfg.mp_parts = 2;
  wl::ycsb workload(wcfg);

  storage::database db;
  workload.load(db);

  common::config cfg;
  cfg.nodes = 4;
  cfg.partitions = 8;
  cfg.planner_threads = 1;   // per node
  cfg.executor_threads = 1;  // per node
  cfg.worker_threads = 2;    // per node
  cfg.net_latency_micros = 50;

  auto engine = proto::make_engine(label, db, cfg);
  harness::run_options opts;
  opts.batches = batches;
  opts.batch_size = batch_size;
  opts.seed = 99;
  const auto m = harness::run_workload(*engine, workload, db, opts).metrics;

  char msgs_per_txn[32];
  std::snprintf(msgs_per_txn, sizeof msgs_per_txn, "%.3f",
                static_cast<double>(m.messages) /
                    static_cast<double>(m.committed));
  table.row({label, harness::format_rate(m.throughput()),
             std::to_string(m.messages), msgs_per_txn});
}

}  // namespace

int main() {
  constexpr std::uint32_t kBatches = 4;
  constexpr std::uint32_t kBatchSize = 2048;

  std::printf(
      "simulated cluster: 4 nodes, 50us one-way latency, 25%% distributed\n"
      "transactions, %u batches x %u txns\n\n",
      kBatches, kBatchSize);

  harness::table_printer table(
      {"engine", "throughput", "messages", "msgs/txn"});
  run_one("dist-quecc", table, kBatches, kBatchSize);
  run_one("dist-calvin", table, kBatches, kBatchSize);
  table.print();

  std::printf(
      "\nneither engine runs 2PC. dist-quecc's message bill is constant per\n"
      "batch (plan bundles + one commit round); dist-calvin pays the\n"
      "sequencer epoch plus two messages per distributed transaction —\n"
      "compare the msgs/txn column.\n");
  return 0;
}
