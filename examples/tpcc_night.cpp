// tpcc_night: a "night shift" of TPC-C traffic — the five transaction
// profiles over the full nine-table schema — processed by several engines
// in the test-bed, finishing with TPC-C's consistency audit.
//
// Build & run:  ./build/examples/tpcc_night
#include <cstdio>

#include "harness/report.hpp"
#include "harness/runner.hpp"
#include "protocols/iface.hpp"
#include "workload/tpcc.hpp"

using namespace quecc;

int main() {
  constexpr std::uint32_t kBatches = 4;
  constexpr std::uint32_t kBatchSize = 1024;

  std::printf(
      "TPC-C night shift: 2 warehouses, %u batches x %u txns\n"
      "mix: 45%% NewOrder, 43%% Payment, 4%% OrderStatus, 4%% Delivery, "
      "4%% StockLevel\n\n",
      kBatches, kBatchSize);

  harness::table_printer table({"engine", "throughput", "user aborts",
                                "cc retries", "consistency"});

  for (const char* name : {"quecc", "silo", "2pl-nowait", "calvin"}) {
    wl::tpcc_config wcfg;
    wcfg.warehouses = 2;
    wcfg.partitions = 4;
    wcfg.initial_orders_per_district = 100;
    wcfg.order_headroom_per_district = 1000;
    wl::tpcc workload(wcfg);

    storage::database db;
    workload.load(db);

    common::config cfg;
    cfg.planner_threads = 2;
    cfg.executor_threads = 2;
    cfg.worker_threads = 4;
    cfg.partitions = 4;

    auto engine = proto::make_engine(name, db, cfg);
    harness::run_options opts;
    opts.batches = kBatches;
    opts.batch_size = kBatchSize;
    opts.seed = 2026;
    const auto result = harness::run_workload(*engine, workload, db, opts);

    std::string why;
    const bool ok = workload.check_consistency(db, &why);
    table.row({name, harness::format_rate(result.metrics.throughput()),
               std::to_string(result.metrics.aborted),
               std::to_string(result.metrics.cc_aborts),
               ok ? "PASS" : "FAIL: " + why});
  }
  table.print();
  std::printf(
      "\nuser aborts are TPC-C's 1%% invalid-item NewOrders — they abort\n"
      "deterministically under every engine; cc retries exist only for the\n"
      "classical protocols.\n");
  return 0;
}
